"""Chase-Lev work-stealing deque: sequential semantics, growth,
threaded stress, and exactly-once delivery properties."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.deque import ChaseLevDeque


class TestSequentialSemantics:
    def test_empty_pop_returns_none(self):
        assert ChaseLevDeque().pop() is None

    def test_empty_steal_returns_none(self):
        assert ChaseLevDeque().steal() is None

    def test_owner_pop_is_lifo(self):
        dq = ChaseLevDeque()
        for i in range(5):
            dq.push(i)
        assert [dq.pop() for _ in range(5)] == [4, 3, 2, 1, 0]

    def test_thief_steal_is_fifo(self):
        dq = ChaseLevDeque()
        for i in range(5):
            dq.push(i)
        assert [dq.steal() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_mixed_pop_and_steal(self):
        dq = ChaseLevDeque()
        for i in range(4):
            dq.push(i)
        assert dq.steal() == 0
        assert dq.pop() == 3
        assert dq.steal() == 1
        assert dq.pop() == 2
        assert dq.pop() is None

    def test_len_tracks_contents(self):
        dq = ChaseLevDeque()
        assert len(dq) == 0 and dq.is_empty
        dq.push("a")
        dq.push("b")
        assert len(dq) == 2
        dq.pop()
        assert len(dq) == 1

    def test_growth_beyond_initial_capacity(self):
        dq = ChaseLevDeque(initial_capacity=2)
        n = 1000
        for i in range(n):
            dq.push(i)
        assert len(dq) == n
        assert sorted(dq.drain()) == list(range(n))

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ChaseLevDeque(initial_capacity=0)

    def test_drain_empties(self):
        dq = ChaseLevDeque()
        for i in range(10):
            dq.push(i)
        assert sorted(dq.drain()) == list(range(10))
        assert dq.is_empty

    @given(ops=st.lists(st.sampled_from(["push", "pop", "steal"]),
                        max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_exactly_once_property(self, ops):
        """Every pushed item comes out exactly once, whichever side
        takes it."""
        dq = ChaseLevDeque()
        pushed = []
        taken = []
        counter = 0
        for op in ops:
            if op == "push":
                dq.push(counter)
                pushed.append(counter)
                counter += 1
            elif op == "pop":
                item = dq.pop()
                if item is not None:
                    taken.append(item)
            else:
                item = dq.steal()
                if item is not None:
                    taken.append(item)
        taken.extend(dq.drain())
        assert sorted(taken) == pushed


class TestThreadedStress:
    def test_owner_vs_thieves_exactly_once(self):
        """One owner pushing/popping, several thieves stealing: no item
        is lost or duplicated."""
        dq = ChaseLevDeque()
        n_items = 20_000
        n_thieves = 4
        stolen = [[] for _ in range(n_thieves)]
        popped = []
        stop = threading.Event()

        def thief(idx):
            while not stop.is_set() or not dq.is_empty:
                item = dq.steal()
                if item is not None:
                    stolen[idx].append(item)

        threads = [threading.Thread(target=thief, args=(i,), daemon=True)
                   for i in range(n_thieves)]
        for t in threads:
            t.start()

        for i in range(n_items):
            dq.push(i)
            if i % 3 == 0:
                item = dq.pop()
                if item is not None:
                    popped.append(item)
        stop.set()
        for t in threads:
            t.join(timeout=30)
        leftovers = dq.drain()
        everything = sorted(popped + leftovers + sum(stolen, []))
        assert everything == list(range(n_items))
