"""TenancySpec: the typed replacement for 'policy;quantum;tenants'."""

import warnings

import pytest

import repro._compat
from repro.errors import HarnessError, SchedulingError, SpecError
from repro.harness.engine import KIND_MULTIPROGRAM, RunSpec, SchedulerSpec
from repro.runtime.tenancy import TenancySpec, TenantSpec, parse_tenant_specs
from repro.soc.spec import haswell_desktop

MIX = "BS:0,CC:5:40"


def _typed() -> TenancySpec:
    return TenancySpec(policy="priority", lease_quantum=3,
                       tenants=parse_tenant_specs(MIX))


def _reset_warning(key: str) -> None:
    repro._compat._warned_once.discard(key)


class TestRoundTrip:
    def test_parse_inverts_legacy_text(self):
        spec = _typed()
        assert TenancySpec.parse(spec.legacy_text()) == spec

    def test_legacy_text_shape(self):
        # Zero priorities are normalized away ("BS:0" -> "BS").
        assert _typed().legacy_text() == "priority;3;BS,CC:5:40"

    def test_tenant_text_reconstructs(self):
        assert _typed().tenant_text == "BS,CC:5:40"

    def test_tenants_coerced_to_tuple(self):
        spec = TenancySpec(tenants=list(parse_tenant_specs("BS,CC")))
        assert isinstance(spec.tenants, tuple)

    def test_defaults(self):
        spec = TenancySpec(tenants=parse_tenant_specs("BS,CC"))
        assert spec.policy == "fifo"
        assert spec.lease_quantum >= 1


class TestValidation:
    def test_unknown_policy(self):
        with pytest.raises(SchedulingError):
            TenancySpec(policy="lottery",
                        tenants=parse_tenant_specs("BS,CC"))

    def test_bad_quantum(self):
        with pytest.raises(SchedulingError):
            TenancySpec(lease_quantum=0,
                        tenants=parse_tenant_specs("BS,CC"))

    def test_empty_tenants(self):
        with pytest.raises(SchedulingError):
            TenancySpec(tenants=())

    def test_non_tenantspec_entries(self):
        with pytest.raises(SchedulingError):
            TenancySpec(tenants=("BS", "CC"))

    def test_parse_malformed(self):
        for text in ("fifo", "fifo;2", "fifo;x;BS,CC"):
            with pytest.raises(SchedulingError):
                TenancySpec.parse(text)


class TestDeadlineValidation:
    """Regression: the parser accepted negative/zero/NaN/inf deadlines,
    which corrupt the arbiter's earliest-deadline ordering."""

    @pytest.mark.parametrize("deadline", [-1.0, 0.0, float("nan"),
                                          float("inf"), -float("inf"),
                                          True, "40"])
    def test_tenant_spec_rejects_bad_deadline(self, deadline):
        with pytest.raises(SpecError):
            TenantSpec(name="BS-0", workload="BS", deadline_s=deadline)

    @pytest.mark.parametrize("text", ["BS:0:-1", "BS:0:0", "BS:0:nan",
                                      "BS:0:inf", "BS:0:-inf",
                                      "BS,CC:5:-40"])
    def test_parse_rejects_bad_deadline_text(self, text):
        with pytest.raises(SpecError) as excinfo:
            parse_tenant_specs(text)
        # The error names the offending entry, not just the field.
        assert "bad tenant entry" in str(excinfo.value)

    def test_spec_error_is_a_repro_error(self):
        # Catchable via the package-wide base class.
        from repro.errors import ReproError

        assert issubclass(SpecError, ReproError)

    def test_valid_deadline_round_trips(self):
        spec = TenancySpec(tenants=parse_tenant_specs("BS:0:40,CC"))
        assert spec.tenants[0].deadline_s == 40.0
        assert spec.tenants[1].deadline_s is None
        assert TenancySpec.parse(spec.legacy_text()) == spec


class TestCacheKey:
    def _spec(self, tenancy) -> RunSpec:
        return RunSpec(platform=haswell_desktop(), kind=KIND_MULTIPROGRAM,
                       scheduler=SchedulerSpec.eas("edp"), tenancy=tenancy)

    def test_legacy_and_typed_spellings_share_cache_key(self):
        _reset_warning("engine.RunSpec.tenancy-string")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = self._spec(f"priority;3;{MIX}")
        typed = self._spec(_typed())
        assert legacy.cache_key() == typed.cache_key()
        assert legacy.tenancy == typed.tenancy  # shim parsed in place

    def test_cache_key_sensitive_to_tenancy_fields(self):
        base = self._spec(_typed())
        keys = {base.cache_key()}
        for variant in (
                TenancySpec(policy="fifo", lease_quantum=3,
                            tenants=parse_tenant_specs(MIX)),
                TenancySpec(policy="priority", lease_quantum=4,
                            tenants=parse_tenant_specs(MIX)),
                TenancySpec(policy="priority", lease_quantum=3,
                            tenants=parse_tenant_specs("BS:0,CC:6:40")),
                TenancySpec(policy="priority", lease_quantum=3,
                            tenants=parse_tenant_specs("BS:0,CC:5:41")),
        ):
            keys.add(self._spec(variant).cache_key())
        assert len(keys) == 5

    def test_canonical_dict_is_plain_data(self):
        import json

        payload = _typed().canonical_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestDeprecationShim:
    def test_legacy_string_warns_exactly_once(self):
        _reset_warning("engine.RunSpec.tenancy-string")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = self_spec = self._make("fifo;2;BS,CC")
            second = self._make("fifo;2;BS,CC")
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "TenancySpec" in str(deprecations[0].message)
        assert isinstance(first.tenancy, TenancySpec)
        assert isinstance(second.tenancy, TenancySpec)
        assert self_spec.tenancy.policy == "fifo"

    def test_malformed_legacy_string_raises_harness_error(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(HarnessError):
                self._make("fifo")

    def test_empty_string_means_no_tenancy(self):
        spec = RunSpec(platform=haswell_desktop(), workload="MM",
                       scheduler=SchedulerSpec.eas("edp"), tenancy="")
        assert spec.tenancy is None

    def test_multiprogram_requires_tenancy(self):
        with pytest.raises(HarnessError):
            RunSpec(platform=haswell_desktop(), kind=KIND_MULTIPROGRAM,
                    scheduler=SchedulerSpec.eas("edp"))

    def _make(self, text: str) -> RunSpec:
        return RunSpec(platform=haswell_desktop(), kind=KIND_MULTIPROGRAM,
                       scheduler=SchedulerSpec.eas("edp"), tenancy=text)


class TestTenantSpecInterop:
    def test_tenants_are_tenant_specs(self):
        for tenant in _typed().tenants:
            assert isinstance(tenant, TenantSpec)

    def test_canonical_dict_fields(self):
        payload = _typed().canonical_dict()
        assert payload["policy"] == "priority"
        assert payload["lease_quantum"] == 3
        # Tenant names are positional: <abbrev>-<index>.
        assert [t["name"] for t in payload["tenants"]] == ["BS-0", "CC-1"]
