"""The shared global work counter of Fig. 7."""

import threading

import pytest

from repro.errors import RuntimeLayerError
from repro.runtime.shared_counter import SharedWorkCounter


class TestSequential:
    def test_grab_returns_contiguous_ranges(self):
        counter = SharedWorkCounter(10)
        assert counter.grab(4) == (0, 4)
        assert counter.grab(4) == (4, 8)
        assert counter.grab(4) == (8, 10)  # truncated at the end
        assert counter.grab(4) is None

    def test_remaining_and_dispatched(self):
        counter = SharedWorkCounter(100)
        counter.grab(30)
        assert counter.remaining == 70
        assert counter.dispatched == 30
        assert counter.total == 100

    def test_grab_all(self):
        counter = SharedWorkCounter(50)
        counter.grab(10)
        assert counter.grab_all() == (10, 50)
        assert counter.grab_all() is None

    def test_zero_items_exhausted_immediately(self):
        counter = SharedWorkCounter(0)
        assert counter.grab(1) is None

    def test_rejects_negative_total(self):
        with pytest.raises(RuntimeLayerError):
            SharedWorkCounter(-1)

    def test_rejects_nonpositive_chunk(self):
        with pytest.raises(RuntimeLayerError):
            SharedWorkCounter(10).grab(0)


class TestConcurrent:
    def test_threads_partition_range_exactly(self):
        counter = SharedWorkCounter(100_000)
        grabbed = [[] for _ in range(8)]

        def worker(idx):
            while True:
                chunk = counter.grab(37)
                if chunk is None:
                    return
                grabbed[idx].append(chunk)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        ranges = sorted(r for per_thread in grabbed for r in per_thread)
        pos = 0
        for lo, hi in ranges:
            assert lo == pos
            pos = hi
        assert pos == 100_000
