"""ConcordRuntime and KernelLaunch: the scheduler-facing primitives."""

import pytest

from repro.errors import RuntimeLayerError, SchedulingError
from repro.runtime.kernel import Kernel
from repro.runtime.runtime import ConcordRuntime, KernelLaunch, SchedulerRecord
from repro.soc.cost_model import KernelCostModel
from repro.soc.simulator import IntegratedProcessor


@pytest.fixture
def kernel():
    return Kernel(name="k", cost=KernelCostModel(
        name="k", instructions_per_item=500.0,
        loadstore_fraction=0.2, l3_miss_rate=0.0))


@pytest.fixture
def runtime(desktop):
    return ConcordRuntime(IntegratedProcessor(desktop))


def make_launch(runtime, kernel, n=100_000.0):
    return KernelLaunch(runtime.processor, kernel, n,
                        runtime._cost_profile(kernel))


class TestKernelLaunch:
    def test_rejects_nonpositive_items(self, runtime, kernel):
        with pytest.raises(RuntimeLayerError):
            make_launch(runtime, kernel, 0.0)

    def test_run_cpu_only_completes(self, runtime, kernel):
        launch = make_launch(runtime, kernel)
        launch.run_cpu_only()
        assert launch.is_done
        assert launch.remaining_items == 0.0

    def test_run_partitioned_bounds_alpha(self, runtime, kernel):
        launch = make_launch(runtime, kernel)
        with pytest.raises(SchedulingError):
            launch.run_partitioned(1.5)

    def test_run_partitioned_splits_work(self, runtime, kernel):
        launch = make_launch(runtime, kernel, 1_000_000.0)
        result = launch.run_partitioned(0.3)
        assert result.gpu_items == pytest.approx(300_000.0, rel=1e-6)
        assert result.cpu_items == pytest.approx(700_000.0, rel=1e-6)
        assert launch.is_done

    def test_cannot_run_twice(self, runtime, kernel):
        launch = make_launch(runtime, kernel)
        launch.run_gpu_only()
        with pytest.raises(SchedulingError):
            launch.run_cpu_only()

    def test_profile_chunk_observations(self, runtime, kernel):
        launch = make_launch(runtime, kernel, 10_000_000.0)
        obs = launch.profile_chunk(2048.0)
        assert obs.gpu_items == pytest.approx(2048.0, rel=1e-6)
        assert obs.cpu_items > 0.0
        assert obs.gpu_throughput > 0.0
        assert obs.cpu_throughput > 0.0
        assert obs.energy_j > 0.0
        # Profiling consumed GPU chunk plus the CPU's drained prefix.
        assert launch.remaining_items == pytest.approx(
            10_000_000.0 - 2048.0 - obs.cpu_items, rel=1e-6)

    def test_profile_then_partitioned_completes_everything(self, runtime,
                                                           kernel):
        launch = make_launch(runtime, kernel, 1_000_000.0)
        launch.profile_chunk(2048.0)
        launch.run_partitioned(0.5)
        assert launch.is_done

    def test_profile_on_exhausted_launch_raises(self, runtime, kernel):
        launch = make_launch(runtime, kernel, 10_000.0)
        launch.run_cpu_only()
        with pytest.raises(SchedulingError):
            launch.profile_chunk(1000.0)


class _AlphaScheduler:
    """Minimal test scheduler."""

    def __init__(self, alpha):
        self.alpha = alpha

    def execute(self, launch):
        launch.run_partitioned(self.alpha)
        return SchedulerRecord(alpha=self.alpha)


class _LazyScheduler:
    """A broken scheduler that leaves work unfinished."""

    def execute(self, launch):
        return SchedulerRecord(alpha=None)


class TestConcordRuntime:
    def test_parallel_for_measures_time_and_energy(self, runtime, kernel):
        result = runtime.parallel_for(kernel, 500_000.0, _AlphaScheduler(0.5))
        assert result.duration_s > 0.0
        assert result.energy_j > 0.0
        assert result.alpha == 0.5
        assert result.cpu_items + result.gpu_items == pytest.approx(
            500_000.0, rel=1e-6)

    def test_parallel_for_rejects_lazy_scheduler(self, runtime, kernel):
        with pytest.raises(SchedulingError):
            runtime.parallel_for(kernel, 1000.0, _LazyScheduler())

    def test_parallel_for_rejects_partial_scheduler(self, runtime, kernel):
        """A scheduler that consumes *some* items but abandons the rest
        must trip the all-items-processed contract, not pass silently."""

        class _PartialScheduler:
            def execute(self, launch):
                launch.profile_chunk(2048.0)  # consumes a prefix only
                return SchedulerRecord(alpha=0.5)

        with pytest.raises(SchedulingError, match="unprocessed"):
            runtime.parallel_for(kernel, 1_000_000.0, _PartialScheduler())

    def test_cost_profile_cached_per_kernel_key(self, runtime, kernel):
        first = runtime._cost_profile(kernel)
        second = runtime._cost_profile(kernel)
        assert first is second

    def test_invocations_accumulate_on_one_clock(self, runtime, kernel):
        r1 = runtime.parallel_for(kernel, 100_000.0, _AlphaScheduler(0.0))
        r2 = runtime.parallel_for(kernel, 100_000.0, _AlphaScheduler(0.0))
        assert runtime.processor.now == pytest.approx(
            r1.duration_s + r2.duration_s)
