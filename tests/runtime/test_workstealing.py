"""Host-thread work-stealing pool executing real computation."""

import threading

import numpy as np
import pytest

from repro.errors import RuntimeLayerError
from repro.runtime.workstealing import WorkStealingPool, coverage_is_complete


class TestExecution:
    def test_every_item_executed_exactly_once(self):
        pool = WorkStealingPool(num_workers=4, chunk=64)
        n = 10_000
        hits = np.zeros(n, dtype=np.int64)
        lock = threading.Lock()

        def body(lo, hi):
            with lock:
                hits[lo:hi] += 1

        executed = pool.run(body, 0, n)
        assert (hits == 1).all()
        assert coverage_is_complete(executed, 0, n)

    def test_empty_range(self):
        pool = WorkStealingPool(num_workers=2)
        assert pool.run(lambda lo, hi: None, 5, 5) == []

    def test_rejects_reversed_range(self):
        pool = WorkStealingPool(num_workers=2)
        with pytest.raises(RuntimeLayerError):
            pool.run(lambda lo, hi: None, 10, 0)

    def test_rejects_bad_configuration(self):
        with pytest.raises(RuntimeLayerError):
            WorkStealingPool(num_workers=0)
        with pytest.raises(RuntimeLayerError):
            WorkStealingPool(num_workers=1, chunk=0)

    def test_single_worker_handles_everything(self):
        pool = WorkStealingPool(num_workers=1, chunk=10)
        executed = pool.run(lambda lo, hi: None, 0, 95)
        assert coverage_is_complete(executed, 0, 95)

    def test_stop_event_abandons_remaining_chunks(self):
        pool = WorkStealingPool(num_workers=2, chunk=1)
        stop = threading.Event()
        done = []
        lock = threading.Lock()

        def body(lo, hi):
            with lock:
                done.append((lo, hi))
            if len(done) >= 5:
                stop.set()

        executed = pool.run(body, 0, 10_000, stop_event=stop)
        assert len(executed) < 10_000

    def test_body_exception_propagates(self):
        pool = WorkStealingPool(num_workers=2, chunk=8)

        def body(lo, hi):
            if lo >= 64:
                raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            pool.run(body, 0, 1000)

    def test_map_reduce(self):
        pool = WorkStealingPool(num_workers=4, chunk=100)
        total = pool.map_reduce(
            body=lambda lo, hi: sum(range(lo, hi)),
            combine=lambda a, b: a + b,
            start=0, stop=5000, initial=0)
        assert total == sum(range(5000))


class TestCoverageHelper:
    def test_complete(self):
        assert coverage_is_complete([(0, 5), (5, 9)], 0, 9)

    def test_gap_detected(self):
        assert not coverage_is_complete([(0, 5), (6, 9)], 0, 9)

    def test_short_detected(self):
        assert not coverage_is_complete([(0, 5)], 0, 9)
