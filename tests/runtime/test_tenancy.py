"""Unit tests for the GPU lease arbiter and the tenant SoC view.

The arbiter is the mechanism that makes ``gpu_busy`` *real* in
multiprogram runs (see :mod:`repro.runtime.tenancy`): these tests pin
the invocation protocol (idempotent polls, quantum accounting), both
arbitration policies, and the ``--tenants`` spec parser.  End-to-end
contention behaviour lives in ``tests/integration/test_multiprogram.py``.
"""

import pytest

from repro.errors import SchedulingError
from repro.runtime.tenancy import (
    ARBITER_POLICIES,
    GpuLeaseArbiter,
    TenantSoCView,
    TenantSpec,
    parse_tenant_specs,
)
from repro.soc.simulator import IntegratedProcessor


def make_arbiter(policy="fifo", lease_quantum=2, tenants=("A", "B", "C"),
                 **attrs):
    arbiter = GpuLeaseArbiter(policy=policy, lease_quantum=lease_quantum)
    for name in tenants:
        arbiter.register(TenantSpec(name=name, workload="BS",
                                    **attrs.get(name, {})))
    return arbiter


def step(arbiter, tenant, t=0.0):
    """One full invocation: begin, poll, end.  Returns the decision."""
    arbiter.begin_invocation(tenant, t)
    granted = arbiter.poll(tenant, t)
    arbiter.end_invocation(tenant, t)
    return granted


class TestProtocol:
    def test_rejects_unknown_policy(self):
        with pytest.raises(SchedulingError):
            GpuLeaseArbiter(policy="coin-flip")

    def test_rejects_bad_quantum(self):
        with pytest.raises(SchedulingError):
            GpuLeaseArbiter(lease_quantum=0)

    def test_rejects_duplicate_tenant(self):
        arbiter = make_arbiter()
        with pytest.raises(SchedulingError):
            arbiter.register(TenantSpec(name="A", workload="CC"))

    def test_rejects_unregistered_tenant(self):
        arbiter = make_arbiter(tenants=("A",))
        with pytest.raises(SchedulingError):
            arbiter.begin_invocation("Z", 0.0)

    def test_rejects_nested_invocations(self):
        arbiter = make_arbiter()
        arbiter.begin_invocation("A", 0.0)
        with pytest.raises(SchedulingError):
            arbiter.begin_invocation("B", 0.0)

    def test_rejects_poll_outside_own_invocation(self):
        arbiter = make_arbiter()
        arbiter.begin_invocation("A", 0.0)
        with pytest.raises(SchedulingError):
            arbiter.poll("B", 0.0)

    def test_poll_is_idempotent_within_an_invocation(self):
        """Debounce re-reads must see the same answer, counted once."""
        arbiter = make_arbiter()
        arbiter.begin_invocation("A", 0.0)
        assert arbiter.poll("A", 0.0) and arbiter.poll("A", 0.0)
        assert arbiter.grants["A"] == 1
        arbiter.end_invocation("A", 0.0)

    def test_denied_this_invocation_names_the_holder(self):
        arbiter = make_arbiter()
        step(arbiter, "A")  # A now holds the lease
        arbiter.begin_invocation("B", 0.0)
        assert not arbiter.poll("B", 0.0)
        denied, denier = arbiter.denied_this_invocation()
        assert denied and denier == "A"
        arbiter.end_invocation("B", 0.0)


class TestLeaseQuantum:
    def test_holder_keeps_lease_for_quantum_then_releases(self):
        arbiter = make_arbiter(lease_quantum=2, tenants=("A", "B"))
        assert step(arbiter, "A")       # grant 1/2
        assert not step(arbiter, "B")   # denied, queued
        assert step(arbiter, "A")       # grant 2/2 -> release
        assert step(arbiter, "B")       # reserved waiter wins

    def test_release_reserves_for_waiter_against_the_old_holder(self):
        # A holds, B denied once; A's release reserves for B - then A
        # must NOT reacquire before B takes its reserved turn.
        arbiter = make_arbiter(lease_quantum=2, tenants=("A", "B"))
        step(arbiter, "A")
        step(arbiter, "B")              # denied -> waiter
        step(arbiter, "A")              # release, reserved for B
        assert not step(arbiter, "A")   # reservation blocks A
        assert step(arbiter, "B")

    def test_retire_frees_a_held_lease(self):
        arbiter = make_arbiter(lease_quantum=100, tenants=("A", "B"))
        step(arbiter, "A")
        assert not step(arbiter, "B")
        arbiter.retire("A", 0.0)
        assert step(arbiter, "B")

    def test_retire_clears_a_reservation(self):
        arbiter = make_arbiter(lease_quantum=2, tenants=("A", "B", "C"))
        step(arbiter, "A")
        step(arbiter, "B")              # waiter (arrival 0)
        step(arbiter, "C")              # waiter (arrival 1)
        step(arbiter, "A")              # release -> reserved for B
        arbiter.retire("B", 0.0)        # reservation passes to C
        assert not step(arbiter, "A")
        assert step(arbiter, "C")


class TestPolicies:
    def test_policy_constants(self):
        assert ARBITER_POLICIES == ("fifo", "priority")

    def test_fifo_serves_earliest_denial_first(self):
        arbiter = make_arbiter(policy="fifo", lease_quantum=2)
        step(arbiter, "A")
        step(arbiter, "C")              # first denial: C
        step(arbiter, "B")              # second denial: B
        step(arbiter, "A")              # release
        assert not step(arbiter, "B")
        assert step(arbiter, "C")

    def test_priority_prefers_higher_priority(self):
        arbiter = make_arbiter(
            policy="priority", lease_quantum=2,
            A={}, B={"priority": 1}, C={"priority": 5})
        step(arbiter, "A")
        step(arbiter, "B")
        step(arbiter, "C")
        step(arbiter, "A")              # release -> highest priority
        assert not step(arbiter, "B")
        assert step(arbiter, "C")

    def test_priority_earliest_deadline_beats_raw_priority(self):
        arbiter = make_arbiter(
            policy="priority", lease_quantum=2,
            A={}, B={"priority": 9}, C={"priority": 0, "deadline_s": 1.0})
        step(arbiter, "A")
        step(arbiter, "B")
        step(arbiter, "C")
        step(arbiter, "A")              # release -> deadline wins
        assert not step(arbiter, "B")
        assert step(arbiter, "C")

    def test_priority_falls_back_to_arrival_order(self):
        arbiter = make_arbiter(policy="priority", lease_quantum=2)
        step(arbiter, "A")
        step(arbiter, "C")              # equal priority, first denial
        step(arbiter, "B")
        step(arbiter, "A")              # release
        assert not step(arbiter, "B")
        assert step(arbiter, "C")


class TestLeaseEvents:
    def test_events_log_grants_denials_and_releases(self):
        arbiter = make_arbiter(lease_quantum=1, tenants=("A", "B"))
        step(arbiter, "A", t=1.0)
        actions = [(e.tenant, e.action) for e in arbiter.events]
        assert actions == [("A", "grant"), ("A", "release")]
        assert all(e.canonical() for e in arbiter.events)


class TestTenantSoCView:
    def test_gpu_busy_reads_true_while_leased_elsewhere(self, desktop):
        processor = IntegratedProcessor(desktop)
        arbiter = make_arbiter(tenants=("A", "B"))
        view_a = TenantSoCView(processor, arbiter, "A")
        view_b = TenantSoCView(processor, arbiter, "B")
        arbiter.begin_invocation("A", processor.now)
        assert not view_a.gpu_busy           # A acquires via the poll
        arbiter.end_invocation("A", processor.now)
        arbiter.begin_invocation("B", processor.now)
        assert view_b.gpu_busy               # lease held by A
        arbiter.end_invocation("B", processor.now)

    def test_physical_busy_wins_without_polling(self, desktop):
        processor = IntegratedProcessor(desktop)
        arbiter = make_arbiter(tenants=("A",))
        view = TenantSoCView(processor, arbiter, "A")
        processor.counters.account_gpu_busy(True, 0.0)
        # No begin_invocation: a poll would raise, so a True here
        # proves the physical flag short-circuits the arbiter.
        assert view.gpu_busy

    def test_everything_else_delegates(self, desktop):
        processor = IntegratedProcessor(desktop)
        view = TenantSoCView(processor, make_arbiter(tenants=("A",)), "A")
        assert view.now == processor.now
        assert view.spec is processor.spec
        assert view.msr is processor.msr


class TestParseTenantSpecs:
    def test_basic(self):
        specs = parse_tenant_specs("BS,CC")
        assert [s.name for s in specs] == ["BS-0", "CC-1"]
        assert [s.workload for s in specs] == ["BS", "CC"]
        assert all(s.priority == 0 and s.deadline_s is None for s in specs)

    def test_priority_and_deadline(self):
        [spec] = parse_tenant_specs("mm:3:1.5")
        assert spec.workload == "MM"
        assert spec.priority == 3
        assert spec.deadline_s == 1.5

    def test_duplicate_workloads_get_distinct_names(self):
        specs = parse_tenant_specs("BS,BS")
        assert [s.name for s in specs] == ["BS-0", "BS-1"]

    def test_rejects_empty(self):
        with pytest.raises(SchedulingError):
            parse_tenant_specs(" , ")

    def test_rejects_too_many_fields(self):
        with pytest.raises(SchedulingError):
            parse_tenant_specs("BS:1:2.0:nope")

    def test_rejects_non_numeric_fields(self):
        with pytest.raises(SchedulingError):
            parse_tenant_specs("BS:high")
