"""Kernel abstraction."""

import pytest

from repro.errors import RuntimeLayerError
from repro.runtime.kernel import Kernel
from repro.soc.cost_model import KernelCostModel


@pytest.fixture
def cost():
    return KernelCostModel(name="k", instructions_per_item=10.0,
                           loadstore_fraction=0.1, l3_miss_rate=0.0)


class TestKernel:
    def test_key_defaults_to_name(self, cost):
        kernel = Kernel(name="my-kernel", cost=cost)
        assert kernel.key == "my-kernel"

    def test_explicit_key(self, cost):
        kernel = Kernel(name="my-kernel", cost=cost, key="site-42")
        assert kernel.key == "site-42"

    def test_requires_name(self, cost):
        with pytest.raises(RuntimeLayerError):
            Kernel(name="", cost=cost)

    def test_execute_cpu_runs_body(self, cost):
        calls = []
        kernel = Kernel(name="k", cost=cost,
                        cpu_fn=lambda lo, hi: calls.append((lo, hi)))
        kernel.execute_cpu(3, 9)
        assert calls == [(3, 9)]

    def test_execute_cpu_without_body_raises(self, cost):
        with pytest.raises(RuntimeLayerError):
            Kernel(name="k", cost=cost).execute_cpu(0, 1)

    def test_gpu_falls_back_to_cpu_body(self, cost):
        calls = []
        kernel = Kernel(name="k", cost=cost,
                        cpu_fn=lambda lo, hi: calls.append("cpu"))
        kernel.execute_gpu(0, 1)
        assert calls == ["cpu"]

    def test_distinct_gpu_body_preferred(self, cost):
        calls = []
        kernel = Kernel(name="k", cost=cost,
                        cpu_fn=lambda lo, hi: calls.append("cpu"),
                        gpu_fn=lambda lo, hi: calls.append("gpu"))
        kernel.execute_gpu(0, 1)
        assert calls == ["gpu"]

    def test_has_real_body(self, cost):
        assert not Kernel(name="k", cost=cost).has_real_body
        assert Kernel(name="k", cost=cost,
                      cpu_fn=lambda lo, hi: None).has_real_body
