"""Platform specification validation and calibration sanity."""

import dataclasses

import pytest

from repro.errors import SpecError
from repro.soc.spec import (
    MemorySpec,
    baytrail_tablet,
    haswell_desktop,
)
from repro.units import ghz


class TestFactorySpecs:
    def test_desktop_matches_paper_hardware(self):
        spec = haswell_desktop()
        assert spec.cpu.num_cores == 4
        assert spec.cpu.smt_per_core == 2
        assert spec.gpu.num_eus == 20
        assert spec.gpu.threads_per_eu == 7
        assert spec.gpu.simd_width == 16
        # The paper: 2240-way parallelism, GPU_PROFILE_SIZE = 2048.
        assert spec.gpu.hardware_parallelism == 2240
        assert spec.gpu_profile_size == 2048

    def test_tablet_matches_paper_hardware(self):
        spec = baytrail_tablet()
        assert spec.cpu.num_cores == 4
        assert spec.cpu.smt_per_core == 1  # Silvermont has no SMT
        assert spec.gpu.num_eus == 4
        assert spec.gpu.hardware_parallelism == 448
        assert spec.cpu.base_freq_hz == pytest.approx(ghz(1.33))

    def test_desktop_frequency_ordering(self):
        cpu = haswell_desktop().cpu
        assert cpu.min_freq_hz < cpu.base_freq_hz < cpu.turbo_freq_hz

    def test_tablet_is_low_power(self):
        desktop, tablet = haswell_desktop(), baytrail_tablet()
        assert tablet.idle_power_w < desktop.idle_power_w / 10
        assert tablet.pcu.package_cap_w < desktop.pcu.package_cap_w / 10

    def test_energy_units_differ_by_platform(self):
        assert haswell_desktop().energy_unit_j != baytrail_tablet().energy_unit_j

    def test_stall_power_asymmetry(self):
        """Desktop OoO cores burn full power stalled; tablet in-order
        cores gate down - the paper's memory-vs-compute asymmetry."""
        assert haswell_desktop().cpu.memory_stall_power_factor > 0.9
        assert baytrail_tablet().cpu.memory_stall_power_factor < 0.3


class TestCpuSpec:
    def test_dynamic_power_scales_superlinearly(self):
        cpu = haswell_desktop().cpu
        p1 = cpu.dynamic_power_w(ghz(2.0), 4)
        p2 = cpu.dynamic_power_w(ghz(4.0), 4)
        assert p2 > 2.0 * p1

    def test_dynamic_power_linear_in_cores(self):
        cpu = haswell_desktop().cpu
        assert cpu.dynamic_power_w(ghz(3.0), 4) == pytest.approx(
            2.0 * cpu.dynamic_power_w(ghz(3.0), 2))

    def test_instruction_rate(self):
        cpu = haswell_desktop().cpu
        assert cpu.instruction_rate(ghz(1.0), 1) == pytest.approx(
            1e9 * cpu.effective_ipc)

    def test_rejects_zero_cores(self):
        cpu = haswell_desktop().cpu
        with pytest.raises(SpecError):
            dataclasses.replace(cpu, num_cores=0)

    def test_rejects_disordered_frequencies(self):
        cpu = haswell_desktop().cpu
        with pytest.raises(SpecError):
            dataclasses.replace(cpu, min_freq_hz=ghz(5.0))

    def test_rejects_bad_stall_factor(self):
        cpu = haswell_desktop().cpu
        with pytest.raises(SpecError):
            dataclasses.replace(cpu, memory_stall_power_factor=1.5)


class TestGpuSpec:
    def test_rejects_zero_eus(self):
        gpu = haswell_desktop().gpu
        with pytest.raises(SpecError):
            dataclasses.replace(gpu, num_eus=0)

    def test_rejects_min_above_turbo(self):
        gpu = haswell_desktop().gpu
        with pytest.raises(SpecError):
            dataclasses.replace(gpu, min_freq_hz=ghz(2.0))

    def test_instruction_rate_scales_with_occupancy(self):
        gpu = haswell_desktop().gpu
        full = gpu.instruction_rate(ghz(1.0), 1.0)
        half = gpu.instruction_rate(ghz(1.0), 0.5)
        assert half == pytest.approx(full / 2)


class TestMemorySpec:
    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(SpecError):
            MemorySpec(shared_bw_bytes_per_s=0.0,
                       traffic_power_w_per_bps=0.0, uncore_static_w=0.0)

    def test_rejects_contention_factor_of_one(self):
        with pytest.raises(SpecError):
            MemorySpec(shared_bw_bytes_per_s=1e9,
                       traffic_power_w_per_bps=0.0, uncore_static_w=0.0,
                       llc_contention_factor=1.0)

    def test_traffic_power_is_linear(self):
        mem = haswell_desktop().memory
        assert mem.traffic_power_w(2e9) == pytest.approx(
            2.0 * mem.traffic_power_w(1e9))


class TestPcuSpec:
    def test_rejects_nonpositive_sample_interval(self):
        pcu = haswell_desktop().pcu
        with pytest.raises(SpecError):
            dataclasses.replace(pcu, sample_interval_s=0.0)

    def test_cold_threshold_exceeds_release(self):
        for spec in (haswell_desktop(), baytrail_tablet()):
            assert spec.pcu.gpu_cold_threshold_s > spec.pcu.gpu_idle_release_s


class TestUltrabookSpec:
    """The third platform: black-box portability beyond the paper."""

    def test_sits_between_desktop_and_tablet(self):
        from repro.soc.spec import ultrabook_15w

        desktop, tablet, ultrabook = (haswell_desktop(), baytrail_tablet(),
                                      ultrabook_15w())
        assert (tablet.pcu.package_cap_w < ultrabook.pcu.package_cap_w
                < desktop.pcu.package_cap_w)
        assert (tablet.gpu.num_eus < ultrabook.gpu.num_eus
                < desktop.gpu.num_eus)
        assert ultrabook.gpu_profile_size == ultrabook.gpu.hardware_parallelism

    def test_characterizes_and_schedules(self):
        """The full black-box pipeline runs unmodified on the new SKU."""
        from repro.core.metrics import EDP
        from repro.core.scheduler import EnergyAwareScheduler
        from repro.core.validation import validate_characterization
        from repro.harness.experiment import run_application
        from repro.harness.suite import get_characterization
        from repro.soc.spec import ultrabook_15w
        from repro.workloads.registry import workload_by_abbrev

        spec = ultrabook_15w()
        characterization = get_characterization(spec, sweep_step=0.1)
        validate_characterization(characterization, spec=spec, strict=True)
        workload = workload_by_abbrev("MM")
        scheduler = EnergyAwareScheduler(characterization, EDP)
        run = run_application(spec, workload, scheduler, "EAS")
        assert run.energy_j > 0
        assert 0.0 <= run.final_alpha <= 1.0
