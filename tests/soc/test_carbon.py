"""The seeded carbon-intensity signal (docs/OBJECTIVES.md)."""

import math

import pytest

from repro.errors import HarnessError
from repro.soc.carbon import (
    J_PER_KWH,
    MIN_INTENSITY_GCO2_KWH,
    CarbonSpec,
    CarbonTrace,
)


class TestSpecValidation:
    def test_defaults_are_valid(self):
        spec = CarbonSpec()
        assert spec.period_s == 86400.0

    @pytest.mark.parametrize("kwargs", [
        {"base_gco2_kwh": 0.0},
        {"base_gco2_kwh": -10.0},
        {"base_gco2_kwh": float("nan")},
        {"amplitude_gco2_kwh": -1.0},
        {"period_s": 0.0},
        {"period_s": float("inf")},
        {"n_harmonics": 0},
        {"noise_gco2_kwh": -1.0},
        {"n_regions": 0},
    ])
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(HarnessError):
            CarbonSpec(**kwargs)

    def test_canonical_distinguishes_specs(self):
        canon = {CarbonSpec().canonical(),
                 CarbonSpec(seed=1).canonical(),
                 CarbonSpec(period_s=60.0).canonical(),
                 CarbonSpec(n_regions=2).canonical()}
        assert len(canon) == 4


class TestTraceDeterminism:
    def test_same_spec_same_signal(self):
        a, b = CarbonSpec().trace(), CarbonSpec().trace()
        for t in (0.0, 1234.5, 43210.0, 86399.0):
            for region in range(4):
                assert a.intensity(t, region) == b.intensity(t, region)

    def test_evaluation_is_order_independent(self):
        """A pure function of (t, region): querying out of order or
        repeatedly never changes an answer."""
        trace = CarbonSpec(period_s=120.0).trace()
        forward = [trace.intensity(t / 7.0) for t in range(50)]
        backward = [trace.intensity(t / 7.0) for t in reversed(range(50))]
        assert forward == backward[::-1]

    def test_different_seeds_differ(self):
        a = CarbonSpec(seed=1).trace()
        b = CarbonSpec(seed=2).trace()
        assert any(a.intensity(t) != b.intensity(t)
                   for t in (100.0, 5000.0, 40000.0))


class TestSignalShape:
    def test_floor_holds_even_for_huge_swings(self):
        trace = CarbonSpec(base_gco2_kwh=10.0, amplitude_gco2_kwh=500.0,
                           noise_gco2_kwh=100.0).trace()
        lowest = min(trace.intensity(86400.0 * i / 999) for i in range(1000))
        assert lowest >= MIN_INTENSITY_GCO2_KWH

    def test_signal_actually_varies_over_a_period(self):
        trace = CarbonSpec(period_s=60.0).trace()
        values = [trace.intensity(60.0 * i / 99) for i in range(100)]
        assert max(values) - min(values) > 10.0

    def test_regions_are_staggered(self):
        trace = CarbonSpec(period_s=60.0, noise_gco2_kwh=0.0).trace()
        assert any(abs(trace.intensity(t, 0) - trace.intensity(t, 2)) > 1.0
                   for t in (0.0, 15.0, 30.0, 45.0))

    def test_region_index_wraps(self):
        trace = CarbonSpec(n_regions=4).trace()
        assert trace.intensity(100.0, 1) == trace.intensity(100.0, 5)


class TestGramsAndMedian:
    def test_grams_is_intensity_times_energy(self):
        trace = CarbonSpec().trace()
        t, energy = 1000.0, 5000.0
        expected = trace.intensity(t) * energy / J_PER_KWH
        assert trace.grams(energy, t) == pytest.approx(expected)

    def test_zero_energy_zero_grams(self):
        assert CarbonSpec().trace().grams(0.0, 123.0) == 0.0

    def test_median_is_between_extremes(self):
        trace = CarbonSpec(period_s=60.0).trace()
        values = [trace.intensity(60.0 * i / 256) for i in range(257)]
        median = trace.median_intensity(60.0)
        assert min(values) <= median <= max(values)
        assert math.isfinite(median)

    def test_median_rejects_bad_args(self):
        trace = CarbonSpec().trace()
        with pytest.raises(HarnessError):
            trace.median_intensity(0.0)
        with pytest.raises(HarnessError):
            trace.median_intensity(60.0, samples=1)

    def test_direct_construction_matches_factory(self):
        spec = CarbonSpec(seed=7)
        assert CarbonTrace(spec).intensity(50.0) == \
            spec.trace().intensity(50.0)
