"""Performance counters: accumulation, snapshots, deltas."""

import pytest

from repro.errors import CounterError
from repro.soc.counters import PerfCounters
from repro.soc.cost_model import KernelCostModel


@pytest.fixture
def cost():
    return KernelCostModel(name="k", instructions_per_item=100.0,
                           loadstore_fraction=0.3, l3_miss_rate=0.5)


class TestAccumulation:
    def test_cpu_items_drive_all_cpu_counters(self, cost):
        counters = PerfCounters()
        counters.account_cpu_items(10.0, cost)
        assert counters.instructions_retired == pytest.approx(1000.0)
        assert counters.loadstore_instructions == pytest.approx(300.0)
        assert counters.l3_misses == pytest.approx(150.0)
        assert counters.cpu_items == 10.0

    def test_gpu_items_do_not_touch_cpu_counters(self, cost):
        counters = PerfCounters()
        counters.account_gpu_items(50.0)
        assert counters.instructions_retired == 0.0
        assert counters.gpu_items == 50.0

    def test_rejects_negative_items(self, cost):
        counters = PerfCounters()
        with pytest.raises(CounterError):
            counters.account_cpu_items(-1.0, cost)
        with pytest.raises(CounterError):
            counters.account_gpu_items(-1.0)

    def test_gpu_busy_flag_and_time(self):
        counters = PerfCounters()
        assert not counters.gpu_busy
        counters.account_gpu_busy(True, 0.5)
        assert counters.gpu_busy
        assert counters.gpu_busy_time_s == 0.5
        counters.account_gpu_busy(False, 0.0)
        assert not counters.gpu_busy
        assert counters.gpu_busy_time_s == 0.5


class TestSnapshots:
    def test_delta_between_snapshots(self, cost):
        counters = PerfCounters()
        counters.account_cpu_items(10.0, cost)
        before = counters.snapshot(1.0)
        counters.account_cpu_items(5.0, cost)
        counters.account_gpu_items(7.0)
        after = counters.snapshot(2.5)
        delta = before.delta(after)
        assert delta.elapsed_s == pytest.approx(1.5)
        assert delta.cpu_items == pytest.approx(5.0)
        assert delta.gpu_items == pytest.approx(7.0)
        assert delta.instructions_retired == pytest.approx(500.0)

    def test_delta_rejects_reversed_order(self, cost):
        counters = PerfCounters()
        early = counters.snapshot(1.0)
        late = counters.snapshot(2.0)
        with pytest.raises(CounterError):
            late.delta(early)

    def test_miss_ratio_statistic(self, cost):
        counters = PerfCounters()
        before = counters.snapshot(0.0)
        counters.account_cpu_items(100.0, cost)
        delta = before.delta(counters.snapshot(1.0))
        assert delta.miss_to_loadstore_ratio == pytest.approx(0.5)

    def test_miss_ratio_zero_when_no_loadstores(self):
        counters = PerfCounters()
        delta = counters.snapshot(0.0).delta(counters.snapshot(1.0))
        assert delta.miss_to_loadstore_ratio == 0.0
