"""Differential sweep: fast and bounded modes vs the exact reference.

Every case in the grid - Table-1 workload x platform x fault level
{0.0, 0.3} x tenancy {solo, 2-tenant} - runs under all three clock
modes.  The candidates are held to the tolerance contract
(:func:`repro.harness.diff.compare_outcomes`): every observable within
``tol * max(1, |exact|)``, and the ordered DecisionRecord exit-path
sequence *identical* - an accelerated mode may wobble numerics inside
its budget but must never flip a scheduling decision.  Exact-mode
fingerprints of the solo clean cells are additionally checked against
the committed goldens, tying this sweep to the regression lock.

The default run sweeps a reduced grid (3 desktop + 2 tablet workloads,
all fault/tenancy combinations) so the tier-1 suite stays fast; set
``REPRO_DIFF_FULL=1`` for the full Table-1 breadth (CI's scheduled job
and pre-release checks do).
"""

import json
import os
from typing import Dict

import pytest

from repro.harness.diff import (
    CaseOutcome,
    DiffCase,
    compare_outcomes,
    grid_cases,
    mode_tolerance,
    run_case,
)

FULL = os.environ.get("REPRO_DIFF_FULL", "") == "1"

#: Reduced default breadth: a regular memory-bound workload (MB), an
#: irregular one (BS), and on the desktop the many-launch CC whose
#: perpetual PCU ramp is the known worst case for accelerated modes.
_REDUCED = {"desktop": ("MB", "CC", "BS"), "tablet": ("MB", "BS")}

CASES = grid_cases(workloads=None if FULL else _REDUCED)

GOLDENS_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                            "goldens", "exact_mode.json")

#: Exact reference outcomes, computed once per case per test session
#: (each case's reference serves both candidate modes and the golden
#: check).
_references: Dict[DiffCase, CaseOutcome] = {}


def _reference(case: DiffCase) -> CaseOutcome:
    outcome = _references.get(case)
    if outcome is None:
        outcome = run_case(case, "exact")
        _references[case] = outcome
    return outcome


def _ids(case: DiffCase) -> str:
    return case.label


@pytest.mark.parametrize("mode", ["fast", "bounded"])
@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_mode_within_contract(case, mode):
    report = compare_outcomes(_reference(case), run_case(case, mode),
                              mode_tolerance(case, mode))
    assert report.ok, report.describe()


@pytest.mark.parametrize(
    "case",
    [c for c in CASES if c.tenants == 1 and c.fault_level == 0.0],
    ids=_ids)
def test_exact_fingerprint_agrees_with_goldens(case):
    """The sweep's own exact reference must be the recorded golden -
    otherwise the candidates are being compared against drifted
    semantics and the whole sweep is vacuous."""
    with open(GOLDENS_PATH) as fh:
        recorded = json.load(fh)["fingerprints"]
    entry = f"suite-eas/{case.platform}/{case.workload}"
    assert _reference(case).fingerprint == recorded[entry], (
        f"exact reference for {case.label} does not match the committed "
        f"golden {entry}; see tests/soc/test_golden_regression.py")


def test_grid_covers_fault_and_tenancy_axes():
    """The sweep above really exercises both fault levels and both
    tenancy arrangements on both platforms."""
    seen = {(c.platform, c.fault_level, c.tenants) for c in CASES}
    for platform in ("desktop", "tablet"):
        for fault in (0.0, 0.3):
            for tenants in (1, 2):
                assert (platform, fault, tenants) in seen
