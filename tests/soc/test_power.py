"""Component power model."""

import pytest

from repro.soc.device import DeviceRates
from repro.soc.power import idle_power, package_power
from repro.units import ghz


def rates(cpu_stall=0.0, gpu_stall=0.0, traffic=0.0):
    return DeviceRates(
        cpu_items_per_s=1e6, gpu_items_per_s=1e6,
        cpu_memory_stall_fraction=cpu_stall,
        gpu_memory_stall_fraction=gpu_stall,
        cpu_traffic_bytes_per_s=traffic / 2,
        gpu_traffic_bytes_per_s=traffic / 2)


class TestIdle:
    def test_idle_power_components(self, desktop):
        breakdown = idle_power(desktop)
        assert breakdown.cpu_w == 0.0
        assert breakdown.gpu_w == 0.0
        assert breakdown.package_w == pytest.approx(
            desktop.idle_power_w + desktop.memory.uncore_static_w)


class TestComponents:
    def test_inactive_devices_draw_nothing(self, desktop):
        breakdown = package_power(desktop, rates(), ghz(3.9), ghz(1.2),
                                  cpu_active_cores=0, gpu_active=False)
        assert breakdown.cpu_w == 0.0
        assert breakdown.gpu_w == 0.0

    def test_cpu_power_scales_with_cores(self, desktop):
        one = package_power(desktop, rates(), ghz(3.0), ghz(1.2),
                            cpu_active_cores=1, gpu_active=False)
        four = package_power(desktop, rates(), ghz(3.0), ghz(1.2),
                             cpu_active_cores=4, gpu_active=False)
        assert four.cpu_w == pytest.approx(4.0 * one.cpu_w)

    def test_frequency_superlinearity(self, desktop):
        lo = package_power(desktop, rates(), ghz(2.0), ghz(1.2), 4, False)
        hi = package_power(desktop, rates(), ghz(4.0), ghz(1.2), 4, False)
        # Leakage is linear, dynamic is f^2.2: more than 2x overall.
        assert hi.cpu_w > 2.0 * lo.cpu_w

    def test_traffic_adds_uncore_power(self, desktop):
        quiet = package_power(desktop, rates(traffic=0.0), ghz(3.0),
                              ghz(1.2), 4, True)
        busy = package_power(desktop, rates(traffic=20e9), ghz(3.0),
                             ghz(1.2), 4, True)
        assert busy.uncore_w > quiet.uncore_w
        assert busy.uncore_w - quiet.uncore_w == pytest.approx(
            desktop.memory.traffic_power_w(20e9))

    def test_package_is_sum_of_components(self, desktop):
        b = package_power(desktop, rates(traffic=5e9), ghz(3.0), ghz(1.0),
                          3, True)
        assert b.package_w == pytest.approx(
            b.cpu_w + b.gpu_w + b.uncore_w + b.idle_w)


class TestStallScaling:
    def test_desktop_stalled_cores_barely_gate(self, desktop):
        """Haswell-class: stall factor 1.0 -> no dynamic savings."""
        running = package_power(desktop, rates(cpu_stall=0.0), ghz(3.9),
                                ghz(1.2), 4, False)
        stalled = package_power(desktop, rates(cpu_stall=1.0), ghz(3.9),
                                ghz(1.2), 4, False)
        assert stalled.cpu_w == pytest.approx(running.cpu_w)

    def test_tablet_stalled_cores_gate_hard(self, tablet):
        """Silvermont-class: memory-bound draws much less power."""
        running = package_power(tablet, rates(cpu_stall=0.0),
                                tablet.cpu.turbo_freq_hz,
                                tablet.gpu.turbo_freq_hz, 4, False)
        stalled = package_power(tablet, rates(cpu_stall=1.0),
                                tablet.cpu.turbo_freq_hz,
                                tablet.gpu.turbo_freq_hz, 4, False)
        assert stalled.cpu_w < 0.5 * running.cpu_w

    def test_gpu_stall_scaling(self, desktop):
        running = package_power(desktop, rates(gpu_stall=0.0), ghz(1.0),
                                ghz(1.2), 0, True)
        stalled = package_power(desktop, rates(gpu_stall=1.0), ghz(1.0),
                                ghz(1.2), 0, True)
        assert stalled.gpu_w < running.gpu_w
        assert stalled.gpu_w > 0.0
