"""Device throughput model: roofline, contention, occupancy."""

import dataclasses

import pytest

from repro.soc.cost_model import KernelCostModel
from repro.soc.device import compute_rates, gpu_occupancy
from repro.soc.spec import haswell_desktop


@pytest.fixture
def spec():
    return haswell_desktop()


def compute_kernel(**kw):
    base = dict(name="c", instructions_per_item=1000.0,
                loadstore_fraction=0.2, l3_miss_rate=0.0)
    base.update(kw)
    return KernelCostModel(**base)


def memory_kernel(**kw):
    base = dict(name="m", instructions_per_item=200.0,
                loadstore_fraction=0.4, l3_miss_rate=0.6)
    base.update(kw)
    return KernelCostModel(**base)


class TestOccupancy:
    def test_zero_items(self, spec):
        assert gpu_occupancy(spec, 0.0) == 0.0

    def test_saturates_at_hardware_parallelism(self, spec):
        hw = spec.gpu.hardware_parallelism
        assert gpu_occupancy(spec, hw) == 1.0
        assert gpu_occupancy(spec, 10 * hw) == 1.0

    def test_linear_below_parallelism(self, spec):
        hw = spec.gpu.hardware_parallelism
        assert gpu_occupancy(spec, hw / 2) == pytest.approx(0.5)


class TestComputeBound:
    def test_cpu_rate_scales_with_frequency(self, spec):
        k = compute_kernel()
        r1 = compute_rates(spec, k, 2e9, 1e9, 4, 1e6, True, False)
        r2 = compute_rates(spec, k, 4e9, 1e9, 4, 1e6, True, False)
        assert r2.cpu_items_per_s == pytest.approx(2 * r1.cpu_items_per_s)

    def test_no_memory_stall_for_pure_compute(self, spec):
        k = compute_kernel()
        r = compute_rates(spec, k, 3e9, 1e9, 4, 1e6, True, True)
        assert r.cpu_memory_stall_fraction == 0.0
        assert r.gpu_memory_stall_fraction == 0.0
        assert r.total_traffic_bytes_per_s == 0.0

    def test_divergence_slows_gpu(self, spec):
        fast = compute_kernel()
        slow = compute_kernel(gpu_divergence=0.5)
        rf = compute_rates(spec, fast, 3e9, 1e9, 4, 1e6, True, True)
        rs = compute_rates(spec, slow, 3e9, 1e9, 4, 1e6, True, True)
        assert rs.gpu_items_per_s == pytest.approx(rf.gpu_items_per_s / 2)

    def test_inactive_devices_have_zero_rate(self, spec):
        k = compute_kernel()
        r = compute_rates(spec, k, 3e9, 1e9, 4, 1e6, False, False)
        assert r.cpu_items_per_s == 0.0
        assert r.gpu_items_per_s == 0.0


class TestMemoryBound:
    def test_cpu_is_bandwidth_limited(self, spec):
        k = memory_kernel()
        r = compute_rates(spec, k, spec.cpu.turbo_freq_hz, 1e9, 4, 0, True, False)
        expected = spec.cpu.mem_bw_bytes_per_s / k.dram_bytes_per_item
        assert r.cpu_items_per_s == pytest.approx(expected, rel=1e-6)
        assert r.cpu_memory_stall_fraction > 0.9

    def test_contention_shares_bandwidth(self, spec):
        k = memory_kernel()
        solo = compute_rates(spec, k, spec.cpu.turbo_freq_hz,
                             spec.gpu.turbo_freq_hz, 4, 0, True, False)
        both = compute_rates(spec, k, spec.cpu.turbo_freq_hz,
                             spec.gpu.turbo_freq_hz, 4, 1e6, True, True)
        assert both.cpu_items_per_s < solo.cpu_items_per_s
        # Shared bandwidth is respected.
        assert both.total_traffic_bytes_per_s <= (
            spec.memory.shared_bw_bytes_per_s * 1.0001)

    def test_gpu_traffic_factor_raises_gpu_rate(self, spec):
        plain = memory_kernel()
        coalesced = memory_kernel(gpu_traffic_factor=0.5)
        rp = compute_rates(spec, plain, 1e9, spec.gpu.turbo_freq_hz,
                           0, 1e6, False, True)
        rc = compute_rates(spec, coalesced, 1e9, spec.gpu.turbo_freq_hz,
                           0, 1e6, False, True)
        assert rc.gpu_items_per_s > rp.gpu_items_per_s

    def test_llc_contention_degrades_cpu(self, spec):
        """A streaming GPU slows the co-executing CPU beyond raw
        bandwidth sharing."""
        no_contention = dataclasses.replace(
            spec, memory=dataclasses.replace(spec.memory,
                                             llc_contention_factor=0.0))
        # Use a kernel light enough that raw bandwidth does not bind.
        k = memory_kernel(instructions_per_item=2000.0,
                          cpu_simd_efficiency=0.02, gpu_simd_efficiency=0.02)
        with_k = compute_rates(spec, k, 3e9, 1e9, 3, 1e6, True, True)
        without_k = compute_rates(no_contention, k, 3e9, 1e9, 3, 1e6,
                                  True, True)
        assert with_k.cpu_items_per_s < without_k.cpu_items_per_s

    def test_occupancy_limits_gpu_rate(self, spec):
        k = memory_kernel(l3_miss_rate=0.05)
        small = compute_rates(spec, k, 1e9, spec.gpu.turbo_freq_hz,
                              0, 100, False, True)
        large = compute_rates(spec, k, 1e9, spec.gpu.turbo_freq_hz,
                              0, 1e6, False, True)
        assert small.gpu_items_per_s < large.gpu_items_per_s
