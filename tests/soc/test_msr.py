"""Energy MSR emulation: quantization and 32-bit wraparound."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.soc.msr import EnergyMsr

UNIT = 1.0 / (1 << 14)  # Haswell-class energy unit


class TestBasics:
    def test_starts_at_zero(self):
        assert EnergyMsr(UNIT).read() == 0

    def test_deposit_accumulates_in_units(self):
        msr = EnergyMsr(UNIT)
        msr.deposit(1.0)
        assert msr.read() == int(1.0 / UNIT)

    def test_sub_unit_deposits_eventually_visible(self):
        msr = EnergyMsr(UNIT)
        for _ in range(20):
            msr.deposit(UNIT / 10)
        assert msr.read() == 2

    def test_rejects_negative_deposit(self):
        with pytest.raises(SimulationError):
            EnergyMsr(UNIT).deposit(-1.0)

    def test_rejects_nonpositive_unit(self):
        with pytest.raises(SimulationError):
            EnergyMsr(0.0)

    def test_joules_between_roundtrip(self):
        msr = EnergyMsr(UNIT)
        before = msr.read()
        msr.deposit(123.456)
        after = msr.read()
        assert msr.joules_between(before, after) == pytest.approx(
            123.456, abs=2 * UNIT)


class TestWraparound:
    def test_register_wraps_at_32_bits(self):
        msr = EnergyMsr(UNIT)
        # 2^32 units of energy plus a bit.
        msr.deposit((2 ** 32 + 100) * UNIT)
        assert msr.read() == 100

    def test_delta_handles_single_wrap(self):
        assert EnergyMsr.delta_units(2 ** 32 - 10, 5) == 15

    def test_delta_no_wrap(self):
        assert EnergyMsr.delta_units(100, 250) == 150

    def test_joules_between_across_wrap(self):
        msr = EnergyMsr(UNIT)
        msr.deposit((2 ** 32 - 5) * UNIT)
        before = msr.read()
        msr.deposit(20 * UNIT)
        after = msr.read()
        assert msr.joules_between(before, after) == pytest.approx(
            20 * UNIT, abs=UNIT)

    @given(start=st.integers(0, 2 ** 32 - 1), delta=st.integers(0, 2 ** 31))
    @settings(max_examples=100, deadline=None)
    def test_delta_property(self, start, delta):
        after = (start + delta) & (2 ** 32 - 1)
        assert EnergyMsr.delta_units(start, after) == delta


class TestMultiWrapHazard:
    """The documented limit of the read/subtract protocol: a window in
    which the register wraps more than once silently under-reports by a
    whole multiple of 2**32 units, exactly as on real RAPL hardware."""

    def test_double_wrap_silently_underreports(self):
        msr = EnergyMsr(UNIT)
        before = msr.read()
        true_units = 2 ** 33 + 500  # two full wraps plus change
        msr.deposit(true_units * UNIT)
        after = msr.read()
        measured = EnergyMsr.delta_units(before, after)
        assert measured == 500  # aliased: both wraps are invisible
        assert measured == true_units - 2 * 2 ** 32

    def test_max_window_joules_is_the_aliasing_bound(self):
        msr = EnergyMsr(UNIT)
        assert msr.max_window_joules() == pytest.approx((2 ** 32) * UNIT)
        # Just below the bound: the delta survives the wraparound math.
        below = 2 ** 32 - 1
        msr_ok = EnergyMsr(UNIT)
        b = msr_ok.read()
        msr_ok.deposit(below * UNIT)
        assert msr_ok.joules_between(b, msr_ok.read()) == pytest.approx(
            below * UNIT, abs=2 * UNIT)
        # At the bound: a full-wrap window aliases to zero.
        msr_bad = EnergyMsr(UNIT)
        b = msr_bad.read()
        msr_bad.deposit((2 ** 32) * UNIT)
        assert msr_bad.joules_between(b, msr_bad.read()) == pytest.approx(0.0)

    def test_max_window_scales_with_energy_unit(self):
        assert EnergyMsr(2 * UNIT).max_window_joules() == pytest.approx(
            2 * EnergyMsr(UNIT).max_window_joules())


class TestLifetime:
    def test_lifetime_joules_not_wrapped(self):
        msr = EnergyMsr(UNIT)
        big = (2 ** 32 + 1000) * UNIT
        msr.deposit(big)
        assert msr.lifetime_joules == pytest.approx(big)
