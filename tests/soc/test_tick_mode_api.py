"""Explicit tick-mode plumbing and the deprecated process-global shim."""

import warnings

import pytest

import repro._compat
from repro.errors import SpecError
from repro.soc.spec import (
    TICK_MODES,
    baytrail_tablet,
    default_tick_mode,
    haswell_desktop,
    set_default_tick_mode,
    use_tick_mode,
)


def _reset(*keys: str) -> None:
    for key in keys:
        repro._compat._warned_once.discard(key)


class TestExplicitParameter:
    def test_factories_take_tick_mode(self):
        for factory in (haswell_desktop, baytrail_tablet):
            assert factory().tick_mode == "exact"
            assert factory(tick_mode="fast").tick_mode == "fast"
            assert factory(tick_mode=None).tick_mode == "exact"

    def test_with_tick_mode(self):
        spec = haswell_desktop()
        fast = spec.with_tick_mode("fast")
        assert fast.tick_mode == "fast"
        assert spec.tick_mode == "exact"  # original untouched
        assert fast.name == spec.name
        assert spec.with_tick_mode("exact") is spec  # no-op shortcut

    def test_invalid_mode_rejected(self):
        with pytest.raises(SpecError):
            haswell_desktop(tick_mode="warp")
        with pytest.raises(SpecError):
            haswell_desktop().with_tick_mode("warp")

    def test_modes_inventory(self):
        assert TICK_MODES == ("exact", "fast", "bounded")

    def test_bounded_tol_validated(self):
        spec = haswell_desktop(tick_mode="bounded")
        assert spec.bounded_tol == pytest.approx(1e-6)
        import dataclasses

        with pytest.raises(SpecError):
            dataclasses.replace(spec, bounded_tol=0.0)
        with pytest.raises(SpecError):
            dataclasses.replace(spec, bounded_tol=-1e-9)


class TestNoCrossTestLeakage:
    """Building a spec never mutates process state: two tests that
    pick different modes cannot contaminate each other."""

    def test_fast_spec_leaves_default_alone(self):
        spec = haswell_desktop(tick_mode="fast")
        assert spec.tick_mode == "fast"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert default_tick_mode() == "exact"
        assert haswell_desktop().tick_mode == "exact"

    def test_sibling_specs_independent(self):
        fast = haswell_desktop(tick_mode="fast")
        exact = haswell_desktop(tick_mode="exact")
        assert (fast.tick_mode, exact.tick_mode) == ("fast", "exact")


class TestDeprecatedShims:
    def test_use_tick_mode_still_works_and_warns_once(self):
        _reset("soc.use_tick_mode")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with use_tick_mode("fast"):
                assert haswell_desktop().tick_mode == "fast"
            with use_tick_mode("fast"):
                pass
        assert haswell_desktop().tick_mode == "exact"  # restored
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "tick_mode" in str(deprecations[0].message)

    def test_set_default_tick_mode_warns_once(self):
        _reset("soc.set_default_tick_mode")
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                set_default_tick_mode("fast")
                set_default_tick_mode("exact")
            deprecations = [w for w in caught
                            if issubclass(w.category, DeprecationWarning)]
            assert len(deprecations) == 1
        finally:
            from repro.soc.spec import _set_default_tick_mode

            _set_default_tick_mode("exact")

    def test_default_tick_mode_query_warns_once(self):
        _reset("soc.default_tick_mode")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert default_tick_mode() in TICK_MODES
            default_tick_mode()
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1

    def test_explicit_argument_beats_global_default(self):
        _reset("soc.use_tick_mode")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with use_tick_mode("fast"):
                # Explicit always wins over the deprecated global.
                assert haswell_desktop(
                    tick_mode="exact").tick_mode == "exact"
