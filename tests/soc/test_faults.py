"""Fault-injection substrate: determinism and per-class behaviour."""

import pytest

from repro.errors import GpuFaultError, SimulationError
from repro.soc.cost_model import KernelCostModel
from repro.soc.faults import FaultConfig, FaultySoC
from repro.soc.simulator import IntegratedProcessor, PhaseRequest
from repro.soc.work import CostProfile, WorkRegion


@pytest.fixture
def cost():
    return KernelCostModel(name="faulty-test", instructions_per_item=500.0,
                           loadstore_fraction=0.2, l3_miss_rate=0.1)


def make_faulty(desktop, **config):
    inner = IntegratedProcessor(desktop)
    return FaultySoC(inner, FaultConfig(**config))


def gpu_request(cost, n=50_000.0):
    profile = CostProfile(cost)
    return PhaseRequest(cost=cost, cpu_region=None,
                        gpu_region=WorkRegion.for_span(profile, n, 0.0, n))


def cpu_request(cost, n=50_000.0):
    profile = CostProfile(cost)
    return PhaseRequest(cost=cost, gpu_region=None,
                        cpu_region=WorkRegion.for_span(profile, n, 0.0, n))


class TestFaultConfig:
    def test_rejects_probability_outside_unit_interval(self):
        with pytest.raises(SimulationError):
            FaultConfig(msr_glitch_prob=1.5)
        with pytest.raises(SimulationError):
            FaultConfig(gpu_hang_prob=-0.1)

    def test_rejects_negative_noise_sigma(self):
        with pytest.raises(SimulationError):
            FaultConfig(counter_noise_sigma=-0.5)

    def test_rejects_negative_hang_cost(self):
        with pytest.raises(SimulationError):
            FaultConfig(hang_cost_s=-1.0)

    def test_from_level_bounds(self):
        with pytest.raises(SimulationError):
            FaultConfig.from_level(1.5)
        cfg = FaultConfig.from_level(1.0, seed=7)
        assert cfg.seed == 7
        assert 0.0 < cfg.gpu_launch_failure_prob <= 1.0

    def test_from_level_zero_is_fault_free(self):
        cfg = FaultConfig.from_level(0.0)
        for name in ("msr_glitch_prob", "msr_extra_wrap_prob",
                     "counter_dropout_prob", "counter_noise_prob",
                     "gpu_launch_failure_prob", "gpu_hang_prob",
                     "gpu_zero_progress_prob", "gpu_busy_flap_prob"):
            assert getattr(cfg, name) == 0.0


class TestDeterminism:
    def test_same_seed_same_fault_stream(self, desktop, cost):
        def run(seed):
            faulty = make_faulty(desktop, seed=seed,
                                 gpu_launch_failure_prob=0.3,
                                 msr_glitch_prob=0.3,
                                 counter_noise_prob=0.3)
            reads, outcomes = [], []
            for _ in range(30):
                reads.append(faulty.read_energy_msr())
                try:
                    result = faulty.run_phase(gpu_request(cost, 10_000.0))
                    outcomes.append(round(result.counters.instructions_retired))
                except GpuFaultError:
                    outcomes.append(-1)
            return reads, outcomes, [e.kind for e in faulty.fault_log.events]

        assert run(42) == run(42)

    def test_different_seeds_differ(self, desktop, cost):
        def kinds(seed):
            faulty = make_faulty(desktop, seed=seed,
                                 gpu_launch_failure_prob=0.4)
            for _ in range(20):
                try:
                    faulty.run_phase(gpu_request(cost, 10_000.0))
                except GpuFaultError:
                    pass
            return [e.t for e in faulty.fault_log.events]

        assert kinds(1) != kinds(2)

    def test_fault_free_config_draws_nothing(self, desktop, cost):
        """probability 0 must not consume RNG draws, so enabling one
        class never perturbs another class's stream."""
        faulty = make_faulty(desktop)
        clean = IntegratedProcessor(desktop)
        assert faulty.read_energy_msr() == clean.read_energy_msr()
        fr = faulty.run_phase(gpu_request(cost))
        cr = clean.run_phase(gpu_request(cost))
        assert fr.gpu_items == cr.gpu_items
        assert faulty.fault_log.count() == 0


class TestMsrFaults:
    def test_glitch_corrupts_single_read(self, desktop):
        faulty = make_faulty(desktop, seed=3, msr_glitch_prob=1.0)
        glitched = faulty.read_energy_msr()
        assert glitched != faulty.inner.read_energy_msr() or glitched != 0
        assert faulty.fault_log.count("msr-glitch") == 1

    def test_extra_wrap_shifts_register_persistently(self, desktop):
        faulty = make_faulty(desktop, seed=3, msr_extra_wrap_prob=1.0)
        first = faulty.read_energy_msr()
        # The 2**32 part of the jump vanishes in the 32-bit mask; the
        # "plus change" residue persists on every later read.
        assert first != 0
        assert faulty.fault_log.count("msr-extra-wrap") >= 1


class TestCounterFaults:
    def test_dropout_zeroes_activity_fields(self, desktop, cost):
        faulty = make_faulty(desktop, seed=5, counter_dropout_prob=1.0)
        result = faulty.run_phase(cpu_request(cost))
        assert result.counters.instructions_retired == 0.0
        assert result.counters.loadstore_instructions == 0.0
        assert result.counters.l3_misses == 0.0
        # Physical work still happened - only the observation dropped.
        assert result.cpu_items == pytest.approx(50_000.0, rel=1e-6)

    def test_noise_perturbs_but_preserves_sign(self, desktop, cost):
        faulty = make_faulty(desktop, seed=5, counter_noise_prob=1.0)
        clean = IntegratedProcessor(desktop).run_phase(cpu_request(cost))
        noisy = faulty.run_phase(cpu_request(cost))
        assert noisy.counters.instructions_retired > 0.0
        assert noisy.counters.instructions_retired != pytest.approx(
            clean.counters.instructions_retired, rel=1e-9)


class TestGpuFaults:
    def test_launch_failure_raises_and_costs_overhead(self, desktop, cost):
        faulty = make_faulty(desktop, seed=9, gpu_launch_failure_prob=1.0)
        t0 = faulty.now
        with pytest.raises(GpuFaultError):
            faulty.run_phase(gpu_request(cost))
        assert faulty.now - t0 >= desktop.gpu.kernel_launch_overhead_s

    def test_hang_burns_watchdog_time(self, desktop, cost):
        faulty = make_faulty(desktop, seed=9, gpu_hang_prob=1.0,
                             hang_cost_s=0.004)
        t0 = faulty.now
        with pytest.raises(GpuFaultError):
            faulty.run_phase(gpu_request(cost))
        assert faulty.now - t0 >= 0.004

    def test_zero_progress_lies_but_work_happened(self, desktop, cost):
        faulty = make_faulty(desktop, seed=9, gpu_zero_progress_prob=1.0)
        result = faulty.run_phase(gpu_request(cost, 20_000.0))
        assert result.gpu_items == 0.0  # the observation lies...
        counters = faulty.inner.snapshot_counters()
        assert counters.gpu_items == pytest.approx(20_000.0, rel=1e-6)

    def test_cpu_only_phase_never_trips_gpu_faults(self, desktop, cost):
        faulty = make_faulty(desktop, seed=9, gpu_launch_failure_prob=1.0,
                             gpu_hang_prob=1.0)
        result = faulty.run_phase(cpu_request(cost))
        assert result.cpu_items == pytest.approx(50_000.0, rel=1e-6)
        assert faulty.fault_log.count() == 0


class TestGpuBusyFlap:
    def test_flap_reads_busy_once(self, desktop):
        faulty = make_faulty(desktop, seed=11, gpu_busy_flap_prob=1.0)
        assert faulty.gpu_busy is True
        assert faulty.inner.gpu_busy is False
        assert faulty.fault_log.count("gpu-busy-flap") == 1


class TestFaultLog:
    def test_kinds_and_count(self, desktop):
        faulty = make_faulty(desktop, seed=13, msr_glitch_prob=1.0)
        faulty.read_energy_msr()
        faulty.read_energy_msr()
        assert faulty.fault_log.count() == 2
        assert faulty.fault_log.kinds() == {"msr-glitch": 2}
        assert faulty.fault_log.count("gpu-hang") == 0
