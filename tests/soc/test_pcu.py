"""PCU firmware model: targets, ramping, throttling, hysteresis."""

import pytest

from repro.soc.pcu import Pcu
from repro.soc.spec import haswell_desktop
from repro.units import ms


@pytest.fixture
def pcu():
    return Pcu(haswell_desktop())


def run_steps(pcu, n, dt, cpu_active, gpu_active, power=20.0, start=0.0):
    now = start
    freqs = []
    for _ in range(n):
        freqs.append(pcu.step(now, dt, cpu_active, gpu_active, power))
        now += dt
    return now, freqs


class TestTargets:
    def test_idle_cpu_falls_to_min(self, pcu):
        spec = pcu.spec
        pcu.state.cpu_freq_hz = spec.cpu.turbo_freq_hz
        run_steps(pcu, 50, ms(1.0), cpu_active=False, gpu_active=False)
        assert pcu.state.cpu_freq_hz == pytest.approx(spec.cpu.min_freq_hz)

    def test_active_cpu_reaches_turbo(self, pcu):
        spec = pcu.spec
        run_steps(pcu, 50, ms(1.0), cpu_active=True, gpu_active=False)
        assert pcu.state.cpu_freq_hz == pytest.approx(spec.cpu.turbo_freq_hz)

    def test_coexec_cpu_capped_below_turbo(self, pcu):
        spec = pcu.spec
        # Long co-execution: CPU settles at the co-execution target.
        run_steps(pcu, 3000, ms(1.0), cpu_active=True, gpu_active=True)
        assert pcu.state.cpu_freq_hz == pytest.approx(
            spec.pcu.cpu_coexec_freq_hz)
        assert pcu.state.cpu_freq_hz < spec.cpu.turbo_freq_hz

    def test_gpu_reaches_turbo_when_active(self, pcu):
        spec = pcu.spec
        run_steps(pcu, 50, ms(1.0), cpu_active=False, gpu_active=True)
        assert pcu.state.gpu_freq_hz == pytest.approx(spec.gpu.turbo_freq_hz)


class TestActivationThrottle:
    def test_cold_gpu_activation_floors_cpu(self, pcu):
        spec = pcu.spec
        now, _ = run_steps(pcu, 20, ms(1.0), cpu_active=True, gpu_active=False)
        assert pcu.state.cpu_freq_hz == pytest.approx(spec.cpu.turbo_freq_hz)
        # First GPU-active step after a long idle: immediate hard floor.
        pcu.step(now, ms(1.0), True, True, 30.0)
        assert pcu.state.cpu_freq_hz <= (
            spec.pcu.cpu_gpu_activation_floor_hz
            + spec.pcu.cpu_recovery_ramp_hz_per_s * ms(1.0))

    def test_warm_relaunch_does_not_refloor(self, pcu):
        spec = pcu.spec
        # Warm up into co-execution.
        now, _ = run_steps(pcu, 3000, ms(1.0), True, True)
        # Brief GPU idle, then re-activation within the cold threshold.
        now, _ = run_steps(pcu, 3, ms(1.0), True, False, start=now)
        pcu.step(now, ms(1.0), True, True, 50.0)
        assert pcu.state.cpu_freq_hz > spec.pcu.cpu_gpu_activation_floor_hz * 1.5

    def test_recovery_is_slow_while_gpu_active(self, pcu):
        spec = pcu.spec
        now, _ = run_steps(pcu, 20, ms(1.0), True, False)
        # Cold activation, then 10 ms of co-execution.
        now, _ = run_steps(pcu, 10, ms(1.0), True, True, start=now)
        expected_max = (spec.pcu.cpu_gpu_activation_floor_hz
                        + spec.pcu.cpu_recovery_ramp_hz_per_s * ms(10.0))
        assert pcu.state.cpu_freq_hz <= expected_max * 1.01

    def test_recovery_is_fast_after_gpu_idle(self, pcu):
        spec = pcu.spec
        now, _ = run_steps(pcu, 20, ms(1.0), True, False)
        now, _ = run_steps(pcu, 5, ms(1.0), True, True, start=now)
        assert pcu.state.cpu_freq_hz < spec.pcu.cpu_coexec_freq_hz
        # GPU idle long enough for release, CPU still busy: turbo
        # re-engages quickly.
        now, _ = run_steps(pcu, 40, ms(1.0), True, False, start=now)
        assert pcu.state.cpu_freq_hz == pytest.approx(spec.cpu.turbo_freq_hz)


class TestPowerCap:
    def test_sustained_overpower_throttles_cpu(self, pcu):
        spec = pcu.spec
        over = spec.pcu.package_cap_w * 1.2
        run_steps(pcu, 200, ms(1.0), cpu_active=True, gpu_active=False,
                  power=over)
        assert pcu.state.cpu_freq_hz < spec.cpu.turbo_freq_hz
        assert pcu.state.cap_throttle_hz > 0.0

    def test_throttle_releases_when_under_cap(self, pcu):
        spec = pcu.spec
        over = spec.pcu.package_cap_w * 1.2
        run_steps(pcu, 200, ms(1.0), True, False, power=over)
        run_steps(pcu, 2000, ms(1.0), True, False, power=20.0,
                  start=1.0)
        assert pcu.state.cap_throttle_hz == pytest.approx(0.0)
        assert pcu.state.cpu_freq_hz == pytest.approx(spec.cpu.turbo_freq_hz)
