"""Kernel cost model derived quantities and validation."""

import pytest

from repro.errors import SpecError
from repro.soc.cost_model import KernelCostModel
from repro.units import CACHELINE_BYTES


def make(**kwargs):
    base = dict(name="k", instructions_per_item=100.0,
                loadstore_fraction=0.3, l3_miss_rate=0.2)
    base.update(kwargs)
    return KernelCostModel(**base)


class TestDerivedQuantities:
    def test_loadstores_per_item(self):
        assert make().loadstores_per_item == pytest.approx(30.0)

    def test_l3_misses_per_item(self):
        assert make().l3_misses_per_item == pytest.approx(6.0)

    def test_dram_bytes_one_cacheline_per_miss(self):
        assert make().dram_bytes_per_item == pytest.approx(6.0 * CACHELINE_BYTES)

    def test_gpu_traffic_factor_scales_gpu_bytes(self):
        cost = make(gpu_traffic_factor=0.5)
        assert cost.gpu_dram_bytes_per_item == pytest.approx(
            cost.dram_bytes_per_item / 2)

    def test_gpu_instruction_expansion(self):
        cost = make(gpu_instruction_expansion=1.5)
        assert cost.gpu_instructions_per_item == pytest.approx(150.0)

    def test_miss_to_loadstore_ratio_is_classification_statistic(self):
        assert make(l3_miss_rate=0.4).miss_to_loadstore_ratio == 0.4

    def test_irregularity_flag(self):
        assert not make().is_irregular
        assert make(item_cost_cv=0.5).is_irregular

    def test_with_overrides_returns_new_model(self):
        cost = make()
        other = cost.with_overrides(l3_miss_rate=0.9)
        assert other.l3_miss_rate == 0.9
        assert cost.l3_miss_rate == 0.2


class TestValidation:
    def test_rejects_nonpositive_instructions(self):
        with pytest.raises(SpecError):
            make(instructions_per_item=0.0)

    @pytest.mark.parametrize("field", [
        "loadstore_fraction", "l3_miss_rate", "cpu_simd_efficiency",
        "gpu_simd_efficiency", "gpu_divergence",
    ])
    def test_rejects_out_of_range_fractions(self, field):
        with pytest.raises(SpecError):
            make(**{field: 1.5})
        with pytest.raises(SpecError):
            make(**{field: -0.1})

    def test_rejects_negative_cv(self):
        with pytest.raises(SpecError):
            make(item_cost_cv=-1.0)

    def test_rejects_nonpositive_expansion(self):
        with pytest.raises(SpecError):
            make(gpu_instruction_expansion=0.0)

    def test_rejects_nonpositive_traffic_factor(self):
        with pytest.raises(SpecError):
            make(gpu_traffic_factor=0.0)
