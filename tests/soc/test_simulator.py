"""The virtual-clock execution engine."""

import pytest

from repro.errors import SimulationError
from repro.soc.simulator import IntegratedProcessor, PhaseRequest
from repro.soc.work import CostProfile, WorkRegion, split_for_offload


def region_pair(cost, n, alpha):
    profile = CostProfile(cost)
    return split_for_offload(profile, n, 0.0, n, alpha)


def single_region(cost, n):
    return WorkRegion.for_span(CostProfile(cost), n, 0.0, n)


class TestPhases:
    def test_cpu_only_phase_completes_all_items(self, desktop_processor,
                                                compute_cost):
        region = single_region(compute_cost, 100_000.0)
        result = desktop_processor.run_phase(PhaseRequest(
            cost=compute_cost, cpu_region=region, gpu_region=None))
        assert result.cpu_items == pytest.approx(100_000.0, rel=1e-6)
        assert result.gpu_items == 0.0
        assert result.duration_s > 0.0

    def test_gpu_only_phase_completes_all_items(self, desktop_processor,
                                                compute_cost):
        region = single_region(compute_cost, 100_000.0)
        result = desktop_processor.run_phase(PhaseRequest(
            cost=compute_cost, cpu_region=None, gpu_region=region))
        assert result.gpu_items == pytest.approx(100_000.0, rel=1e-6)
        assert result.cpu_items == 0.0

    def test_gpu_phase_pays_launch_overhead(self, desktop, desktop_processor,
                                            compute_cost):
        region = single_region(compute_cost, 10_000.0)
        result = desktop_processor.run_phase(PhaseRequest(
            cost=compute_cost, cpu_region=None, gpu_region=region))
        assert result.gpu_time_s >= desktop.gpu.kernel_launch_overhead_s

    def test_partitioned_phase_runs_both_devices(self, desktop_processor,
                                                 compute_cost):
        gpu, cpu = region_pair(compute_cost, 1_000_000.0, 0.5)
        result = desktop_processor.run_phase(PhaseRequest(
            cost=compute_cost, cpu_region=cpu, gpu_region=gpu))
        assert result.cpu_items == pytest.approx(500_000.0, rel=1e-6)
        assert result.gpu_items == pytest.approx(500_000.0, rel=1e-6)

    def test_empty_phase_rejected(self, desktop_processor, compute_cost):
        with pytest.raises(SimulationError):
            desktop_processor.run_phase(PhaseRequest(
                cost=compute_cost, cpu_region=None, gpu_region=None))

    def test_profiling_phase_terminates_cpu_workers(self, desktop_processor,
                                                    compute_cost):
        """stop_when_gpu_done leaves the CPU region partially done."""
        profile = CostProfile(compute_cost)
        n = 10_000_000.0
        gpu = WorkRegion.for_span(profile, n, 0.0, 2048.0)
        cpu = WorkRegion.for_span(profile, n, 2048.0, n)
        result = desktop_processor.run_phase(PhaseRequest(
            cost=compute_cost, cpu_region=cpu, gpu_region=gpu,
            stop_when_gpu_done=True))
        assert result.gpu_items == pytest.approx(2048.0, rel=1e-6)
        assert 0.0 < result.cpu_items < n - 2048.0
        assert cpu.items_remaining > 0.0

    def test_profiling_requires_gpu_region(self, desktop_processor,
                                           compute_cost):
        region = single_region(compute_cost, 1000.0)
        with pytest.raises(SimulationError):
            desktop_processor.run_phase(PhaseRequest(
                cost=compute_cost, cpu_region=region, gpu_region=None,
                stop_when_gpu_done=True))

    def test_max_duration_guard(self, desktop_processor, compute_cost):
        region = single_region(compute_cost, 1e15)
        with pytest.raises(SimulationError):
            desktop_processor.run_phase(PhaseRequest(
                cost=compute_cost, cpu_region=region, gpu_region=None,
                max_duration_s=0.01))

    def test_gpu_busy_flag_cleared_after_phase(self, desktop_processor,
                                               compute_cost):
        region = single_region(compute_cost, 100_000.0)
        desktop_processor.run_phase(PhaseRequest(
            cost=compute_cost, cpu_region=None, gpu_region=region))
        assert not desktop_processor.gpu_busy


class TestAccounting:
    def test_energy_accumulates_with_execution(self, desktop_processor,
                                               compute_cost):
        before = desktop_processor.read_energy_msr()
        region = single_region(compute_cost, 500_000.0)
        result = desktop_processor.run_phase(PhaseRequest(
            cost=compute_cost, cpu_region=region, gpu_region=None))
        after = desktop_processor.read_energy_msr()
        energy = desktop_processor.energy_joules_between(before, after)
        assert energy > 0.0
        assert energy == pytest.approx(result.energy_j, rel=0.01)

    def test_msr_and_counters_are_consistent(self, desktop_processor,
                                             compute_cost):
        region = single_region(compute_cost, 200_000.0)
        result = desktop_processor.run_phase(PhaseRequest(
            cost=compute_cost, cpu_region=region, gpu_region=None))
        assert result.counters.cpu_items == pytest.approx(result.cpu_items)
        assert result.counters.instructions_retired == pytest.approx(
            result.cpu_items * compute_cost.instructions_per_item, rel=1e-6)

    def test_average_power_is_physical(self, desktop, desktop_processor,
                                       compute_cost):
        """CPU-alone compute-bound power lands near the paper's ~45 W."""
        region = single_region(compute_cost, 3_000_000.0)
        result = desktop_processor.run_phase(PhaseRequest(
            cost=compute_cost, cpu_region=region, gpu_region=None))
        power = result.energy_j / result.duration_s
        assert 35.0 < power < 55.0

    def test_idle_advances_clock_at_idle_power(self, desktop,
                                               desktop_processor):
        before = desktop_processor.read_energy_msr()
        desktop_processor.idle(0.5)
        after = desktop_processor.read_energy_msr()
        assert desktop_processor.now == pytest.approx(0.5)
        power = desktop_processor.energy_joules_between(before, after) / 0.5
        assert power < 15.0  # idle floor, not active power

    def test_idle_rejects_negative(self, desktop_processor):
        with pytest.raises(SimulationError):
            desktop_processor.idle(-1.0)


class TestDeterminism:
    def test_identical_runs_are_identical(self, desktop, compute_cost):
        results = []
        for _ in range(2):
            proc = IntegratedProcessor(desktop)
            gpu, cpu = region_pair(compute_cost, 500_000.0, 0.4)
            r = proc.run_phase(PhaseRequest(
                cost=compute_cost, cpu_region=cpu, gpu_region=gpu))
            results.append((r.duration_s, r.energy_j, r.cpu_items))
        assert results[0] == results[1]


class TestCoExecutionShape:
    def test_hybrid_faster_than_single_device(self, desktop, compute_cost):
        """For a long-running kernel, co-execution near the optimal
        split beats both single-device runs (the premise of Fig. 1).
        The run must be long enough to amortize the PCU's activation
        throttle - short one-shot hybrids genuinely lose (Fig. 4)."""
        n = 6e7

        def run(alpha):
            proc = IntegratedProcessor(desktop)
            if alpha == 0.0:
                req = PhaseRequest(cost=compute_cost,
                                   cpu_region=single_region(compute_cost, n),
                                   gpu_region=None)
            elif alpha == 1.0:
                req = PhaseRequest(cost=compute_cost, cpu_region=None,
                                   gpu_region=single_region(compute_cost, n))
            else:
                gpu, cpu = region_pair(compute_cost, n, alpha)
                req = PhaseRequest(cost=compute_cost, cpu_region=cpu,
                                   gpu_region=gpu)
            return proc.run_phase(req).duration_s

        t_cpu, t_gpu = run(0.0), run(1.0)
        t_hybrid = min(run(a) for a in (0.6, 0.7, 0.8))
        assert t_hybrid < t_cpu
        assert t_hybrid < t_gpu
