"""Fast clock mode: equivalence, contracts, and bulk accounting.

The fast-forward engine's whole claim is that it changes *when work is
computed*, not *what is computed*: end-to-end time, energy, and item
counts must agree with the exact tick loop to better than 1e-6
relative on every tier-1 scenario, and the scheduler must take the
same decisions.  This file pins that claim, plus the supporting
contracts it leans on: the PCU fast-forward interface, multi-wrap MSR
bulk deposits, and the bit-equality of the vectorized model twins.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.metrics import ENERGY
from repro.core.scheduler import EnergyAwareScheduler
from repro.errors import SimulationError
from repro.harness.experiment import run_application
from repro.obs.observer import Observer
from repro.soc.device import compute_rates, compute_rates_batch
from repro.soc.faults import FaultConfig
from repro.soc.msr import EnergyMsr
from repro.soc.pcu import Pcu
from repro.soc.power import package_power, package_power_batch
from repro.soc.simulator import IntegratedProcessor, PhaseRequest
from repro.soc.spec import baytrail_tablet, haswell_desktop
from repro.soc.work import CostProfile, WorkRegion, split_for_offload
from repro.workloads.registry import suite_workloads

#: The tentpole's divergence budget (relative, on time/energy/items).
REL_TOL = 1e-6


def _rel(a: float, b: float) -> float:
    scale = max(abs(a), abs(b))
    if scale == 0.0:
        return 0.0
    return abs(a - b) / scale


def _run(spec, workload, characterization, tablet, fault_level):
    scheduler = EnergyAwareScheduler(characterization, ENERGY)
    observer = Observer()
    fault_config = (FaultConfig.from_level(fault_level, seed=7)
                    if fault_level > 0 else None)
    run = run_application(spec, workload, scheduler, "EAS", tablet=tablet,
                          observer=observer, fault_config=fault_config)
    return run, observer


class TestFastExactEquivalence:
    """Every suite workload, both platforms, fault levels 0.0 / 0.3."""

    @pytest.mark.parametrize("fault_level", [0.0, 0.3])
    def test_desktop_suite(self, desktop, desktop_characterization,
                           fault_level):
        self._check_suite(desktop, desktop_characterization,
                          tablet=False, fault_level=fault_level)

    @pytest.mark.parametrize("fault_level", [0.0, 0.3])
    def test_tablet_suite(self, tablet, tablet_characterization,
                          fault_level):
        self._check_suite(tablet, tablet_characterization,
                          tablet=True, fault_level=fault_level)

    def _check_suite(self, base_spec, characterization, tablet, fault_level):
        for workload in suite_workloads(tablet=tablet):
            exact_run, exact_obs = _run(
                replace(base_spec, tick_mode="exact"), workload,
                characterization, tablet, fault_level)
            fast_run, fast_obs = _run(
                replace(base_spec, tick_mode="fast"), workload,
                characterization, tablet, fault_level)

            label = f"{workload.abbrev} fault={fault_level}"
            assert _rel(exact_run.time_s, fast_run.time_s) < REL_TOL, label
            # Application energy goes through the quantized 32-bit MSR
            # read protocol: allow the two quantization boundaries the
            # raw reads may straddle on top of the relative budget.
            unit_slack = 2.0 * base_spec.energy_unit_j
            assert (abs(exact_run.energy_j - fast_run.energy_j)
                    <= REL_TOL * max(abs(exact_run.energy_j), 1.0)
                    + unit_slack), label

            assert len(exact_run.invocations) == len(fast_run.invocations), label
            for ex, fa in zip(exact_run.invocations, fast_run.invocations):
                # Each phase end carries +-_MIN_DT (1e-7 s) of clock
                # quantization, which dominates relative error on
                # sub-millisecond micro-invocations; allow a few
                # minimum ticks of absolute slack on top of the
                # relative budget.
                assert (abs(ex.duration_s - fa.duration_s)
                        <= REL_TOL * max(ex.duration_s, fa.duration_s)
                        + 5e-7), label
                assert _rel(ex.cpu_items, fa.cpu_items) < REL_TOL, label
                assert _rel(ex.gpu_items, fa.gpu_items) < REL_TOL, label

            # Same scheduling story, decision for decision.
            exact_paths = [d.exit_path for d in exact_obs.decisions]
            fast_paths = [d.exit_path for d in fast_obs.decisions]
            assert exact_paths == fast_paths, label
            for ex, fa in zip(exact_obs.decisions, fast_obs.decisions):
                assert abs(ex.alpha - fa.alpha) < 1e-6, label


class TestFastModePhases:
    """Direct phase-level checks of the macro-step machinery."""

    def _specs(self):
        base = haswell_desktop()
        return (replace(base, tick_mode="exact"),
                replace(base, tick_mode="fast"))

    def test_fast_mode_takes_macro_steps(self, compute_cost):
        _, fast = self._specs()
        soc = IntegratedProcessor(fast)
        region = WorkRegion.for_span(CostProfile(compute_cost), 1e6, 0.0, 1e6)
        soc.run_phase(PhaseRequest(cost=compute_cost, cpu_region=region,
                                   gpu_region=None))
        assert soc._last_phase_macro_steps > 0
        assert soc._last_phase_ticks < 100

    def test_phase_results_match_exact(self, memory_cost):
        exact_spec, fast_spec = self._specs()
        results = []
        for spec in (exact_spec, fast_spec):
            soc = IntegratedProcessor(spec)
            gpu, cpu = split_for_offload(CostProfile(memory_cost),
                                         2e6, 0.0, 2e6, 0.5)
            res = soc.run_phase(PhaseRequest(cost=memory_cost,
                                             cpu_region=cpu, gpu_region=gpu))
            results.append(res)
        exact_res, fast_res = results
        assert _rel(exact_res.duration_s, fast_res.duration_s) < REL_TOL
        assert _rel(exact_res.energy_j, fast_res.energy_j) < REL_TOL
        assert _rel(exact_res.cpu_items, fast_res.cpu_items) < REL_TOL
        assert _rel(exact_res.gpu_items, fast_res.gpu_items) < REL_TOL

    def test_fast_idle_macro_steps_instead_of_ticking(self):
        _, fast = self._specs()
        soc = IntegratedProcessor(fast)
        # Let any cold-start transient die down first.
        soc.idle(0.01)
        scalar_steps = []
        original_step = soc.pcu.step

        def counting_step(*args, **kwargs):
            scalar_steps.append(1)
            return original_step(*args, **kwargs)

        soc.pcu.step = counting_step
        soc.idle(5.0)
        # A settled idle wait advances in O(1) jumps, not O(duration)
        # scalar PCU steps (5 s would be 10,000 ticks at 0.5 ms).
        assert len(scalar_steps) < 10
        assert soc.now == pytest.approx(5.01)

    def test_idle_energy_matches_exact(self):
        exact_spec, fast_spec = self._specs()
        energies = []
        for spec in (exact_spec, fast_spec):
            soc = IntegratedProcessor(spec)
            soc.idle(2.5)
            energies.append(soc.msr.lifetime_joules)
        assert _rel(energies[0], energies[1]) < REL_TOL

    def test_fast_trace_preserves_energy(self, compute_cost):
        _, fast = self._specs()
        soc = IntegratedProcessor(fast, trace_enabled=True)
        region = WorkRegion.for_span(CostProfile(compute_cost), 1e6, 0.0, 1e6)
        res = soc.run_phase(PhaseRequest(cost=compute_cost, cpu_region=region,
                                         gpu_region=None))
        trace_e = sum(s.package_w * s.dt for s in soc.trace.samples)
        assert trace_e == pytest.approx(res.energy_j, rel=1e-6)


class TestPcuFastForwardContract:
    """settled / time_to_next_transition / macro_step / clone."""

    def _pcu(self):
        return Pcu(haswell_desktop())

    def test_not_settled_when_ramping(self):
        pcu = self._pcu()
        # Fresh PCU starts at min frequency, far below the turbo target.
        assert not pcu.settled(0.0, True, False, 10.0)

    def test_settled_after_ramp_completes(self):
        pcu = self._pcu()
        now = 0.0
        for _ in range(10_000):
            pcu.step(now, 1e-3, cpu_active=True, gpu_active=False,
                     last_package_power_w=10.0)
            now += 1e-3
            if pcu.settled(now, True, False, 10.0):
                break
        assert pcu.settled(now, True, False, 10.0)
        assert pcu.state.cpu_freq_hz == pcu.spec.cpu.turbo_freq_hz

    def test_not_settled_over_cap_or_throttled(self):
        pcu = self._pcu()
        pcu.state.cpu_freq_hz = pcu.spec.cpu.turbo_freq_hz
        pcu.state.gpu_freq_hz = pcu.spec.gpu.min_freq_hz
        assert pcu.settled(0.0, True, False, 10.0)
        over = pcu.spec.pcu.package_cap_w + 1.0
        assert not pcu.settled(0.0, True, False, over)
        pcu.state.cap_throttle_hz = 1e8
        assert not pcu.settled(0.0, True, False, 10.0)

    def test_transition_instant_is_ulp_consistent_with_target_flip(self):
        """The reported release instant is exactly when the target flips."""
        pcu = self._pcu()
        pcu.state.last_gpu_active_t = 0.123456
        t_rel = pcu.time_to_next_transition(0.125, True, False)
        release = pcu.spec.pcu.gpu_idle_release_s
        assert t_rel == pcu.state.last_gpu_active_t + release
        coexec = pcu.spec.pcu.cpu_coexec_freq_hz
        turbo = pcu.spec.cpu.turbo_freq_hz
        # An instant before the release the target is still co-exec...
        assert pcu._cpu_target_hz(np.nextafter(t_rel, 0.0), True, False) == coexec
        # ...and one minimum tick past it the flip has happened - the
        # documented contract: the flip lands within an ulp of the
        # reported instant and callers tick across it with _MIN_DT.
        assert pcu._cpu_target_hz(t_rel + 1e-7, True, False) == turbo

    def test_no_transition_when_gpu_active_or_cpu_idle(self):
        pcu = self._pcu()
        pcu.state.last_gpu_active_t = 0.1
        assert pcu.time_to_next_transition(0.2, True, True) == float("inf")
        assert pcu.time_to_next_transition(0.2, False, False) == float("inf")

    def test_macro_step_only_moves_gpu_timestamp(self):
        pcu = self._pcu()
        pcu.state.cpu_freq_hz = pcu.spec.pcu.cpu_coexec_freq_hz
        pcu.state.gpu_freq_hz = pcu.spec.gpu.turbo_freq_hz
        pcu.state.last_gpu_active_t = 1.0
        pcu._gpu_was_active = True
        cpu_f, gpu_f = pcu.macro_step(1.0, 3.0, cpu_active=True,
                                      gpu_active=True)
        assert (cpu_f, gpu_f) == (pcu.state.cpu_freq_hz, pcu.state.gpu_freq_hz)
        assert pcu.state.last_gpu_active_t == 4.0
        pcu.macro_step(4.0, 1.0, cpu_active=True, gpu_active=False)
        assert pcu.state.last_gpu_active_t == 4.0  # idle span: untouched

    def test_macro_step_matches_stepping_when_settled(self):
        """A settled span stepped tick-by-tick ends where macro_step says."""
        spec = haswell_desktop()
        a, b = Pcu(spec), Pcu(spec)
        for pcu in (a, b):
            pcu.state.cpu_freq_hz = spec.cpu.turbo_freq_hz
        a.macro_step(0.0, 0.5, cpu_active=True, gpu_active=False)
        now = 0.0
        for _ in range(500):
            b.step(now, 1e-3, cpu_active=True, gpu_active=False,
                   last_package_power_w=10.0)
            now += 1e-3
        assert a.state.cpu_freq_hz == b.state.cpu_freq_hz
        assert a.state.gpu_freq_hz == b.state.gpu_freq_hz
        assert a.state.cap_throttle_hz == b.state.cap_throttle_hz

    def test_clone_is_independent(self):
        pcu = self._pcu()
        twin = pcu.clone()
        assert twin.state == pcu.state
        twin.step(0.0, 1e-3, cpu_active=True, gpu_active=True,
                  last_package_power_w=10.0)
        assert twin.state != pcu.state
        assert pcu.state.last_gpu_active_t == float("-inf")

    def test_edge_pending(self):
        pcu = self._pcu()
        assert pcu.edge_pending(True)
        assert not pcu.edge_pending(False)
        pcu.step(0.0, 1e-3, cpu_active=True, gpu_active=True,
                 last_package_power_w=10.0)
        assert not pcu.edge_pending(True)
        assert pcu.edge_pending(False)

    def test_bound_dt_snaps_to_sample_grid_only_when_armed(self):
        pcu = self._pcu()
        interval = pcu.spec.pcu.sample_interval_s
        now = 0.25 * interval
        # Unarmed: no throttle, under cap - dt passes through.
        assert pcu.bound_dt(now, 10 * interval, 10.0) == 10 * interval
        # Armed by an active throttle: clipped to the next grid point.
        pcu.state.cap_throttle_hz = 1e8
        assert pcu.bound_dt(now, 10 * interval, 10.0) == pytest.approx(
            0.75 * interval)


class TestMsrMultiWrapDeposit:
    def test_bulk_deposit_crosses_several_wraps(self):
        msr = EnergyMsr(energy_unit_j=2.0 ** -14)
        period = msr.max_window_joules()
        crossed = msr.deposit_power(power_w=period, duration_s=3.5)
        assert crossed == 3
        assert msr.wrap_count == 3
        assert msr.lifetime_joules == pytest.approx(3.5 * period)
        # The register itself only shows the sub-wrap remainder.
        assert msr.read() == int(0.5 * period / msr.energy_unit_j) & 0xFFFFFFFF

    def test_wrap_crossings_accumulate_across_calls(self):
        msr = EnergyMsr(energy_unit_j=2.0 ** -14)
        period = msr.max_window_joules()
        assert msr.deposit_power(period, 0.75) == 0
        assert msr.deposit_power(period, 0.75) == 1
        assert msr.deposit_power(period, 2.0) == 2
        assert msr.wrap_count == 3

    def test_multiwrap_window_aliases_like_hardware(self):
        """A window spanning >1 wrap silently under-reports - the
        documented RAPL hazard that bulk deposits must preserve."""
        msr = EnergyMsr(energy_unit_j=2.0 ** -14)
        before = msr.read()
        true_joules = 2.25 * msr.max_window_joules()
        msr.deposit_power(true_joules, 1.0)
        measured = msr.joules_between(before, msr.read())
        assert measured == pytest.approx(0.25 * msr.max_window_joules(),
                                         rel=1e-9)

    def test_zero_and_negative_deposits(self):
        msr = EnergyMsr(energy_unit_j=2.0 ** -14)
        assert msr.deposit_power(0.0, 100.0) == 0
        assert msr.deposit_power(100.0, 0.0) == 0
        with pytest.raises(SimulationError):
            msr.deposit_power(-1.0, 1.0)
        with pytest.raises(SimulationError):
            msr.deposit_power(1.0, -1.0)


class TestBatchModelBitEquality:
    """The vectorized model twins must match the scalar models bit for
    bit, element-wise - the batched-transient path depends on it."""

    def _freq_grid(self, spec, n=512):
        rng = np.random.default_rng(0xBEEF)
        cpu = rng.uniform(spec.cpu.min_freq_hz, spec.cpu.turbo_freq_hz, n)
        gpu = rng.uniform(spec.gpu.min_freq_hz, spec.gpu.turbo_freq_hz, n)
        return cpu, gpu

    @pytest.mark.parametrize("tablet", [False, True])
    def test_compute_rates_batch(self, tablet, memory_cost):
        spec = baytrail_tablet() if tablet else haswell_desktop()
        cpu_f, gpu_f = self._freq_grid(spec)
        batch = compute_rates_batch(spec, memory_cost, cpu_f, gpu_f,
                                    cpu_active_cores=3.85,
                                    gpu_items_in_flight=5000.0,
                                    cpu_active=True, gpu_active=True)
        for i in range(len(cpu_f)):
            scalar = compute_rates(spec, memory_cost, cpu_f[i], gpu_f[i],
                                   3.85, 5000.0,
                                   cpu_active=True, gpu_active=True)
            assert batch.cpu_items_per_s[i] == scalar.cpu_items_per_s
            assert batch.gpu_items_per_s[i] == scalar.gpu_items_per_s
            assert (batch.cpu_memory_stall_fraction[i]
                    == scalar.cpu_memory_stall_fraction)
            assert (batch.gpu_memory_stall_fraction[i]
                    == scalar.gpu_memory_stall_fraction)
            assert (batch.cpu_traffic_bytes_per_s[i]
                    == scalar.cpu_traffic_bytes_per_s)
            assert (batch.gpu_traffic_bytes_per_s[i]
                    == scalar.gpu_traffic_bytes_per_s)

    def test_compute_rates_batch_pure_compute(self, compute_cost):
        spec = haswell_desktop()
        cpu_f, gpu_f = self._freq_grid(spec, n=128)
        batch = compute_rates_batch(spec, compute_cost, cpu_f, gpu_f,
                                    4.0, 2240.0, True, True)
        for i in range(len(cpu_f)):
            scalar = compute_rates(spec, compute_cost, cpu_f[i], gpu_f[i],
                                   4.0, 2240.0, True, True)
            assert batch.cpu_items_per_s[i] == scalar.cpu_items_per_s
            assert batch.gpu_items_per_s[i] == scalar.gpu_items_per_s

    @pytest.mark.parametrize("tablet", [False, True])
    def test_package_power_batch(self, tablet, memory_cost):
        spec = baytrail_tablet() if tablet else haswell_desktop()
        cpu_f, gpu_f = self._freq_grid(spec)
        rates = compute_rates_batch(spec, memory_cost, cpu_f, gpu_f,
                                    3.85, 5000.0, True, True)
        batch = package_power_batch(spec, rates, cpu_f, gpu_f,
                                    cpu_active_cores=3.85, gpu_active=True)
        for i in range(len(cpu_f)):
            scalar_rates = compute_rates(spec, memory_cost, cpu_f[i],
                                         gpu_f[i], 3.85, 5000.0, True, True)
            scalar = package_power(spec, scalar_rates, cpu_f[i], gpu_f[i],
                                   3.85, True)
            assert batch.cpu_w[i] == scalar.cpu_w
            assert batch.gpu_w[i] == scalar.gpu_w
            assert batch.uncore_w[i] == scalar.uncore_w
            assert (batch.cpu_w[i] + batch.gpu_w[i] + batch.uncore_w[i]
                    + batch.idle_w) == scalar.package_w
