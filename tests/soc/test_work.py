"""Work regions and irregular cost profiles, including property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.soc.cost_model import KernelCostModel
from repro.soc.work import CostProfile, WorkRegion, split_for_offload


def cost(cv=0.0, scale=0.1, tag=1):
    return KernelCostModel(
        name="w", instructions_per_item=100.0, loadstore_fraction=0.2,
        l3_miss_rate=0.1, item_cost_cv=cv, cost_profile_scale=scale,
        rng_tag=tag)


class TestCostProfile:
    def test_uniform_profile_for_regular_kernels(self):
        profile = CostProfile(cost(cv=0.0))
        assert profile.mean_multiplier(0.0, 1.0) == pytest.approx(1.0)
        assert profile.integral(0.2, 0.7) == pytest.approx(0.5)

    def test_irregular_profile_has_unit_mean(self):
        profile = CostProfile(cost(cv=1.0))
        assert profile.integral(0.0, 1.0) == pytest.approx(1.0, rel=1e-9)

    def test_irregular_profile_varies(self):
        profile = CostProfile(cost(cv=1.0, scale=0.2))
        assert profile.multipliers.std() > 0.3

    def test_deterministic_per_tag(self):
        a = CostProfile(cost(cv=0.8, tag=5))
        b = CostProfile(cost(cv=0.8, tag=5))
        c = CostProfile(cost(cv=0.8, tag=6))
        assert np.array_equal(a.multipliers, b.multipliers)
        assert not np.array_equal(a.multipliers, c.multipliers)

    def test_advance_inverts_integral(self):
        profile = CostProfile(cost(cv=0.9, tag=2))
        u0 = 0.17
        work = 0.31
        u1 = profile.advance(u0, work)
        assert profile.integral(u0, u1) == pytest.approx(work, rel=1e-6)

    def test_advance_clamps_at_end(self):
        profile = CostProfile(cost(cv=0.5))
        assert profile.advance(0.9, 10.0) == 1.0

    def test_rejects_reversed_bounds(self):
        profile = CostProfile(cost())
        with pytest.raises(SimulationError):
            profile.integral(0.8, 0.2)

    @given(u0=st.floats(0.0, 0.99), work=st.floats(0.0, 2.0))
    @settings(max_examples=60, deadline=None)
    def test_advance_is_monotone_property(self, u0, work):
        profile = CostProfile(cost(cv=1.2, tag=9))
        u1 = profile.advance(u0, work)
        assert u1 >= u0
        assert u1 <= 1.0


class TestWorkRegion:
    def test_consume_returns_items(self):
        profile = CostProfile(cost())
        region = WorkRegion.for_span(profile, 1000.0, 0.0, 1000.0)
        done = region.consume(250.0)
        assert done == pytest.approx(250.0)
        assert region.items_remaining == pytest.approx(750.0)

    def test_consume_caps_at_region_end(self):
        profile = CostProfile(cost())
        region = WorkRegion.for_span(profile, 1000.0, 0.0, 100.0)
        done = region.consume(1e6)
        assert done == pytest.approx(100.0)
        assert region.is_done

    def test_consume_rejects_negative(self):
        profile = CostProfile(cost())
        region = WorkRegion.for_span(profile, 100.0, 0.0, 100.0)
        with pytest.raises(SimulationError):
            region.consume(-1.0)

    def test_work_remaining_scales_with_multiplier(self):
        profile = CostProfile(cost(cv=1.0, tag=3))
        region = WorkRegion.for_span(profile, 10000.0, 0.0, 10000.0)
        assert region.work_remaining == pytest.approx(10000.0, rel=1e-6)

    def test_time_to_complete(self):
        profile = CostProfile(cost())
        region = WorkRegion.for_span(profile, 1000.0, 0.0, 1000.0)
        assert region.time_to_complete(100.0) == pytest.approx(10.0)
        assert region.time_to_complete(0.0) == float("inf")

    def test_empty_region(self):
        profile = CostProfile(cost())
        region = WorkRegion.empty(profile, 100.0)
        assert region.is_done
        assert region.items_remaining == 0.0

    def test_rejects_bad_range(self):
        profile = CostProfile(cost())
        with pytest.raises(SimulationError):
            WorkRegion.for_span(profile, 100.0, 50.0, 20.0)

    @given(capacity=st.lists(st.floats(0.1, 400.0), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_items_conserved_property(self, capacity):
        """However consumption is chunked, items done + items remaining
        always equals the region size."""
        profile = CostProfile(cost(cv=1.1, tag=7))
        region = WorkRegion.for_span(profile, 5000.0, 1000.0, 4000.0)
        total_done = 0.0
        for c in capacity:
            total_done += region.consume(c)
        assert total_done + region.items_remaining == pytest.approx(
            3000.0, rel=1e-6)


class TestSplitForOffload:
    @given(alpha=st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_split_partitions_exactly(self, alpha):
        profile = CostProfile(cost(cv=0.7, tag=4))
        gpu, cpu = split_for_offload(profile, 10000.0, 2000.0, 10000.0, alpha)
        assert gpu.items_remaining == pytest.approx(alpha * 8000.0)
        assert cpu.items_remaining == pytest.approx((1 - alpha) * 8000.0)
        assert gpu.stop_item == pytest.approx(cpu.start_item)

    def test_gpu_gets_leading_block(self):
        profile = CostProfile(cost())
        gpu, cpu = split_for_offload(profile, 100.0, 0.0, 100.0, 0.3)
        assert gpu.start_item == 0.0
        assert cpu.stop_item == 100.0
