"""Power trace recording and aggregation."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.soc.trace import PowerTrace, TraceSample, merge_traces


def sample(t, dt, watts, gpu=False):
    return TraceSample(t=t, dt=dt, package_w=watts, cpu_w=watts / 2,
                       gpu_w=watts / 4, uncore_w=watts / 8,
                       cpu_freq_hz=3e9, gpu_freq_hz=1e9, gpu_active=gpu)


@pytest.fixture
def trace():
    tr = PowerTrace()
    for i in range(10):
        tr.append(sample(i * 0.1, 0.1, 10.0 + i, gpu=(i % 2 == 0)))
    return tr


class TestRecording:
    def test_disabled_trace_drops_samples(self):
        tr = PowerTrace(enabled=False)
        tr.append(sample(0.0, 0.1, 5.0))
        assert len(tr) == 0

    def test_duration(self, trace):
        assert trace.duration == pytest.approx(1.0)

    def test_clear(self, trace):
        trace.clear()
        assert len(trace) == 0


class TestAggregation:
    def test_average_power_full_window(self, trace):
        assert trace.average_power() == pytest.approx(14.5)

    def test_average_power_sub_window(self, trace):
        assert trace.average_power(0.0, 0.2) == pytest.approx(10.5)

    def test_average_power_empty_trace_raises(self):
        with pytest.raises(SimulationError):
            PowerTrace().average_power()

    def test_average_power_while_gpu(self, trace):
        gpu_avg = trace.average_power_while(True)
        idle_avg = trace.average_power_while(False)
        assert gpu_avg == pytest.approx(np.mean([10, 12, 14, 16, 18]))
        assert idle_avg == pytest.approx(np.mean([11, 13, 15, 17, 19]))

    def test_min_power_while_gpu_active(self, trace):
        assert trace.min_power_while_gpu_active() == pytest.approx(10.0)

    def test_gpu_active_intervals(self, trace):
        intervals = trace.gpu_active_intervals()
        assert len(intervals) == 5
        assert intervals[0] == pytest.approx((0.0, 0.1))

    def test_resample_conserves_energy(self, trace):
        times, watts = trace.resample(0.25)
        # All bins are fully occupied here, so sum(mean * interval)
        # reconstructs the original energy exactly.
        resampled_energy = sum(w * 0.25 for w in watts)
        original = sum(s.package_w * s.dt for s in trace.samples)
        assert resampled_energy == pytest.approx(original, rel=1e-9)
        assert len(times) == len(watts)

    def test_resample_rejects_bad_interval(self, trace):
        with pytest.raises(SimulationError):
            trace.resample(0.0)


class TestMerge:
    def test_merge_sorts_by_time(self):
        a = PowerTrace()
        a.append(sample(1.0, 0.1, 5.0))
        b = PowerTrace()
        b.append(sample(0.0, 0.1, 3.0))
        merged = merge_traces([a, b])
        assert [s.t for s in merged.samples] == [0.0, 1.0]
