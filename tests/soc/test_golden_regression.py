"""Exact-mode golden fingerprint lock.

``tests/goldens/exact_mode.json`` pins a sha256 fingerprint for every
entry in :func:`repro.harness.diff.exact_fingerprint_entries`: the
Table-1 EAS suites on both platforms, representative alpha sweeps, a
chaos campaign, a small fleet, and multiprogram co-runs - all under
``tick_mode="exact"``, the byte-stable reference.  Any change to the
simulator, the scheduler, or the harness that shifts even one bit of an
exact-mode run flips a fingerprint here and fails with a readable diff.

The default run recomputes a cheap representative subset (one regular
and one irregular workload per platform); set ``REPRO_GOLDEN_FULL=1``
to sweep every recorded entry (CI's scheduled job does).  To bless an
*intentional* semantics change, regenerate with
``tools/record_goldens.py`` and say why in the commit message.
"""

import json
import os

import pytest

from repro.harness.diff import (
    collect_exact_fingerprints,
    compute_fingerprint,
    exact_fingerprint_entries,
)

GOLDENS_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                            "goldens", "exact_mode.json")

#: Cheap default coverage: the fastest suite entries on each platform,
#: one regular (MB) and one irregular (BS) workload.
_SUBSET = (
    "suite-eas/desktop/MB",
    "suite-eas/desktop/BS",
    "suite-eas/tablet/MB",
    "suite-eas/tablet/BS",
)

FULL = os.environ.get("REPRO_GOLDEN_FULL", "") == "1"


def _recorded() -> dict:
    with open(GOLDENS_PATH) as fh:
        return json.load(fh)["fingerprints"]


def _describe_drift(entry: str, recorded: str, computed: str) -> str:
    return (
        f"exact-mode fingerprint drift in {entry!r}:\n"
        f"  recorded: {recorded}\n"
        f"  computed: {computed}\n"
        f"The exact clock mode is the byte-stable reference; this means "
        f"a code change altered its simulation semantics. If that is "
        f"intentional, regenerate tests/goldens/exact_mode.json with "
        f"tools/record_goldens.py and explain the change in the commit; "
        f"if not, you have a regression."
    )


def test_goldens_cover_every_entry():
    """The recorded file and the entry registry must agree exactly -
    a new golden-worthy surface must be recorded, a removed one culled."""
    assert sorted(_recorded()) == sorted(exact_fingerprint_entries())


@pytest.mark.parametrize("entry", exact_fingerprint_entries() if FULL
                         else _SUBSET)
def test_exact_fingerprint_matches_golden(entry):
    recorded = _recorded()[entry]
    computed = compute_fingerprint(entry)
    assert computed == recorded, _describe_drift(entry, recorded, computed)


def test_drift_report_is_readable():
    """The failure message names the entry, both hashes, and the
    remediation - the next person should not need to read this file."""
    message = _describe_drift("suite-eas/desktop/MB", "a" * 64, "b" * 64)
    assert "suite-eas/desktop/MB" in message
    assert "a" * 64 in message and "b" * 64 in message
    assert "tools/record_goldens.py" in message


def test_collect_matches_entrywise():
    """collect_exact_fingerprints agrees with per-entry computation
    (the recorder and the checker share one code path)."""
    entries = _SUBSET[:1]
    collected = collect_exact_fingerprints(entries)
    assert collected == {entries[0]: compute_fingerprint(entries[0])}
