"""Durable-store contracts: WAL, schema refusal, kill -9 survival,
job state machine atomicity, and the table-G persistence round-trip.
"""

import multiprocessing
import os
import signal
import sqlite3
import time

import pytest

from repro.errors import StoreSchemaError
from repro.service.store import (
    CANCELLED,
    CLAIMED,
    DEAD,
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    STORE_SCHEMA_VERSION,
    DurableStore,
    JobRow,
)


@pytest.fixture
def store(tmp_path):
    with DurableStore(str(tmp_path / "svc.db")) as s:
        yield s


def _submit(store, sha="s0", **kwargs):
    return store.submit_job('{"workload":"MB"}', sha, **kwargs)


class TestOpenAndSchema:
    def test_opens_in_wal_mode(self, store):
        mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert str(mode).lower() == "wal"

    def test_fresh_file_is_stamped(self, store):
        version = store._conn.execute("PRAGMA user_version").fetchone()[0]
        assert version == STORE_SCHEMA_VERSION

    def test_refuses_future_schema_version(self, tmp_path):
        path = str(tmp_path / "future.db")
        DurableStore(path).close()
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version = {STORE_SCHEMA_VERSION + 1}")
        conn.commit()
        conn.close()
        with pytest.raises(StoreSchemaError, match="written by schema"):
            DurableStore(path)

    def test_refuses_unstamped_foreign_file(self, tmp_path):
        path = str(tmp_path / "foreign.db")
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE something_else (x INTEGER)")
        conn.commit()
        conn.close()
        with pytest.raises(StoreSchemaError, match="no schema version"):
            DurableStore(path)

    def test_reopen_same_version_is_fine(self, tmp_path):
        path = str(tmp_path / "svc.db")
        with DurableStore(path) as s:
            _submit(s)
        with DurableStore(path) as s:
            assert len(s.jobs()) == 1


class TestJobStateMachine:
    def test_submit_claim_run_complete(self, store):
        job_id = _submit(store)
        job = store.claim_next()
        assert job is not None and job.id == job_id
        assert job.state == CLAIMED
        store.mark_running(job_id)
        assert store.job(job_id).state == RUNNING
        assert store.complete_job(job_id, "deadbeef")
        done = store.job(job_id)
        assert done.state == DONE and done.result_key == "deadbeef"
        assert store.counters()["completions"] == 1.0

    def test_complete_is_idempotent(self, store):
        job_id = _submit(store)
        store.claim_next()
        assert store.complete_job(job_id, "k1")
        # A duplicate completion (at-least-once replay) is a no-op:
        # no second counter bump, no overwritten result pointer.
        assert not store.complete_job(job_id, "k2")
        assert store.job(job_id).result_key == "k1"
        assert store.counters()["completions"] == 1.0

    def test_claim_orders_by_priority_then_id(self, store):
        low = _submit(store, priority=0)
        high = _submit(store, priority=5)
        also_low = _submit(store, priority=0)
        claimed = [store.claim_next().id for _ in range(3)]
        assert claimed == [high, low, also_low]

    def test_claim_respects_backoff_window(self, store):
        job_id = _submit(store)
        store.claim_next()
        store.fail_job(job_id, "transient", retryable=True, backoff_s=60.0)
        assert store.claim_next() is None  # still inside the window
        assert store.claim_next(now=time.time() + 61.0).id == job_id

    def test_retry_budget_exhaustion_goes_dead(self, store):
        job_id = _submit(store, max_retries=1)
        for expected in (PENDING, DEAD):
            store.claim_next(now=time.time() + 100.0)
            state = store.fail_job(job_id, "boom", retryable=True)
            assert state == expected
        assert store.counters()["dead_letters"] == 1.0
        assert store.counters()["retries"] == 1.0

    def test_non_retryable_fails_permanently(self, store):
        job_id = _submit(store, max_retries=5)
        store.claim_next()
        assert store.fail_job(job_id, "bad spec", retryable=False) == FAILED
        assert store.job(job_id).attempts == 1

    def test_cancel_only_before_running(self, store):
        queued = _submit(store)
        ok, state = store.cancel_job(queued)
        assert ok and state == CANCELLED
        running = _submit(store)
        store.claim_next()
        store.mark_running(running)
        ok, reason = store.cancel_job(running)
        assert not ok and "RUNNING" in reason

    def test_recover_orphans_reenqueues(self, store):
        claimed = _submit(store)
        store.claim_next()
        running = _submit(store)
        store.claim_next()
        store.mark_running(running)
        done = _submit(store)
        store.claim_next()
        store.complete_job(done, "k")
        assert store.recover_orphans() == 2
        states = {store.job(j).state for j in (claimed, running)}
        assert states == {PENDING}
        assert store.job(done).state == DONE
        assert store.counters()["recoveries"] == 2.0

    def test_queue_depth_counts_live_jobs_per_tenant(self, store):
        _submit(store, tenant="a")
        _submit(store, tenant="a")
        _submit(store, tenant="b")
        done = _submit(store, tenant="b")
        store.claim_next()  # live states still count toward depth
        with_done = store.claim_next()
        while with_done is not None and with_done.id != done:
            with_done = store.claim_next()
        assert store.queue_depth() == 4
        store.complete_job(done, "k")
        assert store.queue_depth() == 3
        assert store.queue_depth("a") == 2
        assert store.queue_depth("b") == 1


class TestTableGPersistence:
    ROWS = [
        {"key": "bs/1024", "alpha": 0.9, "weight": 1024.0,
         "category": "M-SL", "invocations": 3, "derived_at_items": 1024.0,
         "provisional": False, "quarantined": False},
        {"key": "bs/1024|co:mp2", "alpha": 0.4, "weight": 512.0,
         "category": "M-SL", "invocations": 1, "derived_at_items": 512.0,
         "provisional": False, "quarantined": False},
        {"key": "bfs/1", "alpha": 0.0, "weight": 1.0, "category": None,
         "invocations": 1, "derived_at_items": 1.0,
         "provisional": True, "quarantined": False},
        {"key": "rt/64", "alpha": 0.5, "weight": 64.0, "category": "C-SS",
         "invocations": 2, "derived_at_items": 64.0,
         "provisional": False, "quarantined": True},
    ]

    def test_round_trip_preserves_everything(self, store):
        store.save_table_rows("haswell-desktop", self.ROWS)
        loaded = store.load_table_rows("haswell-desktop")
        assert loaded == sorted(self.ROWS, key=lambda r: r["key"])

    def test_platforms_are_isolated(self, store):
        store.save_table_rows("haswell-desktop", self.ROWS)
        assert store.load_table_rows("baytrail-tablet") == []

    def test_merge_replaces_by_key(self, store):
        store.save_table_rows("p", self.ROWS)
        store.save_table_rows("p", [dict(self.ROWS[0], alpha=0.1)])
        by_key = {r["key"]: r for r in store.load_table_rows("p")}
        assert by_key["bs/1024"]["alpha"] == pytest.approx(0.1)
        assert len(by_key) == len(self.ROWS)

    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "svc.db")
        with DurableStore(path) as s:
            s.save_table_rows("p", self.ROWS)
        with DurableStore(path) as s:
            loaded = s.load_table_rows("p")
        quarantined = [r for r in loaded if r["quarantined"]]
        assert [r["key"] for r in quarantined] == ["rt/64"]
        assert any("|co:mp2" in r["key"] for r in loaded)


class TestCharacterizationAndMeta:
    def test_characterization_round_trip(self, store):
        store.save_characterization("haswell-desktop", '{"fit": 1}')
        assert store.load_characterization("haswell-desktop") == '{"fit": 1}'
        assert store.load_characterization("other") is None

    def test_meta_round_trip(self, store):
        store.set_meta("daemon.pid", "1234")
        assert store.get_meta("daemon.pid") == "1234"
        store.clear_meta("daemon.pid")
        assert store.get_meta("daemon.pid") is None

    def test_counters_accumulate(self, store):
        store.bump_counter("completions", 2.0)
        store.bump_counter("completions")
        assert store.counters()["completions"] == 3.0


def _hammer_writes(path: str) -> None:
    """Child entry point: write jobs and counters as fast as possible."""
    with DurableStore(path) as child_store:
        i = 0
        while True:
            child_store.submit_job('{"workload":"MB"}', f"sha{i}")
            child_store.bump_counter("hammer")
            i += 1


class TestKillNineSurvival:
    def test_sigkill_mid_write_rolls_back_cleanly(self, tmp_path):
        """SIGKILL a process writing concurrently; the file must
        reopen with a clean integrity check and consistent rows."""
        path = str(tmp_path / "svc.db")
        DurableStore(path).close()
        ctx = multiprocessing.get_context("fork")
        writer = ctx.Process(target=_hammer_writes, args=(path,))
        writer.start()
        deadline = time.monotonic() + 10.0
        with DurableStore(path) as watcher:
            while time.monotonic() < deadline:
                if watcher.counters().get("hammer", 0.0) >= 5.0:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("writer child never made progress")
        os.kill(writer.pid, signal.SIGKILL)
        writer.join()
        with DurableStore(path) as store:
            assert store.integrity_ok()
            jobs = store.jobs()
            assert len(jobs) >= 5
            assert all(isinstance(j, JobRow) and j.state == PENDING
                       for j in jobs)
            # The store stays fully writable after the crash.
            store.submit_job('{"workload":"MB"}', "after-crash")
            assert store.jobs()[-1].spec_sha == "after-crash"
