"""Kill-and-restart chaos, tier-1 sized: a small seeded sweep must
uphold all three crash-safety invariants (no lost jobs, no duplicated
side effects, byte-identical fingerprints).  The full acceptance sweep
(10 kill points x 2 platforms) runs as the ``crashchaos`` experiment.
"""

from repro.harness.crashchaos import run_crash_chaos
from repro.harness.figures import REGENERATORS


class TestCrashChaosSmall:
    def test_invariants_hold_across_kill_points(self, tmp_path):
        result = run_crash_chaos(
            platforms=("tablet",), kill_points=3,
            workloads=("BS", "MM"), seed=7, work_dir=str(tmp_path))
        assert result.ok, result.render()
        assert len(result.cells) == 3
        # Seeded delays land at least one kill mid-run; a sweep where
        # every daemon finished first would have tested nothing.
        assert result.kills >= 1
        reference = result.references["tablet"]
        for cell in result.cells:
            assert cell.fingerprint == reference

    def test_render_and_fingerprint(self, tmp_path):
        result = run_crash_chaos(
            platforms=("tablet",), kill_points=1,
            workloads=("BS",), seed=11, work_dir=str(tmp_path))
        text = result.render()
        assert "Crash-restart chaos campaign" in text
        assert "all invariants held" in text
        assert len(result.fingerprint()) == 64

    def test_registered_as_experiment(self):
        assert "crashchaos" in REGENERATORS
