"""JobSpec canonicalization, admission control, and backoff policy."""

import pytest

from repro.errors import ServiceError
from repro.service.jobs import (
    AdmissionPolicy,
    BackoffPolicy,
    JobSpec,
    table_digest,
)


class TestJobSpec:
    def test_json_round_trip(self):
        spec = JobSpec(workload="BS", platform="tablet", scheduler="eas",
                       metric="energy", fault_level=0.1, seed=3,
                       tick_mode="fast", warm_table=False)
        assert JobSpec.from_json(spec.to_json()) == spec

    def test_sha_is_stable_and_sensitive(self):
        a = JobSpec(workload="BS")
        b = JobSpec(workload="BS")
        c = JobSpec(workload="MM")
        assert a.sha() == b.sha()
        assert a.sha() != c.sha()

    def test_unknown_fields_rejected(self):
        with pytest.raises(ServiceError, match="unknown job spec field"):
            JobSpec.from_json('{"workload": "BS", "color": "red"}')

    def test_unparseable_json_rejected(self):
        with pytest.raises(ServiceError, match="unparseable"):
            JobSpec.from_json("{nope")

    @pytest.mark.parametrize("kwargs, match", [
        ({"workload": "BS", "platform": "phone"}, "unknown platform"),
        ({"workload": "BS", "scheduler": "magic"}, "unknown scheduler"),
        ({"workload": "BS", "scheduler": "static"}, "needs an alpha"),
        ({"workload": "BS", "tick_mode": "warp"}, "unknown tick mode"),
    ])
    def test_validation(self, kwargs, match):
        with pytest.raises(ServiceError, match=match):
            JobSpec(**kwargs)

    def test_warm_only_for_eas(self):
        assert JobSpec(workload="BS", scheduler="eas").warm
        assert not JobSpec(workload="BS", scheduler="eas",
                           warm_table=False).warm
        assert not JobSpec(workload="BS", scheduler="cpu").warm

    def test_warm_key_binds_the_table_snapshot(self):
        spec = JobSpec(workload="BS")
        empty = table_digest([])
        filled = table_digest([{"key": "k", "alpha": 0.5}])
        assert spec.warm_cache_key(empty) != spec.warm_cache_key(filled)
        assert spec.warm_cache_key(empty) == spec.warm_cache_key(empty)

    def test_table_digest_is_order_independent(self):
        a = {"key": "a", "alpha": 0.1}
        b = {"key": "b", "alpha": 0.2}
        assert table_digest([a, b]) == table_digest([b, a])

    def test_cold_runspec_key_differs_by_platform(self):
        desktop = JobSpec(workload="BS", scheduler="cpu")
        tablet = JobSpec(workload="BS", scheduler="cpu", platform="tablet")
        assert (desktop.to_runspec().cache_key()
                != tablet.to_runspec().cache_key())


class TestAdmissionPolicy:
    def test_admits_within_bounds(self):
        decision = AdmissionPolicy().admit(depth=0, tenant_depth=0,
                                           tenant="t")
        assert decision and decision.reason == "admitted"

    def test_rejects_full_queue_with_reason(self):
        policy = AdmissionPolicy(max_depth=2)
        decision = policy.admit(depth=2, tenant_depth=0, tenant="t")
        assert not decision
        assert "queue full" in decision.reason

    def test_rejects_over_quota_tenant_with_reason(self):
        policy = AdmissionPolicy(max_depth=100, tenant_quota=1)
        decision = policy.admit(depth=5, tenant_depth=1, tenant="noisy")
        assert not decision
        assert "noisy" in decision.reason and "quota" in decision.reason

    def test_per_tenant_override(self):
        policy = AdmissionPolicy(tenant_quota=1,
                                 tenant_quotas={"bulk": 10})
        assert policy.admit(depth=5, tenant_depth=5, tenant="bulk")
        assert not policy.admit(depth=5, tenant_depth=5, tenant="other")


class TestBackoffPolicy:
    def test_deterministic_per_job_and_attempt(self):
        a = BackoffPolicy(seed=1)
        b = BackoffPolicy(seed=1)
        assert a.delay_s(7, 3) == b.delay_s(7, 3)
        assert a.delay_s(7, 3) != a.delay_s(8, 3)

    def test_grows_exponentially_until_cap(self):
        policy = BackoffPolicy(base_s=0.1, cap_s=1.0, seed=0)
        # Jitter is in [0.5, 1.0), so raw bounds still separate tiers.
        assert 0.05 <= policy.delay_s(1, 1) < 0.1
        assert 0.1 <= policy.delay_s(1, 2) < 0.2
        assert policy.delay_s(1, 20) < 1.0  # capped

    def test_zeroth_attempt_has_no_delay(self):
        assert BackoffPolicy().delay_s(1, 0) == 0.0
