"""SchedulerService end-to-end: execution, retries, replays, timeouts,
recovery, and the warm table-G fast path the service exists for.

Most tests run ``inline=True`` (in-process execution) for speed; the
watchdog-timeout test uses real supervised children, and the full
kill -9 story lives in ``test_crashchaos.py``.
"""

import time

import pytest

from repro.errors import ServiceError, WorkloadError
from repro.obs.observer import Observer
from repro.service import daemon as daemon_mod
from repro.service.daemon import SchedulerService
from repro.service.jobs import AdmissionPolicy, JobSpec
from repro.service.store import DEAD, DONE, FAILED, PENDING


def _service(tmp_path, **kwargs) -> SchedulerService:
    kwargs.setdefault("inline", True)
    return SchedulerService(str(tmp_path / "svc.db"),
                            str(tmp_path / "cache"), **kwargs)


@pytest.fixture
def tablet_spec():
    return JobSpec(workload="BS", platform="tablet", tick_mode="fast")


class TestEndToEnd:
    def test_submit_execute_complete(self, tmp_path, tablet_spec):
        service = _service(tmp_path)
        try:
            outcome = service.submit(tablet_spec)
            assert outcome.accepted
            service.run_until_idle()
            job = service.store.job(outcome.job_id)
            assert job.state == DONE and job.result_key
            payload = service.result_payload(job.id)
            assert payload["platform"] == "baytrail-tablet"
            assert payload["run"].time_s > 0.0
            # The learned table G was committed with the completion.
            assert service.store.load_table_rows("baytrail-tablet")
        finally:
            service.close()

    def test_result_payload_requires_done(self, tmp_path, tablet_spec):
        service = _service(tmp_path)
        try:
            outcome = service.submit(tablet_spec)
            with pytest.raises(ServiceError, match="no committed result"):
                service.result_payload(outcome.job_id)
        finally:
            service.close()

    def test_admission_rejects_tablet_unsupported_workload(self, tmp_path):
        service = _service(tmp_path)
        try:
            outcome = service.submit(
                JobSpec(workload="CC", platform="tablet"))
            assert not outcome.accepted
            assert "32-bit tablet" in outcome.decision.reason
            outcome = service.submit(JobSpec(workload="??"))
            assert not outcome.accepted
        finally:
            service.close()

    def test_admission_enforces_queue_bound(self, tmp_path, tablet_spec):
        service = _service(tmp_path,
                           admission=AdmissionPolicy(max_depth=1))
        try:
            assert service.submit(tablet_spec).accepted
            rejected = service.submit(tablet_spec)
            assert not rejected.accepted
            assert "queue full" in rejected.decision.reason
        finally:
            service.close()


class TestFailureHandling:
    def test_transient_failures_retry_then_dead_letter(
            self, tmp_path, tablet_spec, monkeypatch):
        def explode(*args, **kwargs):
            raise RuntimeError("infrastructure hiccup")

        monkeypatch.setattr(daemon_mod, "_run_warm_payload", explode)
        observer = Observer()
        service = _service(tmp_path, observer=observer)
        try:
            outcome = service.submit(tablet_spec, max_retries=1)
            service.run_until_idle()
            job = service.store.job(outcome.job_id)
            assert job.state == DEAD
            assert job.attempts == 2
            assert "infrastructure hiccup" in job.error
            counters = service.store.counters()
            assert counters["retries"] == 1.0
            assert counters["dead_letters"] == 1.0
            metrics = observer.metrics.snapshot()["counters"]
            assert metrics["service.failed_attempts"] == 2.0
        finally:
            service.close()

    def test_deterministic_errors_fail_without_retry(
            self, tmp_path, tablet_spec, monkeypatch):
        def reject(*args, **kwargs):
            raise WorkloadError("this workload is broken by definition")

        monkeypatch.setattr(daemon_mod, "_run_warm_payload", reject)
        service = _service(tmp_path)
        try:
            outcome = service.submit(tablet_spec, max_retries=5)
            service.run_until_idle()
            job = service.store.job(outcome.job_id)
            assert job.state == FAILED
            assert job.attempts == 1  # no retry burned on a sure loss
            assert "broken by definition" in job.error
        finally:
            service.close()

    def test_child_failure_carries_real_error_message(
            self, tmp_path, tablet_spec, monkeypatch):
        """In child mode the error crosses the process boundary via
        the marker file, classified for retryability."""
        def reject(*args, **kwargs):
            raise WorkloadError("broken in the child")

        monkeypatch.setattr(daemon_mod, "_run_warm_payload", reject)
        service = _service(tmp_path, inline=False)
        try:
            outcome = service.submit(tablet_spec, max_retries=5)
            service.run_until_idle()
            job = service.store.job(outcome.job_id)
            assert job.state == FAILED  # PERMANENT marker: no retries
            assert "broken in the child" in job.error
        finally:
            service.close()

    def test_watchdog_kills_overrunning_child(self, tmp_path, monkeypatch):
        def hang(*args, **kwargs):
            time.sleep(60.0)

        monkeypatch.setattr(daemon_mod, "_run_warm_payload", hang)
        observer = Observer()
        service = _service(tmp_path, inline=False, observer=observer)
        try:
            outcome = service.submit(
                JobSpec(workload="BS", platform="tablet",
                        tick_mode="fast"),
                max_retries=0, timeout_s=0.3)
            start = time.monotonic()
            service.run_until_idle()
            assert time.monotonic() - start < 30.0
            job = service.store.job(outcome.job_id)
            assert job.state == DEAD
            assert "watchdog" in job.error
            metrics = observer.metrics.snapshot()["counters"]
            assert metrics["service.timeouts"] == 1.0
        finally:
            service.close()


class TestReplayAndRecovery:
    def test_identical_cold_jobs_replay_from_cache(self, tmp_path):
        observer = Observer()
        service = _service(tmp_path, observer=observer)
        spec = JobSpec(workload="BS", platform="tablet",
                       scheduler="cpu", tick_mode="fast")
        try:
            first = service.submit(spec)
            second = service.submit(spec)
            service.run_until_idle()
            a = service.store.job(first.job_id)
            b = service.store.job(second.job_id)
            assert a.state == b.state == DONE
            assert a.result_key == b.result_key
            metrics = observer.metrics.snapshot()["counters"]
            assert metrics["service.replays"] == 1.0
            # Exactly-once side effects even with two executions asked.
            assert service.store.counters()["completions"] == 2.0
        finally:
            service.close()

    def test_orphaned_job_recovers_and_completes(self, tmp_path,
                                                 tablet_spec):
        service = _service(tmp_path)
        try:
            outcome = service.submit(tablet_spec)
            claimed = service.store.claim_next()
            assert claimed.id == outcome.job_id
            # Simulate the daemon dying here: a second lifetime starts.
            assert service.recover() == 1
            assert service.store.job(outcome.job_id).state == PENDING
            service.run_until_idle()
            assert service.store.job(outcome.job_id).state == DONE
        finally:
            service.close()

    def test_fingerprint_stable_across_instances(self, tmp_path,
                                                 tablet_spec):
        service = _service(tmp_path)
        try:
            service.submit(tablet_spec)
            service.run_until_idle()
            first = service.fingerprint()
        finally:
            service.close()
        reopened = _service(tmp_path)
        try:
            assert reopened.fingerprint() == first
        finally:
            reopened.close()


class TestWarmTableFastPath:
    def test_second_submission_answers_from_table_g(self, tmp_path,
                                                    tablet_spec):
        """The acceptance property: a previously seen kernel is
        answered from the persisted table G - every decision exits
        through the table, zero profiling rounds, >= 10x faster."""
        from repro.harness import suite

        # Force the cold run to pay the full characterize+profile cost.
        suite._characterization_cache.pop("baytrail-tablet", None)
        service = _service(tmp_path)
        try:
            cold = service.submit(tablet_spec)
            start = time.monotonic()
            service.run_until_idle()
            cold_wall = time.monotonic() - start
            cold_payload = service.result_payload(cold.job_id)
            assert any(d.profile_rounds > 0
                       for d in cold_payload["decisions"])
        finally:
            service.close()

        # A fresh service lifetime: everything must come from the store.
        suite._characterization_cache.pop("baytrail-tablet", None)
        warm_service = _service(tmp_path)
        try:
            warm = warm_service.submit(tablet_spec)
            start = time.monotonic()
            warm_service.run_until_idle()
            warm_wall = time.monotonic() - start
            payload = warm_service.result_payload(warm.job_id)
            decisions = payload["decisions"]
            assert decisions, "warm run recorded no decisions"
            assert all(d.exit_path == "table-hit" for d in decisions)
            assert all(d.profile_rounds == 0 for d in decisions)
            assert all(d.from_table for d in decisions)
            # The zero-profiling assertions above are the semantic
            # gate; the wall-clock ratio uses a load-tolerant 5x margin
            # (an uncontended run clears the 10x acceptance bar).
            assert warm_wall * 5.0 <= cold_wall, (
                f"warm path not fast enough: cold={cold_wall:.3f}s "
                f"warm={warm_wall:.3f}s")
        finally:
            warm_service.close()
