"""Unit helpers, exception hierarchy, and the public API surface."""

import pytest

import repro
from repro import errors, units


class TestUnits:
    def test_time_conversions(self):
        assert units.ms(100.0) == pytest.approx(0.1)
        assert units.us(5.0) == pytest.approx(5e-6)
        assert units.seconds_to_ms(0.25) == pytest.approx(250.0)

    def test_frequency_conversions(self):
        assert units.ghz(3.4) == pytest.approx(3.4e9)
        assert units.mhz(350.0) == pytest.approx(3.5e8)

    def test_data_conversions(self):
        assert units.gb_per_s(25.6) == pytest.approx(25.6e9)
        assert units.CACHELINE_BYTES == 64
        assert units.MIB == 1024 ** 2

    def test_energy_unit_roundtrip(self):
        unit = units.HASWELL_ENERGY_UNIT_J
        raw = units.joules_to_units(1.0, unit)
        assert units.units_to_joules(raw, unit) == pytest.approx(
            1.0, abs=unit)

    def test_haswell_energy_unit_value(self):
        # RAPL on Haswell-class parts: 1/2^14 J ~ 61 uJ.
        assert units.HASWELL_ENERGY_UNIT_J == pytest.approx(6.1035e-5,
                                                            rel=1e-3)


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        errors.SpecError, errors.SimulationError, errors.CounterError,
        errors.RuntimeLayerError, errors.SchedulingError,
        errors.CharacterizationError, errors.ClassificationError,
        errors.WorkloadError, errors.HarnessError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)
        with pytest.raises(errors.ReproError):
            raise exc("boom")


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_headline_objects_usable(self):
        assert repro.EDP.value(10.0, 2.0) == pytest.approx(40.0)
        spec = repro.haswell_desktop()
        assert spec.gpu.hardware_parallelism == 2240
        assert len(repro.all_workloads()) == 12
