"""Deadline-constrained EAS end to end (docs/OBJECTIVES.md).

The scheduler with a :class:`ConstrainedMetric` runs the feasible-set
grid search of :meth:`AlphaOptimizer.best_alpha_constrained`; when no
alpha meets the budget the invocation runs at min-T and exits through
``deadline-infeasible``.  The acceptance sweep at the bottom checks
the feasible-set argmin against brute force on every Table-1 workload
x both platforms, using each workload's own profiled throughputs and
its classified category's characterization curve.
"""

import math

import pytest

from repro.core.classification import ClassificationInputs, OnlineClassifier
from repro.core.metrics import EDP, ConstrainedMetric
from repro.core.optimizer import AlphaOptimizer, alpha_grid
from repro.core.scheduler import EnergyAwareScheduler
from repro.core.time_model import ExecutionTimeModel
from repro.obs.records import ALL_EXIT_PATHS, EXIT_DEADLINE_INFEASIBLE
from repro.runtime.kernel import Kernel
from repro.runtime.runtime import ConcordRuntime, KernelLaunch
from repro.soc.cost_model import KernelCostModel
from repro.soc.faults import FaultConfig, FaultySoC
from repro.soc.simulator import IntegratedProcessor
from repro.soc.spec import baytrail_tablet, haswell_desktop
from repro.workloads.registry import suite_workloads

N_ITEMS = 2_000_000.0


def make_kernel(name="budgeted"):
    return Kernel(name=name, cost=KernelCostModel(
        name=name, instructions_per_item=500.0,
        loadstore_fraction=0.2, l3_miss_rate=0.0,
        cpu_simd_efficiency=0.5, gpu_simd_efficiency=0.5))


def run_eas(characterization, platform_spec, deadline_s,
            kernel=None, processor=None):
    scheduler = EnergyAwareScheduler(
        characterization, ConstrainedMetric.constrain(EDP, deadline_s))
    processor = processor or IntegratedProcessor(platform_spec)
    ConcordRuntime(processor).parallel_for(
        kernel or make_kernel(), N_ITEMS, scheduler)
    return scheduler


class TestExitPath:
    def test_infeasible_exit_is_a_known_path(self):
        assert EXIT_DEADLINE_INFEASIBLE in ALL_EXIT_PATHS
        assert EXIT_DEADLINE_INFEASIBLE == "deadline-infeasible"

    def test_loose_budget_matches_unconstrained_choice(
            self, desktop, desktop_characterization):
        free = EnergyAwareScheduler(desktop_characterization, EDP)
        ConcordRuntime(IntegratedProcessor(desktop)).parallel_for(
            make_kernel(), N_ITEMS, free)
        constrained = run_eas(desktop_characterization, desktop, 1e9)
        [a], [b] = free.decisions, constrained.decisions
        assert b.exit_path == a.exit_path
        assert b.alpha == a.alpha

    def test_tight_budget_exits_deadline_infeasible(
            self, desktop, desktop_characterization):
        scheduler = run_eas(desktop_characterization, desktop, 1e-9)
        [d] = scheduler.decisions
        assert d.exit_path == EXIT_DEADLINE_INFEASIBLE
        assert "deadline-infeasible" in d.notes
        assert "min-T" in (d.fallback_reason or "")

    def test_infeasible_invocation_still_completes_all_items(
            self, desktop, desktop_characterization):
        processor = IntegratedProcessor(desktop)
        runtime = ConcordRuntime(processor)
        scheduler = EnergyAwareScheduler(
            desktop_characterization, ConstrainedMetric.constrain(EDP, 1e-9))
        result = runtime.parallel_for(make_kernel(), N_ITEMS, scheduler)
        assert result.cpu_items + result.gpu_items == pytest.approx(
            N_ITEMS, rel=1e-6)

    def test_deadline_between_platforms(
            self, desktop, tablet, desktop_characterization,
            tablet_characterization):
        """A budget the desktop meets but the slower tablet cannot."""
        fast = EnergyAwareScheduler(desktop_characterization, EDP)
        t_desktop = _invocation_time(desktop, fast)
        slow = EnergyAwareScheduler(tablet_characterization, EDP)
        t_tablet = _invocation_time(tablet, slow)
        assert t_tablet > t_desktop
        deadline = math.sqrt(t_desktop * t_tablet)  # strictly between

        on_desktop = run_eas(desktop_characterization, desktop, deadline)
        on_tablet = run_eas(tablet_characterization, tablet, deadline)
        assert on_desktop.decisions[-1].exit_path != EXIT_DEADLINE_INFEASIBLE
        assert on_tablet.decisions[-1].exit_path == EXIT_DEADLINE_INFEASIBLE

    def test_faulty_gpu_with_deadline_still_degrades_cleanly(
            self, desktop, desktop_characterization):
        """A dead GPU (every launch faults) plus a tight budget: the
        fault pipeline owns the exit and the run drains on the CPU -
        the deadline machinery must not mask or crash it."""
        scheduler = EnergyAwareScheduler(
            desktop_characterization, ConstrainedMetric.constrain(EDP, 1e-9))
        faulty = FaultySoC(IntegratedProcessor(desktop),
                           FaultConfig(seed=1, gpu_launch_failure_prob=1.0))
        result = ConcordRuntime(faulty).parallel_for(
            make_kernel("dead-gpu"), N_ITEMS, scheduler)
        assert result.cpu_items + result.gpu_items == pytest.approx(
            N_ITEMS, rel=1e-6)
        assert scheduler.decisions
        assert all(d.exit_path in ALL_EXIT_PATHS
                   for d in scheduler.decisions)


def _invocation_time(spec, scheduler, kernel=None):
    processor = IntegratedProcessor(spec)
    ConcordRuntime(processor).parallel_for(
        kernel or make_kernel(), N_ITEMS, scheduler)
    return processor.now


# -- Table-1 acceptance sweep -----------------------------------------------------

def _profiled_model_and_curve(spec, characterization, workload):
    """One profiling round on a fresh SoC -> (time model, power curve)."""
    processor = IntegratedProcessor(spec)
    runtime = ConcordRuntime(processor)
    kernel = workload.make_kernel()
    biggest = max(workload.invocations(), key=lambda i: i.n_items)
    launch = KernelLaunch(processor, kernel, biggest.n_items,
                          runtime._cost_profile(kernel))
    chunk = min(float(spec.gpu_profile_size), biggest.n_items * 0.5)
    observation = launch.profile_chunk(chunk)
    category = OnlineClassifier().classify(ClassificationInputs(
        l3_misses=observation.counters.l3_misses,
        loadstore_instructions=observation.counters.loadstore_instructions,
        cpu_throughput=observation.cpu_throughput,
        gpu_throughput=observation.gpu_throughput,
        remaining_items=launch.remaining_items))
    model = ExecutionTimeModel(
        cpu_throughput=observation.cpu_throughput,
        gpu_throughput=observation.gpu_throughput,
        n_items=launch.remaining_items)
    return model, characterization.curve_for(category)


def _cells():
    cells = []
    for platform, tablet in (("desktop", False), ("tablet", True)):
        for workload in suite_workloads(tablet=tablet):
            cells.append((platform, workload.abbrev))
    return cells


@pytest.mark.parametrize("platform,abbrev", _cells())
class TestTable1ConstrainedArgmin:
    """Acceptance: on every Table-1 workload x platform the constrained
    search returns the brute-force feasible-set argmin, and flags
    infeasibility when the budget is unattainable."""

    def _setup(self, platform, abbrev, desktop_characterization,
               tablet_characterization):
        tablet = platform == "tablet"
        spec = baytrail_tablet() if tablet else haswell_desktop()
        characterization = (tablet_characterization if tablet
                            else desktop_characterization)
        workload = next(w for w in suite_workloads(tablet=tablet)
                        if w.abbrev == abbrev)
        return spec, _profiled_model_and_curve(spec, characterization,
                                               workload)

    def test_feasible_argmin_matches_brute_force(
            self, platform, abbrev, desktop_characterization,
            tablet_characterization):
        _, (model, curve) = self._setup(
            platform, abbrev, desktop_characterization,
            tablet_characterization)
        times = {a: model.total_time(a) for a in alpha_grid(0.1)}
        min_t = min(t for t in times.values() if math.isfinite(t))
        deadline = 1.2 * min_t  # loose enough for a non-trivial set
        feasible = [a for a, t in times.items() if t <= deadline]
        assert feasible
        expected = min(feasible,
                       key=lambda a: EDP.value(curve.power(a), times[a]))
        alpha, obj, ok = AlphaOptimizer(EDP, 0.1).best_alpha_constrained(
            curve, model, deadline)
        assert ok
        assert alpha == expected
        assert obj == pytest.approx(
            EDP.value(curve.power(alpha), times[alpha]))

    def test_unattainable_budget_flags_infeasible_min_t(
            self, platform, abbrev, desktop_characterization,
            tablet_characterization):
        _, (model, curve) = self._setup(
            platform, abbrev, desktop_characterization,
            tablet_characterization)
        times = {a: model.total_time(a) for a in alpha_grid(0.1)
                 if math.isfinite(model.total_time(a))}
        min_t = min(times.values())
        alpha, _, ok = AlphaOptimizer(EDP, 0.1).best_alpha_constrained(
            curve, model, 0.5 * min_t)
        assert not ok
        assert times[alpha] == min_t
