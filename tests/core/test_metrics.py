"""Energy metrics: E, EDP, ED2 and custom objectives."""

import pytest

from repro.core.metrics import ED2, EDP, ENERGY, EnergyMetric, metric_by_name
from repro.errors import SchedulingError


class TestStandardMetrics:
    def test_energy_is_power_times_time(self):
        assert ENERGY.value(10.0, 2.0) == pytest.approx(20.0)

    def test_edp_weights_time_quadratically(self):
        assert EDP.value(10.0, 2.0) == pytest.approx(40.0)

    def test_ed2_weights_time_cubically(self):
        assert ED2.value(10.0, 2.0) == pytest.approx(80.0)

    def test_from_energy_matches_value(self):
        # E = 30 J over 3 s -> P = 10 W; EDP = P * T^2 = 90.
        assert EDP.from_energy(30.0, 3.0) == pytest.approx(90.0)
        assert ENERGY.from_energy(30.0, 3.0) == pytest.approx(30.0)

    def test_from_energy_rejects_zero_time(self):
        with pytest.raises(SchedulingError):
            ENERGY.from_energy(10.0, 0.0)

    def test_value_rejects_negative_inputs(self):
        with pytest.raises(SchedulingError):
            EDP.value(-1.0, 1.0)

    def test_faster_beats_slower_at_equal_energy_for_edp(self):
        """EDP prefers the faster of two equal-energy executions."""
        slow = EDP.from_energy(100.0, 10.0)
        fast = EDP.from_energy(100.0, 5.0)
        assert fast < slow

    def test_energy_indifferent_to_speed_at_equal_energy(self):
        assert ENERGY.from_energy(100.0, 10.0) == ENERGY.from_energy(100.0, 5.0)


class TestCustomMetrics:
    def test_custom_function(self):
        battery = EnergyMetric(name="battery",
                               custom_fn=lambda p, t: p * t + 0.5 * t)
        assert battery.value(10.0, 2.0) == pytest.approx(21.0)

    def test_rejects_sub_linear_delay_exponent(self):
        with pytest.raises(SchedulingError):
            EnergyMetric(name="bogus", delay_exponent=0.5)


class TestRegistry:
    @pytest.mark.parametrize("name,metric", [
        ("energy", ENERGY), ("edp", EDP), ("ed2", ED2), ("EDP", EDP),
    ])
    def test_lookup(self, name, metric):
        assert metric_by_name(name) is metric

    def test_unknown_name(self):
        with pytest.raises(SchedulingError):
            metric_by_name("nonsense")
