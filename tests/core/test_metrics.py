"""Energy metrics: E, EDP, ED2, custom and deadline-constrained."""

import pytest

from repro.core.metrics import (
    ED2,
    EDP,
    ENERGY,
    ConstrainedMetric,
    EnergyMetric,
    metric_by_name,
)
from repro.errors import SchedulingError, UnknownNameError


class TestStandardMetrics:
    def test_energy_is_power_times_time(self):
        assert ENERGY.value(10.0, 2.0) == pytest.approx(20.0)

    def test_edp_weights_time_quadratically(self):
        assert EDP.value(10.0, 2.0) == pytest.approx(40.0)

    def test_ed2_weights_time_cubically(self):
        assert ED2.value(10.0, 2.0) == pytest.approx(80.0)

    def test_from_energy_matches_value(self):
        # E = 30 J over 3 s -> P = 10 W; EDP = P * T^2 = 90.
        assert EDP.from_energy(30.0, 3.0) == pytest.approx(90.0)
        assert ENERGY.from_energy(30.0, 3.0) == pytest.approx(30.0)

    def test_from_energy_rejects_zero_time(self):
        with pytest.raises(SchedulingError):
            ENERGY.from_energy(10.0, 0.0)

    def test_value_rejects_zero_time(self):
        """Regression: ``value`` accepted time_s == 0 while
        ``from_energy`` rejected it - the two must agree on the
        degenerate-input contract."""
        with pytest.raises(SchedulingError):
            ENERGY.value(10.0, 0.0)
        with pytest.raises(SchedulingError):
            EDP.value(10.0, -1.0)

    def test_value_rejects_negative_inputs(self):
        with pytest.raises(SchedulingError):
            EDP.value(-1.0, 1.0)

    def test_faster_beats_slower_at_equal_energy_for_edp(self):
        """EDP prefers the faster of two equal-energy executions."""
        slow = EDP.from_energy(100.0, 10.0)
        fast = EDP.from_energy(100.0, 5.0)
        assert fast < slow

    def test_energy_indifferent_to_speed_at_equal_energy(self):
        assert ENERGY.from_energy(100.0, 10.0) == ENERGY.from_energy(100.0, 5.0)


class TestCustomMetrics:
    def test_custom_function(self):
        battery = EnergyMetric(name="battery",
                               custom_fn=lambda p, t: p * t + 0.5 * t)
        assert battery.value(10.0, 2.0) == pytest.approx(21.0)

    def test_rejects_sub_linear_delay_exponent(self):
        with pytest.raises(SchedulingError):
            EnergyMetric(name="bogus", delay_exponent=0.5)

    @pytest.mark.parametrize("name", ["edp", "EDP", "energy", "ed2"])
    def test_custom_fn_rejects_standard_name_collision(self, name):
        """Regression: a custom_fn metric named "edp" silently aliased
        the standard EDP in name-keyed lookups and cache keys."""
        with pytest.raises(SchedulingError):
            EnergyMetric(name=name, custom_fn=lambda p, t: p)

    def test_custom_fn_with_distinct_name_is_fine(self):
        metric = EnergyMetric(name="battery2", custom_fn=lambda p, t: p)
        assert metric.value(3.0, 1.0) == 3.0


class TestRegistry:
    @pytest.mark.parametrize("name,metric", [
        ("energy", ENERGY), ("edp", EDP), ("ed2", ED2), ("EDP", EDP),
    ])
    def test_lookup(self, name, metric):
        assert metric_by_name(name) is metric

    def test_unknown_name(self):
        with pytest.raises(SchedulingError):
            metric_by_name("nonsense")


class TestConstrainedMetric:
    def test_constrain_builds_canonical_name(self):
        metric = ConstrainedMetric.constrain(EDP, 2.0)
        assert metric.name == "edp@2"
        assert metric.base_name == "edp"
        assert metric.deadline_s == 2.0
        assert metric.delay_exponent == EDP.delay_exponent

    def test_name_round_trips_through_registry(self):
        """The canonical name is the wire format: scheduler specs,
        cache keys, and JobSpecs all rebuild the metric by name."""
        for metric in (ConstrainedMetric.constrain(EDP, 2.0),
                       ConstrainedMetric.constrain(ENERGY, 0.5),
                       ConstrainedMetric.constrain(ED2, 40.0)):
            rebuilt = metric_by_name(metric.name)
            assert isinstance(rebuilt, ConstrainedMetric)
            assert rebuilt == metric

    def test_registry_parses_constrained_spelling(self):
        metric = metric_by_name("edp@2")
        assert isinstance(metric, ConstrainedMetric)
        assert metric.deadline_s == 2.0
        assert metric_by_name("energy@0.5").deadline_s == 0.5

    def test_value_is_the_base_objective(self):
        """The constraint lives in the feasible-set search, not in
        the objective arithmetic."""
        metric = ConstrainedMetric.constrain(EDP, 2.0)
        assert metric.value(10.0, 3.0) == EDP.value(10.0, 3.0)

    def test_feasibility_budget_is_inclusive(self):
        metric = ConstrainedMetric.constrain(EDP, 2.0)
        assert metric.feasible(2.0)
        assert metric.feasible(1.0)
        assert not metric.feasible(2.0000001)

    def test_unknown_base_raises_unknown_name(self):
        with pytest.raises(UnknownNameError):
            metric_by_name("watts@2")

    def test_bad_deadline_text_raises(self):
        with pytest.raises(SchedulingError):
            metric_by_name("edp@soon")

    @pytest.mark.parametrize("deadline", [0.0, -1.0, float("nan"),
                                          float("inf"), None, "2"])
    def test_rejects_bad_deadlines(self, deadline):
        with pytest.raises(SchedulingError):
            ConstrainedMetric.constrain(EDP, deadline)

    def test_rejects_custom_fn_base(self):
        custom = EnergyMetric(name="batt", custom_fn=lambda p, t: p)
        with pytest.raises(SchedulingError):
            ConstrainedMetric.constrain(custom, 2.0)

    def test_constraining_a_constrained_metric_rebases(self):
        """edp@2 under a new 5 s budget is edp@5, not edp@2@5."""
        metric = ConstrainedMetric.constrain(
            ConstrainedMetric.constrain(EDP, 2.0), 5.0)
        assert metric.name == "edp@5"
        assert metric.deadline_s == 5.0
