"""Online workload classification: the 0.33 and 100 ms thresholds."""

import pytest

from repro.core.categories import Boundedness, DeviceDuration
from repro.core.classification import (
    MEMORY_INTENSITY_THRESHOLD,
    SHORT_LONG_THRESHOLD_S,
    ClassificationInputs,
    OnlineClassifier,
)
from repro.errors import ClassificationError


def inputs(misses=0.0, loadstores=100.0, r_c=1e6, r_g=1e6, n_rem=1e5):
    return ClassificationInputs(
        l3_misses=misses, loadstore_instructions=loadstores,
        cpu_throughput=r_c, gpu_throughput=r_g, remaining_items=n_rem)


@pytest.fixture
def classifier():
    return OnlineClassifier()


class TestBoundedness:
    def test_paper_thresholds(self):
        assert MEMORY_INTENSITY_THRESHOLD == 0.33
        assert SHORT_LONG_THRESHOLD_S == pytest.approx(0.1)

    def test_memory_bound_above_threshold(self, classifier):
        assert classifier.boundedness(
            inputs(misses=34.0)) is Boundedness.MEMORY

    def test_compute_bound_at_threshold(self, classifier):
        """Strictly greater than 0.33 is required (paper: 'greater
        than 0.33')."""
        assert classifier.boundedness(
            inputs(misses=33.0)) is Boundedness.COMPUTE

    def test_no_loadstores_means_compute(self, classifier):
        assert classifier.boundedness(
            inputs(misses=0.0, loadstores=0.0)) is Boundedness.COMPUTE

    def test_negative_counters_rejected(self, classifier):
        with pytest.raises(ClassificationError):
            classifier.memory_intensity(inputs(misses=-1.0))


class TestDurations:
    def test_both_short(self, classifier):
        # 1e5 items at 1e7/s on each device alone: 10 ms.
        cpu, gpu = classifier.device_durations(inputs(r_c=1e7, r_g=1e7))
        assert cpu is DeviceDuration.SHORT
        assert gpu is DeviceDuration.SHORT

    def test_both_long(self, classifier):
        # 1e5 items at 1e5/s: 1 s on each device alone.
        cpu, gpu = classifier.device_durations(inputs(r_c=1e5, r_g=1e5))
        assert cpu is DeviceDuration.LONG
        assert gpu is DeviceDuration.LONG

    def test_asymmetric_devices(self, classifier):
        # CPU alone: 10 ms (short); GPU alone: 1 s (long).
        cpu, gpu = classifier.device_durations(inputs(r_c=1e7, r_g=1e5))
        assert cpu is DeviceDuration.SHORT
        assert gpu is DeviceDuration.LONG

    def test_stalled_device_is_long(self, classifier):
        cpu, gpu = classifier.device_durations(inputs(r_c=1e7, r_g=0.0))
        assert gpu is DeviceDuration.LONG

    def test_both_stalled_rejected(self, classifier):
        with pytest.raises(ClassificationError):
            classifier.device_durations(inputs(r_c=0.0, r_g=0.0))

    def test_threshold_is_configurable(self):
        lenient = OnlineClassifier(short_long_threshold_s=10.0)
        cpu, gpu = lenient.device_durations(inputs(r_c=1e5, r_g=1e5))
        assert cpu is DeviceDuration.SHORT


class TestFullClassification:
    def test_classify_combines_all_three_axes(self, classifier):
        category = classifier.classify(inputs(
            misses=50.0, loadstores=100.0, r_c=1e7, r_g=1e5))
        assert category.short_code == "M-SL"

    def test_matches_curve_table_keys(self, classifier,
                                      desktop_characterization):
        """Whatever the classifier produces, the characterization has
        a curve for it."""
        for r_c, r_g, misses in ((1e7, 1e7, 0.0), (1e5, 1e5, 50.0),
                                 (1e7, 1e5, 40.0), (1e5, 1e7, 10.0)):
            category = classifier.classify(inputs(
                misses=misses, r_c=r_c, r_g=r_g))
            assert desktop_characterization.curve_for(category) is not None
