""":class:`SchedulerConfig` validation and the legacy-kwargs shims."""

import warnings

import pytest

from repro.core.metrics import EDP
from repro.core.scheduler import (
    EasConfig,
    EasDecision,
    EnergyAwareScheduler,
    SchedulerConfig,
)
from repro.errors import SchedulingError
from repro.obs.records import DecisionRecord


class TestValidation:
    def test_defaults_are_valid(self):
        SchedulerConfig()  # __post_init__ validates

    @pytest.mark.parametrize("field,value", [
        ("alpha_step", 0.0),
        ("alpha_step", 1.5),
        ("profile_fraction", 0.0),
        ("profile_fraction", 1.1),
        ("chunk_growth", 0.5),
        ("reprofile_growth", 0.9),
        ("gpu_profile_size", 0),
        ("gpu_profile_size", -1),
        ("max_profile_retries", -1),
        ("retry_backoff_s", -0.1),
        ("fault_cooldown_s", -1.0),
        ("fault_budget", 0),
        ("max_profile_rounds", 0),
        ("gpu_busy_rechecks", -1),
        ("gpu_busy_recheck_idle_s", -1e-9),
    ])
    def test_rejects_out_of_range(self, field, value):
        with pytest.raises(SchedulingError, match=field):
            SchedulerConfig(**{field: value})

    def test_negative_convergence_tolerance_is_a_sentinel(self):
        """-1 disables convergence; it must stay constructible."""
        SchedulerConfig(convergence_tolerance=-1.0)

    def test_gpu_profile_size_none_means_platform_default(self):
        assert SchedulerConfig(gpu_profile_size=None).gpu_profile_size is None


class TestDeprecationShims:
    def test_easconfig_warns_but_works(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            config = EasConfig(fault_budget=5)
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        assert isinstance(config, SchedulerConfig)
        assert config.fault_budget == 5

    def test_scheduler_config_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            SchedulerConfig(fault_budget=5)

    def test_legacy_scheduler_kwargs_fold_into_config(
            self, desktop_characterization):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            scheduler = EnergyAwareScheduler(
                desktop_characterization, EDP, fault_budget=7)
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        assert scheduler.config.fault_budget == 7

    def test_unknown_legacy_kwarg_raises_with_field_list(
            self, desktop_characterization):
        with pytest.raises(SchedulingError, match="fault_budget"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                EnergyAwareScheduler(desktop_characterization, EDP,
                                     fault_budgett=7)

    def test_config_and_kwargs_together_rejected(
            self, desktop_characterization):
        with pytest.raises(SchedulingError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                EnergyAwareScheduler(desktop_characterization, EDP,
                                     config=SchedulerConfig(),
                                     fault_budget=7)

    def test_easdecision_alias(self):
        assert EasDecision is DecisionRecord
