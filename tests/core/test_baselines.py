"""Baseline schedulers: CPU, GPU, static-alpha, profiled-PERF."""

import pytest

from repro.core.baselines import (
    CpuOnlyScheduler,
    GpuOnlyScheduler,
    ProfiledPerfScheduler,
    StaticAlphaScheduler,
)
from repro.errors import SchedulingError
from repro.runtime.kernel import Kernel
from repro.runtime.runtime import ConcordRuntime
from repro.soc.cost_model import KernelCostModel
from repro.soc.simulator import IntegratedProcessor


@pytest.fixture
def kernel():
    return Kernel(name="base-k", cost=KernelCostModel(
        name="base-k", instructions_per_item=600.0,
        loadstore_fraction=0.2, l3_miss_rate=0.0,
        cpu_simd_efficiency=0.8, gpu_simd_efficiency=0.8))


@pytest.fixture
def runtime(desktop):
    return ConcordRuntime(IntegratedProcessor(desktop))


class TestSingleDevice:
    def test_cpu_only(self, runtime, kernel):
        result = runtime.parallel_for(kernel, 500_000.0, CpuOnlyScheduler())
        assert result.gpu_items == 0.0
        assert result.cpu_items == pytest.approx(500_000.0, rel=1e-6)

    def test_gpu_only(self, runtime, kernel):
        result = runtime.parallel_for(kernel, 500_000.0, GpuOnlyScheduler())
        assert result.cpu_items == 0.0
        assert result.gpu_items == pytest.approx(500_000.0, rel=1e-6)


class TestStaticAlpha:
    def test_fixed_split(self, runtime, kernel):
        result = runtime.parallel_for(kernel, 1_000_000.0,
                                      StaticAlphaScheduler(alpha=0.25))
        assert result.gpu_items == pytest.approx(250_000.0, rel=1e-6)

    def test_rejects_bad_alpha(self):
        with pytest.raises(SchedulingError):
            StaticAlphaScheduler(alpha=1.2)


class TestProfiledPerf:
    def test_profiles_and_picks_alpha_perf(self, runtime, kernel):
        scheduler = ProfiledPerfScheduler()
        result = runtime.parallel_for(kernel, 4_000_000.0, scheduler)
        assert result.profiled
        # The kernel's GPU is ~2-3x the CPU: alpha lands GPU-heavy.
        assert result.alpha > 0.5

    def test_reuses_table(self, runtime, kernel):
        scheduler = ProfiledPerfScheduler()
        runtime.parallel_for(kernel, 4_000_000.0, scheduler)
        second = runtime.parallel_for(kernel, 4_000_000.0, scheduler)
        assert not second.profiled

    def test_small_n_cpu_only(self, runtime, kernel):
        scheduler = ProfiledPerfScheduler()
        result = runtime.parallel_for(kernel, 100.0, scheduler)
        assert result.alpha == 0.0

    def test_perf_time_beats_single_device_on_long_kernel(self, desktop,
                                                          kernel):
        """The whole point of [12]: adaptive hybrid beats either device
        alone on runtime."""
        def run(scheduler):
            runtime = ConcordRuntime(IntegratedProcessor(desktop))
            return runtime.parallel_for(kernel, 4e7, scheduler).duration_s

        t_perf = run(ProfiledPerfScheduler())
        t_cpu = run(CpuOnlyScheduler())
        t_gpu = run(GpuOnlyScheduler())
        assert t_perf < t_cpu
        assert t_perf < t_gpu
