"""Every EAS exit path emits a structured :class:`DecisionRecord`.

One test per row of the exit-path table in :mod:`repro.obs.records`,
plus the audit-quality properties the chaos campaign relies on (fault
events named, fallback reasons explicit) and the semantic-equivalence
guarantee of the disabled observer.
"""

import pytest

from repro.core.metrics import EDP
from repro.core.scheduler import EnergyAwareScheduler, SchedulerConfig
from repro.errors import GpuFaultError
from repro.obs import ALL_EXIT_PATHS, Observer
from repro.obs.records import (
    EXIT_COOLDOWN,
    EXIT_DEADLINE_INFEASIBLE,
    EXIT_DEGRADED,
    EXIT_FAULT_DEGRADED,
    EXIT_GPU_BUSY,
    EXIT_PROFILED,
    EXIT_SMALL_N,
    EXIT_TABLE_HIT,
)
from repro.runtime.kernel import Kernel
from repro.runtime.runtime import ConcordRuntime
from repro.soc.cost_model import KernelCostModel
from repro.soc.faults import FaultConfig, FaultySoC
from repro.soc.simulator import IntegratedProcessor

N_ITEMS = 2_000_000.0


def make_kernel(name="audit"):
    return Kernel(name=name, cost=KernelCostModel(
        name=name, instructions_per_item=500.0,
        loadstore_fraction=0.2, l3_miss_rate=0.0,
        cpu_simd_efficiency=0.5, gpu_simd_efficiency=0.5))


class _ScriptedGpu:
    """Fail GPU-bearing phases per an explicit boolean script."""

    def __init__(self, inner, script):
        self.inner = inner
        self._script = list(script)

    def __getattr__(self, name):
        return getattr(self.inner, name)

    @property
    def gpu_busy(self):
        return self.inner.gpu_busy

    def run_phase(self, request):
        gpu_present = (request.gpu_region is not None
                       and request.gpu_region.items_remaining > 1e-9)
        if gpu_present and self._script and self._script.pop(0):
            self.inner.idle(self.inner.spec.gpu.kernel_launch_overhead_s)
            raise GpuFaultError("scripted launch failure")
        return self.inner.run_phase(request)


@pytest.fixture
def eas(desktop_characterization):
    return EnergyAwareScheduler(desktop_characterization, EDP)


def run_once(processor, kernel, scheduler, n=N_ITEMS):
    return ConcordRuntime(processor).parallel_for(kernel, n, scheduler)


class TestExitPaths:
    def test_profiled(self, desktop, eas):
        kernel = make_kernel()
        run_once(IntegratedProcessor(desktop), kernel, eas)
        [d] = eas.decisions
        assert d.exit_path == EXIT_PROFILED
        assert d.kernel == kernel.key
        assert d.n_items == N_ITEMS
        assert d.profile_rounds >= 1
        assert d.category_code is not None
        assert d.cpu_throughput > 0 and d.gpu_throughput > 0
        assert d.decision_overhead_s > 0
        assert not d.from_table and not d.table_hit
        assert d.fallback_reason is None and d.fault_events == []

    def test_table_hit(self, desktop, eas):
        kernel = make_kernel()
        processor = IntegratedProcessor(desktop)
        run_once(processor, kernel, eas)
        run_once(processor, kernel, eas)
        d = eas.decisions[-1]
        assert d.exit_path == EXIT_TABLE_HIT
        assert d.from_table and d.table_hit
        assert d.alpha == eas.decisions[0].alpha
        assert d.profile_rounds == 0

    def test_small_n(self, desktop, eas):
        kernel = make_kernel()
        n = float(desktop.gpu_profile_size) / 2
        run_once(IntegratedProcessor(desktop), kernel, eas, n=n)
        [d] = eas.decisions
        assert d.exit_path == EXIT_SMALL_N
        assert d.alpha == 0.0
        assert "GPU_PROFILE_SIZE" in d.fallback_reason

    def test_gpu_busy(self, desktop, eas):
        kernel = make_kernel()
        processor = IntegratedProcessor(desktop)
        processor.counters.account_gpu_busy(True, 0.0)
        run_once(processor, kernel, eas)
        [d] = eas.decisions
        assert d.exit_path == EXIT_GPU_BUSY
        assert d.alpha == 0.0
        assert "busy" in d.fallback_reason

    def test_fault_degraded_then_sticky_degraded(
            self, desktop, desktop_characterization):
        scheduler = EnergyAwareScheduler(desktop_characterization, EDP)
        kernel = make_kernel()
        faulty = FaultySoC(IntegratedProcessor(desktop),
                           FaultConfig(seed=1, gpu_launch_failure_prob=1.0))
        runtime = ConcordRuntime(faulty)
        runtime.parallel_for(kernel, N_ITEMS, scheduler)
        first = scheduler.decisions[-1]
        assert first.exit_path == EXIT_FAULT_DEGRADED
        assert str(scheduler.config.fault_budget) in first.fallback_reason
        # Named, ordered fault events from *this* invocation.
        assert len(first.fault_events) >= scheduler.config.fault_budget
        assert all("GPU" in e or "gpu" in e for e in first.fault_events)
        assert first.faults_observed >= scheduler.config.fault_budget

        runtime.parallel_for(kernel, N_ITEMS, scheduler)
        second = scheduler.decisions[-1]
        assert second.exit_path == EXIT_DEGRADED
        assert "sticky" in second.fallback_reason
        # The sticky record still names the original fault events.
        assert second.fault_events == first.fault_events

    def test_cooldown(self, desktop, desktop_characterization):
        """A transient fault with a cooldown configured: the *next*
        invocation inside the window is CPU-only with the window end
        named, and the one after the window profiles again."""
        config = SchedulerConfig(fault_budget=100, fault_cooldown_s=1e6)
        scheduler = EnergyAwareScheduler(desktop_characterization, EDP,
                                         config=config)
        kernel = make_kernel()
        scripted = _ScriptedGpu(IntegratedProcessor(desktop),
                                [True, False])
        runtime = ConcordRuntime(scripted)
        runtime.parallel_for(kernel, N_ITEMS, scheduler)
        runtime.parallel_for(kernel, N_ITEMS, scheduler)
        d = scheduler.decisions[-1]
        assert d.exit_path == EXIT_COOLDOWN
        assert "cooldown" in d.fallback_reason
        assert d.alpha == 0.0

    def test_profiled_with_partitioned_fault_names_the_fallback(
            self, desktop, desktop_characterization):
        """Profiling succeeds, every partitioned retry faults: the
        exit is still 'profiled' but the record explains the CPU
        drain."""
        config = SchedulerConfig(fault_budget=3, max_profile_retries=0)
        scheduler = EnergyAwareScheduler(desktop_characterization, EDP,
                                         config=config)
        kernel = make_kernel()
        # Pass profiling chunks through, fail everything afterwards.
        scripted = _ScriptedGpu(IntegratedProcessor(desktop), [])
        runtime = ConcordRuntime(scripted)
        runtime.parallel_for(kernel, N_ITEMS, scheduler)  # warm table G
        scripted._script = [True] * 50
        runtime.parallel_for(kernel, N_ITEMS, scheduler)
        d = scheduler.decisions[-1]
        assert d.exit_path == EXIT_TABLE_HIT
        assert d.alpha == 0.0
        assert d.fallback_reason is not None
        assert "CPU" in d.fallback_reason
        # The partitioned-phase faults, named and in order.
        assert [e for e in d.fault_events if e.startswith("partitioned:")]

    def test_quarantined_alpha_is_flagged(
            self, desktop, desktop_characterization):
        scheduler = EnergyAwareScheduler(desktop_characterization, EDP)
        kernel = make_kernel()
        scripted = _ScriptedGpu(IntegratedProcessor(desktop), [True])
        run_once(scripted, kernel, scheduler)
        [d] = scheduler.decisions
        assert d.exit_path == EXIT_PROFILED
        assert d.quarantined
        assert d.fault_events

    def test_every_exit_path_is_reachable(self):
        """The table in repro.obs.records is the closed set the
        decision-record tests walk: no path untested, no test outside
        the set (deadline-infeasible is exercised in
        tests/core/test_constrained_scheduling.py)."""
        tested = {EXIT_PROFILED, EXIT_TABLE_HIT, EXIT_SMALL_N,
                  EXIT_GPU_BUSY, EXIT_DEGRADED, EXIT_COOLDOWN,
                  EXIT_FAULT_DEGRADED, EXIT_DEADLINE_INFEASIBLE}
        assert tested == set(ALL_EXIT_PATHS)


class TestTableAuditSemantics:
    """``table_hit`` is raw presence; ``table_usable`` is eligibility.

    Regression: the two used to be conflated in one flag, so hit-rate
    metrics counted quarantined/provisional entries the scheduler
    refused to reuse.
    """

    def test_usable_reuse_sets_both_flags(self, desktop, eas):
        kernel = make_kernel()
        processor = IntegratedProcessor(desktop)
        run_once(processor, kernel, eas)
        run_once(processor, kernel, eas)
        d = eas.decisions[-1]
        assert d.exit_path == EXIT_TABLE_HIT
        assert d.table_hit and d.table_usable

    def test_quarantined_entry_is_hit_but_not_usable(
            self, desktop, desktop_characterization):
        scheduler = EnergyAwareScheduler(desktop_characterization, EDP)
        kernel = make_kernel()
        scripted = _ScriptedGpu(IntegratedProcessor(desktop), [True])
        runtime = ConcordRuntime(scripted)
        runtime.parallel_for(kernel, N_ITEMS, scheduler)
        assert scheduler.decisions[-1].quarantined
        runtime.parallel_for(kernel, N_ITEMS, scheduler)
        d = scheduler.decisions[-1]
        assert d.exit_path == EXIT_PROFILED
        assert d.table_hit and not d.table_usable

    def test_provisional_entry_is_hit_but_not_usable(self, desktop, eas):
        kernel = make_kernel()
        processor = IntegratedProcessor(desktop)
        small = float(desktop.gpu_profile_size) / 2
        run_once(processor, kernel, eas, n=small)
        assert eas.decisions[-1].exit_path == EXIT_SMALL_N
        run_once(processor, kernel, eas)
        d = eas.decisions[-1]
        assert d.exit_path == EXIT_PROFILED
        assert d.table_hit and not d.table_usable

    def test_metrics_count_hits_and_usable_separately(
            self, desktop, desktop_characterization):
        observer = Observer()
        scheduler = EnergyAwareScheduler(desktop_characterization, EDP,
                                         observer=observer)
        kernel = make_kernel()
        scripted = _ScriptedGpu(IntegratedProcessor(desktop), [True])
        runtime = ConcordRuntime(scripted)
        runtime.parallel_for(kernel, N_ITEMS, scheduler)  # quarantined
        runtime.parallel_for(kernel, N_ITEMS, scheduler)  # hit, unusable
        runtime.parallel_for(kernel, N_ITEMS, scheduler)  # hit, usable
        counters = observer.metrics.snapshot()["counters"]
        assert counters["eas.table_hits"] == 2
        assert counters["eas.table_usable"] == 1


class TestDebounceIdleAccounting:
    """Regression: gpu_busy debounce re-check idles burned simulated
    time that no decision record accounted for."""

    def test_debounce_idle_charged_to_gpu_busy_decision(
            self, desktop, desktop_characterization):
        config = SchedulerConfig(gpu_busy_rechecks=2,
                                 gpu_busy_recheck_idle_s=0.001)
        scheduler = EnergyAwareScheduler(desktop_characterization, EDP,
                                         config=config)
        processor = IntegratedProcessor(desktop)
        processor.counters.account_gpu_busy(True, 0.0)
        t0 = processor.now
        run_once(processor, make_kernel(), scheduler)
        [d] = scheduler.decisions
        assert d.exit_path == EXIT_GPU_BUSY
        assert d.debounce_idle_s == pytest.approx(0.002)
        assert processor.now >= t0 + 0.002

    def test_clean_read_charges_nothing(self, desktop, eas):
        run_once(IntegratedProcessor(desktop), make_kernel(), eas)
        [d] = eas.decisions
        assert d.debounce_idle_s == 0.0

    def test_charge_resets_between_invocations(
            self, desktop, desktop_characterization):
        config = SchedulerConfig(gpu_busy_rechecks=1,
                                 gpu_busy_recheck_idle_s=0.001)
        scheduler = EnergyAwareScheduler(desktop_characterization, EDP,
                                         config=config)
        processor = IntegratedProcessor(desktop)
        kernel = make_kernel()
        # Phases clear A26 on completion, so re-assert busy per run.
        processor.counters.account_gpu_busy(True, 0.0)
        run_once(processor, kernel, scheduler)
        processor.counters.account_gpu_busy(True, 0.0)
        run_once(processor, kernel, scheduler)
        first, second = scheduler.decisions
        assert first.debounce_idle_s == pytest.approx(0.001)
        assert second.debounce_idle_s == pytest.approx(0.001)

    def test_debounce_idle_surfaces_as_metric(
            self, desktop, desktop_characterization):
        observer = Observer()
        config = SchedulerConfig(gpu_busy_rechecks=2,
                                 gpu_busy_recheck_idle_s=0.001)
        scheduler = EnergyAwareScheduler(desktop_characterization, EDP,
                                         config=config, observer=observer)
        processor = IntegratedProcessor(desktop, observer=observer)
        processor.counters.account_gpu_busy(True, 0.0)
        ConcordRuntime(processor, observer=observer).parallel_for(
            make_kernel(), N_ITEMS, scheduler)
        histograms = observer.metrics.snapshot()["histograms"]
        assert "eas.gpu_busy_debounce_idle_s" in histograms


class TestRecordQuality:
    def test_records_are_json_ready_and_explainable(self, desktop, eas):
        import json

        kernel = make_kernel()
        processor = IntegratedProcessor(desktop)
        run_once(processor, kernel, eas)
        run_once(processor, kernel, eas, n=100.0)
        for d in eas.decisions:
            payload = json.loads(json.dumps(d.to_dict()))
            assert payload["exit_path"] == d.exit_path
            line = d.explain()
            assert kernel.key in line and d.exit_path in line

    def test_decision_overhead_is_microseconds(self, desktop, eas):
        run_once(IntegratedProcessor(desktop), make_kernel(), eas)
        [d] = eas.decisions
        assert 0.0 < d.decision_overhead_s < 0.01

    def test_observer_receives_the_same_records(
            self, desktop, desktop_characterization):
        observer = Observer()
        scheduler = EnergyAwareScheduler(desktop_characterization, EDP,
                                         observer=observer)
        processor = IntegratedProcessor(desktop, observer=observer)
        ConcordRuntime(processor, observer=observer).parallel_for(
            make_kernel(), N_ITEMS, scheduler)
        assert observer.decisions == scheduler.decisions
        # Stamped on the simulated timeline by the bound clock.
        assert all(d.sim_time_s is not None for d in observer.decisions)


class TestDisabledObserverEquivalence:
    def test_observed_run_schedules_identically(
            self, desktop, desktop_characterization):
        """Observability must never change scheduling: alpha, rounds,
        items, simulated time and energy all match bit-for-bit between
        an observed run and a bare one."""
        def run(observer):
            scheduler = EnergyAwareScheduler(desktop_characterization, EDP,
                                             observer=observer)
            processor = IntegratedProcessor(desktop, observer=observer)
            runtime = ConcordRuntime(processor, observer=observer)
            kernel = make_kernel()
            results = [runtime.parallel_for(kernel, N_ITEMS, scheduler),
                       runtime.parallel_for(kernel, N_ITEMS / 2, scheduler)]
            return results, processor.now, processor.msr.lifetime_joules, \
                scheduler.decisions

        bare_results, bare_t, bare_e, bare_decisions = run(None)
        obs_results, obs_t, obs_e, obs_decisions = run(Observer())

        assert obs_t == bare_t
        assert obs_e == bare_e
        for bare, observed in zip(bare_results, obs_results):
            assert observed.alpha == bare.alpha
            assert observed.profile_rounds == bare.profile_rounds
            assert observed.cpu_items == bare.cpu_items
            assert observed.gpu_items == bare.gpu_items
        for bare, observed in zip(bare_decisions, obs_decisions):
            assert observed.exit_path == bare.exit_path
            assert observed.alpha == bare.alpha
