"""The alpha grid search."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import EDP, ENERGY, ConstrainedMetric
from repro.core.optimizer import (
    AlphaOptimizer,
    alpha_grid,
    best_alpha_for,
)
from repro.core.power_curve import PowerCurve
from repro.core.time_model import ExecutionTimeModel
from repro.errors import SchedulingError


def flat_curve(watts=40.0):
    return PowerCurve(coefficients=(watts,))


def linear_curve(at0, at1):
    return PowerCurve(coefficients=(at1 - at0, at0))


class TestGrid:
    def test_paper_grid(self):
        grid = alpha_grid(0.1)
        assert len(grid) == 11
        assert grid[0] == 0.0
        assert grid[-1] == 1.0

    def test_finer_grid(self):
        assert len(alpha_grid(0.05)) == 21

    def test_rejects_bad_step(self):
        with pytest.raises(SchedulingError):
            alpha_grid(0.0)
        with pytest.raises(SchedulingError):
            alpha_grid(1.5)

    def test_non_divisor_step_keeps_pure_gpu_endpoint(self):
        """Regression: step=0.3 rounded to {0, 0.3, 0.6, 0.9} and
        silently dropped alpha=1.0 from the search, excluding the
        pure-GPU split for GPU-dominant kernels."""
        grid = alpha_grid(0.3)
        assert grid[-1] == 1.0
        assert grid == sorted(set(grid))

    @pytest.mark.parametrize("step", [0.3, 0.7, 0.15, 1.0, 0.4])
    def test_grid_is_closed_for_awkward_steps(self, step):
        grid = alpha_grid(step)
        assert grid[0] == 0.0
        assert grid[-1] == 1.0
        assert len(grid) == len(set(grid))


class TestBestAlpha:
    def test_flat_power_picks_alpha_perf(self):
        """With constant power, every time-monotone metric minimizes at
        the performance-optimal split (nearest grid point)."""
        model = ExecutionTimeModel(100.0, 300.0, 1e5)
        optimizer = AlphaOptimizer(metric=EDP, step=0.05)
        alpha, _ = optimizer.best_alpha(flat_curve(), model)
        assert alpha == pytest.approx(0.75, abs=0.05)

    def test_cheap_gpu_pulls_energy_toward_one(self):
        """A steep power drop toward the GPU shifts the energy optimum
        past alpha_perf - the Fig. 1 structure."""
        model = ExecutionTimeModel(100.0, 150.0, 1e5)
        steep = linear_curve(60.0, 10.0)
        optimizer = AlphaOptimizer(metric=ENERGY, step=0.1)
        alpha, _ = optimizer.best_alpha(steep, model)
        assert alpha > model.alpha_perf

    def test_expensive_gpu_pulls_energy_toward_zero(self):
        model = ExecutionTimeModel(150.0, 100.0, 1e5)
        steep = linear_curve(10.0, 60.0)
        optimizer = AlphaOptimizer(metric=ENERGY, step=0.1)
        alpha, _ = optimizer.best_alpha(steep, model)
        assert alpha < model.alpha_perf

    def test_edp_sits_between_energy_and_perf(self):
        """EDP balances the two objectives (the paper's motivation for
        reporting both)."""
        model = ExecutionTimeModel(100.0, 150.0, 1e5)
        curve = linear_curve(60.0, 10.0)
        perf_alpha = model.alpha_perf
        energy_alpha, _ = AlphaOptimizer(ENERGY, 0.05).best_alpha(curve, model)
        edp_alpha, _ = AlphaOptimizer(EDP, 0.05).best_alpha(curve, model)
        lo, hi = sorted((perf_alpha, energy_alpha))
        assert lo - 0.05 <= edp_alpha <= hi + 0.05

    def test_evaluations_cover_whole_grid(self):
        model = ExecutionTimeModel(100.0, 100.0, 1e5)
        evals = AlphaOptimizer(EDP, 0.1).evaluate(flat_curve(), model)
        assert len(evals) == 11
        assert all(e.objective > 0 for e in evals)

    @given(r_c=st.floats(1.0, 1e6), r_g=st.floats(1.0, 1e6),
           p0=st.floats(1.0, 100.0), p1=st.floats(1.0, 100.0))
    @settings(max_examples=60, deadline=None)
    def test_best_alpha_is_grid_minimum_property(self, r_c, r_g, p0, p1):
        model = ExecutionTimeModel(r_c, r_g, 1e5)
        curve = linear_curve(p0, p1)
        optimizer = AlphaOptimizer(EDP, 0.1)
        alpha, objective = optimizer.best_alpha(curve, model)
        for candidate in alpha_grid(0.1):
            value = EDP.value(curve.power(candidate),
                              model.total_time(candidate))
            assert objective <= value * (1 + 1e-12)


class TestConstrainedSearch:
    """Feasible-set search: min metric over {a : T(a) <= deadline}."""

    def _setup(self):
        # alpha_perf = 0.75 with these rates; energy optimum sits at
        # a different grid point under the steep curve.
        model = ExecutionTimeModel(100.0, 300.0, 1e5)
        curve = linear_curve(30.0, 60.0)
        return AlphaOptimizer(EDP, 0.1), curve, model

    def test_loose_deadline_matches_unconstrained(self):
        optimizer, curve, model = self._setup()
        free_alpha, free_obj = optimizer.best_alpha(curve, model)
        alpha, obj, feasible = optimizer.best_alpha_constrained(
            curve, model, deadline_s=1e9)
        assert feasible
        assert (alpha, obj) == (free_alpha, free_obj)

    def test_tight_deadline_restricts_to_feasible_set(self):
        optimizer, curve, model = self._setup()
        evals = optimizer.evaluate(curve, model)
        times = sorted(e.predicted_time_s for e in evals)
        # A budget between the two fastest grid points leaves exactly
        # one feasible alpha; the search must return it.
        deadline = (times[0] + times[1]) / 2.0
        alpha, obj, feasible = optimizer.best_alpha_constrained(
            curve, model, deadline)
        assert feasible
        chosen = [e for e in evals if e.alpha == alpha]
        assert chosen[0].predicted_time_s <= deadline

    def test_deadline_exactly_on_grid_point_is_feasible(self):
        """The budget is inclusive: T(alpha) == deadline qualifies."""
        optimizer, curve, model = self._setup()
        evals = optimizer.evaluate(curve, model)
        fastest = min(evals, key=lambda e: e.predicted_time_s)
        alpha, _, feasible = optimizer.best_alpha_constrained(
            curve, model, fastest.predicted_time_s)
        assert feasible
        assert alpha == fastest.alpha

    def test_infeasible_falls_back_to_min_time(self):
        optimizer, curve, model = self._setup()
        evals = optimizer.evaluate(curve, model)
        fastest = min(evals, key=lambda e: e.predicted_time_s)
        alpha, obj, feasible = optimizer.best_alpha_constrained(
            curve, model, fastest.predicted_time_s * 0.5)
        assert not feasible
        assert alpha == fastest.alpha
        assert obj == pytest.approx(fastest.objective)

    def test_dead_gpu_with_deadline_skips_stalled_endpoint(self):
        """alpha=1 is infinitely slow on a dead GPU; neither the
        feasible search nor the min-T fallback may pick it."""
        optimizer = AlphaOptimizer(EDP, 0.1)
        curve = flat_curve()
        model = ExecutionTimeModel(100.0, 0.0, 1e5)
        alpha, obj, feasible = optimizer.best_alpha_constrained(
            curve, model, deadline_s=1e9)
        assert feasible and alpha < 1.0
        alpha, _, feasible = optimizer.best_alpha_constrained(
            curve, model, deadline_s=1e-9)
        assert not feasible and alpha < 1.0

    def test_both_devices_stalled_raises(self):
        class StalledModel:
            def total_time(self, alpha):
                return float("inf")

        optimizer = AlphaOptimizer(EDP, 0.1)
        with pytest.raises(SchedulingError):
            optimizer.best_alpha_constrained(flat_curve(), StalledModel(),
                                             1.0)

    def test_best_alpha_delegates_for_constrained_metric(self):
        """AlphaOptimizer(ConstrainedMetric).best_alpha honors the
        deadline without callers opting in."""
        _, curve, model = self._setup()
        evals = AlphaOptimizer(EDP, 0.1).evaluate(curve, model)
        fastest = min(evals, key=lambda e: e.predicted_time_s)
        deadline = fastest.predicted_time_s * 1.001
        constrained = AlphaOptimizer(
            ConstrainedMetric.constrain(EDP, deadline), 0.1)
        alpha, _ = constrained.best_alpha(curve, model)
        assert model.total_time(alpha) <= deadline

    def test_best_alpha_for_respects_deadline(self):
        # Measured landscape: EDP minimum at 0.7, but 0.7 misses the
        # deadline; the fastest point is 0.2.
        times = {round(a, 1): 10.0 + abs(a - 0.2) * 10
                 for a in alpha_grid(0.1)}
        metric = ConstrainedMetric.constrain(EDP, 12.0)
        alpha = best_alpha_for(metric, power_fn=lambda a: 40.0 - 30.0 * a,
                               time_fn=lambda a: times[round(a, 1)])
        assert times[round(alpha, 1)] <= 12.0
        tight = ConstrainedMetric.constrain(EDP, 5.0)
        alpha = best_alpha_for(tight, power_fn=lambda a: 40.0,
                               time_fn=lambda a: times[round(a, 1)])
        assert alpha == pytest.approx(0.2)  # min-T fallback


class TestFunctionalHelper:
    def test_minimizes_measured_values(self):
        # Synthetic measured landscape with a known minimum at 0.7.
        times = {round(a, 1): 10.0 + abs(a - 0.7) * 10 for a in alpha_grid(0.1)}
        alpha = best_alpha_for(EDP, power_fn=lambda a: 40.0,
                               time_fn=lambda a: times[round(a, 1)])
        assert alpha == pytest.approx(0.7)
