"""The alpha grid search."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import EDP, ENERGY
from repro.core.optimizer import (
    AlphaOptimizer,
    alpha_grid,
    best_alpha_for,
)
from repro.core.power_curve import PowerCurve
from repro.core.time_model import ExecutionTimeModel
from repro.errors import SchedulingError


def flat_curve(watts=40.0):
    return PowerCurve(coefficients=(watts,))


def linear_curve(at0, at1):
    return PowerCurve(coefficients=(at1 - at0, at0))


class TestGrid:
    def test_paper_grid(self):
        grid = alpha_grid(0.1)
        assert len(grid) == 11
        assert grid[0] == 0.0
        assert grid[-1] == 1.0

    def test_finer_grid(self):
        assert len(alpha_grid(0.05)) == 21

    def test_rejects_bad_step(self):
        with pytest.raises(SchedulingError):
            alpha_grid(0.0)
        with pytest.raises(SchedulingError):
            alpha_grid(1.5)


class TestBestAlpha:
    def test_flat_power_picks_alpha_perf(self):
        """With constant power, every time-monotone metric minimizes at
        the performance-optimal split (nearest grid point)."""
        model = ExecutionTimeModel(100.0, 300.0, 1e5)
        optimizer = AlphaOptimizer(metric=EDP, step=0.05)
        alpha, _ = optimizer.best_alpha(flat_curve(), model)
        assert alpha == pytest.approx(0.75, abs=0.05)

    def test_cheap_gpu_pulls_energy_toward_one(self):
        """A steep power drop toward the GPU shifts the energy optimum
        past alpha_perf - the Fig. 1 structure."""
        model = ExecutionTimeModel(100.0, 150.0, 1e5)
        steep = linear_curve(60.0, 10.0)
        optimizer = AlphaOptimizer(metric=ENERGY, step=0.1)
        alpha, _ = optimizer.best_alpha(steep, model)
        assert alpha > model.alpha_perf

    def test_expensive_gpu_pulls_energy_toward_zero(self):
        model = ExecutionTimeModel(150.0, 100.0, 1e5)
        steep = linear_curve(10.0, 60.0)
        optimizer = AlphaOptimizer(metric=ENERGY, step=0.1)
        alpha, _ = optimizer.best_alpha(steep, model)
        assert alpha < model.alpha_perf

    def test_edp_sits_between_energy_and_perf(self):
        """EDP balances the two objectives (the paper's motivation for
        reporting both)."""
        model = ExecutionTimeModel(100.0, 150.0, 1e5)
        curve = linear_curve(60.0, 10.0)
        perf_alpha = model.alpha_perf
        energy_alpha, _ = AlphaOptimizer(ENERGY, 0.05).best_alpha(curve, model)
        edp_alpha, _ = AlphaOptimizer(EDP, 0.05).best_alpha(curve, model)
        lo, hi = sorted((perf_alpha, energy_alpha))
        assert lo - 0.05 <= edp_alpha <= hi + 0.05

    def test_evaluations_cover_whole_grid(self):
        model = ExecutionTimeModel(100.0, 100.0, 1e5)
        evals = AlphaOptimizer(EDP, 0.1).evaluate(flat_curve(), model)
        assert len(evals) == 11
        assert all(e.objective > 0 for e in evals)

    @given(r_c=st.floats(1.0, 1e6), r_g=st.floats(1.0, 1e6),
           p0=st.floats(1.0, 100.0), p1=st.floats(1.0, 100.0))
    @settings(max_examples=60, deadline=None)
    def test_best_alpha_is_grid_minimum_property(self, r_c, r_g, p0, p1):
        model = ExecutionTimeModel(r_c, r_g, 1e5)
        curve = linear_curve(p0, p1)
        optimizer = AlphaOptimizer(EDP, 0.1)
        alpha, objective = optimizer.best_alpha(curve, model)
        for candidate in alpha_grid(0.1):
            value = EDP.value(curve.power(candidate),
                              model.total_time(candidate))
            assert objective <= value * (1 + 1e-12)


class TestFunctionalHelper:
    def test_minimizes_measured_values(self):
        # Synthetic measured landscape with a known minimum at 0.7.
        times = {round(a, 1): 10.0 + abs(a - 0.7) * 10 for a in alpha_grid(0.1)}
        alpha = best_alpha_for(EDP, power_fn=lambda a: 40.0,
                               time_fn=lambda a: times[round(a, 1)])
        assert alpha == pytest.approx(0.7)
