"""Race-to-idle: sprint at alpha_PERF, then idle out the budget.

The classic alternative to EAS's ride-the-optimal-point answer; the
``objectives`` figure compares the two (docs/OBJECTIVES.md).
"""

import pytest

from repro.core.baselines import ProfiledPerfScheduler, RaceToIdleScheduler
from repro.errors import HarnessError, SchedulingError, ServiceError
from repro.harness.engine import RunSpec, SchedulerSpec, execute_spec
from repro.runtime.kernel import Kernel
from repro.runtime.runtime import ConcordRuntime
from repro.service.jobs import JobSpec
from repro.soc.cost_model import KernelCostModel
from repro.soc.simulator import IntegratedProcessor
from repro.soc.spec import haswell_desktop

N_ITEMS = 2_000_000.0


@pytest.fixture
def kernel():
    return Kernel(name="race-k", cost=KernelCostModel(
        name="race-k", instructions_per_item=500.0,
        loadstore_fraction=0.2, l3_miss_rate=0.0,
        cpu_simd_efficiency=0.5, gpu_simd_efficiency=0.5))


def sprint_time(desktop, kernel):
    processor = IntegratedProcessor(desktop)
    ConcordRuntime(processor).parallel_for(kernel, N_ITEMS,
                                           ProfiledPerfScheduler())
    return processor.now


class TestSprintAndIdle:
    def test_no_deadline_degenerates_to_pure_sprint(self, desktop, kernel):
        processor = IntegratedProcessor(desktop)
        ConcordRuntime(processor).parallel_for(kernel, N_ITEMS,
                                               RaceToIdleScheduler())
        assert processor.now == pytest.approx(sprint_time(desktop, kernel))

    def test_loose_deadline_idles_out_the_budget(self, desktop, kernel):
        budget = 2.0 * sprint_time(desktop, kernel)
        processor = IntegratedProcessor(desktop)
        scheduler = RaceToIdleScheduler(deadline_s=budget)
        result = ConcordRuntime(processor).parallel_for(kernel, N_ITEMS,
                                                        scheduler)
        # The idle tail is literal: the invocation's software-visible
        # window covers the whole budget.
        assert processor.now == pytest.approx(budget)
        assert "race-to-idle" in result.notes
        assert any(n.startswith("idle-slack:") for n in result.notes)

    def test_idle_tail_costs_idle_power_not_sprint_power(self, desktop,
                                                         kernel):
        sprint = IntegratedProcessor(desktop)
        sprint_run = ConcordRuntime(sprint).parallel_for(
            kernel, N_ITEMS, RaceToIdleScheduler())

        budget = 2.0 * sprint.now
        raced = IntegratedProcessor(desktop)
        raced_run = ConcordRuntime(raced).parallel_for(
            kernel, N_ITEMS, RaceToIdleScheduler(deadline_s=budget))
        # Energy grows by the idle-floor draw over the slack window -
        # far less than doubling despite doubling the time.
        assert raced_run.energy_j > sprint_run.energy_j
        assert raced_run.energy_j < 2.0 * sprint_run.energy_j
        assert raced_run.duration_s == pytest.approx(
            2.0 * sprint_run.duration_s)

    def test_overrun_budget_is_noted_without_idling(self, desktop, kernel):
        tight = 0.5 * sprint_time(desktop, kernel)
        processor = IntegratedProcessor(desktop)
        result = ConcordRuntime(processor).parallel_for(
            kernel, N_ITEMS, RaceToIdleScheduler(deadline_s=tight))
        assert "deadline-overrun" in result.notes
        assert processor.now == pytest.approx(
            sprint_time(desktop, kernel))

    def test_table_g_reuse_survives_the_subclass(self, desktop, kernel):
        scheduler = RaceToIdleScheduler()
        runtime = ConcordRuntime(IntegratedProcessor(desktop))
        runtime.parallel_for(kernel, N_ITEMS, scheduler)
        runtime.parallel_for(kernel, N_ITEMS, scheduler)
        assert scheduler.table.lookup(kernel.key) is not None

    @pytest.mark.parametrize("deadline", [0.0, -1.0, float("nan"),
                                          float("inf"), True, "2"])
    def test_rejects_bad_deadlines(self, deadline):
        with pytest.raises(SchedulingError):
            RaceToIdleScheduler(deadline_s=deadline)


class TestEngineIntegration:
    def test_scheduler_spec_race_builds_and_runs(self, desktop):
        spec = RunSpec(platform=haswell_desktop(tick_mode="fast"),
                       workload="BS",
                       scheduler=SchedulerSpec.race(0.01))
        assert isinstance(spec.scheduler.build(), RaceToIdleScheduler)
        assert spec.scheduler.strategy_name == "RACE"
        run = execute_spec(spec).payload
        assert run.time_s > 0.0

    def test_deadline_keys_the_cache(self):
        platform = haswell_desktop(tick_mode="fast")
        keys = {RunSpec(platform=platform, workload="BS",
                        scheduler=SchedulerSpec.race(d)).cache_key()
                for d in (None, 0.5, 1.0)}
        assert len(keys) == 3

    def test_deadline_s_is_race_only(self):
        with pytest.raises(HarnessError):
            SchedulerSpec(kind="eas", metric="edp", deadline_s=1.0)
        with pytest.raises(HarnessError):
            SchedulerSpec(kind="cpu", deadline_s=1.0)

    def test_spec_rejects_bad_deadline(self):
        with pytest.raises(HarnessError):
            SchedulerSpec.race(-1.0)

    def test_constrained_eas_spec_round_trips(self, desktop_characterization):
        spec = SchedulerSpec.eas("edp@2")
        metric = spec.build(desktop_characterization).metric
        assert metric.deadline_s == 2.0


class TestServiceJobSpec:
    def test_race_job_round_trips(self):
        job = JobSpec(workload="BS", scheduler="race", deadline_s=1.5,
                      tick_mode="fast")
        again = JobSpec.from_json(job.to_json())
        assert again == job
        assert again.scheduler_spec() == SchedulerSpec.race(1.5)

    def test_constrained_metric_job_round_trips(self):
        job = JobSpec(workload="BS", scheduler="eas", metric="edp@2")
        assert JobSpec.from_json(job.to_json()) == job

    def test_deadline_on_non_race_job_rejected(self):
        with pytest.raises(ServiceError):
            JobSpec(workload="BS", scheduler="eas", deadline_s=1.0)

    def test_bad_metric_rejected_at_submission(self):
        with pytest.raises(ServiceError):
            JobSpec(workload="BS", scheduler="eas", metric="edp@soon")

    def test_bad_race_deadline_rejected_at_submission(self):
        with pytest.raises(ServiceError):
            JobSpec(workload="BS", scheduler="race", deadline_s=-1.0)
