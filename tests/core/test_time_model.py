"""The execution-time model T(alpha), Eqs. 1-4, with property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.time_model import ExecutionTimeModel
from repro.errors import SchedulingError

throughputs = st.floats(min_value=1.0, max_value=1e9)


class TestEquations:
    def test_alpha_perf_eq2(self):
        model = ExecutionTimeModel(cpu_throughput=100.0, gpu_throughput=300.0,
                                   n_items=1000.0)
        assert model.alpha_perf == pytest.approx(0.75)

    def test_combined_time_eq1(self):
        model = ExecutionTimeModel(100.0, 300.0, 1200.0)
        # alpha = 0.5: CPU side 600/100 = 6 s, GPU side 600/300 = 2 s.
        assert model.combined_time(0.5) == pytest.approx(2.0)

    def test_remaining_items_eq3(self):
        model = ExecutionTimeModel(100.0, 300.0, 1200.0)
        # After 2 s combined: 800 processed, 400 remain (on the CPU).
        assert model.remaining_items(0.5) == pytest.approx(400.0)

    def test_total_time_eq4_cpu_side(self):
        model = ExecutionTimeModel(100.0, 300.0, 1200.0)
        # alpha = 0.5 < alpha_perf: CPU finishes the remainder.
        assert model.total_time(0.5) == pytest.approx(2.0 + 400.0 / 100.0)

    def test_total_time_eq4_gpu_side(self):
        model = ExecutionTimeModel(100.0, 300.0, 1200.0)
        # alpha = 0.9 > alpha_perf: GPU finishes the remainder.
        t_cg = model.combined_time(0.9)  # CPU: 120/100 = 1.2 s
        assert t_cg == pytest.approx(1.2)
        n_rem = 1200.0 - 1.2 * 400.0
        assert model.total_time(0.9) == pytest.approx(1.2 + n_rem / 300.0)

    def test_endpoints_are_single_device(self):
        model = ExecutionTimeModel(100.0, 300.0, 1200.0)
        assert model.total_time(0.0) == pytest.approx(12.0)
        assert model.total_time(1.0) == pytest.approx(4.0)

    def test_zero_throughput_device(self):
        model = ExecutionTimeModel(cpu_throughput=100.0, gpu_throughput=0.0,
                                   n_items=1000.0)
        assert model.alpha_perf == 0.0
        assert model.total_time(0.0) == pytest.approx(10.0)
        assert model.total_time(0.5) == float("inf")

    def test_validation(self):
        with pytest.raises(SchedulingError):
            ExecutionTimeModel(0.0, 0.0, 100.0)
        with pytest.raises(SchedulingError):
            ExecutionTimeModel(1.0, 1.0, -5.0)
        with pytest.raises(SchedulingError):
            ExecutionTimeModel(1.0, 1.0, 100.0).total_time(2.0)


class TestProperties:
    @given(r_c=throughputs, r_g=throughputs,
           alpha=st.floats(0.0, 1.0))
    @settings(max_examples=150, deadline=None)
    def test_minimum_at_alpha_perf(self, r_c, r_g, alpha):
        """T(alpha_perf) <= T(alpha) for every alpha: finishing
        together is time-optimal (the paper's Eq. 2 claim)."""
        model = ExecutionTimeModel(r_c, r_g, 1e6)
        # Tolerance covers floating-point dust amplified by extreme
        # throughput ratios (n_rem ~ ulp divided by a tiny rate).
        assert model.total_time(model.alpha_perf) <= (
            model.total_time(alpha) * (1 + 1e-6) + 1e-9)

    @given(r_c=throughputs, r_g=throughputs)
    @settings(max_examples=100, deadline=None)
    def test_optimal_time_is_combined_throughput(self, r_c, r_g):
        model = ExecutionTimeModel(r_c, r_g, 1e6)
        assert model.total_time(model.alpha_perf) == pytest.approx(
            1e6 / (r_c + r_g), rel=1e-6)

    @given(r_c=throughputs, r_g=throughputs,
           a=st.floats(0.0, 1.0), b=st.floats(0.0, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_monotone_away_from_optimum(self, r_c, r_g, a, b):
        """On either side of alpha_perf, moving away from it never
        decreases T."""
        model = ExecutionTimeModel(r_c, r_g, 1e6)
        ap = model.alpha_perf
        lo, hi = min(a, b), max(a, b)
        if hi <= ap:
            assert model.total_time(lo) >= model.total_time(hi) * (1 - 1e-9)
        elif lo >= ap:
            assert model.total_time(hi) >= model.total_time(lo) * (1 - 1e-9)

    @given(r_c=throughputs, r_g=throughputs, alpha=st.floats(0.0, 1.0),
           scale=st.floats(0.1, 100.0))
    @settings(max_examples=100, deadline=None)
    def test_time_linear_in_n(self, r_c, r_g, alpha, scale):
        """T is linear in N - the property the scheduler exploits when
        a profiling round drains the pool (argmin independent of N)."""
        small = ExecutionTimeModel(r_c, r_g, 1e4)
        large = ExecutionTimeModel(r_c, r_g, 1e4 * scale)
        # remaining_items subtracts two nearly-equal quantities near
        # alpha_perf (and near the endpoints for tiny alpha), so exact
        # linearity erodes to ~1e-9 relative; keep headroom below that.
        assert large.total_time(alpha) == pytest.approx(
            small.total_time(alpha) * scale, rel=1e-6)
