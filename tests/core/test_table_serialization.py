"""Table-G persistence round-trips preserve every hygiene flag.

The durable service stores table G across process lifetimes
(docs/SERVICE.md), which is only safe if serialization loses nothing
that decides reuse eligibility: quarantine must survive (a poisoned
alpha must not come back clean), ``|co:mpN`` co-run keys must never
collapse onto the solo key, and provisional small-N entries must keep
their sample counts so later accumulation stays correctly weighted.
"""

import pytest

from repro.core.categories import category_from_codes
from repro.core.profiling import KernelTable, KernelTableEntry


def _populated_table() -> KernelTable:
    table = KernelTable()
    table.record("mm_kernel/256", alpha=0.7, weight=200.0,
                 category=category_from_codes("C-LL"))
    # Solo and co-run contexts of the same kernel: distinct rows.
    table.record("bs_kernel/1024", alpha=0.9, weight=1024.0,
                 category=category_from_codes("M-SL"))
    table.record("bs_kernel/1024|co:mp2", alpha=0.4, weight=512.0,
                 category=category_from_codes("M-SL"))
    # A provisional small-N entry (CPU-only fast path, no category).
    table.record("bfs_frontier/1", alpha=0.0, weight=1.0,
                 provisional=True)
    table.note_invocation("bfs_frontier/1")
    # A quarantined entry derived under faults.
    table.record("rt_trace/64", alpha=0.5, weight=64.0,
                 category=category_from_codes("C-SS"), quarantined=True)
    return table


class TestEntryRoundTrip:
    def test_all_fields_survive(self):
        entry = KernelTableEntry(
            alpha=0.625, weight=321.5,
            category=category_from_codes("M-LS"), invocations=7,
            derived_at_items=4096.0, provisional=True, quarantined=True)
        clone = KernelTableEntry.from_dict(entry.to_dict())
        assert clone == entry

    def test_category_serializes_as_short_code(self):
        entry = KernelTableEntry(alpha=0.5, weight=1.0,
                                 category=category_from_codes("C-SL"))
        assert entry.to_dict()["category"] == "C-SL"

    def test_none_category_round_trips(self):
        entry = KernelTableEntry(alpha=0.0, weight=1.0)
        data = entry.to_dict()
        assert data["category"] is None
        assert KernelTableEntry.from_dict(data).category is None


class TestTableRoundTrip:
    def test_round_trip_is_identity(self):
        table = _populated_table()
        clone = KernelTable.from_rows(table.to_rows())
        assert clone.to_rows() == table.to_rows()
        assert len(clone) == len(table)

    def test_quarantined_stays_quarantined(self):
        clone = KernelTable.from_rows(_populated_table().to_rows())
        entry = clone.lookup("rt_trace/64")
        assert entry is not None and entry.quarantined

    def test_co_run_keys_never_collapse(self):
        clone = KernelTable.from_rows(_populated_table().to_rows())
        solo = clone.lookup("bs_kernel/1024")
        co = clone.lookup("bs_kernel/1024|co:mp2")
        assert solo is not None and co is not None
        assert solo.alpha != co.alpha

    def test_provisional_keeps_sample_counts(self):
        clone = KernelTable.from_rows(_populated_table().to_rows())
        entry = clone.lookup("bfs_frontier/1")
        assert entry is not None and entry.provisional
        assert entry.weight == pytest.approx(1.0)
        assert entry.invocations == 1

    def test_rows_are_sorted_by_key(self):
        rows = _populated_table().to_rows()
        assert [r["key"] for r in rows] == sorted(r["key"] for r in rows)


class TestMergeRows:
    def test_merge_replaces_same_key_wholesale(self):
        table = _populated_table()
        before = table.lookup("mm_kernel/256")
        assert before is not None and not before.quarantined
        table.merge_rows([{
            "key": "mm_kernel/256", "alpha": 0.1, "weight": 5.0,
            "category": None, "invocations": 1,
            "derived_at_items": 8.0, "provisional": False,
            "quarantined": True,
        }])
        after = table.lookup("mm_kernel/256")
        assert after is not None
        assert after.alpha == pytest.approx(0.1)
        assert after.weight == pytest.approx(5.0)
        assert after.quarantined

    def test_merge_adds_new_keys(self):
        table = KernelTable()
        table.merge_rows(_populated_table().to_rows())
        assert len(table) == 5
