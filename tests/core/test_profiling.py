"""Profiling aggregation and the global kernel table G."""

import pytest

from repro.core.categories import all_categories
from repro.core.profiling import KernelTable, ProfileAggregate
from repro.errors import SchedulingError
from repro.runtime.runtime import ProfileObservation
from repro.soc.counters import CounterDelta


def observation(cpu_items=100.0, cpu_time=0.1, gpu_items=400.0, gpu_time=0.1,
                misses=10.0, loadstores=100.0):
    counters = CounterDelta(
        elapsed_s=cpu_time, instructions_retired=cpu_items * 10,
        loadstore_instructions=loadstores, l3_misses=misses,
        cpu_items=cpu_items, gpu_items=gpu_items, gpu_busy_time_s=gpu_time)
    return ProfileObservation(
        cpu_time_s=cpu_time, gpu_time_s=gpu_time, cpu_items=cpu_items,
        gpu_items=gpu_items, counters=counters, energy_j=1.0)


class TestProfileAggregate:
    def test_empty_aggregate_raises(self):
        with pytest.raises(SchedulingError):
            _ = ProfileAggregate().cpu_throughput

    def test_single_round_throughputs(self):
        agg = ProfileAggregate()
        agg.add(observation(cpu_items=100.0, cpu_time=0.1,
                            gpu_items=400.0, gpu_time=0.2))
        assert agg.cpu_throughput == pytest.approx(1000.0)
        assert agg.gpu_throughput == pytest.approx(2000.0)

    def test_rounds_are_sample_weighted(self):
        """Total items over total time: big rounds dominate."""
        agg = ProfileAggregate()
        agg.add(observation(cpu_items=10.0, cpu_time=0.1))      # 100/s
        agg.add(observation(cpu_items=10_000.0, cpu_time=1.0))  # 10_000/s
        assert agg.cpu_throughput == pytest.approx(10_010 / 1.1)

    def test_counter_totals(self):
        agg = ProfileAggregate()
        agg.add(observation(misses=10.0, loadstores=100.0))
        agg.add(observation(misses=30.0, loadstores=100.0))
        assert agg.l3_misses == 40.0
        assert agg.loadstore_instructions == 200.0
        assert agg.num_rounds == 2


class TestKernelTable:
    def test_lookup_missing(self):
        assert KernelTable().lookup("f") is None

    def test_record_and_reuse(self):
        table = KernelTable()
        table.record("f", alpha=0.7, weight=1000.0)
        entry = table.lookup("f")
        assert entry.alpha == 0.7
        assert "f" in table

    def test_sample_weighted_accumulation(self):
        """The paper's line 26: alpha accumulates weighted by items."""
        table = KernelTable()
        table.record("f", alpha=0.4, weight=1000.0)
        table.record("f", alpha=0.8, weight=3000.0)
        assert table.lookup("f").alpha == pytest.approx(0.7)
        assert table.lookup("f").weight == 4000.0

    def test_profiled_record_replaces_provisional(self):
        """A tiny first frontier must not pin the kernel to the CPU."""
        table = KernelTable()
        table.record("f", alpha=0.0, weight=10.0, provisional=True)
        table.record("f", alpha=0.9, weight=5000.0,
                     category=all_categories()[0])
        entry = table.lookup("f")
        assert entry.alpha == 0.9
        assert not entry.provisional
        assert entry.weight == 5000.0

    def test_provisional_accumulates_with_provisional(self):
        table = KernelTable()
        table.record("f", alpha=0.0, weight=10.0, provisional=True)
        table.record("f", alpha=0.0, weight=30.0, provisional=True)
        assert table.lookup("f").provisional

    def test_derived_at_items_tracks_maximum(self):
        table = KernelTable()
        table.record("f", alpha=0.5, weight=100.0)
        table.record("f", alpha=0.5, weight=5000.0)
        table.record("f", alpha=0.5, weight=300.0)
        assert table.lookup("f").derived_at_items == 5000.0

    def test_provisional_record_never_lifts_a_quarantine(self):
        """Regression: a clean small-N (provisional) record observed
        the CPU fast path, not the faulting device - it must not
        replace a quarantined entry and launder the taint."""
        table = KernelTable()
        table.record("f", alpha=0.8, weight=5000.0, quarantined=True)
        table.record("f", alpha=0.0, weight=10.0, provisional=True)
        entry = table.lookup("f")
        assert entry.quarantined
        assert entry.alpha == 0.8
        assert not entry.provisional
        assert entry.weight == 5000.0

    def test_clean_profiled_record_replaces_a_quarantine(self):
        """The first clean *profiled* record is evidence the device
        recovered: it replaces a quarantined entry outright."""
        table = KernelTable()
        table.record("f", alpha=0.8, weight=5000.0, quarantined=True)
        table.record("f", alpha=0.6, weight=4000.0)
        entry = table.lookup("f")
        assert not entry.quarantined
        assert entry.alpha == 0.6
        assert entry.weight == 4000.0

    def test_quarantined_record_never_dilutes_clean_entry(self):
        table = KernelTable()
        table.record("f", alpha=0.6, weight=4000.0)
        table.record("f", alpha=0.0, weight=4000.0, quarantined=True)
        entry = table.lookup("f")
        assert not entry.quarantined
        assert entry.alpha == 0.6

    def test_rejects_bad_alpha(self):
        with pytest.raises(SchedulingError):
            KernelTable().record("f", alpha=1.5, weight=1.0)

    def test_rejects_bad_weight_on_accumulate(self):
        table = KernelTable()
        table.record("f", alpha=0.5, weight=10.0)
        with pytest.raises(SchedulingError):
            table.record("f", alpha=0.5, weight=0.0)

    def test_clear(self):
        table = KernelTable()
        table.record("f", alpha=0.5, weight=10.0)
        table.clear()
        assert len(table) == 0

    def test_note_invocation_counts(self):
        table = KernelTable()
        table.record("f", alpha=0.5, weight=10.0)
        table.note_invocation("f")
        table.note_invocation("f")
        assert table.lookup("f").invocations == 2
