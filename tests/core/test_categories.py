"""The 8-way workload taxonomy."""

import pytest

from repro.core.categories import (
    Boundedness,
    DeviceDuration,
    WorkloadCategory,
    all_categories,
    category_from_codes,
)


class TestTaxonomy:
    def test_exactly_eight_categories(self):
        cats = all_categories()
        assert len(cats) == 8
        assert len(set(cats)) == 8

    def test_cross_product_structure(self):
        cats = all_categories()
        assert sum(1 for c in cats if c.boundedness is Boundedness.MEMORY) == 4
        assert sum(1 for c in cats
                   if c.cpu_duration is DeviceDuration.SHORT) == 4
        assert sum(1 for c in cats
                   if c.gpu_duration is DeviceDuration.LONG) == 4

    def test_short_codes_unique(self):
        codes = [c.short_code for c in all_categories()]
        assert len(set(codes)) == 8

    @pytest.mark.parametrize("category", all_categories())
    def test_code_roundtrip(self, category):
        assert category_from_codes(category.short_code) == category

    def test_code_format(self):
        cat = WorkloadCategory(Boundedness.MEMORY, DeviceDuration.SHORT,
                               DeviceDuration.LONG)
        assert cat.short_code == "M-SL"
        assert "memory" in str(cat)

    def test_hashable_for_table_keys(self):
        table = {c: i for i, c in enumerate(all_categories())}
        assert len(table) == 8
