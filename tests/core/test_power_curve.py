"""Power characterization curves: fitting, evaluation, rendering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.power_curve import PowerCurve, fit_power_curve
from repro.errors import CharacterizationError


def sweep(fn, n=21):
    alphas = np.linspace(0.0, 1.0, n)
    return alphas, [fn(a) for a in alphas]


class TestFitting:
    def test_recovers_polynomial_exactly(self):
        alphas, powers = sweep(lambda a: 40.0 - 10.0 * a + 5.0 * a ** 2)
        curve = fit_power_curve(alphas, powers)
        for a in (0.0, 0.33, 0.7, 1.0):
            assert curve.power(a) == pytest.approx(40.0 - 10.0 * a + 5.0 * a ** 2,
                                                   abs=1e-6)

    def test_default_order_is_six(self):
        alphas, powers = sweep(lambda a: 30.0 + a)
        assert fit_power_curve(alphas, powers).order == 6

    def test_requires_enough_points(self):
        with pytest.raises(CharacterizationError):
            fit_power_curve([0.0, 0.5, 1.0], [1.0, 2.0, 3.0], order=6)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(CharacterizationError):
            fit_power_curve([0.0, 1.0], [1.0], order=1)

    def test_rejects_out_of_range_alphas(self):
        alphas = list(np.linspace(0, 1.5, 10))
        with pytest.raises(CharacterizationError):
            fit_power_curve(alphas, [1.0] * 10)

    def test_rejects_negative_power(self):
        alphas = list(np.linspace(0, 1, 10))
        with pytest.raises(CharacterizationError):
            fit_power_curve(alphas, [-1.0] * 10)

    def test_residual_rms_small_for_smooth_data(self):
        alphas, powers = sweep(lambda a: 50.0 - 15.0 * a ** 3)
        assert fit_power_curve(alphas, powers).fit_residual_rms() < 1e-6

    @given(coeffs=st.lists(st.floats(-20.0, 20.0), min_size=2, max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_fit_interpolates_its_samples_property(self, coeffs):
        """A 6th-order fit reproduces any lower-order polynomial's
        samples (as long as powers stay positive)."""
        base = 100.0  # keep values positive
        alphas = np.linspace(0, 1, 15)
        powers = [base + float(np.polyval(coeffs, a)) for a in alphas]
        if min(powers) <= 0:
            return
        curve = fit_power_curve(alphas, powers)
        assert curve.fit_residual_rms() < 1e-3 * base


class TestEvaluation:
    def test_clamps_alpha_into_unit_interval(self):
        alphas, powers = sweep(lambda a: 10.0 + 5.0 * a)
        curve = fit_power_curve(alphas, powers)
        assert curve.power(-1.0) == pytest.approx(curve.power(0.0))
        assert curve.power(2.0) == pytest.approx(curve.power(1.0))

    def test_power_floor_prevents_negative(self):
        curve = PowerCurve(coefficients=(-100.0,))
        assert curve.power(0.5) > 0.0

    def test_callable(self):
        curve = PowerCurve(coefficients=(2.0, 3.0))  # 2a + 3
        assert curve(0.5) == pytest.approx(4.0)

    def test_needs_coefficients(self):
        with pytest.raises(CharacterizationError):
            PowerCurve(coefficients=())

    def test_residual_requires_samples(self):
        with pytest.raises(CharacterizationError):
            PowerCurve(coefficients=(1.0,)).fit_residual_rms()


class TestRendering:
    def test_equation_format(self):
        curve = PowerCurve(coefficients=(2.0, -3.0, 40.0))
        eq = curve.equation()
        assert eq.startswith("y = ")
        assert "x^2" in eq
        assert "+40" in eq

    def test_zero_coefficients_skipped(self):
        curve = PowerCurve(coefficients=(0.0, 5.0, 0.0))
        assert "x^2" not in curve.equation()
