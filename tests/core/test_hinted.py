"""The cooperative power-hint extension (paper's future work)."""

import pytest

from repro.core.hinted import HintedEnergyAwareScheduler
from repro.core.metrics import ENERGY
from repro.core.scheduler import EnergyAwareScheduler
from repro.errors import SchedulingError, SimulationError
from repro.harness.experiment import run_application
from repro.runtime.kernel import Kernel
from repro.runtime.runtime import ConcordRuntime
from repro.soc.cost_model import KernelCostModel
from repro.soc.pcu import Pcu
from repro.soc.simulator import IntegratedProcessor
from repro.units import ms
from repro.workloads.registry import workload_by_abbrev


def mid_alpha_kernel():
    """A kernel whose energy optimum is hybrid (GPU ~1.5x CPU)."""
    return Kernel(name="hint-k", cost=KernelCostModel(
        name="hint-k", instructions_per_item=150.0,
        loadstore_fraction=0.2, l3_miss_rate=0.36,
        cpu_simd_efficiency=0.04, gpu_simd_efficiency=0.045,
        gpu_divergence=0.3, gpu_traffic_factor=0.8))


class TestPcuHintKnob:
    def test_hint_lowers_coexec_target(self, desktop):
        paced = Pcu(desktop)
        paced.power_hint = 1.0
        stock = Pcu(desktop)
        now = 0.0
        for _ in range(3000):
            paced.step(now, ms(1.0), True, True, 30.0)
            stock.step(now, ms(1.0), True, True, 30.0)
            now += ms(1.0)
        assert stock.state.cpu_freq_hz == pytest.approx(
            desktop.pcu.cpu_coexec_freq_hz)
        assert paced.state.cpu_freq_hz == pytest.approx(
            desktop.pcu.cpu_gpu_activation_floor_hz)

    def test_hint_zero_is_stock_policy(self, desktop):
        pcu = Pcu(desktop)
        assert pcu.power_hint == 0.0

    def test_hint_does_not_touch_turbo(self, desktop):
        pcu = Pcu(desktop)
        pcu.power_hint = 1.0
        now = 0.0
        for _ in range(50):
            pcu.step(now, ms(1.0), True, False, 30.0)
            now += ms(1.0)
        assert pcu.state.cpu_freq_hz == pytest.approx(
            desktop.cpu.turbo_freq_hz)

    def test_processor_validates_hint(self, desktop_processor):
        desktop_processor.set_power_hint(0.7)
        assert desktop_processor.pcu.power_hint == 0.7
        with pytest.raises(SimulationError):
            desktop_processor.set_power_hint(1.5)


class TestHintedScheduler:
    def test_rejects_bad_hint_levels(self, desktop_characterization):
        with pytest.raises(SchedulingError):
            HintedEnergyAwareScheduler(desktop_characterization, ENERGY,
                                       hint_levels=(2.0,))

    def test_records_hint_decisions(self, desktop,
                                    desktop_characterization):
        runtime = ConcordRuntime(IntegratedProcessor(desktop))
        scheduler = HintedEnergyAwareScheduler(desktop_characterization,
                                               ENERGY)
        runtime.parallel_for(mid_alpha_kernel(), 5e7, scheduler)
        assert scheduler.hint_decisions
        decision = scheduler.hint_decisions[-1]
        assert 0.0 <= decision.hint <= 1.0
        assert 0.0 <= decision.alpha <= 1.0

    def test_hint_cleared_after_invocation(self, desktop,
                                           desktop_characterization):
        processor = IntegratedProcessor(desktop)
        runtime = ConcordRuntime(processor)
        scheduler = HintedEnergyAwareScheduler(desktop_characterization,
                                               ENERGY)
        runtime.parallel_for(mid_alpha_kernel(), 5e7, scheduler)
        assert processor.pcu.power_hint == 0.0

    def test_zero_only_hint_levels_match_plain_eas(self,
                                                   desktop,
                                                   desktop_characterization):
        """With only the stock hint available, the hinted scheduler is
        exactly EAS."""
        def run(scheduler_cls, **kwargs):
            runtime = ConcordRuntime(IntegratedProcessor(desktop))
            scheduler = scheduler_cls(desktop_characterization, ENERGY,
                                      **kwargs)
            return runtime.parallel_for(mid_alpha_kernel(), 5e7, scheduler)

        plain = run(EnergyAwareScheduler)
        pinned = run(HintedEnergyAwareScheduler, hint_levels=(0.0,))
        assert pinned.duration_s == pytest.approx(plain.duration_s)
        assert pinned.energy_j == pytest.approx(plain.energy_j)

    def test_hint_never_hurts_energy_materially(self, desktop,
                                                desktop_characterization):
        """The joint search includes hint 0, so a well-modelled pace
        should not lose more than model noise on the energy metric."""
        workload = workload_by_abbrev("SL")
        plain = run_application(
            desktop, workload,
            EnergyAwareScheduler(desktop_characterization, ENERGY), "eas")
        hinted = run_application(
            desktop, workload,
            HintedEnergyAwareScheduler(desktop_characterization, ENERGY),
            "hinted")
        assert hinted.energy_j <= plain.energy_j * 1.05

    def test_hint_saves_energy_on_hybrid_workload(self, desktop,
                                                  desktop_characterization):
        """On SL (hybrid energy optimum) the pace saves real energy at
        the same alpha - the paper's future-work payoff."""
        workload = workload_by_abbrev("SL")
        plain = run_application(
            desktop, workload,
            EnergyAwareScheduler(desktop_characterization, ENERGY), "eas")
        hinted = run_application(
            desktop, workload,
            HintedEnergyAwareScheduler(desktop_characterization, ENERGY),
            "hinted")
        assert hinted.energy_j < plain.energy_j
