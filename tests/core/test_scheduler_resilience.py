"""EAS resilience: retries, degradation, quarantine, sanity fallbacks.

Deterministic fault scenarios are built from two shims:

* :class:`_ScriptedGpu` - wraps a healthy processor and fails GPU-bearing
  phases according to an explicit script (no randomness at all);
* :class:`~repro.soc.faults.FaultySoC` with probability-1.0 classes for
  the always-faulty cases.
"""

import pytest

from repro.core.metrics import EDP
from repro.core.profiling import ProfileAggregate
from repro.core.scheduler import (
    GPU_FAULTED_FALLBACK,
    SchedulerConfig,
    EnergyAwareScheduler,
)
from repro.errors import GpuFaultError
from repro.runtime.kernel import Kernel
from repro.runtime.runtime import ConcordRuntime, ProfileObservation
from repro.soc.cost_model import KernelCostModel
from repro.soc.counters import CounterDelta
from repro.soc.faults import FaultConfig, FaultySoC
from repro.soc.simulator import IntegratedProcessor

N_ITEMS = 2_000_000.0


@pytest.fixture
def kernel():
    return Kernel(name="resil", cost=KernelCostModel(
        name="resil", instructions_per_item=500.0,
        loadstore_fraction=0.2, l3_miss_rate=0.0,
        cpu_simd_efficiency=0.5, gpu_simd_efficiency=0.5))


class _ScriptedGpu:
    """Fails GPU-bearing ``run_phase`` calls per an explicit script.

    ``script`` is a sequence of booleans consumed one per GPU-bearing
    phase: True -> raise :class:`GpuFaultError` (after paying the launch
    overhead, like the real substrate), False -> pass through.  When the
    script is exhausted every phase passes through.
    """

    def __init__(self, inner, script):
        self.inner = inner
        self._script = list(script)
        self.gpu_attempts = 0

    def __getattr__(self, name):
        return getattr(self.inner, name)

    @property
    def gpu_busy(self):
        return self.inner.gpu_busy

    def run_phase(self, request):
        gpu_present = (request.gpu_region is not None
                       and request.gpu_region.items_remaining > 1e-9)
        if gpu_present:
            self.gpu_attempts += 1
            if self._script and self._script.pop(0):
                self.inner.idle(self.inner.spec.gpu.kernel_launch_overhead_s)
                raise GpuFaultError("scripted launch failure")
        return self.inner.run_phase(request)


def run_once(processor, kernel, scheduler, n=N_ITEMS):
    return ConcordRuntime(processor).parallel_for(kernel, n, scheduler)


class TestRetry:
    def test_transient_fault_is_retried_and_absorbed(
            self, desktop, desktop_characterization, kernel):
        """One failed profiling chunk must not cost the invocation its
        GPU: the retry succeeds and scheduling proceeds normally."""
        scripted = _ScriptedGpu(IntegratedProcessor(desktop), [True])
        scheduler = EnergyAwareScheduler(desktop_characterization, EDP)
        result = run_once(scripted, kernel, scheduler)
        assert result.alpha > 0.0
        assert GPU_FAULTED_FALLBACK not in result.notes
        assert not scheduler.degraded_kernels
        assert result.cpu_items + result.gpu_items == pytest.approx(
            N_ITEMS, rel=1e-6)

    def test_faulted_partitioned_run_retries_then_succeeds(
            self, desktop, desktop_characterization, kernel):
        """Profiling is clean; the partitioned launch fails once.  The
        remainder must still reach the GPU on the retry."""
        scripted = _ScriptedGpu(IntegratedProcessor(desktop), [])
        scheduler = EnergyAwareScheduler(desktop_characterization, EDP)
        run_once(scripted, kernel, scheduler)  # populate table G
        attempts_before = scripted.gpu_attempts
        scripted._script = [True]  # fail the next (partitioned) launch
        result = run_once(scripted, kernel, scheduler)
        assert result.alpha > 0.0
        assert GPU_FAULTED_FALLBACK not in result.notes
        assert scripted.gpu_attempts == attempts_before + 2  # fail + retry


class TestGracefulDegradation:
    def test_dead_gpu_degrades_and_completes(
            self, desktop, desktop_characterization, kernel):
        faulty = FaultySoC(IntegratedProcessor(desktop),
                           FaultConfig(seed=1, gpu_launch_failure_prob=1.0))
        scheduler = EnergyAwareScheduler(desktop_characterization, EDP)
        result = run_once(faulty, kernel, scheduler)
        assert GPU_FAULTED_FALLBACK in result.notes
        assert result.alpha == 0.0
        assert kernel.key in scheduler.degraded_kernels
        assert result.cpu_items == pytest.approx(N_ITEMS, rel=1e-6)
        # The budget bounds the time wasted on the lost cause.
        assert faulty.fault_log.count("gpu-launch-fail") == \
            scheduler.config.fault_budget

    def test_degradation_is_sticky_across_invocations(
            self, desktop, desktop_characterization, kernel):
        faulty = FaultySoC(IntegratedProcessor(desktop),
                           FaultConfig(seed=1, gpu_launch_failure_prob=1.0))
        scheduler = EnergyAwareScheduler(desktop_characterization, EDP)
        runtime = ConcordRuntime(faulty)
        runtime.parallel_for(kernel, N_ITEMS, scheduler)
        faults_after_first = faulty.fault_log.count()
        result = runtime.parallel_for(kernel, N_ITEMS, scheduler)
        assert GPU_FAULTED_FALLBACK in result.notes
        # No further GPU attempts: the degraded kernel goes straight to
        # the CPU without touching the device again.
        assert faulty.fault_log.count() == faults_after_first

    def test_leaky_bucket_never_degrades_mostly_healthy_gpu(
            self, desktop, desktop_characterization, kernel):
        """Faults interleaved with successes drain the bucket: a
        lifetime fault count far above the budget must not degrade."""
        config = SchedulerConfig(fault_budget=3, max_profile_retries=0)
        scheduler = EnergyAwareScheduler(desktop_characterization, EDP,
                                         config=config)
        # Strict fail/pass alternation: bucket oscillates 1 -> 0.
        scripted = _ScriptedGpu(IntegratedProcessor(desktop),
                                [True, False] * 20)
        runtime = ConcordRuntime(scripted)
        for _ in range(6):
            runtime.parallel_for(kernel, N_ITEMS, scheduler)
        assert not scheduler.degraded_kernels
        assert scheduler.fault_totals[kernel.key] >= config.fault_budget

    def test_zero_progress_observation_counts_as_fault(
            self, desktop, desktop_characterization, kernel):
        """A device that 'completes' but reports zero progress is as
        broken as one that raises; the budget must catch it too."""
        faulty = FaultySoC(IntegratedProcessor(desktop),
                           FaultConfig(seed=2, gpu_zero_progress_prob=1.0))
        scheduler = EnergyAwareScheduler(desktop_characterization, EDP)
        result = run_once(faulty, kernel, scheduler)
        assert GPU_FAULTED_FALLBACK in result.notes
        assert kernel.key in scheduler.degraded_kernels
        # The *observed* gpu_items were zeroed by the fault, so ground
        # truth must come from the wrapped simulator's counters.
        truth = faulty.inner.snapshot_counters()
        assert truth.cpu_items + truth.gpu_items == pytest.approx(
            N_ITEMS, rel=1e-6)


class TestQuarantine:
    def test_alpha_derived_under_faults_is_quarantined(
            self, desktop, desktop_characterization, kernel):
        scripted = _ScriptedGpu(IntegratedProcessor(desktop), [True])
        scheduler = EnergyAwareScheduler(desktop_characterization, EDP)
        run_once(scripted, kernel, scheduler)
        entry = scheduler.table.lookup(kernel.key)
        assert entry is not None and entry.quarantined

    def test_quarantined_entry_not_reused_then_replaced_by_clean(
            self, desktop, desktop_characterization, kernel):
        scripted = _ScriptedGpu(IntegratedProcessor(desktop), [True])
        scheduler = EnergyAwareScheduler(desktop_characterization, EDP)
        runtime = ConcordRuntime(scripted)
        runtime.parallel_for(kernel, N_ITEMS, scheduler)
        # Second invocation re-profiles (the tainted alpha is not
        # trusted) and, being fault-free, replaces the entry outright.
        result = runtime.parallel_for(kernel, N_ITEMS, scheduler)
        assert result.profiled
        assert scheduler.decisions[-1].from_table is False
        entry = scheduler.table.lookup(kernel.key)
        assert entry is not None and not entry.quarantined
        # Third invocation reuses the now-clean entry.
        runtime.parallel_for(kernel, N_ITEMS, scheduler)
        assert scheduler.decisions[-1].from_table is True


class TestWatchdog:
    def test_profile_round_cap_bounds_the_loop(
            self, desktop, desktop_characterization, kernel):
        """With convergence disabled and profiling allowed to consume
        the whole invocation, only the watchdog ends the loop."""
        config = SchedulerConfig(profile_fraction=1.0, convergence_tolerance=-1.0,
                           max_profile_rounds=3)
        scheduler = EnergyAwareScheduler(desktop_characterization, EDP,
                                         config=config)
        result = run_once(IntegratedProcessor(desktop), kernel, scheduler)
        assert result.profile_rounds == 3
        assert result.cpu_items + result.gpu_items == pytest.approx(
            N_ITEMS, rel=1e-6)


class TestGpuBusyDebounce:
    def test_transient_flap_does_not_forfeit_gpu(
            self, desktop, desktop_characterization, kernel):
        class _OneFlap:
            def __init__(self, inner):
                self.inner = inner
                self._flaps = 1

            def __getattr__(self, name):
                return getattr(self.inner, name)

            @property
            def gpu_busy(self):
                if self._flaps > 0:
                    self._flaps -= 1
                    return True
                return self.inner.gpu_busy

        scheduler = EnergyAwareScheduler(desktop_characterization, EDP)
        result = run_once(_OneFlap(IntegratedProcessor(desktop)), kernel,
                          scheduler)
        assert "gpu-busy-fallback" not in result.notes
        assert result.alpha > 0.0

    def test_persistently_busy_gpu_falls_back_to_cpu(
            self, desktop, desktop_characterization, kernel):
        faulty = FaultySoC(IntegratedProcessor(desktop),
                           FaultConfig(seed=3, gpu_busy_flap_prob=1.0))
        scheduler = EnergyAwareScheduler(desktop_characterization, EDP)
        result = run_once(faulty, kernel, scheduler)
        assert "gpu-busy-fallback" in result.notes
        assert result.alpha == 0.0
        assert result.cpu_items == pytest.approx(N_ITEMS, rel=1e-6)


def _observation(cpu_items=0.0, gpu_items=0.0, cpu_time_s=1.0,
                 gpu_time_s=1.0):
    counters = CounterDelta(elapsed_s=cpu_time_s, instructions_retired=1e6,
                            loadstore_instructions=2e5, l3_misses=1e3,
                            cpu_items=cpu_items, gpu_items=gpu_items,
                            gpu_busy_time_s=gpu_time_s)
    return ProfileObservation(cpu_time_s=cpu_time_s, gpu_time_s=gpu_time_s,
                              cpu_items=cpu_items, gpu_items=gpu_items,
                              counters=counters, energy_j=1.0)


class TestDeriveAlphaSanity:
    """Unit-level checks of the measurement sanity guards."""

    @pytest.fixture
    def scheduler(self, desktop_characterization):
        return EnergyAwareScheduler(desktop_characterization, EDP)

    def test_no_progress_falls_back_cpu_only(self, scheduler):
        aggregate = ProfileAggregate()
        aggregate.add(_observation())  # zero items on both devices
        alpha, category, note = scheduler._derive_alpha(
            aggregate, 1e6, 2e6, "fresh-kernel")
        assert alpha == 0.0
        assert category is None
        assert note == "alpha-fallback-cpu-only"

    def test_no_progress_falls_back_to_last_good(self, scheduler):
        scheduler.table.record("seen-kernel", alpha=0.7, weight=1e6)
        aggregate = ProfileAggregate()
        aggregate.add(_observation())
        alpha, _, note = scheduler._derive_alpha(
            aggregate, 1e6, 2e6, "seen-kernel")
        assert alpha == 0.7
        assert note == "alpha-from-last-good"

    def test_no_progress_ignores_quarantined_last_good(self, scheduler):
        scheduler.table.record("tainted", alpha=0.9, weight=1e6,
                               quarantined=True)
        aggregate = ProfileAggregate()
        aggregate.add(_observation())
        alpha, _, note = scheduler._derive_alpha(aggregate, 1e6, 2e6, "tainted")
        assert alpha == 0.0
        assert note == "alpha-fallback-cpu-only"

    def test_absurd_throughput_treated_as_no_progress(self, scheduler):
        aggregate = ProfileAggregate()
        # 1e20 items in a second: sensor garbage, not a fast GPU.
        aggregate.add(_observation(gpu_items=1e20, cpu_items=0.0))
        alpha, _, note = scheduler._derive_alpha(aggregate, 1e6, 2e6, "absurd")
        assert alpha == 0.0
        assert note == "alpha-fallback-cpu-only"

    def test_nan_throughput_rejected(self, scheduler):
        aggregate = ProfileAggregate()
        aggregate.add(_observation(gpu_items=float("nan"), cpu_items=0.0))
        alpha, _, note = scheduler._derive_alpha(aggregate, 1e6, 2e6, "nan")
        assert alpha == 0.0
        assert note is not None

    def test_healthy_measurements_pass_untouched(self, scheduler):
        aggregate = ProfileAggregate()
        aggregate.add(_observation(cpu_items=5e5, gpu_items=8e5))
        alpha, category, note = scheduler._derive_alpha(
            aggregate, 1e6, 2e6, "healthy")
        assert note is None
        assert category is not None
        assert 0.0 <= alpha <= 1.0
