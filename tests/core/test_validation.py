"""Characterization quality validation."""

import pytest

from repro.core.categories import all_categories
from repro.core.characterization import PlatformCharacterization
from repro.core.power_curve import PowerCurve
from repro.core.validation import (
    Severity,
    ValidationIssue,
    validate_characterization,
)
from repro.errors import CharacterizationError


def flat_table(watts=40.0, samples=True):
    """A trivially valid table: constant curves for every category."""
    alphas = tuple(i / 10 for i in range(11)) if samples else ()
    powers = tuple([watts] * 11) if samples else ()
    curve = PowerCurve(coefficients=(watts,), sample_alphas=alphas,
                       sample_powers=powers)
    return PlatformCharacterization(
        platform_name="synthetic",
        curves={c: curve for c in all_categories()})


class TestStructuralChecks:
    def test_clean_table_has_no_errors(self):
        issues = validate_characterization(flat_table())
        assert not [i for i in issues if i.severity is Severity.ERROR]

    def test_missing_category_is_an_error(self):
        table = flat_table()
        del table.curves[all_categories()[0]]
        issues = validate_characterization(table)
        errors = [i for i in issues if i.severity is Severity.ERROR]
        assert len(errors) == 1
        assert "no curve" in errors[0].message

    def test_collapsed_curve_is_an_error(self):
        table = flat_table()
        table.curves[all_categories()[0]] = PowerCurve(
            coefficients=(-100.0,), sample_alphas=(0.0, 0.5, 1.0),
            sample_powers=(1.0, 1.0, 1.0))
        issues = validate_characterization(table)
        assert any("floor" in i.message for i in issues
                   if i.severity is Severity.ERROR)

    def test_sampleless_curve_is_a_warning(self):
        issues = validate_characterization(flat_table(samples=False))
        assert all(i.severity is Severity.WARNING for i in issues)
        assert any("no sweep samples" in i.message for i in issues)

    def test_strict_raises_on_errors(self):
        table = flat_table()
        del table.curves[all_categories()[0]]
        with pytest.raises(CharacterizationError):
            validate_characterization(table, strict=True)

    def test_strict_tolerates_warnings(self):
        issues = validate_characterization(flat_table(samples=False),
                                           strict=True)
        assert issues  # warnings reported, no raise


class TestPlausibilityChecks:
    def test_overpowered_curve_flagged_with_spec(self, desktop):
        table = flat_table(watts=desktop.pcu.package_cap_w * 3)
        issues = validate_characterization(table, spec=desktop)
        assert any("package cap" in i.message for i in issues
                   if i.severity is Severity.ERROR)

    def test_real_characterizations_validate_cleanly(
            self, desktop, tablet, desktop_characterization,
            tablet_characterization):
        """The shipped platforms pass their own deployment checks."""
        for spec, table in ((desktop, desktop_characterization),
                            (tablet, tablet_characterization)):
            issues = validate_characterization(table, spec=spec, strict=True)
            # Warnings allowed, errors are not (strict would raise).
            assert all(i.severity is Severity.WARNING for i in issues)


class TestIssueRendering:
    def test_str_includes_category(self):
        issue = ValidationIssue(Severity.ERROR, "C-LL", "broken")
        assert "[C-LL]" in str(issue)
        assert "error" in str(issue)
