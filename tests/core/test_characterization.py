"""Platform power characterization: sweeps, fits, caching."""

import pytest

from repro.core.categories import (
    Boundedness,
    DeviceDuration,
    WorkloadCategory,
    all_categories,
)
from repro.core.characterization import (
    CharacterizationMicrobench,
    PlatformCharacterization,
    PowerCharacterizer,
)
from repro.errors import CharacterizationError
from repro.soc.cost_model import KernelCostModel
from repro.soc.simulator import IntegratedProcessor
from repro.workloads.microbench import standard_microbenches


def one_bench():
    cost = KernelCostModel(name="probe", instructions_per_item=1000.0,
                           loadstore_fraction=0.2, l3_miss_rate=0.0)
    return CharacterizationMicrobench(
        category=WorkloadCategory(Boundedness.COMPUTE, DeviceDuration.SHORT,
                                  DeviceDuration.SHORT),
        cost=cost, cpu_target_s=0.03, repetitions=3)


class TestSweep:
    def test_sweep_covers_alpha_grid(self, desktop):
        characterizer = PowerCharacterizer(
            processor_factory=lambda: IntegratedProcessor(desktop),
            microbenches=[one_bench()], sweep_step=0.25)
        points = characterizer.sweep(one_bench())
        assert [p.alpha for p in points] == pytest.approx([0, 0.25, 0.5, 0.75, 1])
        assert all(p.power_w > 0 for p in points)
        assert all(p.time_s > 0 for p in points)

    def test_endpoint_powers_are_single_device(self, desktop):
        """alpha=0 power looks like CPU-alone (~45 W on the desktop),
        alpha=1 like GPU-alone (~30 W)."""
        characterizer = PowerCharacterizer(
            processor_factory=lambda: IntegratedProcessor(desktop),
            microbenches=[one_bench()], sweep_step=0.5)
        points = characterizer.sweep(one_bench())
        assert 38.0 < points[0].power_w < 52.0
        assert 25.0 < points[-1].power_w < 38.0

    def test_duplicate_categories_rejected(self, desktop):
        with pytest.raises(CharacterizationError):
            PowerCharacterizer(
                processor_factory=lambda: IntegratedProcessor(desktop),
                microbenches=[one_bench(), one_bench()])

    def test_empty_benches_rejected(self, desktop):
        with pytest.raises(CharacterizationError):
            PowerCharacterizer(
                processor_factory=lambda: IntegratedProcessor(desktop),
                microbenches=[])


class TestFullCharacterization:
    def test_standard_benches_cover_all_categories(self):
        cats = {b.category for b in standard_microbenches()}
        assert cats == set(all_categories())

    def test_full_characterization_is_complete(self,
                                               desktop_characterization):
        assert desktop_characterization.is_complete

    def test_desktop_memory_curves_above_compute(self,
                                                 desktop_characterization):
        """Section 2: memory-bound work draws more package power than
        compute-bound on the desktop (e.g. ~63 W vs ~55 W mid-sweep)."""
        from repro.core.categories import category_from_codes

        mem = desktop_characterization.curve_for(category_from_codes("M-LL"))
        cmp_ = desktop_characterization.curve_for(category_from_codes("C-LL"))
        assert mem.power(0.5) > cmp_.power(0.5)

    def test_tablet_memory_curves_below_compute(self,
                                                tablet_characterization):
        """The tablet's surprise: memory-bound draws *less* power."""
        from repro.core.categories import category_from_codes

        mem = tablet_characterization.curve_for(category_from_codes("M-LL"))
        cmp_ = tablet_characterization.curve_for(category_from_codes("C-LL"))
        assert mem.power(0.0) < cmp_.power(0.0)

    def test_tablet_gpu_draws_more_than_cpu(self, tablet_characterization):
        """Fig. 6: on the Bay Trail the GPU consumes more than the CPU
        (curves mostly concave, P(1) > P(0) for compute)."""
        from repro.core.categories import category_from_codes

        curve = tablet_characterization.curve_for(category_from_codes("C-LL"))
        assert curve.power(1.0) > curve.power(0.0)

    def test_desktop_gpu_draws_less_than_cpu(self, desktop_characterization):
        from repro.core.categories import category_from_codes

        curve = desktop_characterization.curve_for(category_from_codes("C-LL"))
        assert curve.power(1.0) < curve.power(0.0)

    def test_missing_category_raises(self):
        empty = PlatformCharacterization(platform_name="x")
        with pytest.raises(CharacterizationError):
            empty.curve_for(all_categories()[0])


class TestSerialization:
    def test_json_roundtrip(self, desktop_characterization):
        text = desktop_characterization.to_json()
        restored = PlatformCharacterization.from_json(text)
        assert restored.platform_name == desktop_characterization.platform_name
        assert restored.is_complete
        for category in all_categories():
            original = desktop_characterization.curve_for(category)
            loaded = restored.curve_for(category)
            assert loaded.coefficients == pytest.approx(original.coefficients)
            for alpha in (0.0, 0.3, 0.8, 1.0):
                assert loaded.power(alpha) == pytest.approx(
                    original.power(alpha))
