"""The EAS algorithm (Fig. 7) end to end on the simulated SoC."""

import pytest

from repro.core.metrics import EDP, ENERGY
from repro.core.scheduler import EnergyAwareScheduler, SchedulerConfig
from repro.runtime.kernel import Kernel
from repro.runtime.runtime import ConcordRuntime
from repro.soc.cost_model import KernelCostModel
from repro.soc.simulator import IntegratedProcessor


def compute_kernel(name="eas-compute"):
    return Kernel(name=name, cost=KernelCostModel(
        name=name, instructions_per_item=800.0,
        loadstore_fraction=0.2, l3_miss_rate=0.0,
        cpu_simd_efficiency=0.9, gpu_simd_efficiency=0.9))


def memory_kernel(name="eas-memory"):
    return Kernel(name=name, cost=KernelCostModel(
        name=name, instructions_per_item=200.0,
        loadstore_fraction=0.25, l3_miss_rate=0.4,
        cpu_simd_efficiency=0.03, gpu_simd_efficiency=0.05))


def cpu_biased_kernel(name="eas-cpu-biased"):
    return Kernel(name=name, cost=KernelCostModel(
        name=name, instructions_per_item=800.0,
        loadstore_fraction=0.2, l3_miss_rate=0.0,
        cpu_simd_efficiency=1.0, gpu_simd_efficiency=0.01))


@pytest.fixture
def eas(desktop_characterization):
    return EnergyAwareScheduler(desktop_characterization, EDP)


@pytest.fixture
def runtime(desktop):
    return ConcordRuntime(IntegratedProcessor(desktop))


class TestFirstInvocation:
    def test_profiles_then_partitions(self, runtime, eas):
        result = runtime.parallel_for(compute_kernel(), 2_000_000.0, eas)
        assert result.profiled
        assert result.profile_rounds >= 1
        assert 0.0 <= result.alpha <= 1.0
        decision = eas.decisions[0]
        assert decision.category_code is not None
        assert decision.cpu_throughput > 0
        assert decision.gpu_throughput > 0

    def test_small_n_runs_cpu_only(self, runtime, eas, desktop):
        n = desktop.gpu_profile_size / 2
        result = runtime.parallel_for(compute_kernel(), float(n), eas)
        assert not result.profiled
        assert result.alpha == 0.0
        assert result.gpu_items == 0.0
        entry = eas.table.lookup("eas-compute")
        assert entry.provisional

    def test_classifies_memory_kernel_as_memory(self, runtime, eas):
        runtime.parallel_for(memory_kernel(), 2_000_000.0, eas)
        assert eas.decisions[0].category_code.startswith("M")

    def test_classifies_compute_kernel_as_compute(self, runtime, eas):
        runtime.parallel_for(compute_kernel(), 2_000_000.0, eas)
        assert eas.decisions[0].category_code.startswith("C")

    def test_cpu_biased_kernel_stays_on_cpu(self, runtime, eas):
        """The paper's FD behaviour: a GPU-hostile kernel gets alpha
        near zero."""
        result = runtime.parallel_for(cpu_biased_kernel(), 2_000_000.0, eas)
        assert result.alpha <= 0.1


class TestTableReuse:
    def test_second_invocation_reuses_alpha(self, runtime, eas):
        kernel = compute_kernel()
        first = runtime.parallel_for(kernel, 2_000_000.0, eas)
        second = runtime.parallel_for(kernel, 2_000_000.0, eas)
        assert first.profiled
        assert not second.profiled
        assert second.alpha == pytest.approx(first.alpha)

    def test_provisional_superseded_by_large_invocation(self, runtime, eas,
                                                        desktop):
        kernel = compute_kernel()
        small = runtime.parallel_for(kernel, 100.0, eas)
        assert small.alpha == 0.0
        big = runtime.parallel_for(kernel, 2_000_000.0, eas)
        assert big.profiled
        assert not eas.table.lookup(kernel.key).provisional

    def test_outgrown_entry_triggers_reprofiling(self, runtime,
                                                 desktop_characterization):
        eas = EnergyAwareScheduler(desktop_characterization, EDP,
                                   config=SchedulerConfig(reprofile_growth=4.0))
        kernel = compute_kernel()
        runtime.parallel_for(kernel, 5_000.0, eas)
        grown = runtime.parallel_for(kernel, 1_000_000.0, eas)
        assert grown.profiled

    def test_always_reprofile_config(self, runtime, desktop_characterization):
        eas = EnergyAwareScheduler(desktop_characterization, EDP,
                                   config=SchedulerConfig(always_reprofile=True))
        kernel = compute_kernel()
        runtime.parallel_for(kernel, 2_000_000.0, eas)
        second = runtime.parallel_for(kernel, 2_000_000.0, eas)
        assert second.profiled

    def test_distinct_kernels_have_distinct_entries(self, runtime, eas):
        runtime.parallel_for(compute_kernel("k1"), 2_000_000.0, eas)
        runtime.parallel_for(memory_kernel("k2"), 2_000_000.0, eas)
        assert len(eas.table) == 2


class TestGpuBusyFallback:
    def test_busy_gpu_forces_cpu_execution(self, runtime, eas):
        """Section 5: if GPU counter A26 reports busy, run on the CPU."""
        runtime.processor.counters.account_gpu_busy(True, 0.0)
        result = runtime.parallel_for(compute_kernel(), 2_000_000.0, eas)
        assert result.alpha == 0.0
        assert result.gpu_items == 0.0
        assert "gpu-busy-fallback" in result.notes


class TestProfilingBehaviour:
    def test_profiling_respects_half_fraction(self, runtime, eas):
        """Profiling consumes at most half of the invocation."""
        result = runtime.parallel_for(compute_kernel(), 4_000_000.0, eas)
        profiled_items = sum(
            obs for obs in [result.cpu_items + result.gpu_items])
        assert profiled_items == pytest.approx(4_000_000.0, rel=1e-6)

    def test_decision_overhead_is_microseconds(self, runtime, eas):
        """The paper reports 1-2 us scheduling overhead; ours must stay
        within the same order of magnitude (sub-millisecond)."""
        runtime.parallel_for(compute_kernel(), 4_000_000.0, eas)
        decision = eas.decisions[0]
        assert decision.decision_overhead_s < 5e-3

    def test_metric_changes_alpha(self, desktop, desktop_characterization):
        """ENERGY pulls alpha at or above the EDP choice for a
        GPU-cheap kernel (power falls monotonically with alpha on the
        desktop)."""
        alphas = {}
        for metric in (ENERGY, EDP):
            runtime = ConcordRuntime(IntegratedProcessor(desktop))
            eas = EnergyAwareScheduler(desktop_characterization, metric)
            result = runtime.parallel_for(memory_kernel(), 20_000_000.0, eas)
            alphas[metric.name] = result.alpha
        assert alphas["energy"] >= alphas["edp"] - 0.1001
