"""Properties of T(alpha), the execution-time model of Eqs. 1-4.

The paper's scheduler trusts three structural facts about T(alpha);
these suites pin them over randomized device rates and workload sizes:

1. with both devices making progress, T is finite and positive;
2. T is piecewise-monotone in alpha: non-increasing up to alpha_PERF
   (adding GPU share relieves the CPU bottleneck) and non-decreasing
   past it (the GPU becomes the bottleneck);
3. T is monotone in the device rates: a strictly faster device never
   makes any split slower.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimizer import alpha_grid
from repro.core.time_model import ExecutionTimeModel
from repro.errors import SchedulingError

SETTINGS = settings(max_examples=200, deadline=None)

#: Rates and sizes spanning ~9 orders of magnitude but keeping every
#: intermediate ratio well inside float64's exact range.
rates = st.floats(min_value=1e-3, max_value=1e6,
                  allow_nan=False, allow_infinity=False)
sizes = st.floats(min_value=1.0, max_value=1e9,
                  allow_nan=False, allow_infinity=False)
alphas = st.floats(min_value=0.0, max_value=1.0,
                   allow_nan=False, allow_infinity=False)

#: Multiplicative slack for comparisons chaining several float ops.
#: The phase/remainder chaining can differ from the closed form by a
#: few ulps per op; 1e-9 was occasionally grazed by adversarial
#: rate/alpha corners (e.g. rc=524287, rg=2^-6, alpha~6e-8).
REL = 1e-8


class TestFinitePositive:
    @SETTINGS
    @given(rc=rates, rg=rates, n=sizes, alpha=alphas)
    def test_total_time_finite_and_positive(self, rc, rg, n, alpha):
        t = ExecutionTimeModel(rc, rg, n).total_time(alpha)
        assert math.isfinite(t)
        assert t > 0.0

    @SETTINGS
    @given(rc=rates, n=sizes,
           alpha=st.sampled_from(alpha_grid(0.1)))
    def test_dead_gpu_offload_is_infinite(self, rc, n, alpha):
        """A stalled GPU makes any nonzero *grid* offload infinite:
        the assigned GPU share never completes (no work stealing in
        the model), matching max((1-a)N/R_C, aN/0).  Grid alphas only:
        a sub-epsilon share can vanish into the float remainder clamp,
        but the scheduler never emits such an alpha."""
        model = ExecutionTimeModel(rc, 0.0, n)
        if alpha > 0.0:
            assert model.total_time(alpha) == math.inf
        else:
            assert math.isfinite(model.total_time(alpha))

    @SETTINGS
    @given(rc=rates, rg=rates, n=sizes)
    def test_alpha_outside_unit_interval_rejected(self, rc, rg, n):
        model = ExecutionTimeModel(rc, rg, n)
        with pytest.raises(SchedulingError):
            model.total_time(-1e-9)
        with pytest.raises(SchedulingError):
            model.total_time(1.0 + 1e-9)


class TestPiecewiseMonotoneInAlpha:
    @SETTINGS
    @given(rc=rates, rg=rates, n=sizes)
    def test_non_increasing_then_non_decreasing(self, rc, rg, n):
        model = ExecutionTimeModel(rc, rg, n)
        pivot = model.alpha_perf
        grid = alpha_grid(0.05)
        times = [model.total_time(a) for a in grid]
        for (a0, t0), (a1, t1) in zip(zip(grid, times),
                                      zip(grid[1:], times[1:])):
            if a1 <= pivot:
                assert t1 <= t0 * (1.0 + REL)
            elif a0 >= pivot:
                assert t1 >= t0 * (1.0 - REL)
            # The single interval straddling the pivot may go either
            # way; the minimum lives inside it.

    @SETTINGS
    @given(rc=rates, rg=rates, n=sizes, alpha=alphas)
    def test_alpha_perf_is_a_global_minimum(self, rc, rg, n, alpha):
        model = ExecutionTimeModel(rc, rg, n)
        t_star = model.total_time(model.alpha_perf)
        assert t_star <= model.total_time(alpha) * (1.0 + REL)


class TestMonotoneInDeviceRates:
    @SETTINGS
    @given(rc=rates, rg=rates, n=sizes, alpha=alphas,
           boost=st.floats(min_value=1.0, max_value=1e3))
    def test_faster_cpu_never_slower(self, rc, rg, n, alpha, boost):
        base = ExecutionTimeModel(rc, rg, n).total_time(alpha)
        boosted = ExecutionTimeModel(rc * boost, rg, n).total_time(alpha)
        assert boosted <= base * (1.0 + REL)

    @SETTINGS
    @given(rc=rates, rg=rates, n=sizes, alpha=alphas,
           boost=st.floats(min_value=1.0, max_value=1e3))
    def test_faster_gpu_never_slower(self, rc, rg, n, alpha, boost):
        base = ExecutionTimeModel(rc, rg, n).total_time(alpha)
        boosted = ExecutionTimeModel(rc, rg * boost, n).total_time(alpha)
        assert boosted <= base * (1.0 + REL)

    @SETTINGS
    @given(rc=rates, rg=rates, n=sizes, alpha=alphas)
    def test_matches_closed_form(self, rc, rg, n, alpha):
        """Eqs. 1-4 collapse to max((1-a)N/R_C, aN/R_G): co-execution
        plus the surviving device's remainder is exactly the slower
        device's assigned share."""
        model = ExecutionTimeModel(rc, rg, n)
        cpu_t = (1.0 - alpha) * n / rc if alpha < 1.0 else 0.0
        gpu_t = alpha * n / rg if alpha > 0.0 else 0.0
        expected = max(cpu_t, gpu_t)
        assert model.total_time(alpha) == pytest.approx(expected, rel=1e-6)
