"""Property suites for the columnar arrival-trace generators.

The streaming dispatcher's input contract: under any spec, the
columnar form (``trace_columns`` / ``iter_trace_chunks``) is the
element-for-element twin of the scalar ``generate_trace``, arrivals
are nondecreasing, deadlines stay inside the spec's range, and
chunking at any size tiles the trace exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import (
    TRACE_KINDS,
    TraceSpec,
    generate_trace,
    iter_trace_chunks,
    trace_columns,
)

#: Keep traces small: the properties are per-element, not per-scale.
spec_st = st.builds(
    TraceSpec,
    kind=st.sampled_from(TRACE_KINDS),
    duration_s=st.floats(0.5, 40.0),
    mean_rate_hz=st.floats(0.2, 6.0),
    workloads=st.sampled_from((("MM",), ("MM", "RT"), ("MM", "RT", "SM"))),
    seed=st.integers(0, 2 ** 31 - 1),
)


class TestColumnScalarTwins:
    @given(spec=spec_st)
    @settings(max_examples=40, deadline=None)
    def test_columns_equal_scalar_elementwise(self, spec):
        requests = generate_trace(spec)
        t, w, d = trace_columns(spec)
        assert len(t) == len(requests)
        for i, r in enumerate(requests):
            assert float(t[i]) == r.t_arrival_s
            assert spec.workloads[int(w[i])] == r.workload
            assert float(d[i]) == r.deadline_s

    @given(spec=spec_st)
    @settings(max_examples=40, deadline=None)
    def test_shape_invariants(self, spec):
        t, w, d = trace_columns(spec)
        assert t.dtype == np.float64
        assert w.dtype == np.uint16
        assert d.dtype == np.float64
        if len(t):
            assert np.all(np.diff(t) >= 0.0)
            assert float(t[0]) >= 0.0
            assert float(t[-1]) <= spec.duration_s
            assert np.all(w < len(spec.workloads))
            assert np.all(d >= spec.deadline_lo_s)
            assert np.all(d <= spec.deadline_hi_s)

    @given(spec=spec_st, chunk_size=st.integers(1, 300))
    @settings(max_examples=40, deadline=None)
    def test_chunks_tile_exactly(self, spec, chunk_size):
        t, w, d = trace_columns(spec)
        chunks = list(iter_trace_chunks(spec, chunk_size=chunk_size))
        assert sum(len(c) for c in chunks) == len(t)
        assert all(0 < len(c) <= chunk_size for c in chunks)
        next_id = 0
        for chunk in chunks:
            assert chunk.start_id == next_id
            next_id += len(chunk)
        if chunks:
            rebuilt_t = np.concatenate([c.t_arrival_s for c in chunks])
            rebuilt_w = np.concatenate([c.workload_idx for c in chunks])
            rebuilt_d = np.concatenate([c.deadline_s for c in chunks])
            assert np.array_equal(rebuilt_t, t)
            assert np.array_equal(rebuilt_w, w)
            assert np.array_equal(rebuilt_d, d)

    @given(spec=spec_st)
    @settings(max_examples=20, deadline=None)
    def test_regeneration_is_deterministic(self, spec):
        a = trace_columns(spec)
        b = trace_columns(spec)
        for col_a, col_b in zip(a, b):
            assert np.array_equal(col_a, col_b)
