"""Properties of the grid-search minimizer (step 20 of Fig. 7).

The scheduler's alpha decision is ``argmin over the 0.1 grid of
OBJ(alpha) = metric(P(alpha), T(alpha))``.  These suites check, over
randomized curves, time models, and metrics, that the implementation
really is that argmin:

1. the returned alpha is a grid point (exactly - not merely close to
   one);
2. grid optimality: OBJ(alpha*) <= OBJ(alpha) for every grid alpha;
3. the reported objective equals OBJ evaluated at the returned alpha.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import ED2, EDP, ENERGY, ConstrainedMetric
from repro.core.optimizer import AlphaOptimizer, alpha_grid, best_alpha_for
from repro.core.power_curve import fit_power_curve
from repro.core.time_model import ExecutionTimeModel

SETTINGS = settings(max_examples=200, deadline=None)

rates = st.floats(min_value=1e-3, max_value=1e6,
                  allow_nan=False, allow_infinity=False)
sizes = st.floats(min_value=1.0, max_value=1e9,
                  allow_nan=False, allow_infinity=False)
metrics = st.sampled_from([ENERGY, EDP, ED2])
base_powers = st.floats(min_value=1.0, max_value=200.0)
slopes = st.floats(min_value=-50.0, max_value=50.0,
                   allow_nan=False, allow_infinity=False)

#: Grid membership must be exact: the scheduler hands alpha* straight
#: to work-splitting, and the Oracle sweep indexes runs by grid
#: position (see AlphaSweep._index_by_grid).
GRID_KEYS = {round(a * 1000) for a in alpha_grid(0.1)}


def _curve(base, slope):
    """A positive characterization-like curve: base + slope * alpha."""
    sample_alphas = [i / 10.0 for i in range(11)]
    sample_powers = [max(base + slope * a, 0.5) for a in sample_alphas]
    return fit_power_curve(sample_alphas, sample_powers, order=6)


class TestGridSearchOptimality:
    @SETTINGS
    @given(rc=rates, rg=rates, n=sizes, metric=metrics,
           base=base_powers, slope=slopes)
    def test_best_alpha_is_grid_argmin(self, rc, rg, n, metric,
                                       base, slope):
        curve = _curve(base, slope)
        model = ExecutionTimeModel(rc, rg, n)
        optimizer = AlphaOptimizer(metric=metric, step=0.1)
        alpha_star, obj_star = optimizer.best_alpha(curve, model)

        assert round(alpha_star * 1000) in GRID_KEYS
        assert math.isfinite(obj_star)
        assert obj_star == pytest.approx(
            metric.value(curve.power(alpha_star),
                         model.total_time(alpha_star)))
        for alpha in alpha_grid(0.1):
            obj = metric.value(curve.power(alpha), model.total_time(alpha))
            assert obj_star <= obj * (1.0 + 1e-12)

    @SETTINGS
    @given(rc=rates, n=sizes, metric=metrics, base=base_powers,
           slope=slopes)
    def test_dead_gpu_still_finds_feasible_alpha(self, rc, n, metric,
                                                 base, slope):
        """With a stalled GPU, alpha=1 is infinite but the grid still
        contains feasible points; the minimizer must skip infinities."""
        curve = _curve(base, slope)
        model = ExecutionTimeModel(rc, 0.0, n)
        optimizer = AlphaOptimizer(metric=metric, step=0.1)
        alpha_star, obj_star = optimizer.best_alpha(curve, model)
        assert alpha_star < 1.0
        assert math.isfinite(obj_star)


class TestGridClosure:
    @SETTINGS
    @given(step=st.floats(min_value=1e-3, max_value=1.0,
                          allow_nan=False, allow_infinity=False))
    def test_grid_always_contains_both_endpoints(self, step):
        """Regression property for the non-divisor-step bug: for every
        valid step the closed grid keeps alpha=1.0 (and 0.0), sorted
        and duplicate-free."""
        grid = alpha_grid(step)
        assert grid[0] == 0.0
        assert 1.0 in grid
        assert grid == sorted(grid)
        assert len(grid) == len(set(grid))
        assert all(0.0 <= a <= 1.0 for a in grid)


class TestConstrainedSearchProperties:
    @SETTINGS
    @given(rc=rates, rg=rates, n=sizes, metric=metrics,
           base=base_powers, slope=slopes,
           deadline=st.floats(min_value=1e-6, max_value=1e9,
                              allow_nan=False, allow_infinity=False))
    def test_constrained_argmin_over_feasible_set(self, rc, rg, n,
                                                  metric, base, slope,
                                                  deadline):
        """best_alpha_constrained is the argmin over the feasible set
        when one exists, and the min-T grid point otherwise."""
        curve = _curve(base, slope)
        model = ExecutionTimeModel(rc, rg, n)
        optimizer = AlphaOptimizer(metric=metric, step=0.1)
        alpha_star, obj_star, feasible = optimizer.best_alpha_constrained(
            curve, model, deadline)
        assert round(alpha_star * 1000) in GRID_KEYS
        times = {a: model.total_time(a) for a in alpha_grid(0.1)}
        if feasible:
            assert times[alpha_star] <= deadline
            for alpha, t in times.items():
                if t <= deadline:
                    obj = metric.value(curve.power(alpha), t)
                    assert obj_star <= obj * (1.0 + 1e-12)
        else:
            finite = {a: t for a, t in times.items() if math.isfinite(t)}
            assert all(t > deadline for t in finite.values())
            assert times[alpha_star] == min(finite.values())

    @SETTINGS
    @given(rc=rates, rg=rates, n=sizes, base=base_powers, slope=slopes,
           deadline=st.floats(min_value=1e-6, max_value=1e9,
                              allow_nan=False, allow_infinity=False))
    def test_constrained_metric_optimizer_meets_deadline_when_possible(
            self, rc, rg, n, base, slope, deadline):
        """The ConstrainedMetric-carrying optimizer never returns an
        over-deadline alpha while any grid point is feasible."""
        curve = _curve(base, slope)
        model = ExecutionTimeModel(rc, rg, n)
        optimizer = AlphaOptimizer(
            metric=ConstrainedMetric.constrain(EDP, deadline), step=0.1)
        alpha_star, _ = optimizer.best_alpha(curve, model)
        any_feasible = any(model.total_time(a) <= deadline
                           for a in alpha_grid(0.1))
        if any_feasible:
            assert model.total_time(alpha_star) <= deadline


class TestBestAlphaForHelper:
    @SETTINGS
    @given(metric=metrics,
           powers=st.lists(st.floats(min_value=0.5, max_value=200.0),
                           min_size=11, max_size=11),
           times=st.lists(st.floats(min_value=1e-3, max_value=1e3),
                          min_size=11, max_size=11))
    def test_measured_argmin_on_grid(self, metric, powers, times):
        grid = alpha_grid(0.1)
        power_by_key = {round(a * 1000): p for a, p in zip(grid, powers)}
        time_by_key = {round(a * 1000): t for a, t in zip(grid, times)}

        def power_fn(alpha):
            return power_by_key[round(alpha * 1000)]

        def time_fn(alpha):
            return time_by_key[round(alpha * 1000)]

        alpha_star = best_alpha_for(metric, power_fn, time_fn, step=0.1)
        assert round(alpha_star * 1000) in GRID_KEYS
        obj_star = metric.value(power_fn(alpha_star), time_fn(alpha_star))
        for alpha in grid:
            assert obj_star <= metric.value(
                power_fn(alpha), time_fn(alpha)) * (1.0 + 1e-12)
