"""Property suite for the fixed-memory latency quantile sketch.

The documented bound: for values inside ``[min_value, max_value]``,
every nearest-rank quantile estimate is within ``rel_err`` relative
error of the exact sorted order statistic, insertion order never
changes an answer, and the tracked moments (count/sum/min/max) are
exact.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import LatencySketch

#: Latency-like magnitudes well inside the sketch's default
#: [1e-6, 1e7] span, so the relative bound (not the floor/saturation
#: fallback) applies everywhere.
values_st = st.lists(
    st.floats(1e-4, 1e5, allow_nan=False, allow_infinity=False),
    min_size=1, max_size=400)

pct_st = st.floats(0.5, 100.0)


def _exact_nearest_rank(values, pct):
    ordered = np.sort(np.asarray(values, dtype=np.float64))
    rank = max(1, int(np.ceil(pct / 100.0 * len(ordered))))
    return float(ordered[rank - 1])


class TestSketchBound:
    @given(values=values_st, pct=pct_st)
    @settings(max_examples=100, deadline=None)
    def test_quantile_within_documented_error(self, values, pct):
        sketch = LatencySketch()
        sketch.add_batch(np.asarray(values))
        exact = _exact_nearest_rank(values, pct)
        estimate = sketch.quantile(pct)
        assert abs(estimate - exact) <= sketch.rel_err * exact + 1e-12

    @given(values=values_st, seed=st.integers(0, 2 ** 16), pct=pct_st)
    @settings(max_examples=60, deadline=None)
    def test_insertion_order_independence(self, values, seed, pct):
        shuffled = list(values)
        np.random.default_rng(seed).shuffle(shuffled)
        a, b = LatencySketch(), LatencySketch()
        a.add_batch(np.asarray(values))
        b.add_batch(np.asarray(shuffled))
        assert a.quantile(pct) == b.quantile(pct)
        assert a.count == b.count
        assert a.min == b.min and a.max == b.max

    @given(values=values_st)
    @settings(max_examples=60, deadline=None)
    def test_moments_are_exact(self, values):
        arr = np.asarray(values, dtype=np.float64)
        sketch = LatencySketch()
        # split inserts arbitrarily: one batch then scalars
        half = len(arr) // 2
        sketch.add_batch(arr[:half])
        for v in arr[half:]:
            sketch.add(float(v))
        assert sketch.count == len(arr)
        # replicate the sketch's own accumulation order exactly
        expected = float(np.sum(arr[:half])) if half else 0.0
        for v in arr[half:]:
            expected += float(v)
        assert sketch.sum == expected
        assert sketch.min == float(np.min(arr))
        assert sketch.max == float(np.max(arr))
        assert sketch.min <= sketch.quantile(50) <= sketch.max

    @given(values=values_st, pct=pct_st)
    @settings(max_examples=40, deadline=None)
    def test_estimate_clamped_to_observed_range(self, values, pct):
        sketch = LatencySketch()
        sketch.add_batch(np.asarray(values))
        assert sketch.min <= sketch.quantile(pct) <= sketch.max
