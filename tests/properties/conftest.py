"""Property-based suites (hypothesis) for the analytic core.

hypothesis is a dev dependency; if it is absent (minimal production
environments), this guard skips the whole directory at collection
time instead of erroring.
"""

import pytest

pytest.importorskip("hypothesis")
