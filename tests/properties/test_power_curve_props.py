"""Properties of P(alpha): polynomial characterization fits.

The characterizer fits sixth-order polynomials to measured power
sweeps (Section 2, Figs. 5-6) and the optimizer multiplies them with
T(alpha).  Two contracts matter:

1. when the measured data *is* polynomial of degree <= fit order, the
   least-squares fit reproduces every sample point (the fit is
   interpolating-in-the-limit, so characterization adds no modeling
   error of its own);
2. evaluation never returns a non-positive power on [0, 1], even for
   adversarial coefficient sets whose raw polynomial dips negative -
   the optimizer must never see "free" energy.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.power_curve import PowerCurve, fit_power_curve

SETTINGS = settings(max_examples=200, deadline=None)

alphas_01 = st.floats(min_value=0.0, max_value=1.0,
                      allow_nan=False, allow_infinity=False)

#: Base package power (W) plus bounded perturbation coefficients:
#: |sum of higher terms| < base on [0,1], so the truth is positive.
base_powers = st.floats(min_value=1.0, max_value=200.0)
perturbations = st.lists(
    st.floats(min_value=-1.0, max_value=1.0,
              allow_nan=False, allow_infinity=False),
    min_size=0, max_size=6)

#: Raw coefficient tuples, including ones that dip negative on [0,1].
raw_coefficients = st.lists(
    st.floats(min_value=-100.0, max_value=100.0,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=7)


def _true_power(base, coeffs, alpha):
    """base + sum(c_k * alpha^(k+1)) scaled to stay positive."""
    scale = base / (2.0 * max(1.0, sum(abs(c) for c in coeffs)))
    return base + scale * sum(c * alpha ** (k + 1)
                              for k, c in enumerate(coeffs))


class TestFitReproducesPolynomialTruth:
    @SETTINGS
    @given(base=base_powers, coeffs=perturbations)
    def test_samples_reproduced_within_tolerance(self, base, coeffs):
        sample_alphas = [i / 20.0 for i in range(21)]
        sample_powers = [_true_power(base, coeffs, a)
                         for a in sample_alphas]
        curve = fit_power_curve(sample_alphas, sample_powers, order=6)
        for a, p in zip(sample_alphas, sample_powers):
            assert curve.power(a) == pytest.approx(p, rel=1e-4,
                                                   abs=1e-6 * base)

    @SETTINGS
    @given(base=base_powers, coeffs=perturbations)
    def test_fit_residual_rms_is_small(self, base, coeffs):
        sample_alphas = [i / 20.0 for i in range(21)]
        sample_powers = [_true_power(base, coeffs, a)
                         for a in sample_alphas]
        curve = fit_power_curve(sample_alphas, sample_powers, order=6)
        assert curve.fit_residual_rms() <= 1e-4 * base


class TestNeverNonPositive:
    @SETTINGS
    @given(coefficients=raw_coefficients, alpha=alphas_01)
    def test_power_clamped_positive(self, coefficients, alpha):
        curve = PowerCurve(coefficients=tuple(coefficients))
        assert curve.power(alpha) > 0.0

    @SETTINGS
    @given(coefficients=raw_coefficients,
           alpha=st.floats(min_value=-10.0, max_value=10.0,
                           allow_nan=False, allow_infinity=False))
    def test_out_of_range_alpha_clamps_into_unit_interval(
            self, coefficients, alpha):
        curve = PowerCurve(coefficients=tuple(coefficients))
        clamped = min(max(alpha, 0.0), 1.0)
        assert curve.power(alpha) == curve.power(clamped)
        assert curve.power(alpha) > 0.0

    @SETTINGS
    @given(base=base_powers, coeffs=perturbations, alpha=alphas_01)
    def test_fitted_curve_positive_everywhere(self, base, coeffs, alpha):
        sample_alphas = [i / 20.0 for i in range(21)]
        sample_powers = [_true_power(base, coeffs, a)
                         for a in sample_alphas]
        curve = fit_power_curve(sample_alphas, sample_powers, order=6)
        assert curve.power(alpha) > 0.0
        assert np.isfinite(curve.power(alpha))
