"""Properties of the wrapping 32-bit energy MSR arithmetic.

The characterization and every harness measurement read energy through
the hardware protocol: raw 32-bit reads + modular subtraction.  The
contract under test: as long as each read/read window stays below
``max_window_joules()``, the protocol recovers true energy to within
quantization error - regardless of how many times the register has
wrapped over its lifetime.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.msr import EnergyMsr

SETTINGS = settings(max_examples=200, deadline=None)

#: Hardware-plausible energy units: 2**-14 J (Haswell RAPL) up to
#: millijoule-class units on smaller parts.
units = st.floats(min_value=2.0 ** -14, max_value=1e-3,
                  allow_nan=False, allow_infinity=False)

#: Per-window deposits as a fraction of the wrap period, strictly
#: below one full wrap (the documented safe-window precondition).
window_fractions = st.floats(min_value=0.0, max_value=0.999)

#: Pre-existing wrap counts to start the register at.
wrap_counts = st.integers(min_value=0, max_value=50)


def _quantization_slack(msr, n_reads):
    """Each raw read truncates to a whole unit: up to one unit of
    error per read boundary."""
    return msr.energy_unit_j * (n_reads + 1)


class TestSingleWindowRoundTrip:
    @SETTINGS
    @given(unit=units, wraps=wrap_counts, fraction=window_fractions)
    def test_joules_between_recovers_truth_across_a_wrap(
            self, unit, wraps, fraction):
        msr = EnergyMsr(unit)
        # Age the register into its n-th wrap, most of the way to the
        # next boundary, so the measured window usually crosses it.
        msr.deposit(wraps * msr.max_window_joules())
        msr.deposit(0.75 * msr.max_window_joules())
        before = msr.read()
        true_joules = fraction * msr.max_window_joules()
        msr.deposit(true_joules)
        measured = msr.joules_between(before, msr.read())
        assert abs(measured - true_joules) <= _quantization_slack(msr, 2)

    @SETTINGS
    @given(unit=units, wraps=wrap_counts)
    def test_wrap_count_matches_lifetime(self, unit, wraps):
        msr = EnergyMsr(unit)
        msr.deposit(wraps * msr.max_window_joules())
        msr.deposit(0.5 * msr.max_window_joules())
        assert msr.wrap_count == wraps

    @SETTINGS
    @given(unit=units, fraction=window_fractions)
    def test_delta_units_is_modular_inverse_of_wrapping(self, unit,
                                                        fraction):
        msr = EnergyMsr(unit)
        msr.deposit(0.9 * msr.max_window_joules())
        before = msr.read()
        msr.deposit(fraction * msr.max_window_joules())
        after = msr.read()
        delta = EnergyMsr.delta_units(before, after)
        assert 0 <= delta < (1 << 32)
        assert delta * unit <= msr.max_window_joules()


class TestMultiWindowAccumulation:
    @SETTINGS
    @given(unit=units, wraps=wrap_counts,
           fractions=st.lists(window_fractions, min_size=1, max_size=8))
    def test_windowed_sum_recovers_total_across_many_wraps(
            self, unit, wraps, fractions):
        """Sampling often enough (every window < one wrap period) lets
        the software reconstruct total energy exactly - the protocol
        the harness relies on for multi-minute measurements."""
        msr = EnergyMsr(unit)
        msr.deposit(wraps * msr.max_window_joules())
        baseline = msr.lifetime_joules

        total_measured = 0.0
        last_read = msr.read()
        for fraction in fractions:
            msr.deposit(fraction * msr.max_window_joules())
            now_read = msr.read()
            total_measured += msr.joules_between(last_read, now_read)
            last_read = now_read

        true_total = msr.lifetime_joules - baseline
        slack = _quantization_slack(msr, len(fractions) + 1)
        assert abs(total_measured - true_total) <= slack

    @SETTINGS
    @given(unit=units, fraction=st.floats(min_value=1.001, max_value=3.0))
    def test_oversized_window_aliases_as_documented(self, unit, fraction):
        """Beyond max_window_joules the modular arithmetic *must*
        under-report by whole wrap periods - the multi-wraparound
        hazard the docs pin down (it is a hardware property, not a
        bug to fix)."""
        msr = EnergyMsr(unit)
        before = msr.read()
        true_joules = fraction * msr.max_window_joules()
        msr.deposit(true_joules)
        measured = msr.joules_between(before, msr.read())
        missing = true_joules - measured
        periods = round(missing / msr.max_window_joules())
        assert periods >= 1
        assert abs(missing - periods * msr.max_window_joules()) <= (
            _quantization_slack(msr, 2))
