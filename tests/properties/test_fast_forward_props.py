"""Property: fast-forwarding never skips a scheduled discrete event.

The fast clock mode's macro-steps jump hours of simulated time in one
arithmetic move, so the natural failure mode is stepping *across* a
scheduled fault.  The simulator's event-source contract says that can
never happen: both clock modes bound every advance - scalar tick,
batched span, or macro-step - by the event horizon.  We drive randomly
scheduled MSR wrap jumps (the fault substrate's event-source client)
through idle waits and real phases in both modes and require every
event to fire exactly once, at its scheduled instant, identically in
exact and fast mode.
"""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.cost_model import KernelCostModel
from repro.soc.faults import FaultConfig, FaultySoC
from repro.soc.simulator import IntegratedProcessor, PhaseRequest
from repro.soc.spec import haswell_desktop
from repro.soc.work import CostProfile, split_for_offload

# Each example runs two full simulations; keep the count moderate.
SETTINGS = settings(max_examples=25, deadline=None)

#: Scheduled instants spanning the whole simulated window and beyond
#: its end (events past the end must never fire).
event_times = st.lists(
    st.floats(min_value=0.0, max_value=2.0,
              allow_nan=False, allow_infinity=False),
    min_size=0, max_size=8)

#: Firing tolerance: the clock lands ticks on the horizon exactly, but
#: the _MIN_DT clamp (1e-7 s) may carry it an epsilon past it.
_FIRE_TOL = 1e-6

_COST = KernelCostModel(
    name="props-mixed",
    instructions_per_item=500.0,
    loadstore_fraction=0.3,
    l3_miss_rate=0.4,
)


def _simulate(tick_mode, times):
    """Idle, run a co-executing phase, idle again; return (log, now)."""
    spec = replace(haswell_desktop(), tick_mode=tick_mode)
    soc = FaultySoC(IntegratedProcessor(spec),
                    FaultConfig(scheduled_wrap_times=tuple(times)))
    soc.idle(0.4)
    gpu_region, cpu_region = split_for_offload(
        CostProfile(_COST), 3e5, 0.0, 3e5, 0.5)
    soc.run_phase(PhaseRequest(cost=_COST, cpu_region=cpu_region,
                               gpu_region=gpu_region))
    soc.idle(0.5)
    return soc.fault_log, soc.now


class TestMacroSteppingNeverSkipsScheduledFaults:
    @SETTINGS
    @given(times=event_times)
    def test_every_due_event_fires_once_at_its_instant(self, times):
        log, now = _simulate("fast", times)
        events = [e for e in log.events if e.kind == "msr-scheduled-wrap"]
        due = sorted(t for t in times if t <= now - _FIRE_TOL)
        pending = [t for t in times if t > now + _FIRE_TOL]
        # Every event past the end of the simulation stays unfired, and
        # every due one fired exactly once, in schedule order.  (Times
        # within the tolerance band of `now` may legitimately land on
        # either side; they are excluded from both lists.)
        assert len(events) >= len(due)
        assert len(events) <= len(times) - len(pending)
        for scheduled, event in zip(due, events):
            assert abs(event.t - scheduled) <= _FIRE_TOL, (
                f"event scheduled at {scheduled} fired at {event.t}")

    @SETTINGS
    @given(times=event_times)
    def test_fast_and_exact_modes_fire_identically(self, times):
        fast_log, fast_now = _simulate("fast", times)
        exact_log, exact_now = _simulate("exact", times)
        fast_events = [e for e in fast_log.events
                       if e.kind == "msr-scheduled-wrap"]
        exact_events = [e for e in exact_log.events
                        if e.kind == "msr-scheduled-wrap"]
        assert len(fast_events) == len(exact_events)
        for fe, ee in zip(fast_events, exact_events):
            assert abs(fe.t - ee.t) <= _FIRE_TOL
            assert fe.detail == ee.detail  # same jump, same schedule slot

    def test_macro_step_is_interrupted_by_a_mid_span_event(self):
        """Deterministic core case: a settled idle macro-step spanning
        a scheduled event must split at the event, not jump over it."""
        spec = replace(haswell_desktop(), tick_mode="fast")
        soc = FaultySoC(IntegratedProcessor(spec),
                        FaultConfig(scheduled_wrap_times=(1.0,)))
        soc.idle(3.0)  # one settled wait spanning the event
        events = [e for e in soc.fault_log.events
                  if e.kind == "msr-scheduled-wrap"]
        assert len(events) == 1
        assert abs(events[0].t - 1.0) <= _FIRE_TOL
