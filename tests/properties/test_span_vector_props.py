"""Property suites for the vectorized model twins and span reducers.

The batched-transient path rests on two claims:

1. **Elementwise bit-identity** - ``compute_rates_batch`` /
   ``package_power_batch`` reproduce their scalar twins *exactly* per
   element (same elementary operations in the same order), which is
   what lets fast mode commit batched spans with byte-stable results.
2. **Span reduction accuracy** - ``span_items`` / ``span_energy_j``
   (one dot product over a tick span) agree with the scalar per-tick
   running sum to float-summation-order error, far inside the
   bounded-mode tolerance contract.

Plus the physical sanity the batch path must preserve: positivity,
stall fractions in [0, 1], and CPU throughput monotone in CPU
frequency when the GPU is off the memory system.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.cost_model import KernelCostModel
from repro.soc.device import DeviceRates, compute_rates, compute_rates_batch, span_items
from repro.soc.power import package_power, package_power_batch, span_energy_j
from repro.soc.spec import baytrail_tablet, haswell_desktop

_SPECS = {"desktop": haswell_desktop(), "tablet": baytrail_tablet()}

#: Relative agreement required between a span dot product and the
#: per-tick running sum (the bounded contract allows 1e-6; summation
#: order only moves the last few bits).
_SPAN_RTOL = 1e-9


def _freqs(spec, n, rng_seed):
    rng = np.random.default_rng(rng_seed)
    cpu = rng.uniform(spec.cpu.min_freq_hz, spec.cpu.turbo_freq_hz, n)
    gpu = rng.uniform(spec.gpu.min_freq_hz, spec.gpu.turbo_freq_hz, n)
    return cpu, gpu


@st.composite
def cost_models(draw):
    return KernelCostModel(
        name="prop",
        instructions_per_item=draw(st.floats(10.0, 1e6)),
        loadstore_fraction=draw(st.floats(0.0, 1.0)),
        l3_miss_rate=draw(st.floats(0.0, 1.0)),
        cpu_simd_efficiency=draw(st.floats(0.05, 1.0)),
        gpu_simd_efficiency=draw(st.floats(0.05, 1.0)),
        gpu_divergence=draw(st.floats(0.0, 0.9)),
        gpu_instruction_expansion=draw(st.floats(0.5, 4.0)),
        gpu_traffic_factor=draw(st.floats(0.25, 2.0)),
    )


case_st = st.tuples(
    st.sampled_from(sorted(_SPECS)),
    cost_models(),
    st.integers(1, 64),          # span length
    st.integers(0, 2**32 - 1),   # frequency rng seed
    st.floats(0.0, 4096.0),      # gpu items in flight
    st.booleans(),               # cpu active
    st.booleans(),               # gpu active
)


@settings(max_examples=60, deadline=None)
@given(case_st)
def test_rates_batch_bit_identical_to_scalar(case):
    platform, cost, n, seed, dispatch, cpu_active, gpu_active = case
    spec = _SPECS[platform]
    cpu_f, gpu_f = _freqs(spec, n, seed)
    cores = float(spec.cpu.num_cores)
    batch = compute_rates_batch(spec, cost, cpu_f, gpu_f, cores, dispatch,
                                cpu_active=cpu_active, gpu_active=gpu_active)
    for i in range(n):
        scalar = compute_rates(spec, cost, cpu_f[i], gpu_f[i], cores,
                               dispatch, cpu_active=cpu_active,
                               gpu_active=gpu_active)
        # Bit-identity, not approx: fast mode's byte-stable commit
        # replay depends on exact equality.
        assert float(np.asarray(batch.cpu_items_per_s).reshape(-1)[i]) \
            == scalar.cpu_items_per_s
        assert float(np.asarray(batch.gpu_items_per_s).reshape(-1)[i]) \
            == scalar.gpu_items_per_s
        assert float(np.asarray(
            batch.cpu_memory_stall_fraction).reshape(-1)[i]) \
            == scalar.cpu_memory_stall_fraction
        assert float(np.asarray(
            batch.gpu_memory_stall_fraction).reshape(-1)[i]) \
            == scalar.gpu_memory_stall_fraction
        assert float(np.asarray(
            batch.cpu_traffic_bytes_per_s).reshape(-1)[i]) \
            == scalar.cpu_traffic_bytes_per_s
        assert float(np.asarray(
            batch.gpu_traffic_bytes_per_s).reshape(-1)[i]) \
            == scalar.gpu_traffic_bytes_per_s


@settings(max_examples=60, deadline=None)
@given(case_st)
def test_power_batch_bit_identical_to_scalar(case):
    platform, cost, n, seed, dispatch, cpu_active, gpu_active = case
    spec = _SPECS[platform]
    cpu_f, gpu_f = _freqs(spec, n, seed)
    cores = float(spec.cpu.num_cores) if cpu_active else 0.0
    rates = compute_rates_batch(spec, cost, cpu_f, gpu_f, cores, dispatch,
                                cpu_active=cpu_active, gpu_active=gpu_active)
    batch = package_power_batch(spec, rates, cpu_f, gpu_f, cores, gpu_active)
    pkg = np.asarray(batch.package_w).reshape(-1)
    for i in range(n):
        scalar_rates = DeviceRates(*(
            float(np.asarray(getattr(rates, f.name)).reshape(-1)[i])
            for f in DeviceRates.__dataclass_fields__.values()))
        scalar = package_power(spec, scalar_rates, cpu_f[i], gpu_f[i],
                               cores, gpu_active)
        assert float(pkg[i]) == scalar.package_w
        # Physical sanity on the batched path: no component negative,
        # package never below the idle floor.
        assert float(pkg[i]) >= spec.idle_power_w > 0.0


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.floats(0.0, 1e9), st.floats(1e-6, 1.0)),
                min_size=1, max_size=512))
def test_span_items_matches_running_sum(pairs):
    rates = np.array([p[0] for p in pairs])
    dts = np.array([p[1] for p in pairs])
    running = 0.0
    for rate, dt in zip(rates, dts):
        running += rate * dt
    total = span_items(rates, dts)
    assert abs(total - running) <= _SPAN_RTOL * max(1.0, abs(running))


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(st.floats(0.0, 500.0), st.floats(1e-6, 1.0)),
                min_size=1, max_size=512))
def test_span_energy_matches_running_sum(pairs):
    watts = np.array([p[0] for p in pairs])
    dts = np.array([p[1] for p in pairs])
    running = 0.0
    for w, dt in zip(watts, dts):
        running += w * dt
    total = span_energy_j(watts, dts)
    assert abs(total - running) <= _SPAN_RTOL * max(1.0, abs(running))


@settings(max_examples=60, deadline=None)
@given(st.sampled_from(sorted(_SPECS)), cost_models(),
       st.integers(0, 2**32 - 1))
def test_cpu_rate_monotone_in_frequency_gpu_idle(platform, cost, seed):
    """With the GPU off the memory system, raising the CPU clock never
    lowers CPU throughput (roofline: compute leg rises, bandwidth leg
    caps)."""
    spec = _SPECS[platform]
    rng = np.random.default_rng(seed)
    cpu_f = np.sort(rng.uniform(spec.cpu.min_freq_hz,
                                spec.cpu.turbo_freq_hz, 16))
    gpu_f = np.full_like(cpu_f, spec.gpu.min_freq_hz)
    rates = compute_rates_batch(spec, cost, cpu_f, gpu_f,
                                float(spec.cpu.num_cores), 0.0,
                                cpu_active=True, gpu_active=False)
    items = np.asarray(rates.cpu_items_per_s).reshape(-1)
    assert np.all(items >= 0.0)
    assert np.all(np.diff(items) >= 0.0)
    stalls = np.asarray(rates.cpu_memory_stall_fraction).reshape(-1)
    assert np.all((stalls >= 0.0) & (stalls <= 1.0))
