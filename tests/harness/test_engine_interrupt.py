"""Interrupting a pooled batch must not orphan worker processes.

Before the teardown path existed, a KeyboardInterrupt (or any raising
spec) during ``_run_pool`` fell into ``ProcessPoolExecutor``'s default
shutdown, which *waits* for every queued spec - leaving the terminal
wedged behind orphaned workers grinding through a batch nobody wants.
"""

import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.harness import engine as engine_mod
from repro.harness.engine import ExecutionEngine, RunSpec, SchedulerSpec
from repro.soc.spec import haswell_desktop

#: Long enough that a leaked worker would blow the test timeout.
_HANG_S = 120.0


def _sleep_forever() -> None:
    time.sleep(_HANG_S)


def _execute_first_raises(spec: RunSpec):
    """Stand-in for ``execute_spec``: first spec raises, rest hang."""
    if spec.seed == 0:
        raise KeyboardInterrupt()
    time.sleep(_HANG_S)


def _execute_first_errors(spec: RunSpec):
    if spec.seed == 0:
        raise RuntimeError("boom")
    time.sleep(_HANG_S)


def _specs(n: int):
    return [RunSpec(platform=haswell_desktop(), workload="MB",
                    scheduler=SchedulerSpec.static(0.5), seed=i)
            for i in range(n)]


class TestTeardownPool:
    def test_kills_workers_mid_task(self):
        pool = ProcessPoolExecutor(max_workers=2)
        futures = [pool.submit(_sleep_forever) for _ in range(4)]
        deadline = time.monotonic() + 10.0
        while not pool._processes and time.monotonic() < deadline:
            time.sleep(0.01)
        workers = list(pool._processes.values())
        assert workers, "pool never spawned workers"
        start = time.monotonic()
        ExecutionEngine._teardown_pool(pool, futures)
        assert time.monotonic() - start < 30.0
        assert all(not w.is_alive() for w in workers)


class TestRunPoolInterrupt:
    @pytest.mark.parametrize("replacement, expected", [
        (_execute_first_raises, KeyboardInterrupt),
        (_execute_first_errors, RuntimeError),
    ])
    def test_raising_spec_tears_down_promptly(self, monkeypatch,
                                              replacement, expected):
        monkeypatch.setattr(engine_mod, "execute_spec", replacement)
        engine = ExecutionEngine(jobs=2)
        start = time.monotonic()
        with pytest.raises(expected):
            engine._run_pool(_specs(4))
        # Without teardown, shutdown would wait out every hanging
        # worker (~_HANG_S); with it the batch dies in seconds.
        assert time.monotonic() - start < 30.0
