"""Suite evaluation and figure regenerators (cheap pieces only; the
full Figs. 9-12 runs live in benchmarks/)."""

import pytest

from repro.core.metrics import EDP
from repro.errors import HarnessError
from repro.harness.figures import (
    REGENERATORS,
    _measure_classification,
    regenerate,
    regenerate_figure_4,
    regenerate_table_1,
)
from repro.harness.suite import evaluate_suite, get_characterization
from repro.workloads.registry import workload_by_abbrev


class TestRegistry:
    def test_all_paper_experiments_present(self):
        expected = {"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
                    "table1", "fig9", "fig10", "fig11", "fig12", "chaos",
                    "crashchaos", "fleet", "objectives"}
        assert expected == set(REGENERATORS)

    def test_unknown_experiment(self):
        with pytest.raises(HarnessError):
            regenerate("fig99")


class TestCharacterizationCache:
    def test_characterization_cached_per_platform(self, desktop):
        first = get_characterization(desktop)
        second = get_characterization(desktop)
        assert first is second


class TestSuiteEvaluation:
    def test_single_workload_suite(self, desktop):
        """A one-workload suite exercises the full strategy matrix."""
        workload = workload_by_abbrev("NB")
        evaluation = evaluate_suite(desktop, [workload], EDP)
        assert evaluation.workloads() == ["NB"]
        for strategy in ("CPU", "GPU", "PERF", "EAS", "Oracle"):
            outcome = evaluation.outcome("NB", strategy)
            assert outcome.metric_value > 0
        # Oracle is the best by construction.
        assert evaluation.outcome("NB", "Oracle").efficiency_pct == 100.0
        for strategy in ("CPU", "GPU"):
            assert evaluation.outcome(
                "NB", strategy).efficiency_pct <= 100.0 + 1e-9
        # Averages computed over the declared strategies.
        assert evaluation.average_efficiency_pct("EAS") > 0


class TestCheapFigures:
    def test_figure4_reproduces_burst_dips(self):
        """Fig. 4's shape: steady memory-bound CPU power near 60 W,
        dips below ~40 W while the GPU bursts."""
        result = regenerate_figure_4()
        steady_note = result.notes[0]
        dip_note = result.notes[1]
        steady = float(steady_note.split(":")[1].split("W")[0])
        dip = float(dip_note.split(":")[1].split("W")[0])
        assert steady > 48.0
        assert dip < 40.0
        assert "10" in result.notes[2]
        assert result.render()

    def test_table1_classification_mostly_matches_paper(self):
        """Measured online classification agrees with the paper's
        Table 1 on boundedness for every workload."""
        result = regenerate_table_1()
        paper_bound = {"BH": "M", "BFS": "M", "CC": "M", "FD": "C",
                       "MB": "M", "SL": "M", "SP": "M", "BS": "C",
                       "MM": "C", "NB": "C", "RT": "C", "SM": "M"}
        for row in result.rows:
            abbrev, bound = row[1], row[6]
            assert bound == paper_bound[abbrev], abbrev
        assert result.render()

    def test_measured_classification_runs(self, desktop):
        category = _measure_classification(desktop, workload_by_abbrev("NB"))
        assert category.short_code.startswith("C")


class TestObjectivesFigure:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.harness.figures import regenerate_objectives

        return regenerate_objectives("fast")

    def test_constrained_eas_meets_loose_budgets(self, result):
        """Per-cell strategy triples: the loose-budget constrained run
        never exceeds the budget encoded in its label, and race-to-idle
        lands exactly on it (sprint + banked idle slack)."""
        by_cell = {}
        for platform, workload, strategy, time_s, _, _ in result.rows:
            by_cell.setdefault((platform, workload), {})[
                strategy.split("[")[0]] = (strategy, time_s)
        assert len(by_cell) == 4  # both platforms x MB, BS
        for (platform, workload), strategies in by_cell.items():
            assert set(strategies) == {"EAS", "RACE"} | {
                s for s in strategies if s.startswith("EAS")}

    def test_tight_budgets_are_infeasible(self, result):
        assert result.infeasible
        for _, _, _, n_infeasible, n_total in result.infeasible:
            assert n_infeasible == n_total > 0

    def test_carbon_shifting_reported(self, result):
        assert any("low-carbon" in key for key, _ in result.carbon_rows)
        assert len(result.fleet_fingerprints) == 2
        assert result.fleet_fingerprints[0] != result.fleet_fingerprints[1]

    def test_fingerprint_stable_and_rendered(self, result):
        from repro.harness.figures import regenerate_objectives

        assert result.render()
        assert regenerate_objectives("fast").fingerprint() == \
            result.fingerprint()
