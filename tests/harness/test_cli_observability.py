"""CLI observability flags and the unified experiment/name lookups.

``--run WL --trace/--metrics-out`` must produce files the schema
validator accepts; ``--fault-level``/``--seed`` must plumb through to
the fault substrate; and every name lookup (``--figure``,
``--experiment``, metrics, workloads) must fail with the same typed
error carrying did-you-mean suggestions.
"""

import json

import pytest

from repro.core.metrics import metric_by_name
from repro.errors import (
    HarnessError,
    SchedulingError,
    UnknownNameError,
    WorkloadError,
    closest_names,
)
from repro.harness.cli import main
from repro.harness.figures import experiment_id
from repro.obs.validate import validate_file
from repro.workloads.registry import workload_by_abbrev


class TestTraceAndMetricsFlags:
    def test_trace_and_metrics_files_validate(self, tmp_path, capsys):
        trace = str(tmp_path / "t.json")
        metrics = str(tmp_path / "m.json")
        assert main(["--run", "MM", "--strategies", "eas",
                     "--trace", trace, "--metrics-out", metrics]) == 0
        out = capsys.readouterr().out
        assert "trace events" in out
        assert validate_file(trace) == "chrome-trace"
        assert validate_file(metrics) == "metrics"

    def test_trace_has_one_process_per_strategy(self, tmp_path, capsys):
        trace = str(tmp_path / "t.json")
        assert main(["--run", "MM", "--strategies", "cpu,eas",
                     "--trace", trace]) == 0
        with open(trace) as fh:
            events = json.load(fh)["traceEvents"]
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert names == {"cpu", "eas"}

    def test_metrics_are_prefixed_per_strategy(self, tmp_path, capsys):
        metrics = str(tmp_path / "m.json")
        assert main(["--run", "MM", "--strategies", "cpu,eas",
                     "--metrics-out", metrics]) == 0
        with open(metrics) as fh:
            payload = json.load(fh)
        counters = payload["metrics"]["counters"]
        assert counters["eas/eas.invocations"] >= 1
        assert counters["cpu/runtime.invocations"] >= 1
        assert "eas.invocations" not in counters  # always prefixed

    def test_metadata_records_the_run_parameters(self, tmp_path, capsys):
        metrics = str(tmp_path / "m.json")
        assert main(["--run", "MM", "--strategies", "eas", "--seed", "7",
                     "--fault-level", "0.2",
                     "--metrics-out", metrics]) == 0
        with open(metrics) as fh:
            meta = json.load(fh)["metadata"]
        assert meta["workload"] == "MM"
        assert meta["seed"] == 7
        assert meta["fault_level"] == 0.2

    def test_fault_level_injects_faults(self, capsys):
        assert main(["--run", "MM", "--strategies", "eas",
                     "--fault-level", "0.5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "fault-level=0.5" in out

    def test_observability_flags_require_run_mode(self):
        with pytest.raises(HarnessError, match="require --run"):
            main(["--figure", "9", "--trace", "/tmp/nope.json"])
        with pytest.raises(HarnessError, match="require --run"):
            main(["--list", "--fault-level", "0.5"])


class TestUnifiedExperimentIds:
    def test_number_fign_and_case_normalize(self):
        assert experiment_id("9") == "fig9"
        assert experiment_id("fig9") == "fig9"
        assert experiment_id("FIG9") == "fig9"
        assert experiment_id("Table1") == "table1"

    def test_experiment_flag_accepts_bare_number(self, capsys):
        assert main(["--experiment", "2"]) == 0
        assert "fig2" in capsys.readouterr().out

    def test_figure_flag_accepts_name(self, capsys):
        assert main(["--figure", "fig2"]) == 0
        assert "fig2" in capsys.readouterr().out

    def test_unknown_experiment_suggests(self):
        with pytest.raises(UnknownNameError, match="did you mean"):
            experiment_id("table99")
        with pytest.raises(HarnessError):
            experiment_id("table99")  # same typed error, harness flavor


class TestDidYouMeanLookups:
    def test_unknown_metric(self):
        with pytest.raises(UnknownNameError, match="edp"):
            metric_by_name("edpp")
        # The unified error is catchable as the layer's native type.
        with pytest.raises(SchedulingError):
            metric_by_name("edpp")

    def test_unknown_workload(self):
        with pytest.raises(UnknownNameError, match="did you mean"):
            workload_by_abbrev("CCC")
        with pytest.raises(WorkloadError):
            workload_by_abbrev("CCC")

    def test_closest_names_ranks_by_similarity(self):
        candidates = ["energy", "edp", "ed2"]
        assert closest_names("edpp", candidates)[0] == "edp"
        assert closest_names("enrgy", candidates)[0] == "energy"
        assert closest_names("zzz", candidates) == ()

    def test_suggestions_attached_to_error(self):
        try:
            workload_by_abbrev("MN")
        except UnknownNameError as exc:
            assert "MM" in exc.suggestions or "NB" in exc.suggestions
        else:
            pytest.fail("lookup should have raised")
