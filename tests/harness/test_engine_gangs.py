"""Gang execution: model-identity grouping, sharing safety, teardown.

The engine executes specs in *gangs* - batches grouped by platform
model identity (:func:`repro.soc.vector.model_identity`) that share one
:class:`~repro.soc.vector.VectorCore` of bit-stable model memos.  These
tests pin the edge cases: a single-spec batch, refusal to gang mixed
platforms, interrupt teardown through the ganged pool path, and cache
keys that distinguish every tick mode and tolerance.
"""

import time

import pytest

from repro.errors import HarnessError
from repro.harness import engine as engine_mod
from repro.harness.engine import (
    ExecutionEngine,
    RunSpec,
    SchedulerSpec,
    SpecGang,
    _gang_positions,
    execute_gang,
    execute_spec,
)
from repro.soc.spec import baytrail_tablet, haswell_desktop


def _spec(platform=None, seed=0, alpha=0.5, **kwargs):
    return RunSpec(platform=platform or haswell_desktop(),
                   workload="MB", scheduler=SchedulerSpec.static(alpha),
                   seed=seed, **kwargs)


class TestSpecGang:
    def test_single_member(self):
        gang = SpecGang.of([_spec()])
        assert len(gang) == 1

    def test_empty_refused(self):
        with pytest.raises(HarnessError):
            SpecGang.of([])

    def test_mixed_platforms_refused(self):
        with pytest.raises(HarnessError) as excinfo:
            SpecGang.of([_spec(haswell_desktop()), _spec(baytrail_tablet())])
        # The refusal names the colliding platforms.
        message = str(excinfo.value)
        assert haswell_desktop().name in message
        assert baytrail_tablet().name in message

    def test_mixed_tick_modes_of_one_platform_allowed(self):
        # Tick mode and tolerance are stepping strategy, not model
        # identity: exact/fast/bounded siblings gang together.
        gang = SpecGang.of([
            _spec(haswell_desktop(tick_mode=mode))
            for mode in ("exact", "fast", "bounded")
        ])
        assert len(gang) == 3

    def test_gang_positions_preserve_order(self):
        desktop, tablet = haswell_desktop(), baytrail_tablet()
        specs = [_spec(desktop, seed=0), _spec(tablet, seed=1),
                 _spec(desktop, seed=2), _spec(tablet, seed=3)]
        assert _gang_positions(specs) == [[0, 2], [1, 3]]


class TestGangExecution:
    def test_execute_gang_matches_ungang(self):
        """Sharing a core must not change any member's payload."""
        specs = [_spec(seed=1, alpha=0.3), _spec(seed=1, alpha=0.7)]
        ganged = execute_gang(SpecGang.of(specs))
        solo = [execute_spec(spec) for spec in specs]
        for g, s in zip(ganged, solo):
            assert g.key == s.key
            assert g.payload.canonical() == s.payload.canonical()

    def test_single_spec_batch_through_parallel_engine(self):
        """jobs>1 with one pending spec takes the serial gang path and
        still produces the reference result."""
        spec = _spec(seed=7)
        parallel = ExecutionEngine(jobs=4).run_batch([spec])
        serial = ExecutionEngine(jobs=1).run_batch([spec])
        assert len(parallel) == 1
        assert parallel[0].payload.canonical() == serial[0].payload.canonical()

    def test_mixed_platform_batch_splits_into_gangs(self):
        """Desktop and tablet specs in one pooled batch land in
        separate gangs; results come back in submission order."""
        specs = [_spec(haswell_desktop(), seed=0),
                 _spec(baytrail_tablet(), seed=1, tablet=True),
                 _spec(haswell_desktop(), seed=2)]
        results = ExecutionEngine(jobs=2).run_batch(specs)
        reference = ExecutionEngine(jobs=1).run_batch(specs)
        assert [r.key for r in results] == [r.key for r in reference]
        for got, want in zip(results, reference):
            assert got.payload.canonical() == want.payload.canonical()


def _first_chunk_raises(gang):
    """Stand-in for ``execute_gang``: the chunk holding seed 0 raises,
    every other chunk hangs (module-level so pool workers can unpickle
    it by qualified name)."""
    if any(spec.seed == 0 for spec in gang.specs):
        raise KeyboardInterrupt()
    time.sleep(120.0)


class TestGangInterrupt:
    def test_keyboard_interrupt_tears_down_gang_pool(self, monkeypatch):
        """A KeyboardInterrupt in one ganged chunk must kill the batch
        promptly instead of waiting out every queued gang."""
        monkeypatch.setattr(engine_mod, "execute_gang", _first_chunk_raises)
        engine = ExecutionEngine(jobs=2)
        start = time.monotonic()
        with pytest.raises(KeyboardInterrupt):
            engine._run_pool([_spec(seed=i) for i in range(4)])
        assert time.monotonic() - start < 30.0


class TestCacheKeysAcrossModes:
    def test_tick_modes_hash_distinct(self):
        keys = {
            _spec(haswell_desktop(tick_mode=mode)).cache_key()
            for mode in ("exact", "fast", "bounded")
        }
        assert len(keys) == 3

    def test_bounded_tol_hashes_distinct(self):
        import dataclasses

        base = haswell_desktop(tick_mode="bounded")
        loose = dataclasses.replace(base, bounded_tol=1e-4)
        assert _spec(base).cache_key() != _spec(loose).cache_key()
