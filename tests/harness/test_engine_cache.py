"""Cache-correctness tests for the content-addressed result cache.

Three contracts:

1. **key sensitivity** - the cache key moves when any RunSpec field
   or the schema version changes, so no spec can ever be served
   another spec's result;
2. **integrity** - corrupted or truncated entries are detected via
   checksum, evicted, and recomputed, never trusted;
3. **bypass** - ``--no-cache`` (engine without a cache) neither reads
   nor writes.
"""

import dataclasses
import os
import pickle

import pytest

from repro.harness import engine as engine_mod
from repro.harness.cli import _make_cache
from repro.harness.engine import (
    _MAGIC,
    ExecutionEngine,
    ResultCache,
    RunResult,
    RunSpec,
    SchedulerSpec,
    execute_spec,
    get_default_engine,
    set_default_engine,
    use_engine,
)
from repro.soc.spec import baytrail_tablet, haswell_desktop


@pytest.fixture
def base_spec():
    return RunSpec(platform=haswell_desktop(), workload="MB",
                   scheduler=SchedulerSpec.static(0.5))


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path / "runs"))


class TestKeySensitivity:
    def test_key_is_deterministic(self, base_spec):
        clone = RunSpec(platform=haswell_desktop(), workload="MB",
                        scheduler=SchedulerSpec.static(0.5))
        assert base_spec.cache_key() == clone.cache_key()

    @pytest.mark.parametrize("override", [
        {"platform": baytrail_tablet()},
        {"workload": "BS"},
        {"scheduler": SchedulerSpec.static(0.6)},
        {"scheduler": SchedulerSpec.eas()},
        {"scheduler": SchedulerSpec.perf()},
        {"tablet": True},
        {"fault_level": 0.25},
        {"seed": 1},
        {"params": (("alpha", 0.9),)},
        {"observe": True},
    ])
    def test_any_field_change_moves_the_key(self, base_spec, override):
        changed = dataclasses.replace(base_spec, **override)
        assert changed.cache_key() != base_spec.cache_key()

    def test_scheduler_overrides_move_the_key(self, base_spec):
        from repro.core.scheduler import SchedulerConfig

        tweaked = dataclasses.replace(
            base_spec,
            scheduler=SchedulerSpec.eas(
                config=SchedulerConfig(profile_fraction=0.2)))
        plain = dataclasses.replace(base_spec,
                                    scheduler=SchedulerSpec.eas())
        assert tweaked.cache_key() != plain.cache_key()

    def test_schema_version_moves_the_key(self, base_spec, monkeypatch):
        before = base_spec.cache_key()
        monkeypatch.setattr(engine_mod, "CACHE_SCHEMA_VERSION",
                            engine_mod.CACHE_SCHEMA_VERSION + 1)
        assert base_spec.cache_key() != before

    def test_metric_name_moves_eas_key(self, base_spec):
        edp = dataclasses.replace(base_spec,
                                  scheduler=SchedulerSpec.eas("edp"))
        energy = dataclasses.replace(base_spec,
                                     scheduler=SchedulerSpec.eas("energy"))
        assert edp.cache_key() != energy.cache_key()


class TestIntegrity:
    def _seed_entry(self, cache, key="k" * 64):
        cache.put(key, RunResult(key=key, payload={"x": 1.5}))
        return key, cache.path_for(key)

    def test_round_trip(self, cache):
        key, _ = self._seed_entry(cache)
        result = cache.get(key)
        assert result is not None
        assert result.payload == {"x": 1.5}
        assert result.from_cache is False  # set by the engine, not get()

    def test_truncated_entry_evicted(self, cache):
        key, path = self._seed_entry(cache)
        with open(path, "rb") as fh:
            blob = fh.read()
        with open(path, "wb") as fh:
            fh.write(blob[:len(blob) // 2])
        assert cache.get(key) is None
        assert cache.evictions == 1
        assert not os.path.exists(path)

    def test_flipped_byte_evicted(self, cache):
        key, path = self._seed_entry(cache)
        with open(path, "rb") as fh:
            blob = bytearray(fh.read())
        blob[-1] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(blob))
        assert cache.get(key) is None
        assert cache.evictions == 1
        assert not os.path.exists(path)

    def test_wrong_magic_evicted(self, cache):
        key, path = self._seed_entry(cache)
        with open(path, "wb") as fh:
            fh.write(b"not a cache entry")
        assert cache.get(key) is None
        assert not os.path.exists(path)

    def test_checksummed_but_non_result_pickle_rejected(self, cache):
        import hashlib

        key = "k" * 64
        path = cache.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        data = pickle.dumps({"not": "a RunResult"})
        with open(path, "wb") as fh:
            fh.write(_MAGIC + hashlib.sha256(data).digest() + data)
        assert cache.get(key) is None
        assert not os.path.exists(path)

    def test_eviction_emits_metric_and_warning(self, cache):
        """Evict-on-corruption is never silent: it bumps the
        ``cache.corrupt_evictions`` counter and warns with the key."""
        from repro.obs.observer import Observer

        observer = Observer()
        cache.observer = observer
        key, path = self._seed_entry(cache)
        with open(path, "wb") as fh:
            fh.write(b"garbage")
        with pytest.warns(RuntimeWarning,
                          match=f"evicted corrupt entry {key}"):
            assert cache.get(key) is None
        counters = observer.metrics.snapshot()["counters"]
        assert counters["cache.corrupt_evictions"] == 1.0

    def test_run_batch_attaches_observer_to_cache(self, cache):
        from repro.obs.observer import Observer

        spec = RunSpec(platform=haswell_desktop(), workload="MB",
                       scheduler=SchedulerSpec.static(0.5))
        engine = ExecutionEngine(jobs=1, cache=cache)
        engine.run_batch([spec])
        path = cache.path_for(spec.cache_key())
        with open(path, "wb") as fh:
            fh.write(b"garbage")
        observer = Observer()
        with pytest.warns(RuntimeWarning, match="evicted corrupt entry"):
            engine.run_batch([spec], observer=observer)
        counters = observer.metrics.snapshot()["counters"]
        assert counters["cache.corrupt_evictions"] == 1.0

    def test_corrupted_entry_recomputed_through_engine(self, cache):
        spec = RunSpec(platform=haswell_desktop(), workload="MB",
                       scheduler=SchedulerSpec.static(0.5))
        engine = ExecutionEngine(jobs=1, cache=cache)
        reference = engine.run_batch([spec])[0]
        path = cache.path_for(spec.cache_key())
        with open(path, "wb") as fh:
            fh.write(b"garbage")
        recomputed = engine.run_batch([spec])[0]
        assert recomputed.from_cache is False
        assert (recomputed.payload.canonical()
                == reference.payload.canonical())
        # ...and the repaired entry is served on the next lookup.
        assert engine.run_batch([spec])[0].from_cache is True


class TestBypass:
    def test_no_cache_flag_yields_no_cache(self, tmp_path):
        import argparse

        args = argparse.Namespace(no_cache=True,
                                  cache_dir=str(tmp_path))
        assert _make_cache(args) is None
        args = argparse.Namespace(no_cache=False,
                                  cache_dir=str(tmp_path))
        built = _make_cache(args)
        assert isinstance(built, ResultCache)
        assert built.root == os.path.join(str(tmp_path), "runs")

    def test_engine_without_cache_touches_no_disk(self, tmp_path,
                                                  monkeypatch):
        # Even with REPRO_CACHE_DIR pointing somewhere, an engine built
        # with cache=None must not read or write run results there.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        spec = RunSpec(platform=haswell_desktop(), workload="MB",
                       scheduler=SchedulerSpec.static(0.5))
        engine = ExecutionEngine(jobs=1, cache=None)
        result = engine.run_batch([spec])[0]
        assert result.from_cache is False
        assert not os.path.exists(os.path.join(str(tmp_path), "runs"))

    def test_no_cache_ignores_poisoned_entries(self, cache):
        """A cache-less engine cannot be poisoned: plant a wrong entry
        under the spec's key and verify the engine recomputes."""
        spec = RunSpec(platform=haswell_desktop(), workload="MB",
                       scheduler=SchedulerSpec.static(0.5))
        truth = execute_spec(spec)
        cache.put(spec.cache_key(),
                  RunResult(key=spec.cache_key(), payload="poison"))
        without = ExecutionEngine(jobs=1, cache=None).run_batch([spec])[0]
        assert without.payload.canonical() == truth.payload.canonical()
        withc = ExecutionEngine(jobs=1, cache=cache).run_batch([spec])[0]
        assert withc.payload == "poison"  # proves the cache *was* live


class TestDefaultEngine:
    def test_use_engine_scopes_and_restores(self):
        baseline = get_default_engine()
        scoped = ExecutionEngine(jobs=2)
        with use_engine(scoped):
            assert get_default_engine() is scoped
        restored = get_default_engine()
        assert restored is not scoped
        assert restored.jobs == baseline.jobs

    def test_set_default_engine_none_falls_back(self):
        set_default_engine(None)
        engine = get_default_engine()
        assert engine.jobs == 1

    def test_default_engine_cache_follows_env(self, tmp_path,
                                              monkeypatch):
        set_default_engine(None)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert get_default_engine().cache is None
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = get_default_engine().cache
        assert cache is not None
        assert cache.root == os.path.join(str(tmp_path), "runs")

    def test_batch_deduplicates_identical_specs(self, cache):
        spec = RunSpec(platform=haswell_desktop(), workload="MB",
                       scheduler=SchedulerSpec.static(0.5))
        engine = ExecutionEngine(jobs=1, cache=cache)
        results = engine.run_batch([spec, spec, spec])
        assert cache.writes == 1
        assert results[0] is results[1] is results[2]
