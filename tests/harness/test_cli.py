"""Command-line interface."""

import pytest

from repro.harness.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out
        assert "table1" in out

    def test_requires_an_action(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_figure_number_runs(self, capsys):
        assert main(["--figure", "4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "regenerated in" in out

    def test_experiment_id_runs(self, capsys):
        assert main(["--experiment", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_mutually_exclusive_actions(self):
        with pytest.raises(SystemExit):
            main(["--figure", "4", "--all"])
