"""Serial/parallel equivalence golden tests for the execution engine.

The simulator is deterministic and every RunSpec is an independent
simulation on a fresh processor, so the engine's contract is strong:
``jobs=1``, ``jobs=2``, ``jobs=4``, and cache-replayed execution must
all produce *byte-identical* results.  These tests pin that with
fingerprints (SHA-256 over ``repr``-serialized measured quantities)
rather than approximate comparisons - a single ULP of drift fails.
"""

import pytest

from repro.core.metrics import EDP
from repro.harness import figures
from repro.harness.chaos import run_chaos_campaign
from repro.harness.engine import (
    ExecutionEngine,
    ResultCache,
    RunSpec,
    SchedulerSpec,
    use_engine,
)
from repro.harness.suite import AlphaSweep, evaluate_suite, sweep_alphas
from repro.obs.observer import Observer
from repro.soc.spec import haswell_desktop
from repro.workloads.registry import workload_by_abbrev

#: Two structurally different workloads: MB (many short invocations)
#: and BS (fewer, larger ones).
MINI_SUITE = ("MB", "BS")


@pytest.fixture(scope="module")
def desktop():
    return haswell_desktop()


@pytest.fixture(scope="module")
def serial_suite(desktop, desktop_characterization):
    workloads = [workload_by_abbrev(a) for a in MINI_SUITE]
    return evaluate_suite(desktop, workloads, EDP,
                          engine=ExecutionEngine(jobs=1))


class TestMiniSuiteEquivalence:
    @pytest.mark.parametrize("jobs", [2, 4])
    def test_parallel_suite_fingerprint_identical(self, desktop,
                                                  serial_suite, jobs):
        workloads = [workload_by_abbrev(a) for a in MINI_SUITE]
        parallel = evaluate_suite(desktop, workloads, EDP,
                                  engine=ExecutionEngine(jobs=jobs))
        assert parallel.fingerprint() == serial_suite.fingerprint()

    def test_sweep_fingerprint_identical(self, desktop,
                                         desktop_characterization):
        workload = workload_by_abbrev("MB")
        serial = sweep_alphas(desktop, workload,
                              engine=ExecutionEngine(jobs=1))
        pooled = sweep_alphas(desktop, workload,
                              engine=ExecutionEngine(jobs=2))
        assert serial.fingerprint() == pooled.fingerprint()

    def test_cache_hit_on_second_invocation(self, desktop,
                                            desktop_characterization,
                                            tmp_path):
        workloads = [workload_by_abbrev(a) for a in MINI_SUITE]
        engine = ExecutionEngine(jobs=1,
                                 cache=ResultCache(str(tmp_path / "runs")))
        first = evaluate_suite(desktop, workloads, EDP, engine=engine)
        executed = engine.cache.writes
        assert executed > 0 and engine.cache.hits == 0
        second = evaluate_suite(desktop, workloads, EDP, engine=engine)
        assert engine.cache.hits == executed
        assert engine.cache.writes == executed  # nothing recomputed
        assert second.fingerprint() == first.fingerprint()


class TestDecisionRecordEquivalence:
    #: Everything the scheduler decides is deterministic; only the
    #: wall-clock decision_overhead_s field may differ between runs.
    DETERMINISTIC_FIELDS = (
        "exit_path", "kernel", "n_items", "alpha", "category_code",
        "from_table", "profile_rounds", "cpu_throughput",
        "gpu_throughput", "faults_observed", "fault_events",
        "fallback_reason",
    )

    def _decision_stream(self, desktop, jobs):
        observer = Observer()
        engine = ExecutionEngine(jobs=jobs)
        spec = RunSpec(platform=desktop, workload="MB",
                       scheduler=SchedulerSpec.eas(), observe=True)
        engine.run_batch([spec], observer=observer)
        return [tuple(repr(getattr(r, f)) for f in
                      self.DETERMINISTIC_FIELDS)
                for r in observer.decisions]

    def test_identical_decision_streams(self, desktop,
                                        desktop_characterization):
        serial = self._decision_stream(desktop, jobs=1)
        pooled = self._decision_stream(desktop, jobs=2)
        assert serial, "EAS run produced no decision records"
        assert serial == pooled


class TestFigure2Equivalence:
    def test_serial_vs_pooled_timeline(self):
        serial = figures.regenerate_figure_2()
        with use_engine(ExecutionEngine(jobs=2)):
            pooled = figures.regenerate_figure_2()
        assert serial.fingerprint() == pooled.fingerprint()


class TestChaosEquivalence:
    @pytest.fixture(scope="class")
    def chaos_kwargs(self):
        return dict(workloads=[workload_by_abbrev("MB")],
                    fault_levels=(0.4,), seed=2016)

    def test_fingerprint_unchanged_under_engine(
            self, desktop_characterization, chaos_kwargs):
        serial = run_chaos_campaign(engine=ExecutionEngine(jobs=1),
                                    **chaos_kwargs)
        pooled = run_chaos_campaign(engine=ExecutionEngine(jobs=2),
                                    **chaos_kwargs)
        assert serial.fingerprint() == pooled.fingerprint()

    def test_fingerprint_stable_through_cache(self, desktop_characterization,
                                              chaos_kwargs, tmp_path):
        engine = ExecutionEngine(jobs=1,
                                 cache=ResultCache(str(tmp_path / "runs")))
        first = run_chaos_campaign(engine=engine, **chaos_kwargs)
        second = run_chaos_campaign(engine=engine, **chaos_kwargs)
        assert engine.cache.hits > 0
        assert first.fingerprint() == second.fingerprint()


class TestRunAtGridRegression:
    def test_run_at_0_3_with_step_0_05(self, desktop,
                                       desktop_characterization):
        """Regression: the old float scan compared accumulated grid
        values against 0.3 with a 1e-9 tolerance; the grid-position
        index must resolve every point of a step=0.05 sweep exactly."""
        workload = workload_by_abbrev("MB")
        sweep = sweep_alphas(desktop, workload, step=0.05)
        assert len(sweep.alphas) == 21
        run = sweep.run_at(0.3)
        assert run.strategy == "static-0.30"
        for alpha in sweep.alphas:
            assert sweep.run_at(alpha) is sweep.runs[
                sweep.alphas.index(alpha)]

    def test_oracle_and_perf_alphas_consistent(self, desktop,
                                               desktop_characterization):
        workload = workload_by_abbrev("MB")
        sweep = sweep_alphas(desktop, workload)
        oracle_alpha = sweep.oracle_alpha(EDP)
        assert sweep.run_at(oracle_alpha) is sweep.oracle(EDP)
        assert sweep.run_at(sweep.perf_alpha()) is sweep.perf()


def test_alpha_sweep_index_is_exact_for_fine_grids():
    """Pure-index regression (no simulation): every grid the harness
    can build resolves exactly, including steps the old 1e-9 float
    scan was fragile for."""
    from repro.harness.suite import _sweep_grid

    for step in (0.1, 0.05, 0.025, 0.02, 0.01):
        alphas = _sweep_grid(step)
        sweep = AlphaSweep(platform="p", workload="w",
                           alphas=alphas, runs=list(range(len(alphas))))
        for i, alpha in enumerate(alphas):
            assert sweep.run_at(alpha) == i
        # The literal 0.3 is not bit-equal to any accumulated grid
        # value (3 * 0.1 == 0.30000000000000004); the index must
        # still resolve it to the right grid position.
        assert sweep.run_at(0.3) == round(0.3 / step)
