"""CLI custom-run mode and figure smoke checks."""

import os

import pytest

from repro.harness.cli import main
from repro.harness.figures import regenerate_figure_2, regenerate_figure_3


class TestRunMode:
    def test_run_single_strategy(self, capsys):
        assert main(["--run", "NB", "--strategies", "gpu"]) == 0
        out = capsys.readouterr().out
        assert "N-Body" in out
        assert "GPU" in out
        assert "best edp" in out

    def test_run_with_metric(self, capsys):
        assert main(["--run", "NB", "--strategies", "cpu",
                     "--metric", "energy"]) == 0
        out = capsys.readouterr().out
        assert "metric=energy" in out

    def test_run_unknown_strategy(self):
        from repro.errors import HarnessError

        with pytest.raises(HarnessError):
            main(["--run", "NB", "--strategies", "quantum"])

    def test_trace_csv_requires_single_strategy(self):
        from repro.errors import HarnessError

        with pytest.raises(HarnessError):
            main(["--run", "NB", "--strategies", "cpu,gpu",
                  "--trace-csv", "/tmp/x.csv"])

    def test_trace_csv_written(self, tmp_path, capsys):
        path = str(tmp_path / "run.csv")
        assert main(["--run", "NB", "--strategies", "gpu",
                     "--trace-csv", path]) == 0
        assert os.path.exists(path)
        with open(path) as fh:
            header = fh.readline()
        assert header.startswith("t_s,")


class TestTimelineFigures:
    def test_figure2_directions(self):
        result = regenerate_figure_2()
        assert len(result.series) == 2
        joined = " ".join(result.notes)
        assert "Bay Trail" in joined and "Haswell" in joined

    def test_figure3_memory_above_compute(self):
        result = regenerate_figure_3()
        assert "memory-bound exceeds compute-bound" in result.notes[-1]
        # Both series non-trivial.
        for label, (times, watts) in result.series.items():
            assert len(times) > 5, label
