"""Application runner and the Oracle/PERF sweep machinery."""

import pytest

from repro.core.baselines import StaticAlphaScheduler
from repro.core.metrics import EDP, ENERGY
from repro.errors import HarnessError
from repro.harness.experiment import run_application
from repro.harness.suite import sweep_alphas
from repro.workloads.registry import workload_by_abbrev


@pytest.fixture(scope="module")
def nb_sweep():
    """NB is the cheapest multi-invocation workload to sweep."""
    from repro.soc.spec import haswell_desktop

    return sweep_alphas(haswell_desktop(), workload_by_abbrev("NB"))


class TestRunApplication:
    def test_measures_whole_application(self, desktop):
        workload = workload_by_abbrev("NB")
        run = run_application(desktop, workload, StaticAlphaScheduler(0.5),
                              "static")
        assert run.time_s > 0
        assert run.energy_j > 0
        assert len(run.invocations) == workload.num_invocations
        assert run.average_power_w > 0

    def test_metric_values_consistent(self, desktop):
        workload = workload_by_abbrev("NB")
        run = run_application(desktop, workload, StaticAlphaScheduler(1.0),
                              "gpu")
        assert run.metric_value(EDP) == pytest.approx(
            run.energy_j * run.time_s)
        assert run.metric_value(ENERGY) == pytest.approx(run.energy_j)

    def test_trace_collection_optional(self, desktop):
        workload = workload_by_abbrev("NB")
        with_trace = run_application(desktop, workload,
                                     StaticAlphaScheduler(0.0), "t",
                                     trace=True)
        without = run_application(desktop, workload,
                                  StaticAlphaScheduler(0.0), "t")
        assert with_trace.trace is not None and len(with_trace.trace) > 0
        assert without.trace is None

    def test_final_alpha_reported(self, desktop):
        workload = workload_by_abbrev("NB")
        run = run_application(desktop, workload, StaticAlphaScheduler(0.3),
                              "s")
        assert run.final_alpha == 0.3


class TestAlphaSweep:
    def test_covers_paper_grid(self, nb_sweep):
        assert len(nb_sweep.alphas) == 11
        assert nb_sweep.alphas[0] == 0.0
        assert nb_sweep.alphas[-1] == 1.0

    def test_oracle_minimizes_metric(self, nb_sweep):
        oracle = nb_sweep.oracle(EDP)
        for run in nb_sweep.runs:
            assert oracle.metric_value(EDP) <= run.metric_value(EDP)

    def test_perf_minimizes_time(self, nb_sweep):
        best = nb_sweep.perf()
        assert best.time_s == min(r.time_s for r in nb_sweep.runs)

    def test_oracle_alpha_consistent(self, nb_sweep):
        alpha = nb_sweep.oracle_alpha(EDP)
        assert nb_sweep.run_at(alpha) is nb_sweep.oracle(EDP)

    def test_run_at_unknown_alpha(self, nb_sweep):
        with pytest.raises(HarnessError):
            nb_sweep.run_at(0.123)

    def test_oracles_can_differ_by_metric(self, nb_sweep):
        """Energy and EDP oracles may (and often do) sit at different
        alphas - the paper's central observation."""
        energy_alpha = nb_sweep.oracle_alpha(ENERGY)
        edp_alpha = nb_sweep.oracle_alpha(EDP)
        assert 0.0 <= energy_alpha <= 1.0
        assert 0.0 <= edp_alpha <= 1.0
