"""Characterization disk cache and trace CSV export."""

import os

import pytest

from repro.harness.suite import clear_characterization_cache, get_characterization
from repro.soc.simulator import IntegratedProcessor, PhaseRequest
from repro.soc.trace import write_csv
from repro.soc.work import CostProfile, WorkRegion


class TestDiskCache:
    def test_characterization_persisted_and_reloaded(self, desktop, tmp_path):
        cache_dir = str(tmp_path / "cache")
        clear_characterization_cache()
        try:
            first = get_characterization(desktop, cache_dir=cache_dir)
            path = os.path.join(cache_dir,
                                f"characterization-{desktop.name}.json")
            assert os.path.exists(path)

            # A fresh process would hit the file: simulate by clearing
            # the in-memory cache and poisoning the file check.
            clear_characterization_cache()
            reloaded = get_characterization(desktop, cache_dir=cache_dir)
            assert reloaded.platform_name == first.platform_name
            for category, curve in first.curves.items():
                assert reloaded.curve_for(category).coefficients == \
                    pytest.approx(curve.coefficients)
        finally:
            # Leave the session-scoped in-memory cache repopulated for
            # other tests.
            clear_characterization_cache()
            get_characterization(desktop)

    def test_corrupt_cache_file_raises_cleanly(self, desktop, tmp_path):
        cache_dir = str(tmp_path)
        path = os.path.join(cache_dir, f"characterization-{desktop.name}.json")
        with open(path, "w") as fh:
            fh.write("{not json")
        clear_characterization_cache()
        try:
            with pytest.raises(Exception):
                get_characterization(desktop, cache_dir=cache_dir)
        finally:
            clear_characterization_cache()
            get_characterization(desktop)


class TestTraceCsv:
    def test_roundtrip_columns(self, desktop, compute_cost, tmp_path):
        processor = IntegratedProcessor(desktop, trace_enabled=True)
        region = WorkRegion.for_span(CostProfile(compute_cost), 50_000.0,
                                     0.0, 50_000.0)
        processor.run_phase(PhaseRequest(cost=compute_cost,
                                         cpu_region=region, gpu_region=None))
        path = str(tmp_path / "trace.csv")
        rows = write_csv(processor.trace, path)
        with open(path) as fh:
            lines = fh.read().splitlines()
        assert lines[0].split(",")[0] == "t_s"
        assert len(lines) == rows + 1
        first = lines[1].split(",")
        assert len(first) == 9
        assert float(first[2]) > 0.0  # package watts

    def test_empty_trace(self, tmp_path):
        from repro.soc.trace import PowerTrace

        path = str(tmp_path / "empty.csv")
        assert write_csv(PowerTrace(), path) == 0
