"""ASCII report rendering."""

import pytest

from repro.errors import HarnessError
from repro.harness.report import (
    format_bar,
    format_bar_chart,
    format_series,
    format_table,
    heading,
)


class TestTable:
    def test_alignment(self):
        out = format_table(["name", "value"], [("a", 1.5), ("long-name", 2.0)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_float_formatting(self):
        out = format_table(["x"], [(1.23456,)], float_digits=2)
        assert "1.23" in out

    def test_bool_rendering(self):
        out = format_table(["flag"], [(True,), (False,)])
        assert "yes" in out and "no" in out

    def test_row_width_mismatch(self):
        with pytest.raises(HarnessError):
            format_table(["a", "b"], [(1,)])


class TestBars:
    def test_bar_scaling(self):
        assert len(format_bar(50.0, 100.0, width=40)) == 20
        assert len(format_bar(100.0, 100.0, width=40)) == 40

    def test_bar_clamps_over_max(self):
        assert len(format_bar(150.0, 100.0, width=10)) == 10

    def test_bar_rejects_bad_max(self):
        with pytest.raises(HarnessError):
            format_bar(1.0, 0.0)

    def test_bar_chart_layout(self):
        out = format_bar_chart(["CPU", "EAS"], [40.0, 95.0], unit="%")
        lines = out.splitlines()
        assert len(lines) == 2
        assert "95.0%" in lines[1]

    def test_bar_chart_length_mismatch(self):
        with pytest.raises(HarnessError):
            format_bar_chart(["a"], [1.0, 2.0])


class TestSeries:
    def test_subsampling(self):
        times = [i * 0.01 for i in range(100)]
        watts = [30.0 + i * 0.1 for i in range(100)]
        out = format_series(times, watts, max_points=10)
        assert len(out.splitlines()) <= 26

    def test_empty_series(self):
        assert "empty" in format_series([], [])

    def test_length_mismatch(self):
        with pytest.raises(HarnessError):
            format_series([1.0], [1.0, 2.0])


class TestHeading:
    def test_underline_matches(self):
        out = heading("Hello")
        top, rule = out.splitlines()
        assert len(rule) == len(top)
