"""Snapshot test pinning the public API surface (``repro.api``).

The blessed import surface is a contract: names appear or disappear
only as deliberate API changes.  If this test fails, either revert the
accidental surface change or update ``EXPECTED_API`` in the same
commit that intentionally changes :mod:`repro.api`.
"""

import repro
import repro.api

#: The frozen surface, sorted.  Update deliberately, never to
#: "make the test pass".
EXPECTED_API = sorted([
    # errors
    "ReproError", "SimulationError", "SchedulingError", "WorkloadError",
    "HarnessError", "ObservabilityError", "UnknownNameError",
    "GpuFaultError", "ServiceError", "StoreSchemaError", "AdmissionError",
    # platforms & simulator
    "PlatformSpec", "haswell_desktop", "baytrail_tablet",
    "IntegratedProcessor", "KernelCostModel", "use_tick_mode",
    "TICK_MODES",
    # fault injection
    "FaultConfig", "FaultySoC",
    # runtime
    "Kernel", "ConcordRuntime",
    # schedulers
    "EnergyAwareScheduler", "SchedulerConfig", "EasConfig",
    "HintedEnergyAwareScheduler", "CpuOnlyScheduler", "GpuOnlyScheduler",
    "StaticAlphaScheduler", "ProfiledPerfScheduler", "RaceToIdleScheduler",
    # characterization & metrics (docs/OBJECTIVES.md)
    "PlatformCharacterization", "get_characterization",
    "EnergyMetric", "ENERGY", "EDP", "ED2", "metric_by_name",
    "ConstrainedMetric",
    # workloads
    "Workload", "InvocationSpec", "all_workloads", "workload_by_abbrev",
    # harness
    "ApplicationRun", "run_application", "sweep_alphas", "evaluate_suite",
    "REGENERATORS", "regenerate", "experiment_id",
    "ChaosCampaignResult", "ChaosCell", "run_chaos_campaign",
    "MultiprogramChaosCampaignResult", "run_multiprogram_chaos_campaign",
    "CrashChaosResult", "CrashChaosCell", "run_crash_chaos",
    # multiprogram tenancy
    "ARBITER_POLICIES", "GpuLeaseArbiter", "MultiprogramResult",
    "TenancySpec", "TenantResult", "TenantSpec", "parse_tenant_specs",
    "run_multiprogram",
    # execution engine
    "ExecutionEngine", "RunSpec", "RunResult", "SchedulerSpec",
    "ResultCache", "get_default_engine", "set_default_engine", "use_engine",
    "SpecGang", "execute_gang",
    # vectorized-core sharing & differential testing (docs/PERFORMANCE.md)
    "VectorCore", "model_identity", "use_vector_core",
    "DiffCase", "DiffReport", "run_case", "diff_case", "grid_cases",
    "compare_outcomes",
    # observability
    "Observer", "NullObserver", "NULL_OBSERVER", "MetricsRegistry",
    "DecisionRecord", "ALL_EXIT_PATHS", "TraceSection",
    "write_chrome_trace", "write_jsonl", "write_metrics", "validate_file",
    # scheduler service (docs/SERVICE.md)
    "SchedulerService", "JobSpec", "DurableStore",
    "AdmissionPolicy", "AdmissionDecision",
    # fleet simulation (docs/FLEET.md)
    "FleetSpec", "NodeSpec", "PLATFORM_KINDS",
    "TraceSpec", "FleetRequest", "generate_trace", "TRACE_KINDS",
    "TraceChunk", "trace_columns", "iter_trace_chunks",
    "PLACEMENT_POLICIES", "make_policy", "FleetView",
    "run_fleet", "FleetResult", "RequestOutcome", "FleetCellProfile",
    "compare_fleet_policies", "FleetComparisonResult",
    # streaming fleet dispatch (docs/FLEET.md, "Streaming dispatch")
    "DISPATCH_MODES", "dispatch_stream", "FleetStreamResult",
    "LatencySketch",
    # carbon-aware scheduling (docs/OBJECTIVES.md)
    "CarbonSpec", "CarbonTrace",
])


class TestApiSnapshot:
    def test_api_all_matches_snapshot(self):
        assert sorted(repro.api.__all__) == EXPECTED_API

    def test_no_duplicates(self):
        assert len(repro.api.__all__) == len(set(repro.api.__all__))

    def test_every_name_resolves(self):
        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None, name

    def test_top_level_reexports_everything(self):
        for name in repro.api.__all__:
            assert getattr(repro, name) is getattr(repro.api, name), name
        assert set(repro.__all__) == {"__version__", *repro.api.__all__}

    def test_version_is_exposed(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)


class TestBackwardCompat:
    """Names the pre-facade package exported keep working."""

    def test_legacy_imports(self):
        from repro import (  # noqa: F401
            EDP,
            ConcordRuntime,
            EasConfig,
            EnergyAwareScheduler,
            IntegratedProcessor,
            ReproError,
            haswell_desktop,
            run_application,
        )

    def test_easconfig_is_deprecated_schedulerconfig(self):
        import warnings

        from repro import EasConfig, SchedulerConfig

        assert issubclass(EasConfig, SchedulerConfig)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            EasConfig()
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
