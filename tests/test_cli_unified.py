"""The unified ``python -m repro`` front door and its deprecated aliases."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _run_module(args, **env_extra):
    import os

    env = dict(os.environ, PYTHONPATH=SRC, **env_extra)
    return subprocess.run([sys.executable, *args], capture_output=True,
                          text=True, env=env, timeout=300)


class TestDispatch:
    def test_no_args_prints_usage(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "subcommands" in out
        assert "fleet" in out

    def test_help_variants(self, capsys):
        for flag in ("-h", "--help", "help"):
            assert main([flag]) == 0
            assert "usage" in capsys.readouterr().out

    def test_list_routes_to_harness(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "fleet" in out

    def test_unknown_subcommand_did_you_mean(self, capsys):
        assert main(["flet"]) == 2
        err = capsys.readouterr().err
        assert "unknown subcommand" in err
        assert "fleet" in err

    def test_value_subcommand_requires_value(self, capsys):
        assert main(["figure"]) == 2
        assert "needs a value" in capsys.readouterr().err

    def test_figure_routes_to_harness(self, capsys):
        assert main(["figure", "4"]) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_repro_error_exits_2(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "error" in capsys.readouterr().err

    def test_fleet_routes_to_fleet_cli(self, capsys):
        assert main(["fleet", "--nodes", "4", "--duration", "5",
                     "--rate", "1", "--tick-mode", "fast", "--no-cache",
                     "--workloads", "MM", "--policy", "least_loaded",
                     "--fingerprint-only"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("least_loaded ")

    def test_status_routes_to_service(self, tmp_path, capsys):
        assert main(["status", "--db", str(tmp_path / "svc.db")]) == 0


class TestModuleEntrypoints:
    def test_python_m_repro_works(self):
        proc = _run_module(["-m", "repro", "list"])
        assert proc.returncode == 0
        assert "fig9" in proc.stdout

    def test_unknown_subcommand_exit_code(self):
        proc = _run_module(["-m", "repro", "serv"])
        assert proc.returncode == 2
        assert "serve" in proc.stderr  # did-you-mean

    def test_deprecated_harness_alias_warns_and_works(self):
        proc = _run_module(["-m", "repro.harness", "--list"])
        assert proc.returncode == 0
        assert "fig9" in proc.stdout
        assert "deprecated" in proc.stderr
        assert proc.stderr.count("DeprecationWarning") == 1

    def test_deprecated_service_alias_warns_and_works(self, tmp_path):
        proc = _run_module(["-m", "repro.service", "status",
                            "--db", str(tmp_path / "svc.db")])
        assert proc.returncode == 0
        assert "deprecated" in proc.stderr
        assert proc.stderr.count("DeprecationWarning") == 1
