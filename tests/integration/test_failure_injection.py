"""Failure injection: the scheduler under pathological conditions."""

import pytest

from repro.core.categories import all_categories
from repro.core.characterization import PlatformCharacterization
from repro.core.metrics import EDP
from repro.core.scheduler import EnergyAwareScheduler
from repro.errors import CharacterizationError, SchedulingError
from repro.runtime.kernel import Kernel
from repro.runtime.runtime import ConcordRuntime
from repro.soc.cost_model import KernelCostModel
from repro.soc.simulator import IntegratedProcessor
from repro.units import HASWELL_ENERGY_UNIT_J


def kernel(**overrides):
    base = dict(name="fi", instructions_per_item=500.0,
                loadstore_fraction=0.2, l3_miss_rate=0.0,
                cpu_simd_efficiency=0.5, gpu_simd_efficiency=0.5)
    base.update(overrides)
    return Kernel(name=base["name"], cost=KernelCostModel(**base))


class TestIncompleteCharacterization:
    def test_missing_category_surfaces_cleanly(self, desktop,
                                               desktop_characterization):
        """A curve table missing the category a workload classifies
        into must fail loudly, not schedule garbage."""
        crippled = PlatformCharacterization(
            platform_name=desktop_characterization.platform_name,
            curves=dict(desktop_characterization.curves))
        # The compute-bound test kernel classifies C-*; remove all C.
        for category in all_categories():
            if category.short_code.startswith("C"):
                del crippled.curves[category]
        runtime = ConcordRuntime(IntegratedProcessor(desktop))
        scheduler = EnergyAwareScheduler(crippled, EDP)
        with pytest.raises(CharacterizationError):
            runtime.parallel_for(kernel(), 2_000_000.0, scheduler)


class TestPathologicalKernels:
    def test_gpu_useless_kernel_schedules_to_cpu(self, desktop,
                                                 desktop_characterization):
        """A kernel whose GPU build is ~1000x slower must end up on
        the CPU, not wedge the profiler."""
        runtime = ConcordRuntime(IntegratedProcessor(desktop))
        scheduler = EnergyAwareScheduler(desktop_characterization, EDP)
        result = runtime.parallel_for(
            kernel(name="gpu-useless", gpu_simd_efficiency=0.001,
                   gpu_divergence=0.6),
            2_000_000.0, scheduler)
        assert result.alpha <= 0.1

    def test_extreme_irregularity_still_completes(self, desktop,
                                                  desktop_characterization):
        runtime = ConcordRuntime(IntegratedProcessor(desktop))
        scheduler = EnergyAwareScheduler(desktop_characterization, EDP)
        result = runtime.parallel_for(
            kernel(name="wild", item_cost_cv=2.5, cost_profile_scale=0.4,
                   rng_tag=99),
            2_000_000.0, scheduler)
        assert result.duration_s > 0
        assert result.cpu_items + result.gpu_items == pytest.approx(
            2_000_000.0, rel=1e-6)

    def test_single_item_invocation(self, desktop,
                                    desktop_characterization):
        runtime = ConcordRuntime(IntegratedProcessor(desktop))
        scheduler = EnergyAwareScheduler(desktop_characterization, EDP)
        result = runtime.parallel_for(kernel(name="tiny"), 1.0, scheduler)
        assert result.alpha == 0.0  # small-N fast path
        assert result.cpu_items == pytest.approx(1.0)


class TestMsrWraparound:
    def test_measurement_correct_across_register_wrap(self, desktop,
                                                      compute_cost):
        """Pre-charge the MSR to just below wrap; an application-level
        measurement spanning the wrap must still be correct."""
        from repro.soc.simulator import PhaseRequest
        from repro.soc.work import CostProfile, WorkRegion

        processor = IntegratedProcessor(desktop)
        # Place the register 0.1 J short of wrapping (the phase below
        # deposits ~0.4 J, guaranteeing a wrap mid-measurement).
        wrap_joules = (2 ** 32) * HASWELL_ENERGY_UNIT_J
        processor.msr.deposit(wrap_joules - 0.1)
        before = processor.read_energy_msr()
        region = WorkRegion.for_span(CostProfile(compute_cost), 300_000.0,
                                     0.0, 300_000.0)
        result = processor.run_phase(PhaseRequest(
            cost=compute_cost, cpu_region=region, gpu_region=None))
        after = processor.read_energy_msr()
        assert after < before  # the register wrapped
        measured = processor.energy_joules_between(before, after)
        assert measured == pytest.approx(result.energy_j,
                                         abs=2 * HASWELL_ENERGY_UNIT_J)


class TestSchedulerContractViolations:
    def test_double_execution_rejected(self, desktop,
                                       desktop_characterization):
        class GreedyScheduler(EnergyAwareScheduler):
            def execute(self, launch):
                record = super().execute(launch)
                with pytest.raises(SchedulingError):
                    launch.run_cpu_only()  # nothing left to run
                return record

        runtime = ConcordRuntime(IntegratedProcessor(desktop))
        runtime.parallel_for(kernel(name="greedy"), 2_000_000.0,
                             GreedyScheduler(desktop_characterization, EDP))
