"""End-to-end reproduction properties.

These tests pin the paper's qualitative claims on cheap-to-run
workloads; the full quantitative tables live in benchmarks/.
"""

import pytest

from repro.core.baselines import (
    CpuOnlyScheduler,
    GpuOnlyScheduler,
    ProfiledPerfScheduler,
)
from repro.core.metrics import EDP, ENERGY
from repro.core.scheduler import EnergyAwareScheduler
from repro.harness.experiment import run_application
from repro.harness.suite import sweep_alphas
from repro.workloads.registry import workload_by_abbrev


def run(spec, workload, scheduler, tablet=False):
    return run_application(spec, workload, scheduler, "x", tablet=tablet)


class TestHeadlineClaims:
    def test_eas_close_to_oracle_on_nb(self, desktop,
                                       desktop_characterization):
        """EAS lands within a few percent of the exhaustive Oracle."""
        workload = workload_by_abbrev("NB")
        sweep = sweep_alphas(desktop, workload)
        for metric in (EDP, ENERGY):
            eas = EnergyAwareScheduler(desktop_characterization, metric)
            eas_run = run(desktop, workload, eas)
            oracle = sweep.oracle(metric).metric_value(metric)
            efficiency = 100.0 * oracle / eas_run.metric_value(metric)
            assert efficiency > 90.0, metric.name

    def test_eas_beats_cpu_alone_dramatically(self, desktop,
                                              desktop_characterization):
        """On GPU-friendly workloads, CPU-alone is far off EAS."""
        workload = workload_by_abbrev("NB")
        eas = EnergyAwareScheduler(desktop_characterization, EDP)
        eas_run = run(desktop, workload, eas)
        cpu_run = run(desktop, workload, CpuOnlyScheduler())
        assert eas_run.metric_value(EDP) < cpu_run.metric_value(EDP) / 5

    def test_eas_keeps_fd_off_the_gpu(self, desktop,
                                      desktop_characterization):
        """Section 5: for CPU-biased FD, EAS picks 100% CPU while
        GPU-alone suffers significantly."""
        workload = workload_by_abbrev("FD")
        eas = EnergyAwareScheduler(desktop_characterization, ENERGY)
        eas_run = run(desktop, workload, eas)
        gpu_run = run(desktop, workload, GpuOnlyScheduler())
        assert eas_run.final_alpha == 0.0
        assert gpu_run.energy_j > 3.0 * eas_run.energy_j

    def test_perf_burns_more_energy_than_eas_on_memory_workload(
            self, desktop, desktop_characterization):
        """Fig. 10's core story: best-performance partitioning pays an
        energy premium over the energy-aware choice."""
        workload = workload_by_abbrev("SL")
        eas = EnergyAwareScheduler(desktop_characterization, ENERGY)
        eas_run = run(desktop, workload, eas)
        perf_run = run(desktop, workload, ProfiledPerfScheduler())
        assert eas_run.energy_j < perf_run.energy_j

    def test_tablet_gpu_alone_is_worse_than_desktop_gpu_alone(self,
                                                              desktop,
                                                              tablet):
        """The platform asymmetry of the paper's summary: GPU-alone is
        near-optimal on the desktop, clearly suboptimal on the tablet."""
        workload = workload_by_abbrev("MM")
        desk = sweep_alphas(desktop, workload)
        tab = sweep_alphas(tablet, workload, tablet=True)

        def gpu_eff(sweep):
            oracle = sweep.oracle(EDP).metric_value(EDP)
            gpu = sweep.run_at(1.0).metric_value(EDP)
            return oracle / gpu

        assert gpu_eff(desk) > gpu_eff(tab)


class TestMeasurementIntegrity:
    def test_energy_conservation_across_invocations(self, desktop,
                                                    desktop_characterization):
        """Sum of per-invocation energies equals app-level energy."""
        workload = workload_by_abbrev("NB")
        eas = EnergyAwareScheduler(desktop_characterization, EDP)
        app = run(desktop, workload, eas)
        assert sum(r.energy_j for r in app.invocations) == pytest.approx(
            app.energy_j, rel=0.01)

    def test_items_conserved(self, desktop, desktop_characterization):
        workload = workload_by_abbrev("NB")
        eas = EnergyAwareScheduler(desktop_characterization, EDP)
        app = run(desktop, workload, eas)
        total = sum(r.cpu_items + r.gpu_items for r in app.invocations)
        assert total == pytest.approx(workload.total_items(), rel=1e-6)

    def test_runs_are_deterministic(self, desktop, desktop_characterization):
        workload = workload_by_abbrev("NB")
        runs = [run(desktop, workload,
                    EnergyAwareScheduler(desktop_characterization, EDP))
                for _ in range(2)]
        assert runs[0].time_s == runs[1].time_s
        assert runs[0].energy_j == runs[1].energy_j
