"""Platform power calibration against the wattages the paper reports.

Section 2's observed package powers are the anchor of the whole
black-box premise; the simulator must land near them.
"""

import pytest

from repro.soc.cost_model import KernelCostModel
from repro.soc.device import compute_rates
from repro.soc.simulator import IntegratedProcessor, PhaseRequest
from repro.soc.work import CostProfile, WorkRegion


def compute_bound():
    return KernelCostModel(name="cal-c", instructions_per_item=2000.0,
                           loadstore_fraction=0.2, l3_miss_rate=0.0)


def memory_bound():
    return KernelCostModel(name="cal-m", instructions_per_item=300.0,
                           loadstore_fraction=0.45, l3_miss_rate=0.6)


def run_alone(spec, cost, device, seconds=0.8):
    processor = IntegratedProcessor(spec)
    rates = compute_rates(spec, cost, spec.cpu.turbo_freq_hz,
                          spec.gpu.turbo_freq_hz, spec.cpu.num_cores,
                          1e9, True, True)
    rate = rates.cpu_items_per_s if device == "cpu" else rates.gpu_items_per_s
    n = max(rate * seconds, 1000.0)
    region = WorkRegion.for_span(CostProfile(cost), n, 0.0, n)
    request = PhaseRequest(
        cost=cost,
        cpu_region=region if device == "cpu" else None,
        gpu_region=region if device == "gpu" else None)
    result = processor.run_phase(request)
    return result.energy_j / result.duration_s


class TestDesktopPowers:
    """Paper: ~45 W CPU-alone compute, ~30 W GPU-alone compute,
    ~60 W CPU-alone memory."""

    def test_cpu_compute_alone(self, desktop):
        assert run_alone(desktop, compute_bound(), "cpu") == pytest.approx(
            45.0, abs=5.0)

    def test_gpu_compute_alone(self, desktop):
        assert run_alone(desktop, compute_bound(), "gpu") == pytest.approx(
            30.0, abs=5.0)

    def test_cpu_memory_alone_higher_than_compute(self, desktop):
        mem = run_alone(desktop, memory_bound(), "cpu")
        cmp_ = run_alone(desktop, compute_bound(), "cpu")
        assert mem > cmp_
        assert mem == pytest.approx(58.0, abs=7.0)


class TestTabletPowers:
    """Paper Fig. 6: ~1.5 W CPU / ~2 W GPU compute-bound;
    ~0.7 W CPU / ~1.3 W GPU memory-bound."""

    def test_cpu_compute_alone(self, tablet):
        assert run_alone(tablet, compute_bound(), "cpu") == pytest.approx(
            1.5, abs=0.35)

    def test_gpu_compute_alone(self, tablet):
        assert run_alone(tablet, compute_bound(), "gpu") == pytest.approx(
            2.0, abs=0.4)

    def test_cpu_memory_alone(self, tablet):
        assert run_alone(tablet, memory_bound(), "cpu") == pytest.approx(
            0.7, abs=0.25)

    def test_gpu_memory_alone(self, tablet):
        assert run_alone(tablet, memory_bound(), "gpu") == pytest.approx(
            1.3, abs=0.35)

    def test_tablet_memory_cheaper_than_compute(self, tablet):
        """The asymmetry the paper calls surprising."""
        assert (run_alone(tablet, memory_bound(), "cpu")
                < run_alone(tablet, compute_bound(), "cpu"))
        assert (run_alone(tablet, memory_bound(), "gpu")
                < run_alone(tablet, compute_bound(), "gpu"))

    def test_tablet_gpu_hungrier_than_cpu(self, tablet):
        """Opposite of the desktop - drives the platforms' different
        optimal policies."""
        assert (run_alone(tablet, compute_bound(), "gpu")
                > run_alone(tablet, compute_bound(), "cpu"))
