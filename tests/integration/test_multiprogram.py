"""Multiprogram co-scheduling: real contention end to end.

The headline property of the tenancy layer: with two many-invocation
tenants sharing one SoC, the scheduler's Section-5 EXIT_GPU_BUSY path
fires from *real* lease contention - not fault injection - and every
denial is auditable through per-tenant decision records.  Plus the
determinism guarantees the harness relies on (byte-identical reruns,
serial == pooled through the engine, exact ~ fast tick modes) and the
combined contention + fault-injection chaos campaign.
"""

from dataclasses import replace

import pytest

from repro.errors import HarnessError
from repro.harness.chaos import run_multiprogram_chaos_campaign
from repro.harness.engine import (
    KIND_MULTIPROGRAM,
    ExecutionEngine,
    ResultCache,
    RunSpec,
    SchedulerSpec,
)
from repro.obs.observer import Observer
from repro.obs.records import EXIT_GPU_BUSY
from repro.runtime.tenancy import (
    LEASE_DENIED_NOTE,
    TenancySpec,
    parse_tenant_specs,
    run_multiprogram,
)
from repro.soc.spec import haswell_desktop

#: PR-4 fast-forward divergence envelope (docs/PERFORMANCE.md).
REL_TOL = 1e-6

#: The canonical contention mix: both tenants issue thousands of
#: invocations (BS 2000, CC 2147), so neither ever runs alone for long.
MIX = "BS,CC"


def _rel(a: float, b: float) -> float:
    return abs(a - b) / max(abs(a), abs(b), 1e-12)


@pytest.fixture(scope="module")
def fifo_result():
    return run_multiprogram(tenants=parse_tenant_specs(MIX),
                            policy="fifo", seed=0)


class TestRealContention:
    def test_gpu_busy_exits_come_from_lease_denials(self, fifo_result):
        """Every tenant's EXIT_GPU_BUSY count equals its denial count:
        with no fault injection, contention is the *only* source."""
        assert fifo_result.total_gpu_busy_exits > 500
        for tenant in fifo_result.tenants:
            assert tenant.gpu_busy_exits == tenant.lease_denials
            assert tenant.lease_denials > 0

    def test_denied_decisions_name_the_holding_tenant(self, fifo_result):
        names = {t.name for t in fifo_result.tenants}
        for tenant in fifo_result.tenants:
            others = names - {tenant.name}
            denied = [d for d in tenant.decisions
                      if d.exit_path == EXIT_GPU_BUSY]
            assert denied, tenant.name
            for record in denied:
                note = next(n for n in record.notes
                            if n.startswith(LEASE_DENIED_NOTE))
                assert note.split(":", 1)[1] in others

    def test_every_record_is_tenant_tagged(self, fifo_result):
        for tenant in fifo_result.tenants:
            assert tenant.decisions
            assert all(d.tenant == tenant.name for d in tenant.decisions)

    def test_no_lost_work_under_contention(self, fifo_result):
        assert fifo_result.all_items_processed
        assert fifo_result.items_expected > 0

    def test_lease_events_match_counters(self, fifo_result):
        grants = sum(1 for e in fifo_result.lease_events
                     if e.action == "grant")
        denials = sum(1 for e in fifo_result.lease_events
                      if e.action == "deny")
        assert grants == sum(t.lease_grants for t in fifo_result.tenants)
        assert denials == fifo_result.total_lease_denials

    def test_solo_tail_runs_under_solo_table_key(self, fifo_result):
        """Once one stream drains, the survivor's records must not be
        keyed as a co-run: its final decisions have no denial notes."""
        longest = max(fifo_result.tenants, key=lambda t: t.invocations)
        tail = longest.decisions[-1]
        assert tail.exit_path != EXIT_GPU_BUSY


class TestDeterminism:
    def test_rerun_is_byte_identical(self, fifo_result):
        again = run_multiprogram(tenants=parse_tenant_specs(MIX),
                                 policy="fifo", seed=0)
        assert again.fingerprint() == fifo_result.fingerprint()

    def test_engine_serial_and_pooled_agree(self):
        specs = [RunSpec(platform=haswell_desktop(),
                         kind=KIND_MULTIPROGRAM,
                         scheduler=SchedulerSpec.eas(),
                         tenancy=TenancySpec(
                             policy=policy, lease_quantum=2,
                             tenants=parse_tenant_specs(MIX)))
                 for policy in ("fifo", "priority")]
        serial = ExecutionEngine(jobs=1).run_batch(specs)
        pooled = ExecutionEngine(jobs=2).run_batch(specs)
        for s, p in zip(serial, pooled):
            assert s.payload.fingerprint() == p.payload.fingerprint()

    def test_exact_and_fast_tick_modes_agree(self, fifo_result):
        fast_spec = replace(haswell_desktop(), tick_mode="fast")
        fast = run_multiprogram(spec=fast_spec,
                                tenants=parse_tenant_specs(MIX),
                                policy="fifo", seed=0)
        assert fast.all_items_processed
        # The discrete arbitration outcome is mode-invariant...
        for exact_t, fast_t in zip(fifo_result.tenants, fast.tenants):
            assert fast_t.lease_grants == exact_t.lease_grants
            assert fast_t.lease_denials == exact_t.lease_denials
            assert fast_t.gpu_busy_exits == exact_t.gpu_busy_exits
        # ...and the continuous quantities stay inside the envelope.
        assert _rel(fast.total_time_s, fifo_result.total_time_s) < REL_TOL
        assert _rel(fast.total_energy_j,
                    fifo_result.total_energy_j) < REL_TOL


class TestPolicyBehaviour:
    def test_fifo_is_fair_across_identical_tenants(self):
        result = run_multiprogram(tenants=parse_tenant_specs("BS,BS,BS"),
                                  policy="fifo", seed=0)
        denials = [t.lease_denials for t in result.tenants]
        assert max(denials) - min(denials) <= 2 * result.lease_quantum

    def test_priority_shields_the_prioritized_tenant(self):
        mix = "BS,CC:5,SP"
        fifo = run_multiprogram(tenants=parse_tenant_specs(mix),
                                policy="fifo", seed=0)
        prio = run_multiprogram(tenants=parse_tenant_specs(mix),
                                policy="priority", seed=0)
        assert (prio.tenant("CC-1").lease_denials
                < fifo.tenant("CC-1").lease_denials)
        assert prio.tenant("CC-1").lease_denials == min(
            t.lease_denials for t in prio.tenants)


class TestHarnessIntegration:
    def test_multiprogram_spec_requires_scheduler_and_tenancy(self):
        tenancy = TenancySpec(tenants=parse_tenant_specs(MIX))
        with pytest.raises(HarnessError):
            RunSpec(platform=haswell_desktop(), kind=KIND_MULTIPROGRAM,
                    tenancy=tenancy)
        with pytest.raises(HarnessError):
            RunSpec(platform=haswell_desktop(), kind=KIND_MULTIPROGRAM,
                    scheduler=SchedulerSpec.eas())
        # The legacy one-string spelling still fails loudly when
        # malformed (no silent None).
        with pytest.raises(HarnessError):
            RunSpec(platform=haswell_desktop(), kind=KIND_MULTIPROGRAM,
                    scheduler=SchedulerSpec.eas(), tenancy="fifo")

    def test_result_cache_round_trip(self, tmp_path):
        spec = RunSpec(platform=haswell_desktop(), kind=KIND_MULTIPROGRAM,
                       scheduler=SchedulerSpec.eas(),
                       tenancy=TenancySpec(
                           policy="fifo", lease_quantum=2,
                           tenants=parse_tenant_specs(MIX)))
        engine = ExecutionEngine(jobs=1,
                                 cache=ResultCache(str(tmp_path / "runs")))
        first = engine.run_one(spec)
        second = engine.run_one(spec)
        assert not first.from_cache and second.from_cache
        assert (second.payload.fingerprint()
                == first.payload.fingerprint())

    def test_observer_merges_per_tenant_streams(self):
        observer = Observer()
        result = run_multiprogram(tenants=parse_tenant_specs(MIX),
                                  policy="fifo", seed=0,
                                  observer=observer)
        gauges = observer.metrics.snapshot()["gauges"]
        for tenant in result.tenants:
            assert (gauges[f"tenancy.lease_grants.{tenant.name}"]
                    == tenant.lease_grants)
            assert (gauges[f"tenancy.lease_denials.{tenant.name}"]
                    == tenant.lease_denials)
        tagged = {d.tenant for d in observer.decisions}
        assert tagged == {t.name for t in result.tenants}


class TestMultiprogramChaos:
    def test_contention_and_faults_compose(self):
        campaign = run_multiprogram_chaos_campaign(
            fault_levels=(0.0, 0.25))
        assert campaign.all_ok
        assert campaign.all_items_processed
        assert len(campaign.cells) == 4  # 2 policies x 2 levels
        for cell in campaign.cells:
            assert cell.lease_denials > 0
            assert cell.gpu_busy_exits >= cell.lease_denials
        assert len(campaign.fingerprint()) == 64
        assert "PASS" in campaign.render()
