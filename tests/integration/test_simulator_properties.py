"""Property-based invariants of the SoC simulator.

Hypothesis generates random (but valid) kernel cost models and splits;
the simulator must uphold physical and accounting invariants for all
of them.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.cost_model import KernelCostModel
from repro.soc.simulator import IntegratedProcessor, PhaseRequest
from repro.soc.spec import haswell_desktop
from repro.soc.work import CostProfile, split_for_offload

_SPEC = haswell_desktop()

cost_models = st.builds(
    KernelCostModel,
    name=st.just("prop"),
    instructions_per_item=st.floats(50.0, 5000.0),
    loadstore_fraction=st.floats(0.05, 0.5),
    l3_miss_rate=st.floats(0.0, 0.6),
    cpu_simd_efficiency=st.floats(0.01, 1.0),
    gpu_simd_efficiency=st.floats(0.01, 1.0),
    gpu_divergence=st.floats(0.0, 0.6),
    gpu_traffic_factor=st.floats(0.4, 1.0),
    item_cost_cv=st.floats(0.0, 1.2),
    rng_tag=st.integers(0, 50),
)


def run_split(cost, n, alpha):
    processor = IntegratedProcessor(_SPEC)
    profile = CostProfile(cost)
    if alpha <= 0.0:
        from repro.soc.work import WorkRegion

        request = PhaseRequest(
            cost=cost,
            cpu_region=WorkRegion.for_span(profile, n, 0.0, n),
            gpu_region=None)
    elif alpha >= 1.0:
        from repro.soc.work import WorkRegion

        request = PhaseRequest(
            cost=cost, cpu_region=None,
            gpu_region=WorkRegion.for_span(profile, n, 0.0, n))
    else:
        gpu_region, cpu_region = split_for_offload(profile, n, 0.0, n, alpha)
        request = PhaseRequest(cost=cost, cpu_region=cpu_region,
                               gpu_region=gpu_region)
    return processor, processor.run_phase(request)


class TestInvariants:
    @given(cost=cost_models, alpha=st.sampled_from([0.0, 0.3, 0.7, 1.0]))
    @settings(max_examples=30, deadline=None)
    def test_items_conserved_and_energy_physical(self, cost, alpha):
        n = 300_000.0
        processor, result = run_split(cost, n, alpha)
        # Every item processed exactly once.
        assert result.cpu_items + result.gpu_items == pytest.approx(
            n, rel=1e-6)
        # Power bounded by physics: above the idle floor, below a
        # generous package ceiling.
        power = result.energy_j / result.duration_s
        assert power > _SPEC.idle_power_w * 0.9
        assert power < 1.5 * _SPEC.pcu.package_cap_w
        # MSR bookkeeping agrees with the exact accounting.
        assert processor.msr.lifetime_joules == pytest.approx(
            result.energy_j, rel=1e-6)

    @given(cost=cost_models)
    @settings(max_examples=20, deadline=None)
    def test_counter_rates_match_cost_model(self, cost):
        _, result = run_split(cost, 200_000.0, 0.0)
        delta = result.counters
        assert delta.instructions_retired == pytest.approx(
            result.cpu_items * cost.instructions_per_item, rel=1e-6)
        assert delta.miss_to_loadstore_ratio == pytest.approx(
            cost.l3_miss_rate, rel=1e-6)

    @given(cost=cost_models)
    @settings(max_examples=15, deadline=None)
    def test_hybrid_bounded_by_sequential_halves(self, cost):
        """An even hybrid split can never be slower than running its
        two halves back-to-back on their own devices (concurrency can
        only help), up to PCU transients.  Note the hybrid *can* be
        slower than the faster single device on short runs - that is
        the Fig. 4 activation-throttle regime, by design."""
        n = 300_000.0
        _, cpu_only = run_split(cost, n, 0.0)
        _, gpu_only = run_split(cost, n, 1.0)
        _, hybrid = run_split(cost, n, 0.5)
        sequential = 0.5 * (cpu_only.duration_s + gpu_only.duration_s)
        transient_allowance = 0.25  # activation throttle + ramps
        assert hybrid.duration_s <= sequential * 1.10 + transient_allowance

    @given(alpha=st.floats(0.05, 0.95), cost=cost_models)
    @settings(max_examples=20, deadline=None)
    def test_split_respected(self, alpha, cost):
        n = 300_000.0
        _, result = run_split(cost, n, alpha)
        assert result.gpu_items == pytest.approx(alpha * n, rel=1e-6)
