"""Chaos campaign invariants on a small, fast sweep.

The full default campaign (4 workloads x 4 fault levels) runs in the
benchmark suite (``benchmarks/bench_robustness_fault_sweep.py``); here a
reduced sweep asserts the same four invariants quickly enough for CI.
"""

import pytest

from repro.harness.chaos import (
    ChaosCampaignResult,
    cell_seed,
    run_chaos_campaign,
)
from repro.workloads.registry import workload_by_abbrev

LEVELS = (0.0, 0.4)
WORKLOADS = ("MM", "RT")


@pytest.fixture(scope="module")
def campaign() -> ChaosCampaignResult:
    return run_chaos_campaign(
        workloads=[workload_by_abbrev(a) for a in WORKLOADS],
        fault_levels=LEVELS, seed=99)


class TestInvariants:
    def test_no_unhandled_exceptions(self, campaign):
        assert campaign.all_ok

    def test_all_items_processed_at_every_level(self, campaign):
        assert campaign.all_items_processed
        for cell in campaign.cells:
            assert cell.items_processed == pytest.approx(
                cell.items_expected, rel=1e-6)

    def test_edp_bounded_by_cpu_baseline(self, campaign):
        assert campaign.edp_bounded
        for cell in campaign.cells:
            assert cell.edp <= campaign.cpu_edp(cell.workload)

    def test_faults_were_actually_injected(self, campaign):
        """The sweep must exercise the fault paths, not trivially pass
        on a healthy platform."""
        faulted = [c for c in campaign.cells if c.fault_level > 0.0]
        assert sum(sum(c.fault_counts.values()) for c in faulted) > 0
        clean = [c for c in campaign.cells if c.fault_level == 0.0]
        assert all(not c.fault_counts for c in clean)

    def test_rerun_fingerprint_identical(self, campaign):
        rerun = run_chaos_campaign(
            workloads=[workload_by_abbrev(a) for a in WORKLOADS],
            fault_levels=LEVELS, seed=99)
        assert rerun.fingerprint() == campaign.fingerprint()

    def test_different_seed_different_fingerprint(self, campaign):
        other = run_chaos_campaign(
            workloads=[workload_by_abbrev(a) for a in WORKLOADS],
            fault_levels=LEVELS, seed=100)
        assert other.fingerprint() != campaign.fingerprint()
        # ... but the invariants hold for any seed, not one lucky draw.
        assert other.all_ok and other.all_items_processed
        assert other.edp_bounded


class TestDecisionAudit:
    """The PR-2 acceptance criterion: a chaos run at fault level
    >= 0.3 yields decision records naming the specific fault event and
    the fallback reason for every degraded kernel.

    The resilient defaults absorb faults by design (retries + leaky
    bucket), so degradation is forced with a brittle scheduler config
    (budget of one, no retries) - the audit trail, not the resilience,
    is under test here.
    """

    @pytest.fixture(scope="class")
    def brittle_campaign(self) -> ChaosCampaignResult:
        from repro.core.scheduler import SchedulerConfig

        return run_chaos_campaign(
            workloads=[workload_by_abbrev("NB")],
            fault_levels=(0.0, 0.4), seed=99,
            eas_config=SchedulerConfig(fault_budget=1,
                                       max_profile_retries=0))

    def test_degraded_kernels_are_explained(self, brittle_campaign):
        hostile = [c for c in brittle_campaign.cells
                   if c.fault_level >= 0.3]
        degraded = [c for c in hostile
                    if c.degraded_kernels or c.fallback_invocations]
        assert degraded, "no cell degraded at fault level 0.4"
        for cell in degraded:
            lines = cell.degradation_explanations()
            assert lines
            joined = "\n".join(lines)
            # Both halves of the audit: the why and the what.
            assert "reason=" in joined
            assert "faults=[" in joined
            # The events name the injected hazard, not a vague failure.
            assert "GPU" in joined

    def test_clean_cells_have_nothing_to_explain(self, brittle_campaign):
        for cell in brittle_campaign.cells:
            if cell.fault_level == 0.0:
                assert cell.degradation_explanations() == []

    def test_render_includes_degradation_audit(self, brittle_campaign):
        text = brittle_campaign.render()
        assert "degradation audit" in text
        assert "reason=" in text

    def test_robustness_invariants_still_hold(self, brittle_campaign):
        """Even a budget-of-one scheduler keeps the PR-1 contract:
        no escapes, every item processed."""
        assert brittle_campaign.all_ok
        assert brittle_campaign.all_items_processed


class TestReporting:
    def test_render_shows_all_invariants(self, campaign):
        text = campaign.render()
        assert "no unhandled exceptions: PASS" in text
        assert "all items processed:     PASS" in text
        assert "EDP <= CPU baseline:     PASS" in text
        assert campaign.fingerprint() in text

    def test_every_invocation_has_a_decision_record(self, campaign):
        for cell in campaign.cells:
            assert len(cell.decision_records) == cell.invocations

    def test_decision_records_do_not_perturb_fingerprint(self, campaign):
        """Records are audit payload, not campaign state: stripping
        them must leave the cell canonicalization unchanged."""
        import dataclasses

        cell = campaign.cells[0]
        stripped = dataclasses.replace(cell, decision_records=())
        assert stripped.canonical() == cell.canonical()

    def test_cell_seed_is_stable_across_processes(self):
        # Pinned values: a hash-seed-dependent cell_seed would break
        # the campaign's cross-process reproducibility promise.
        assert cell_seed(2016, "BS", 0.5) == cell_seed(2016, "BS", 0.5)
        assert cell_seed(2016, "BS", 0.5) != cell_seed(2016, "MM", 0.5)
        assert cell_seed(2016, "BS", 0.5) != cell_seed(2017, "BS", 0.5)
