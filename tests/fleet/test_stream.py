"""Streaming dispatch: cross-mode equivalence, sketch, sampling, engine.

The streaming pipeline's contract is *identical placement decisions
and timestamps* to the reference loop - locked here by byte-equal
stream fingerprints across every policy and trace family, at any
chunk size.
"""

import dataclasses

import numpy as np
import pytest

from repro.errors import HarnessError
from repro.fleet import (
    PLACEMENT_POLICIES,
    TRACE_KINDS,
    FleetSpec,
    FleetStreamResult,
    LatencySketch,
    TraceSpec,
    dispatch_stream,
    run_fleet,
)
from repro.fleet.dispatcher import EXIT_FLEET_PLACEMENT
from repro.fleet.policies import CellStats
from repro.harness.engine import (
    CACHE_SCHEMA_VERSION,
    KIND_FLEET_DISPATCH,
    ExecutionEngine,
    ResultCache,
    RunSpec,
)
from repro.obs.observer import Observer

FLEET = FleetSpec(n_nodes=16, desktop_fraction=0.5, tick_mode="fast",
                  seed=9)
TRACE = TraceSpec(kind="bursty", duration_s=20.0, mean_rate_hz=1.5,
                  workloads=("MM", "RT"), seed=9)
#: Seeded to generate zero requests (regression lock for the
#: empty-trace guard).
EMPTY_TRACE = TraceSpec(kind="diurnal", duration_s=0.01,
                        mean_rate_hz=0.01, seed=0)


@pytest.fixture(scope="module")
def engine(tmp_path_factory):
    cache = ResultCache(str(tmp_path_factory.mktemp("stream-cache")))
    return ExecutionEngine(cache=cache)


class TestCrossModeEquivalence:
    @pytest.mark.parametrize("policy", PLACEMENT_POLICIES)
    def test_every_policy_fingerprint_locked(self, engine, policy):
        ref = run_fleet(FLEET, TRACE, policy=policy, engine=engine)
        st = dispatch_stream(FLEET, TRACE, policy=policy, engine=engine)
        assert ref.stream_fingerprint() == st.fingerprint()
        assert ref.n_requests == st.n_requests
        assert ref.deadline_misses == st.deadline_misses
        assert ref.dispatches_by_kind() == st.dispatches_by_kind()
        assert ref.makespan_s == st.makespan_s
        assert st.total_energy_j == pytest.approx(
            ref.total_energy_j, rel=1e-9)

    @pytest.mark.parametrize("kind", TRACE_KINDS)
    def test_every_trace_family_locked(self, engine, kind):
        trace = dataclasses.replace(TRACE, kind=kind)
        ref = run_fleet(FLEET, trace, policy="energy_aware", engine=engine)
        st = dispatch_stream(FLEET, trace, policy="energy_aware",
                             engine=engine)
        assert ref.stream_fingerprint() == st.fingerprint()

    def test_sketch_percentile_within_bound(self, engine):
        ref = run_fleet(FLEET, TRACE, policy="least_loaded", engine=engine)
        st = dispatch_stream(FLEET, TRACE, policy="least_loaded",
                             engine=engine)
        for pct in (50, 95, 99):
            exact = ref.latency_percentile_s(pct)
            approx = st.latency_percentile_s(pct)
            assert approx == pytest.approx(exact, rel=st.sketch.rel_err)
        assert st.mean_latency_s == pytest.approx(ref.mean_latency_s,
                                                  rel=1e-9)

    def test_policies_still_differ_in_streaming(self, engine):
        a = dispatch_stream(FLEET, TRACE, policy="random", engine=engine)
        b = dispatch_stream(FLEET, TRACE, policy="least_loaded",
                            engine=engine)
        assert a.fingerprint() != b.fingerprint()


class TestChunkIndependence:
    @pytest.mark.parametrize("chunk_size", (1, 5, 17, 4096))
    def test_fingerprint_chunk_size_independent(self, engine, chunk_size):
        base = dispatch_stream(FLEET, TRACE, policy="energy_aware",
                               engine=engine)
        chunked = dispatch_stream(FLEET, TRACE, policy="energy_aware",
                                  engine=engine, chunk_size=chunk_size)
        assert chunked.fingerprint() == base.fingerprint()
        assert chunked.n_chunks == -(-chunked.n_requests // chunk_size)
        assert chunked.total_energy_j == base.total_energy_j

    def test_bad_chunk_size(self, engine):
        with pytest.raises(HarnessError):
            dispatch_stream(FLEET, TRACE, engine=engine, chunk_size=0)
        with pytest.raises(HarnessError):
            dispatch_stream(FLEET, TRACE, engine=engine, sample_stride=0)


class TestModeSwitch:
    def test_run_fleet_streaming_mode(self, engine):
        result = run_fleet(FLEET, TRACE, policy="round_robin",
                           engine=engine, dispatch_mode="streaming")
        assert isinstance(result, FleetStreamResult)
        assert "streaming" in result.render()

    def test_unknown_mode_rejected(self, engine):
        with pytest.raises(HarnessError):
            run_fleet(FLEET, TRACE, engine=engine, dispatch_mode="turbo")

    def test_unknown_policy_rejected(self, engine):
        with pytest.raises(HarnessError):
            dispatch_stream(FLEET, TRACE, policy="psychic", engine=engine)


class TestSampling:
    def test_stride_one_samples_everything(self, engine):
        st = dispatch_stream(FLEET, TRACE, policy="least_loaded",
                             engine=engine, sample_stride=1)
        assert st.records_matched == st.n_requests
        assert len(st.placement_records) == min(st.n_requests, 10_000)
        for record in st.placement_records:
            assert record.exit_path == EXIT_FLEET_PLACEMENT
            assert "policy:least_loaded" in record.notes

    def test_misses_always_sampled(self, engine):
        # A wide stride keeps only request 0 plus every deadline miss.
        st = dispatch_stream(FLEET, TRACE, policy="random", engine=engine,
                             sample_stride=10 ** 9)
        assert st.records_matched >= st.deadline_misses
        assert st.records_matched <= st.deadline_misses + 1

    def test_cap_is_exact_and_counted(self, engine):
        st = dispatch_stream(FLEET, TRACE, policy="round_robin",
                             engine=engine, sample_stride=1, max_records=7)
        assert len(st.placement_records) == 7
        assert st.records_matched == st.n_requests  # dropped, not lost

    def test_stateful_records_carry_policy_reason(self, engine):
        st = dispatch_stream(FLEET, TRACE, policy="energy_aware",
                             engine=engine, sample_stride=1)
        assert any("reason:" in note for record in st.placement_records
                   for note in record.notes)


class TestEmptyTraceRegression:
    """The zero-request guard: both modes survive an empty trace."""

    def test_trace_is_actually_empty(self):
        assert len(EMPTY_TRACE.requests()) == 0

    def test_reference_mode(self, engine):
        ref = run_fleet(FLEET, EMPTY_TRACE, policy="energy_aware",
                        engine=engine)
        assert ref.n_requests == 0
        assert ref.miss_rate == 0.0
        assert ref.mean_latency_s == 0.0
        assert ref.latency_percentile_s(95) == 0.0
        assert ref.render()

    def test_streaming_mode(self, engine):
        st = dispatch_stream(FLEET, EMPTY_TRACE, policy="energy_aware",
                             engine=engine)
        assert st.n_requests == 0 and st.n_chunks == 0
        assert st.miss_rate == 0.0
        assert st.mean_latency_s == 0.0
        assert st.latency_percentile_s(95) == 0.0
        assert st.total_energy_j == 0.0
        assert st.render()

    def test_empty_fingerprints_agree_across_modes(self, engine):
        ref = run_fleet(FLEET, EMPTY_TRACE, policy="least_loaded",
                        engine=engine)
        st = dispatch_stream(FLEET, EMPTY_TRACE, policy="least_loaded",
                             engine=engine)
        assert ref.stream_fingerprint() == st.fingerprint()


class TestCellStatsGuardRegression:
    """The empty/all-spilled cell guard in the policy signal surface."""

    def test_zero_count_means_zero_not_raise(self):
        stats = CellStats()
        assert stats.mean_time_s == 0.0
        assert stats.mean_energy_j == 0.0

    def test_nonzero_counts_still_average(self):
        stats = CellStats(count=4, total_time_s=2.0, total_energy_j=8.0)
        assert stats.mean_time_s == 0.5
        assert stats.mean_energy_j == 2.0


class TestObservability:
    def test_streaming_metrics_and_span(self, engine):
        observer = Observer()
        st = dispatch_stream(FLEET, TRACE, policy="least_loaded",
                             engine=engine, chunk_size=32,
                             observer=observer)
        snapshot = observer.metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["fleet.dispatch.requests"] == st.n_requests
        assert counters["fleet.dispatches"] == st.n_requests
        assert (counters["fleet.dispatches.desktop"]
                + counters["fleet.dispatches.tablet"]) == st.n_requests
        assert "fleet.dispatch.req_per_s" in snapshot["gauges"]
        assert "fleet.backlog" in snapshot["gauges"]
        chunk_spans = [s for s in observer.spans
                       if s.name == "fleet.dispatch.chunk"]
        assert len(chunk_spans) == st.n_chunks
        sampled = [r for r in observer.decisions
                   if r.exit_path == EXIT_FLEET_PLACEMENT]
        assert len(sampled) == len(st.placement_records)

    def test_disabled_observer_costs_nothing_in_records(self, engine):
        st = dispatch_stream(FLEET, TRACE, policy="least_loaded",
                             engine=engine)
        again = dispatch_stream(FLEET, TRACE, policy="least_loaded",
                                engine=engine, observer=None)
        assert st.fingerprint() == again.fingerprint()


class TestEngineFleetDispatch:
    def _spec(self, mode, policy="least_loaded"):
        return RunSpec(platform=FLEET.platform_spec("desktop"),
                       kind=KIND_FLEET_DISPATCH, fleet=FLEET, trace=TRACE,
                       policy=policy, dispatch_mode=mode)

    def test_schema_version_bumped_for_streaming(self):
        assert CACHE_SCHEMA_VERSION >= 6

    def test_modes_hash_to_distinct_keys(self):
        assert (self._spec("reference").cache_key()
                != self._spec("streaming").cache_key())
        assert (self._spec("reference", policy="random").cache_key()
                != self._spec("reference").cache_key())

    def test_canonical_carries_fleet_payload(self):
        canonical = self._spec("streaming").canonical()
        assert FLEET.canonical() in canonical
        assert TRACE.canonical() in canonical
        assert '"dispatch_mode":"streaming"' in canonical
        assert '"policy":"least_loaded"' in canonical

    def test_validation(self):
        with pytest.raises(HarnessError, match="dispatch_mode"):
            self._spec("turbo")
        with pytest.raises(HarnessError, match="FleetSpec"):
            RunSpec(platform=FLEET.platform_spec("desktop"),
                    kind=KIND_FLEET_DISPATCH, policy="random",
                    dispatch_mode="reference")
        with pytest.raises(HarnessError, match="must leave"):
            RunSpec(platform=FLEET.platform_spec("desktop"),
                    workload="MM", policy="random")

    def test_engine_runs_and_caches_fleet_dispatch(self, tmp_path):
        cache = ResultCache(str(tmp_path / "dispatch-cache"))
        eng = ExecutionEngine(cache=cache)
        spec = self._spec("streaming")
        first = eng.run_batch([spec])[0]
        assert not first.from_cache
        assert first.payload.fingerprint()
        second = eng.run_batch([spec])[0]
        assert second.from_cache
        assert (second.payload.fingerprint()
                == first.payload.fingerprint())

    def test_cross_mode_fingerprints_agree_through_engine(self, tmp_path):
        eng = ExecutionEngine(
            cache=ResultCache(str(tmp_path / "xmode-cache")))
        ref = eng.run_batch([self._spec("reference")])[0].payload
        st = eng.run_batch([self._spec("streaming")])[0].payload
        assert ref.stream_fingerprint() == st.fingerprint()


class TestLatencySketch:
    def test_error_bound_against_exact_sort(self):
        rng = np.random.default_rng(7)
        values = rng.lognormal(mean=0.0, sigma=1.5, size=10_000)
        sketch = LatencySketch()
        sketch.add_batch(values)
        ordered = np.sort(values)
        for pct in (1, 25, 50, 75, 90, 95, 99, 100):
            rank = max(1, int(np.ceil(pct / 100.0 * len(ordered))))
            exact = float(ordered[rank - 1])
            assert sketch.quantile(pct) == pytest.approx(
                exact, rel=sketch.rel_err)

    def test_order_independence(self):
        rng = np.random.default_rng(3)
        values = rng.exponential(scale=2.0, size=5_000)
        a, b = LatencySketch(), LatencySketch()
        a.add_batch(values)
        b.add_batch(values[::-1].copy())
        for pct in (50, 95, 99):
            assert a.quantile(pct) == b.quantile(pct)

    def test_exact_summary_stats(self):
        sketch = LatencySketch()
        sketch.add_batch(np.array([1.0, 2.0, 3.0, 4.0]))
        assert sketch.count == 4
        assert sketch.mean == pytest.approx(2.5)
        assert sketch.min == 1.0 and sketch.max == 4.0

    def test_empty_and_validation(self):
        sketch = LatencySketch()
        assert sketch.quantile(95) == 0.0
        assert sketch.mean == 0.0
        with pytest.raises(HarnessError):
            sketch.quantile(0)
        with pytest.raises(HarnessError):
            sketch.quantile(101)
        with pytest.raises(HarnessError):
            LatencySketch(rel_err=0.0)

    def test_clamped_to_observed_range(self):
        sketch = LatencySketch()
        sketch.add_batch(np.full(100, 3.25))
        assert sketch.quantile(50) == pytest.approx(3.25, rel=0.011)
        assert sketch.min <= sketch.quantile(1) <= sketch.max
        assert sketch.min <= sketch.quantile(100) <= sketch.max
