"""The fleet dispatcher: determinism, dedup, policy quality, audit."""

import pytest

from repro.errors import HarnessError
from repro.fleet import FleetSpec, TraceSpec, compare_fleet_policies, run_fleet
from repro.fleet.dispatcher import EXIT_FLEET_PLACEMENT
from repro.harness.engine import ExecutionEngine, ResultCache
from repro.obs.observer import Observer

#: Small, fast-mode fixtures: the fleet layer's cost is per distinct
#: (class, workload) cell, not per node or per request.
FLEET = FleetSpec(n_nodes=16, desktop_fraction=0.5, tick_mode="fast",
                  seed=9)
TRACE = TraceSpec(kind="bursty", duration_s=20.0, mean_rate_hz=1.5,
                  workloads=("MM", "RT"), seed=9)


@pytest.fixture(scope="module")
def engine(tmp_path_factory):
    cache = ResultCache(str(tmp_path_factory.mktemp("fleet-cache")))
    return ExecutionEngine(cache=cache)


class TestDeterminism:
    def test_rerun_fingerprint_identical(self, engine):
        a = run_fleet(FLEET, TRACE, policy="energy_aware", engine=engine)
        b = run_fleet(FLEET, TRACE, policy="energy_aware", engine=engine)
        assert a.fingerprint() == b.fingerprint()
        assert a.outcomes == b.outcomes

    def test_policies_differ(self, engine):
        a = run_fleet(FLEET, TRACE, policy="random", engine=engine)
        b = run_fleet(FLEET, TRACE, policy="least_loaded", engine=engine)
        assert a.fingerprint() != b.fingerprint()

    def test_fleet_spec_changes_fingerprint(self, engine):
        import dataclasses

        a = run_fleet(FLEET, TRACE, policy="least_loaded", engine=engine)
        grown = dataclasses.replace(FLEET, n_nodes=17)
        b = run_fleet(grown, TRACE, policy="least_loaded", engine=engine)
        assert a.fingerprint() != b.fingerprint()

    def test_serial_and_pooled_agree(self, engine):
        serial = run_fleet(FLEET, TRACE, policy="energy_aware",
                           engine=engine)
        pooled_engine = ExecutionEngine(jobs=2, cache=None)
        pooled = run_fleet(FLEET, TRACE, policy="energy_aware",
                           engine=pooled_engine)
        assert serial.fingerprint() == pooled.fingerprint()


class TestDedup:
    def test_cells_not_per_node(self, engine):
        first = run_fleet(FLEET, TRACE, policy="round_robin",
                          engine=engine)
        # 2 platform classes x 2 workloads, regardless of 16 nodes.
        assert len(first.cells) == 4
        again = run_fleet(FLEET, TRACE, policy="round_robin",
                          engine=engine)
        assert again.cells_executed == 0  # all recalled from the cache

    def test_cache_dedupes_across_fleet_sizes(self, engine):
        import dataclasses

        run_fleet(FLEET, TRACE, policy="least_loaded", engine=engine)
        big = dataclasses.replace(FLEET, n_nodes=200)
        result = run_fleet(big, TRACE, policy="least_loaded",
                           engine=engine)
        assert len(result.cells) == 4
        assert result.cells_executed == 0  # same cells as the 16-node run
        assert result.n_requests == len(TRACE.requests())


class TestAccounting:
    def test_outcomes_cover_trace(self, engine):
        result = run_fleet(FLEET, TRACE, policy="least_loaded",
                           engine=engine)
        requests = TRACE.requests()
        assert result.n_requests == len(requests)
        for outcome, request in zip(result.outcomes, requests):
            assert outcome.req_id == request.req_id
            assert outcome.t_start_s >= outcome.t_arrival_s
            assert outcome.t_complete_s > outcome.t_start_s
            assert outcome.energy_j > 0.0

    def test_energy_is_sum_of_outcomes(self, engine):
        result = run_fleet(FLEET, TRACE, policy="least_loaded",
                           engine=engine)
        assert result.total_energy_j == pytest.approx(
            sum(o.energy_j for o in result.outcomes))
        assert result.idle_energy_estimate_j > 0.0
        assert 0.0 <= result.miss_rate <= 1.0

    def test_placement_records_tagged_with_nodes(self, engine):
        result = run_fleet(FLEET, TRACE, policy="energy_aware",
                           engine=engine)
        assert len(result.placement_records) == result.n_requests
        node_names = {n.name for n in FLEET.nodes()}
        for record, outcome in zip(result.placement_records,
                                   result.outcomes):
            assert record.exit_path == EXIT_FLEET_PLACEMENT
            assert record.tenant == outcome.node
            assert record.tenant in node_names
            assert record.kernel == outcome.workload
            assert "policy:energy_aware" in record.notes

    def test_observer_collects_fleet_metrics(self, engine):
        observer = Observer()
        result = run_fleet(FLEET, TRACE, policy="least_loaded",
                           engine=engine, observer=observer)
        snapshot = observer.metrics.snapshot()
        assert snapshot["counters"]["fleet.dispatches"] == result.n_requests
        assert (snapshot["counters"]["fleet.completions"]
                == result.n_requests)
        fleet_decisions = [
            r for r in observer.decisions
            if r.exit_path == EXIT_FLEET_PLACEMENT]
        assert len(fleet_decisions) == result.n_requests


class TestPolicyQuality:
    def test_energy_aware_beats_random(self, engine):
        comparison = compare_fleet_policies(
            FLEET,
            TraceSpec(kind="bursty", duration_s=30.0, mean_rate_hz=2.0,
                      seed=9),
            policies=("random", "energy_aware"), engine=engine)
        random_result = comparison.result("random")
        energy_result = comparison.result("energy_aware")
        assert energy_result.total_energy_j < random_result.total_energy_j
        assert energy_result.miss_rate <= random_result.miss_rate

    def test_comparison_render_and_fingerprint(self, engine):
        comparison = compare_fleet_policies(
            FLEET, TRACE, policies=("random", "least_loaded"),
            engine=engine)
        text = comparison.render()
        assert "random" in text and "least_loaded" in text
        assert comparison.fingerprint() == compare_fleet_policies(
            FLEET, TRACE, policies=("random", "least_loaded"),
            engine=engine).fingerprint()
        with pytest.raises(HarnessError):
            comparison.result("energy_aware")


class TestEligibility:
    def test_unplaceable_workload_raises(self, engine):
        tablets_only = FleetSpec(n_nodes=4, desktop_fraction=0.0,
                                 tick_mode="fast")
        trace = TraceSpec(kind="bursty", duration_s=10.0, mean_rate_hz=1.0,
                          workloads=("CC",))  # desktop-only workload
        with pytest.raises(HarnessError):
            run_fleet(tablets_only, trace, policy="least_loaded",
                      engine=engine)

    def test_desktop_only_workload_stays_on_desktops(self, engine):
        trace = TraceSpec(kind="diurnal", duration_s=10.0, mean_rate_hz=1.0,
                          workloads=("CC",), seed=4)
        result = run_fleet(FLEET, trace, policy="round_robin",
                           engine=engine)
        assert result.n_requests > 0
        assert all(o.platform_kind == "desktop" for o in result.outcomes)
