"""Carbon-aware fleet dispatch: pricing, temporal shifting, gating.

The dispatcher prices each request's energy at the grid intensity of
its start time (in the serving node's region) and, when the trace
marks requests deferrable, holds them toward the lowest-intensity
sample inside their slack window.  See docs/OBJECTIVES.md.
"""

from dataclasses import replace

import pytest

from repro.errors import HarnessError
from repro.fleet.dispatcher import dispatch_stream, run_fleet
from repro.fleet.topology import FleetSpec
from repro.fleet.trace import TraceSpec, generate_trace
from repro.soc.carbon import CarbonSpec

#: One short diurnal carbon period so a 60 s trace sees full swings.
CARBON = CarbonSpec(period_s=60.0)
FLEET = FleetSpec(n_nodes=8, desktop_fraction=0.5, tick_mode="fast",
                  carbon=CARBON)
TRACE = TraceSpec(kind="diurnal", duration_s=60.0, mean_rate_hz=1.0,
                  workloads=("MB", "BS"))
SHIFTED_TRACE = replace(TRACE, deferral_fraction=0.8)


@pytest.fixture(scope="module")
def unshifted():
    return run_fleet(FLEET, TRACE, policy="energy_aware")


@pytest.fixture(scope="module")
def shifted():
    return run_fleet(FLEET, SHIFTED_TRACE, policy="energy_aware")


class TestCarbonPricing:
    def test_every_outcome_is_priced(self, unshifted):
        assert unshifted.outcomes
        for outcome in unshifted.outcomes:
            assert outcome.carbon_g is not None
            assert outcome.carbon_g > 0.0

    def test_total_is_the_sum(self, unshifted):
        assert unshifted.total_carbon_g == pytest.approx(
            sum(o.carbon_g for o in unshifted.outcomes))

    def test_pricing_uses_start_time_and_region(self, unshifted):
        signal = CARBON.trace()
        for outcome in unshifted.outcomes[:20]:
            expected = signal.grams(outcome.energy_j, outcome.t_start_s,
                                    outcome.node_index)
            assert outcome.carbon_g == pytest.approx(expected)

    def test_carbon_blind_fleet_prices_nothing(self):
        result = run_fleet(replace(FLEET, carbon=None), TRACE,
                           policy="energy_aware")
        assert all(o.carbon_g is None for o in result.outcomes)
        assert result.total_carbon_g == 0.0
        with pytest.raises(HarnessError):
            result.low_carbon_energy_fraction()

    def test_render_reports_carbon(self, shifted):
        text = shifted.render()
        assert "g CO2" in text
        assert "low-carbon energy" in text


class TestTemporalShifting:
    def test_deferral_never_starts_before_arrival(self, shifted):
        for outcome in shifted.outcomes:
            assert outcome.t_start_s >= outcome.t_arrival_s

    def test_some_requests_actually_deferred(self, shifted):
        deferred = [r for r in shifted.placement_records
                    if any(n.startswith("deferred:") for n in r.notes)]
        assert deferred

    def test_latency_measured_from_original_arrival(self, shifted):
        """Deferral eats the deadline budget: latency anchors to the
        arrival the request came in with, not the shifted dispatch."""
        for outcome in shifted.outcomes:
            assert outcome.latency_s >= \
                outcome.t_complete_s - outcome.t_start_s - 1e-9

    def test_shifting_moves_energy_into_low_carbon_windows(self, shifted):
        """The acceptance bar: >= 20% of deferrable-request energy
        lands in below-median-intensity windows on the diurnal trace."""
        assert shifted.low_carbon_energy_fraction() >= 0.20

    def test_shifting_does_not_increase_total_carbon(self, shifted,
                                                     unshifted):
        assert shifted.total_carbon_g <= unshifted.total_carbon_g * 1.001

    def test_unshifted_trace_has_no_deferral_slack(self):
        for request in generate_trace(TRACE):
            assert request.deferrable_s == 0.0

    def test_deferrable_slack_is_fraction_of_deadline(self):
        for request in generate_trace(SHIFTED_TRACE):
            assert request.deferrable_s == pytest.approx(
                0.8 * request.deadline_s)


class TestDeterminism:
    def test_rerun_fingerprints_are_byte_identical(self, shifted):
        again = run_fleet(FLEET, SHIFTED_TRACE, policy="energy_aware")
        assert again.fingerprint() == shifted.fingerprint()

    def test_carbon_keys_the_fingerprint(self, unshifted):
        other = run_fleet(
            replace(FLEET, carbon=replace(CARBON, seed=7)), TRACE,
            policy="energy_aware")
        assert other.fingerprint() != unshifted.fingerprint()

    def test_deferral_keys_the_fingerprint(self, shifted, unshifted):
        assert shifted.fingerprint() != unshifted.fingerprint()


class TestStreamingGate:
    def test_dispatch_stream_rejects_carbon_fleets(self):
        with pytest.raises(HarnessError, match="carbon"):
            dispatch_stream(FLEET, TRACE)

    def test_dispatch_stream_fine_without_carbon(self):
        result = dispatch_stream(replace(FLEET, carbon=None),
                                 replace(TRACE, duration_s=10.0))
        assert result.n_requests > 0
