"""Arrival-trace generators: determinism, shapes, validation, columns."""

import numpy as np
import pytest

from repro.errors import HarnessError
from repro.fleet import (
    TRACE_KINDS,
    TraceSpec,
    generate_trace,
    iter_trace_chunks,
    trace_columns,
)


class TestDeterminism:
    @pytest.mark.parametrize("kind", TRACE_KINDS)
    def test_same_spec_same_requests(self, kind):
        spec = TraceSpec(kind=kind, duration_s=30.0, mean_rate_hz=3.0,
                         seed=11)
        assert generate_trace(spec) == generate_trace(spec)

    def test_seed_changes_trace(self):
        a = TraceSpec(kind="bursty", seed=1).requests()
        b = TraceSpec(kind="bursty", seed=2).requests()
        assert a != b

    def test_ids_positional_in_arrival_order(self):
        requests = TraceSpec(kind="bursty", duration_s=30.0).requests()
        assert [r.req_id for r in requests] == list(range(len(requests)))
        times = [r.t_arrival_s for r in requests]
        assert times == sorted(times)


class TestShapes:
    def test_rate_roughly_respected(self):
        spec = TraceSpec(kind="diurnal", duration_s=200.0, mean_rate_hz=5.0)
        n = len(spec.requests())
        assert 0.6 * 1000 < n < 1.4 * 1000

    def test_adversarial_has_simultaneous_waves(self):
        spec = TraceSpec(kind="adversarial", duration_s=40.0,
                         mean_rate_hz=4.0)
        requests = spec.requests()
        by_time = {}
        for r in requests:
            by_time.setdefault(r.t_arrival_s, []).append(r)
        waves = [rs for rs in by_time.values() if len(rs) > 3]
        assert len(waves) >= 4
        for wave in waves:
            # one workload per wave, tightest deadline
            assert len({r.workload for r in wave}) == 1
            assert all(r.deadline_s == spec.deadline_lo_s for r in wave)

    def test_bursty_bursts_share_hot_workload(self):
        spec = TraceSpec(kind="bursty", duration_s=60.0, mean_rate_hz=4.0)
        requests = spec.requests()
        # at least one 0.5s window holds a cluster of one workload
        found = False
        for i, r in enumerate(requests):
            cluster = [q for q in requests[i:i + 12]
                       if q.t_arrival_s - r.t_arrival_s <= 0.5]
            if len(cluster) >= 6 and len({q.workload for q in cluster}) <= 2:
                found = True
                break
        assert found

    def test_deadlines_in_range(self):
        spec = TraceSpec(kind="diurnal", duration_s=30.0)
        for r in spec.requests():
            assert spec.deadline_lo_s <= r.deadline_s <= spec.deadline_hi_s


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(HarnessError):
            TraceSpec(kind="linear")

    def test_unknown_workload(self):
        with pytest.raises(HarnessError):
            TraceSpec(workloads=("MM", "XX"))

    def test_bad_rate_and_duration(self):
        with pytest.raises(HarnessError):
            TraceSpec(duration_s=0.0)
        with pytest.raises(HarnessError):
            TraceSpec(mean_rate_hz=-1.0)

    def test_bad_deadlines(self):
        with pytest.raises(HarnessError):
            TraceSpec(deadline_lo_s=10.0, deadline_hi_s=5.0)

    def test_canonical_round_trip_stability(self):
        spec = TraceSpec(kind="bursty", duration_s=45.5, seed=3)
        assert spec.canonical() == TraceSpec(
            kind="bursty", duration_s=45.5, seed=3).canonical()
        assert spec.canonical() != TraceSpec(
            kind="bursty", duration_s=45.5, seed=4).canonical()


class TestColumnarForm:
    """The chunked columnar generators are element-for-element twins
    of the scalar generators under the same seed - the streaming
    dispatcher's input contract."""

    @pytest.mark.parametrize("kind", TRACE_KINDS)
    @pytest.mark.parametrize("seed", (1, 7, 2016))
    def test_columns_match_scalar_trace(self, kind, seed):
        spec = TraceSpec(kind=kind, duration_s=30.0, mean_rate_hz=3.0,
                         seed=seed)
        requests = spec.requests()
        t, w, d = trace_columns(spec)
        assert len(t) == len(w) == len(d) == len(requests)
        for i, r in enumerate(requests):
            assert float(t[i]) == r.t_arrival_s
            assert spec.workloads[int(w[i])] == r.workload
            assert float(d[i]) == r.deadline_s

    def test_dtypes_and_order(self):
        spec = TraceSpec(kind="bursty", duration_s=40.0, mean_rate_hz=4.0)
        t, w, d = trace_columns(spec)
        assert t.dtype == np.float64
        assert w.dtype == np.uint16
        assert d.dtype == np.float64
        assert np.all(np.diff(t) >= 0.0)

    @pytest.mark.parametrize("chunk_size", (1, 7, 10 ** 6))
    def test_chunks_tile_the_trace(self, chunk_size):
        spec = TraceSpec(kind="bursty", duration_s=30.0, mean_rate_hz=3.0,
                         seed=5)
        requests = spec.requests()
        chunks = list(iter_trace_chunks(spec, chunk_size=chunk_size))
        assert sum(len(c) for c in chunks) == len(requests)
        assert all(len(c) <= chunk_size for c in chunks)
        rebuilt = [r for c in chunks for r in c.requests()]
        assert tuple(rebuilt) == requests
        # chunk rows keep positional ids
        for chunk in chunks:
            assert chunk.start_id == next(chunk.requests()).req_id

    def test_chunk_arrays_are_read_only(self):
        spec = TraceSpec(kind="diurnal", duration_s=20.0, mean_rate_hz=2.0)
        chunk = next(iter_trace_chunks(spec, chunk_size=8))
        with pytest.raises(ValueError):
            chunk.t_arrival_s[0] = 0.0
        with pytest.raises(ValueError):
            chunk.workload_idx[0] = 0

    def test_bad_chunk_size(self):
        spec = TraceSpec(kind="bursty", duration_s=10.0)
        with pytest.raises(HarnessError):
            next(iter_trace_chunks(spec, chunk_size=0))
        with pytest.raises(HarnessError):
            next(iter_trace_chunks(spec, chunk_size=-4))
