"""Fleet topology and placement policies (no simulation needed)."""

import pytest

from repro.errors import HarnessError, UnknownNameError
from repro.fleet import (
    PLACEMENT_POLICIES,
    FleetRequest,
    FleetSpec,
    FleetView,
    NodeSpec,
    make_policy,
)


def _request(workload="MM", t=0.0, deadline=60.0, req_id=0):
    return FleetRequest(req_id=req_id, t_arrival_s=t, workload=workload,
                        deadline_s=deadline)


def _view(n_nodes=4, desktop_fraction=0.5):
    fleet = FleetSpec(n_nodes=n_nodes, desktop_fraction=desktop_fraction)
    return FleetView(fleet.nodes())


class TestTopology:
    def test_node_mix_matches_fraction(self):
        nodes = FleetSpec(n_nodes=1000, desktop_fraction=0.3).nodes()
        desktops = sum(1 for n in nodes if n.platform_kind == "desktop")
        assert desktops == 300

    def test_interleave_not_blocked(self):
        nodes = FleetSpec(n_nodes=10, desktop_fraction=0.5).nodes()
        kinds = [n.platform_kind for n in nodes]
        assert kinds == ["tablet", "desktop"] * 5

    def test_prefix_mix_within_one_node(self):
        nodes = FleetSpec(n_nodes=100, desktop_fraction=0.37).nodes()
        for i in range(1, 101):
            desktops = sum(1 for n in nodes[:i]
                           if n.platform_kind == "desktop")
            assert abs(desktops - 0.37 * i) <= 1.0

    def test_node_names_stable(self):
        assert NodeSpec(index=7, platform_kind="tablet").name == "tablet-0007"

    def test_validation(self):
        with pytest.raises(HarnessError):
            FleetSpec(n_nodes=0)
        with pytest.raises(HarnessError):
            FleetSpec(desktop_fraction=1.5)
        with pytest.raises(HarnessError):
            FleetSpec(tick_mode="warp")
        with pytest.raises(HarnessError):
            NodeSpec(index=0, platform_kind="mainframe")

    def test_platform_specs_carry_fleet_tick_mode(self):
        fleet = FleetSpec(n_nodes=2, tick_mode="fast")
        assert fleet.platform_spec("desktop").tick_mode == "fast"
        assert fleet.platform_spec("tablet").tick_mode == "fast"


class TestFleetView:
    def test_eligibility_tablet_unsupported_workload(self):
        view = _view()
        # CC is desktop-only in the registry.
        assert view.eligible_kinds("CC") == ("desktop",)
        assert all(view.platform_kind(i) == "desktop"
                   for i in view.eligible_nodes("CC"))
        assert view.eligible_kinds("MM") == ("desktop", "tablet")

    def test_all_tablet_fleet_cannot_run_desktop_only(self):
        view = _view(desktop_fraction=0.0)
        assert view.eligible_kinds("CC") == ()

    def test_backlog_tracks_clock(self):
        view = _view()
        view.note_dispatch(0, "MM", t_complete=5.0)
        assert view.backlog_s(0) == 5.0
        view.now = 3.0
        assert view.backlog_s(0) == 2.0
        view.now = 7.0
        assert view.backlog_s(0) == 0.0

    def test_observed_only_after_completion(self):
        view = _view()
        view.note_dispatch(1, "MM", t_complete=2.0)
        kind = view.platform_kind(1)
        assert view.observed(kind, "MM") is None
        assert view.in_flight(kind, "MM") == 1
        view.note_completion(1, "MM", time_s=2.0, energy_j=10.0)
        stats = view.observed(kind, "MM")
        assert stats.count == 1
        assert stats.mean_energy_j == 10.0
        assert view.in_flight(kind, "MM") == 0

    def test_least_loaded_ties_break_low_index(self):
        view = _view()
        assert view.least_loaded([2, 0, 1]) == 2  # first of equals wins
        view.note_dispatch(2, "MM", t_complete=1.0)
        assert view.least_loaded([2, 0, 1]) == 0


class TestPolicies:
    def test_make_policy_all_names(self):
        for name in PLACEMENT_POLICIES:
            assert make_policy(name).name == name

    def test_make_policy_did_you_mean(self):
        with pytest.raises(UnknownNameError) as err:
            make_policy("energy_awre")
        assert "energy_aware" in err.value.suggestions

    def test_random_deterministic_per_seed(self):
        view_a, view_b = _view(8), _view(8)
        a = make_policy("random", seed=5)
        b = make_policy("random", seed=5)
        picks_a = [a.place(view_a, _request(req_id=i))[0] for i in range(20)]
        picks_b = [b.place(view_b, _request(req_id=i))[0] for i in range(20)]
        assert picks_a == picks_b
        assert picks_a != [make_policy("random", seed=6).place(
            _view(8), _request(req_id=i))[0] for i in range(20)]

    def test_round_robin_cycles_eligible(self):
        view = _view(4)  # tablet, desktop, tablet, desktop
        policy = make_policy("round_robin")
        picks = [policy.place(view, _request("MM", req_id=i))[0]
                 for i in range(4)]
        assert picks == [0, 1, 2, 3]
        picks = [policy.place(view, _request("CC", req_id=i))[0]
                 for i in range(3)]
        assert picks == [1, 3, 1]  # desktop-only

    def test_round_robin_unplaceable_raises(self):
        view = _view(desktop_fraction=0.0)
        with pytest.raises(HarnessError):
            make_policy("round_robin").place(view, _request("CC"))

    def test_least_loaded_avoids_backlog(self):
        view = _view(4)
        view.note_dispatch(0, "MM", t_complete=10.0)
        index, _ = make_policy("least_loaded").place(view, _request("MM"))
        assert index == 1

    def test_energy_aware_probes_then_prefers_cheap(self):
        view = _view(4)
        policy = make_policy("energy_aware")
        # Unknown classes: the first two placements probe one node of
        # each class (in-flight bounded to one per class).
        i1, reason1 = policy.place(view, _request())
        view.note_dispatch(i1, "MM", t_complete=1.0)
        assert reason1.startswith("probe:")
        i2, reason2 = policy.place(view, _request())
        view.note_dispatch(i2, "MM", t_complete=1.0)
        assert reason2.startswith("probe:")
        assert view.platform_kind(i1) != view.platform_kind(i2)
        # Feed back: tablet completions much cheaper.
        for index in (i1, i2):
            cheap = view.platform_kind(index) == "tablet"
            view.note_completion(index, "MM", time_s=1.0,
                                 energy_j=1.0 if cheap else 50.0)
        view.now = 2.0
        index, reason = policy.place(view, _request())
        assert view.platform_kind(index) == "tablet"
        assert reason.startswith("energy:tablet")

    def test_energy_aware_spills_under_backlog(self):
        view = _view(4)
        kinds = {view.platform_kind(i) for i in range(4)}
        assert kinds == {"desktop", "tablet"}
        # Mark tablet as cheap but back its nodes way up.
        view.note_completion(0, "MM", time_s=1.0, energy_j=1.0)
        view.note_completion(1, "MM", time_s=1.0, energy_j=40.0)
        for i in range(4):
            if view.platform_kind(i) == "tablet":
                view.note_dispatch(i, "MM", t_complete=100.0)
        index, reason = make_policy("energy_aware").place(view, _request())
        assert view.platform_kind(index) == "desktop"
        assert reason.startswith("spill:")

    def test_deadline_aware_prefers_feasible_cheap(self):
        view = _view(4)
        view.note_completion(0, "MM", time_s=30.0, energy_j=1.0)
        view.note_completion(1, "MM", time_s=1.0, energy_j=40.0)
        policy = make_policy("deadline_aware")
        # Slack deadline: cheap-but-slow tablet is feasible -> chosen.
        index, reason = policy.place(view, _request(deadline=60.0))
        assert view.platform_kind(index) == "tablet"
        assert reason.startswith("feasible:")
        # Tight deadline: only the desktop makes it.
        index, reason = policy.place(view, _request(deadline=5.0))
        assert view.platform_kind(index) == "desktop"
