"""Exporters and schema validators, including a fig-2-style run.

The acceptance criterion: a Chrome trace of a traced partitioned run
(figure-2 style: one workload, power timeline enabled) must load as
valid trace-event JSON.  Validity is checked by the same validator the
CLI exposes (``python -m repro.obs.validate``).
"""

import json

import pytest

from repro.core.metrics import EDP
from repro.core.scheduler import EnergyAwareScheduler
from repro.errors import ObservabilityError
from repro.harness.experiment import run_application
from repro.obs.export import (
    MAX_POWER_EVENTS,
    SCHEMA_VERSION,
    TraceSection,
    chrome_trace,
    jsonl_lines,
    write_chrome_trace,
    write_jsonl,
    write_metrics,
)
from repro.obs.observer import Observer
from repro.obs.records import DecisionRecord
from repro.obs.validate import (
    main as validate_main,
    validate_file,
    validate_jsonl,
    validate_metrics,
    validate_trace_events,
)
from repro.workloads.registry import workload_by_abbrev


@pytest.fixture(scope="module")
def fig2_style_run(desktop_characterization):
    """One traced EAS run of CC on the desktop (what figure 2 plots),
    with an observer attached - the trace/span/decision source for the
    export tests below."""
    from repro.soc.spec import haswell_desktop

    observer = Observer(metadata={"workload": "CC", "strategy": "eas"})
    run = run_application(
        haswell_desktop(), workload_by_abbrev("CC"),
        EnergyAwareScheduler(desktop_characterization, EDP), "eas",
        trace=True, observer=observer)
    return run, observer


class TestChromeTraceOfRealRun:
    def test_trace_validates_and_merges_all_streams(self, fig2_style_run):
        run, observer = fig2_style_run
        section = TraceSection(name="eas", observer=observer,
                               power_trace=run.trace)
        trace = chrome_trace([section], metadata={"workload": "CC"})
        count = validate_trace_events(trace)
        events = trace["traceEvents"]
        assert count == len(events)
        phases = {e["ph"] for e in events}
        # Spans, instants (decisions), counters (power), metadata.
        assert {"X", "i", "C", "M"} <= phases
        names = {e["name"] for e in events}
        assert "eas.invocation" in names
        assert "soc.phase" in names
        assert "runtime.parallel_for" in names
        assert "power_w" in names
        assert any(n.startswith("decision:") for n in names)
        assert trace["otherData"]["schema_version"] == SCHEMA_VERSION

    def test_trace_file_roundtrip_is_valid_json(self, fig2_style_run,
                                                tmp_path):
        run, observer = fig2_style_run
        path = str(tmp_path / "trace.json")
        count = write_chrome_trace(
            path, [TraceSection(name="eas", observer=observer,
                                power_trace=run.trace)])
        with open(path) as fh:
            loaded = json.load(fh)
        assert len(loaded["traceEvents"]) == count
        assert validate_file(path) == "chrome-trace"

    def test_power_events_are_decimated(self, fig2_style_run):
        run, observer = fig2_style_run
        section = TraceSection(name="eas", power_trace=run.trace)
        events = chrome_trace([section])["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert 0 < len(counters) <= MAX_POWER_EVENTS + 1

    def test_spans_carry_simulated_timestamps(self, fig2_style_run):
        """Spans opened under the runtime are on the simulated
        timeline (microseconds of SoC time), not wall time."""
        _, observer = fig2_style_run
        invocations = [s for s in observer.spans
                       if s.name == "eas.invocation"]
        assert invocations
        assert all(s.sim_start_s is not None for s in invocations)

    def test_cli_validator_accepts_the_trace(self, fig2_style_run,
                                             tmp_path, capsys):
        run, observer = fig2_style_run
        path = str(tmp_path / "trace.json")
        write_chrome_trace(
            path, [TraceSection(name="eas", observer=observer)])
        assert validate_main([path]) == 0
        assert "valid chrome-trace" in capsys.readouterr().out


class TestJsonlAndMetrics:
    def test_jsonl_roundtrip(self, fig2_style_run, tmp_path):
        _, observer = fig2_style_run
        path = str(tmp_path / "events.jsonl")
        count = write_jsonl(path, observer, extra_meta={"seed": 1})
        with open(path) as fh:
            lines = [json.loads(line) for line in fh]
        assert len(lines) == count
        assert lines[0]["type"] == "meta"
        assert lines[0]["seed"] == 1
        assert lines[-1]["type"] == "metrics"
        assert validate_jsonl(lines) == count
        assert validate_file(path) == "jsonl"

    def test_jsonl_contains_every_decision(self, fig2_style_run):
        _, observer = fig2_style_run
        lines = jsonl_lines(observer)
        decisions = [l for l in lines if l["type"] == "decision"]
        assert len(decisions) == len(observer.decisions)

    def test_metrics_file_validates(self, fig2_style_run, tmp_path):
        _, observer = fig2_style_run
        path = str(tmp_path / "metrics.json")
        write_metrics(path, observer)
        assert validate_file(path) == "metrics"
        with open(path) as fh:
            payload = json.load(fh)
        validate_metrics(payload)
        counters = payload["metrics"]["counters"]
        assert counters["eas.invocations"] >= 1
        assert counters["soc.phases"] >= 1
        assert "eas.grid_search_us" in payload["metrics"]["histograms"]


class TestAtomicWrites:
    """A crash mid-export must never publish a truncated artifact:
    every writer stages to a temp file and atomically renames."""

    def _observer(self):
        observer = Observer(metadata={"component": "test"})
        observer.inc("n")
        return observer

    def test_interrupted_write_preserves_previous_file(self, tmp_path,
                                                       monkeypatch):
        import os as os_mod

        observer = self._observer()
        path = str(tmp_path / "metrics.json")
        write_metrics(path, observer)
        with open(path) as fh:
            before = fh.read()

        real_replace = os_mod.replace

        def crash_at_publish(src, dst, **kwargs):
            if str(dst) == path:
                raise OSError("simulated crash at rename")
            return real_replace(src, dst, **kwargs)

        monkeypatch.setattr(os_mod, "replace", crash_at_publish)
        observer.inc("n")
        with pytest.raises(OSError, match="simulated crash"):
            write_metrics(path, observer)
        monkeypatch.undo()
        # The previous complete artifact is intact and still validates.
        with open(path) as fh:
            assert fh.read() == before
        assert validate_file(path) == "metrics"
        # No temp-file litter either.
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "metrics.json"]

    def test_all_writers_leave_no_temp_files(self, fig2_style_run,
                                             tmp_path):
        run, observer = fig2_style_run
        write_jsonl(str(tmp_path / "events.jsonl"), observer)
        write_metrics(str(tmp_path / "metrics.json"), observer)
        write_chrome_trace(
            str(tmp_path / "trace.json"),
            [TraceSection("run", observer=observer, power_trace=run.trace)])
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["events.jsonl", "metrics.json", "trace.json"]
        for name in names:
            validate_file(str(tmp_path / name))

    def test_truncated_artifact_fails_validation(self, fig2_style_run,
                                                 tmp_path):
        """What atomicity prevents: a half-written file is not valid
        (so a non-atomic writer crash would poison downstream)."""
        _, observer = fig2_style_run
        path = str(tmp_path / "metrics.json")
        write_metrics(path, observer)
        with open(path) as fh:
            whole = fh.read()
        with open(path, "w") as fh:
            fh.write(whole[:len(whole) // 2])
        with pytest.raises(ObservabilityError):
            validate_file(path)


class TestValidatorRejections:
    def test_rejects_non_trace_object(self):
        with pytest.raises(ObservabilityError):
            validate_trace_events({"not": "a trace"})

    def test_rejects_bad_phase(self):
        with pytest.raises(ObservabilityError, match="ph"):
            validate_trace_events(
                {"traceEvents": [{"ph": "Z", "pid": 1, "name": "x"}]})

    def test_rejects_complete_event_without_duration(self):
        with pytest.raises(ObservabilityError):
            validate_trace_events(
                {"traceEvents": [
                    {"ph": "X", "pid": 1, "tid": 0, "name": "x",
                     "ts": 0.0}]})

    def test_rejects_metrics_without_schema_version(self):
        with pytest.raises(ObservabilityError):
            validate_metrics({"metrics": {
                "counters": {}, "gauges": {}, "histograms": {}}})

    def test_rejects_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json at all\n")
        with pytest.raises(ObservabilityError):
            validate_file(str(path))

    def test_cli_validator_fails_on_bad_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"traceEvents": [{"ph": "?"}]}))
        assert validate_main([str(path)]) == 1
        assert "INVALID" in capsys.readouterr().err


class TestDecisionInstants:
    def test_decision_records_become_instant_events(self):
        obs = Observer()
        obs.decision(DecisionRecord(exit_path="profiled", kernel="k",
                                    sim_time_s=0.5))
        events = chrome_trace(
            [TraceSection(name="s", observer=obs)])["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "decision:profiled"
        assert instants[0]["ts"] == pytest.approx(0.5e6)
        assert instants[0]["args"]["kernel"] == "k"
