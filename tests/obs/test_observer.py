"""The observer core: spans, events, metrics, null-object semantics."""

import pytest

from repro.obs import NULL_OBSERVER, NullObserver, Observer
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import _NULL_SPAN, resolve
from repro.obs.records import DecisionRecord


class TestNullObserver:
    def test_singleton_is_disabled(self):
        assert NULL_OBSERVER.enabled is False
        assert isinstance(NULL_OBSERVER, NullObserver)

    def test_span_returns_shared_null_context(self):
        """The disabled span path allocates nothing: same object back
        every time, usable as a context manager."""
        ctx = NULL_OBSERVER.span("anything", k=1)
        assert ctx is NULL_OBSERVER.span("other")
        assert ctx is _NULL_SPAN
        with ctx:
            pass

    def test_all_hooks_are_noops(self):
        NULL_OBSERVER.inc("c")
        NULL_OBSERVER.set_gauge("g", 1.0)
        NULL_OBSERVER.observe("h", 2.0)
        NULL_OBSERVER.event("e", x=1)
        NULL_OBSERVER.decision(DecisionRecord(kernel="k"))
        NULL_OBSERVER.bind_sim_clock(lambda: 1.0)
        assert NULL_OBSERVER.spans == []
        assert NULL_OBSERVER.events == []
        assert NULL_OBSERVER.decisions == []
        assert NULL_OBSERVER.metrics.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}

    def test_resolve(self):
        obs = Observer()
        assert resolve(obs) is obs
        assert resolve(None) is NULL_OBSERVER


class TestSpans:
    def test_nesting_records_parent_and_depth(self):
        obs = Observer()
        with obs.span("outer") as outer:
            with obs.span("inner", kernel="k") as inner:
                pass
        assert outer.depth == 0 and outer.parent_seq is None
        assert inner.depth == 1 and inner.parent_seq == outer.seq
        assert inner.attrs["kernel"] == "k"
        assert [s.name for s in obs.spans] == ["outer", "inner"]

    def test_wall_times_are_monotone(self):
        obs = Observer()
        with obs.span("s") as span:
            pass
        assert span.wall_end_s >= span.wall_start_s

    def test_sim_clock_stamps_spans_and_events(self):
        obs = Observer()
        now = [4.5]
        obs.bind_sim_clock(lambda: now[0])
        with obs.span("s") as span:
            now[0] = 5.25
            obs.event("tick")
        assert span.sim_start_s == 4.5
        assert span.sim_end_s == 5.25
        assert obs.events[0].sim_s == 5.25

    def test_unbound_clock_leaves_sim_time_none(self):
        obs = Observer()
        with obs.span("s") as span:
            obs.event("e")
        assert span.sim_start_s is None and span.sim_end_s is None
        assert obs.events[0].sim_s is None

    def test_exception_unwinds_stack_and_tags_error(self):
        obs = Observer()
        with pytest.raises(ValueError):
            with obs.span("outer"):
                with obs.span("inner") as inner:
                    raise ValueError("boom")
        assert inner.attrs["error"] == "ValueError"
        # Stack fully unwound: a new span is root-level again.
        with obs.span("after") as after:
            pass
        assert after.depth == 0 and after.parent_seq is None

    def test_decision_gets_sim_time_stamped(self):
        obs = Observer()
        obs.bind_sim_clock(lambda: 7.0)
        record = DecisionRecord(kernel="k")
        obs.decision(record)
        assert record.sim_time_s == 7.0
        # A pre-stamped record keeps its own stamp.
        stamped = DecisionRecord(kernel="k", sim_time_s=1.0)
        obs.decision(stamped)
        assert stamped.sim_time_s == 1.0


class TestMetrics:
    def test_counter_gauge_histogram_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2.5)
        reg.gauge("g").set(1.0)
        reg.gauge("g").set(3.0)
        for v in (1.0, 2.0, 3.0, 4.0):
            reg.histogram("h").observe(v)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 3.5
        assert snap["gauges"]["g"] == 3.0
        hist = snap["histograms"]["h"]
        assert hist["count"] == 4
        assert hist["min"] == 1.0 and hist["max"] == 4.0
        assert hist["mean"] == pytest.approx(2.5)

    def test_registry_instruments_are_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("y") is reg.histogram("y")

    def test_observer_shorthands(self):
        obs = Observer(metadata={"run": "test"})
        obs.inc("calls")
        obs.inc("calls", 4.0)
        obs.set_gauge("level", 0.5)
        obs.observe("latency", 1e-6)
        snap = obs.metrics.snapshot()
        assert snap["counters"]["calls"] == 5.0
        assert snap["gauges"]["level"] == 0.5
        assert snap["histograms"]["latency"]["count"] == 1
        assert obs.metadata == {"run": "test"}
