"""Road-network generation and the level-synchronous graph algorithms."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.roadnet import (
    bfs_levels,
    connected_components_labels,
    generate_road_network,
    rescale_profile,
    small_road_network,
    sssp_distances,
)


class TestGeneration:
    def test_grid_structure(self):
        g = generate_road_network(10, 8, shortcut_fraction=0.0)
        assert g.num_vertices == 80
        # Undirected grid: 2 * (W-1)*H + W*(H-1) directed edges... each
        # stored twice.
        expected = 2 * ((10 - 1) * 8 + 10 * (8 - 1))
        assert g.num_edges == expected

    def test_symmetry(self):
        g = generate_road_network(12, 9, seed=3)
        for v in (0, 17, 53):
            for u in g.neighbors(v):
                assert v in g.neighbors(int(u))

    def test_deterministic(self):
        a = generate_road_network(10, 10, seed=5)
        b = generate_road_network(10, 10, seed=5)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.weights, b.weights)

    def test_positive_weights(self):
        g = generate_road_network(10, 10)
        assert (g.weights > 0).all()

    def test_rejects_degenerate_grid(self):
        with pytest.raises(WorkloadError):
            generate_road_network(1, 5)


class TestAlgorithms:
    def test_bfs_covers_all_vertices_once(self):
        g = small_road_network()
        level, sizes = bfs_levels(g)
        assert (level >= 0).all()
        assert sum(sizes) == g.num_vertices

    def test_bfs_levels_differ_by_one_across_edges(self):
        g = small_road_network()
        level, _ = bfs_levels(g)
        for v in range(0, g.num_vertices, 97):
            for u in g.neighbors(v):
                assert abs(level[v] - level[int(u)]) <= 1

    def test_road_network_has_high_diameter(self):
        """The property that makes the paper's graph workloads launch
        thousands of short kernels."""
        g = small_road_network()
        _, sizes = bfs_levels(g)
        assert len(sizes) > 30
        assert max(sizes) < g.num_vertices / 10

    def test_cc_single_component(self):
        g = small_road_network()
        labels, rounds = connected_components_labels(g)
        assert (labels == 0).all()  # grid backbone keeps it connected
        assert len(rounds) > 1

    def test_sssp_triangle_inequality_on_edges(self):
        g = small_road_network()
        dist, _ = sssp_distances(g)
        for v in range(0, g.num_vertices, 131):
            for u, w in zip(g.neighbors(v), g.edge_weights(v)):
                assert dist[int(u)] <= dist[v] + w + 1e-9


class TestRescaleProfile:
    def test_total_and_count(self):
        scaled = rescale_profile([1, 5, 20, 5, 1], target_launches=100,
                                 target_total=1e6)
        assert len(scaled) == 100
        assert sum(scaled) == pytest.approx(1e6, rel=1e-6)

    def test_preserves_shape(self):
        scaled = rescale_profile([1, 10, 1], target_launches=9,
                                 target_total=900)
        assert scaled[4] > scaled[0]
        assert scaled[4] > scaled[-1]

    def test_no_zero_launches(self):
        scaled = rescale_profile([1, 1000000, 1], 50, 1e6)
        assert min(scaled) >= 1.0

    def test_rejects_empty_profile(self):
        with pytest.raises(WorkloadError):
            rescale_profile([], 10, 100.0)

    def test_rejects_zero_launches(self):
        with pytest.raises(WorkloadError):
            rescale_profile([1, 2], 0, 100.0)
