"""Deeper algorithm-level tests for individual workload implementations."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.barneshut import QuadTree, _exact_forces
from repro.workloads.blackscholes import OptionBatch, black_scholes_price
from repro.workloads.facedetect import (
    box_sum,
    detect_bright_squares,
    integral_image,
)
from repro.workloads.mandelbrot import render_escape_counts
from repro.workloads.nbody import leapfrog_step, nbody_energy, nbody_forces
from repro.workloads.raytracer import Scene, Sphere, render, trace_ray
from repro.workloads.seismic import frame_rows, wave_step
from repro.workloads.skiplist import SkipListStructure


class TestBarnesHut:
    def test_theta_zero_matches_exact(self):
        """theta -> 0 disables approximation entirely."""
        rng = np.random.default_rng(2)
        pos = rng.uniform(-1, 1, size=(40, 2))
        mass = rng.uniform(0.5, 2.0, size=40)
        tree = QuadTree.build(pos, mass)
        exact = _exact_forces(pos, mass)
        for i in range(40):
            approx = tree.force_on(pos[i], i, theta=0.0)
            assert np.allclose(approx, exact[i], rtol=1e-6, atol=1e-9)

    def test_total_mass_conserved(self):
        rng = np.random.default_rng(3)
        pos = rng.uniform(-1, 1, size=(100, 2))
        mass = rng.uniform(0.5, 2.0, size=100)
        tree = QuadTree.build(pos, mass)
        assert tree.mass == pytest.approx(mass.sum())
        assert tree.count == 100

    def test_larger_theta_is_coarser_but_close(self):
        rng = np.random.default_rng(4)
        pos = rng.uniform(-1, 1, size=(200, 2))
        mass = np.ones(200)
        tree = QuadTree.build(pos, mass)
        exact = _exact_forces(pos, mass)
        errs = []
        for theta in (0.3, 1.0):
            approx = np.array([tree.force_on(pos[i], i, theta)
                               for i in range(50)])
            errs.append(np.linalg.norm(approx - exact[:50], axis=1).mean())
        assert errs[0] < errs[1]  # smaller theta, smaller error


class TestBlackScholes:
    def test_zero_volatility_limit_close(self):
        """Near-zero volatility: call ~ max(S - K e^{-rT}, 0)."""
        opts = OptionBatch(
            spot=np.array([100.0, 50.0]), strike=np.array([80.0, 80.0]),
            rate=np.array([0.05, 0.05]), volatility=np.array([1e-4, 1e-4]),
            expiry=np.array([1.0, 1.0]))
        call, put = black_scholes_price(opts)
        intrinsic = np.maximum(opts.spot - opts.strike * np.exp(-0.05), 0.0)
        assert np.allclose(call, intrinsic, atol=1e-6)

    def test_call_increases_with_spot(self):
        spots = np.linspace(50, 150, 20)
        opts = OptionBatch(spot=spots, strike=np.full(20, 100.0),
                           rate=np.full(20, 0.03),
                           volatility=np.full(20, 0.3),
                           expiry=np.full(20, 1.0))
        call, _ = black_scholes_price(opts)
        assert (np.diff(call) > 0).all()

    def test_rejects_bad_batch(self):
        with pytest.raises(WorkloadError):
            OptionBatch(spot=np.array([1.0]), strike=np.array([1.0, 2.0]),
                        rate=np.array([0.1]), volatility=np.array([0.2]),
                        expiry=np.array([1.0]))


class TestFaceDetect:
    def test_integral_image_box_sum(self):
        rng = np.random.default_rng(6)
        image = rng.uniform(size=(20, 30))
        ii = integral_image(image)
        assert box_sum(ii, 3, 5, 7, 11) == pytest.approx(
            image[3:10, 5:16].sum())

    def test_cascade_rejects_dark_image(self):
        dark = np.zeros((50, 50))
        assert detect_bright_squares(dark, window=8, threshold=0.4) == []

    def test_cascade_window_validation(self):
        with pytest.raises(WorkloadError):
            detect_bright_squares(np.zeros((50, 50)), window=2, threshold=0.4)


class TestMandelbrot:
    def test_symmetric_about_real_axis(self):
        counts = render_escape_counts(64, 49, 32)
        assert np.array_equal(counts, counts[::-1, :])

    def test_interior_cardioid_never_escapes(self):
        counts = render_escape_counts(128, 96, 50)
        # c = -0.1: inside the main cardioid.
        col = int((-0.1 + 2.5) / 3.5 * 127)
        row = 48
        assert counts[row, col] == 50


class TestSkipList:
    def test_duplicate_insert_rejected(self):
        sl = SkipListStructure(seed=1)
        assert sl.insert(5)
        assert not sl.insert(5)
        assert len(sl) == 1

    def test_remove_missing_returns_false(self):
        sl = SkipListStructure(seed=1)
        assert not sl.remove(42)

    def test_interleaved_operations(self):
        sl = SkipListStructure(seed=2)
        for k in range(0, 100, 2):
            sl.insert(k)
        for k in range(0, 100, 4):
            sl.remove(k)
        expected = sorted(set(range(0, 100, 2)) - set(range(0, 100, 4)))
        assert sl.to_list() == expected

    def test_bad_parameters(self):
        with pytest.raises(WorkloadError):
            SkipListStructure(p=1.5)
        with pytest.raises(WorkloadError):
            SkipListStructure(max_level=0)


class TestNBody:
    def test_forces_antisymmetric_pairwise(self):
        pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        mass = np.array([2.0, 3.0])
        f = nbody_forces(pos, mass)
        assert np.allclose(f[0], -f[1])
        assert f[0][0] > 0  # attraction toward the other body

    def test_leapfrog_is_time_reversible(self):
        rng = np.random.default_rng(8)
        pos = rng.uniform(-1, 1, size=(16, 3))
        vel = rng.uniform(-0.1, 0.1, size=(16, 3))
        mass = np.ones(16)
        p1, v1 = leapfrog_step(pos, vel, mass, dt=1e-3)
        p0, v0 = leapfrog_step(p1, -v1, mass, dt=1e-3)
        assert np.allclose(p0, pos, atol=1e-9)
        assert np.allclose(-v0, vel, atol=1e-9)

    def test_energy_definition(self):
        pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        vel = np.zeros((2, 3))
        mass = np.ones(2)
        e = nbody_energy(pos, vel, mass, softening=0.0)
        assert e == pytest.approx(-1.0)


class TestRayTracer:
    def test_ray_misses_everything(self):
        scene = Scene(spheres=[Sphere(np.array([0.0, 0.0, 5.0]), 1.0, 0.9)],
                      lights=[np.array([0.0, 5.0, 0.0])])
        intensity = trace_ray(scene, np.zeros(3), np.array([0.0, 1.0, 0.0]))
        assert intensity == 0.0

    def test_nearest_sphere_wins(self):
        near = Sphere(np.array([0.0, 0.0, 3.0]), 0.5, albedo=0.1)
        far = Sphere(np.array([0.0, 0.0, 10.0]), 0.5, albedo=0.9)
        scene = Scene(spheres=[near, far], lights=[np.array([0.0, 10.0, 3.0])])
        direction = np.array([0.0, 0.0, 1.0])
        intensity = trace_ray(scene, np.zeros(3), direction)
        # Shading reflects the near (dark) sphere, not the bright far one.
        assert intensity < 0.3

    def test_render_row_range(self):
        scene = Scene(spheres=[Sphere(np.array([0.0, 0.0, 5.0]), 1.0, 0.9)],
                      lights=[np.array([0.0, 5.0, 0.0])])
        full = render(scene, 33, 33)
        rows = render(scene, 33, 33, row_lo=10, row_hi=20)
        assert np.allclose(rows, full[10:20])

    def test_render_rejects_bad_rows(self):
        scene = Scene(spheres=[], lights=[])
        with pytest.raises(WorkloadError):
            render(scene, 10, 10, row_lo=5, row_hi=2)


class TestSeismic:
    def test_cfl_condition_enforced(self):
        with pytest.raises(WorkloadError):
            wave_step(np.zeros((5, 5)), np.zeros((5, 5)), courant=0.9)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(WorkloadError):
            wave_step(np.zeros((5, 5)), np.zeros((4, 4)))

    def test_frame_rows_matches_full_step(self):
        rng = np.random.default_rng(9)
        field = rng.uniform(-0.1, 0.1, size=(32, 24))
        field[0, :] = field[-1, :] = field[:, 0] = field[:, -1] = 0.0
        prev = np.zeros_like(field)
        full, _ = wave_step(field, prev)
        rows = frame_rows(field, prev, 8, 16)
        assert np.allclose(rows, full[8:16])

    def test_zero_field_stays_zero(self):
        field = np.zeros((10, 10))
        new, _ = wave_step(field, field.copy())
        assert np.allclose(new, 0.0)
