"""Executable micro-benchmark probes and category realization.

The eight probes must actually *land* in their intended taxonomy cell
when run on the simulated desktop: that is what makes the curve table
trustworthy.
"""

import pytest

from repro.core.categories import DeviceDuration
from repro.core.characterization import PowerCharacterizer
from repro.soc.device import compute_rates
from repro.soc.simulator import IntegratedProcessor
from repro.workloads.microbench import (
    ComputeProbe,
    MemoryProbe,
    standard_microbenches,
)


class TestExecutableProbes:
    def test_compute_probe_fills_output(self):
        probe = ComputeProbe(n_items=128, fma_per_item=4)
        probe.body(0, 128)
        assert (probe.out > 0).all()

    def test_memory_probe_counts_updates(self):
        probe = MemoryProbe(n_items=1000, table_size=64, seed=3)
        probe.body(0, 1000)
        assert probe.table.sum() == pytest.approx(1000.0)

    def test_probe_kernels_have_bodies(self):
        bench = standard_microbenches()[0]
        kernel = ComputeProbe(64).make_kernel(bench.cost)
        assert kernel.has_real_body


class TestCategoryRealization:
    @pytest.mark.parametrize("bench", standard_microbenches(),
                             ids=lambda b: b.category.short_code)
    def test_device_alone_durations_realize_category(self, desktop, bench):
        """Calibrate N to the bench's CPU target, then check each
        device's *alone* duration lands on the intended side of the
        100 ms threshold."""
        characterizer = PowerCharacterizer(
            processor_factory=lambda: IntegratedProcessor(desktop),
            microbenches=[bench])
        n = characterizer._calibrate_items(bench)
        rates = compute_rates(desktop, bench.cost,
                              desktop.cpu.turbo_freq_hz,
                              desktop.gpu.turbo_freq_hz,
                              desktop.cpu.num_cores, 1e9, True, True)
        cpu_alone = n / rates.cpu_items_per_s
        gpu_alone = n / rates.gpu_items_per_s
        threshold = 0.1
        if bench.category.cpu_duration is DeviceDuration.SHORT:
            assert cpu_alone < threshold
        else:
            assert cpu_alone > threshold
        if bench.category.gpu_duration is DeviceDuration.SHORT:
            assert gpu_alone < threshold
        else:
            assert gpu_alone > threshold
