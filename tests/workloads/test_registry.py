"""Registry, suites and Table-1 structural data."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.registry import (
    DESKTOP_SUITE,
    TABLET_SUITE,
    all_workloads,
    suite_workloads,
    workload_by_abbrev,
)


class TestRegistry:
    def test_twelve_workloads(self):
        assert len(all_workloads()) == 12

    def test_paper_table1_order(self):
        assert [w.abbrev for w in all_workloads()] == DESKTOP_SUITE

    def test_lookup_case_insensitive(self):
        assert workload_by_abbrev("bfs").abbrev == "BFS"

    def test_unknown_abbrev(self):
        with pytest.raises(WorkloadError):
            workload_by_abbrev("XYZ")


class TestSuites:
    def test_desktop_suite_is_full(self):
        assert len(suite_workloads(tablet=False)) == 12

    def test_tablet_suite_is_the_paper_seven(self):
        tablet = suite_workloads(tablet=True)
        assert [w.abbrev for w in tablet] == TABLET_SUITE
        assert len(tablet) == 7
        assert all(w.tablet_supported for w in tablet)

    def test_non_tablet_workloads_reject_tablet_inputs(self):
        for w in all_workloads():
            if not w.tablet_supported:
                with pytest.raises(WorkloadError):
                    w.cost_model(tablet=True)
                with pytest.raises(WorkloadError):
                    w.invocations(tablet=True)


class TestTable1Statistics:
    """The compile-time columns of the paper's Table 1."""

    EXPECTED_INVOCATIONS = {
        "BH": 1, "BFS": 1748, "CC": 2147, "FD": 132, "MB": 1, "SL": 1,
        "SP": 2577, "BS": 2000, "MM": 1, "NB": 101, "RT": 1, "SM": 100,
    }
    EXPECTED_IRREGULAR = {"BH", "BFS", "CC", "FD", "MB", "SL", "SP"}

    @pytest.mark.parametrize("abbrev,count",
                             sorted(EXPECTED_INVOCATIONS.items()))
    def test_invocation_counts_match_paper(self, abbrev, count):
        assert workload_by_abbrev(abbrev).num_invocations == count

    def test_regular_irregular_split(self):
        irregular = {w.abbrev for w in all_workloads() if not w.regular}
        assert irregular == self.EXPECTED_IRREGULAR

    def test_invocations_all_positive(self):
        for w in all_workloads():
            assert all(i.n_items > 0 for i in w.invocations())

    def test_table1_rows_render(self):
        for w in all_workloads():
            row = w.table1_row()
            assert row.abbrev == w.abbrev
            assert row.num_invocations == w.num_invocations
