"""Workloads' real kernels executed through the work-stealing pool.

These close the loop between the two halves of each workload: the real
Python body runs on host threads via the Chase-Lev runtime layer, and
the results are validated against direct computation.
"""

import numpy as np
import pytest
from scipy.stats import norm

from repro.runtime.workstealing import WorkStealingPool, coverage_is_complete
from repro.workloads.mandelbrot import render_escape_counts
from repro.workloads.nbody import nbody_forces
from repro.workloads.raytracer import render
from repro.workloads.registry import workload_by_abbrev
from repro.workloads.seismic import wave_step

EXECUTABLE = ("MB", "MM", "BS", "NB", "SM", "RT")


@pytest.fixture
def pool():
    return WorkStealingPool(num_workers=4, chunk=64)


@pytest.mark.parametrize("abbrev", EXECUTABLE)
def test_workload_provides_executable_kernel(abbrev):
    kernel = workload_by_abbrev(abbrev).make_executable_kernel()
    assert kernel is not None
    assert kernel.has_real_body


class TestRealExecution:
    def test_mandelbrot_matches_direct(self, pool):
        kernel = workload_by_abbrev("MB").make_executable_kernel()
        n = 256 * 192
        executed = pool.run(kernel.execute_cpu, 0, n)
        assert coverage_is_complete(executed, 0, n)
        image = kernel.output.reshape(192, 256)
        assert np.array_equal(image, render_escape_counts(256, 192, 96))

    def test_matmul_matches_numpy(self, pool):
        kernel = workload_by_abbrev("MM").make_executable_kernel()
        a, b = kernel.operands
        pool.run(kernel.execute_cpu, 0, a.shape[0])
        assert np.allclose(kernel.output, a @ b, atol=1e-9)

    def test_blackscholes_matches_scipy(self, pool):
        kernel = workload_by_abbrev("BS").make_executable_kernel()
        opts = kernel.options
        pool.run(kernel.execute_cpu, 0, len(opts.spot))
        sqrt_t = np.sqrt(opts.expiry)
        d1 = (np.log(opts.spot / opts.strike)
              + (opts.rate + 0.5 * opts.volatility ** 2) * opts.expiry) \
            / (opts.volatility * sqrt_t)
        d2 = d1 - opts.volatility * sqrt_t
        ref = (opts.spot * norm.cdf(d1)
               - opts.strike * np.exp(-opts.rate * opts.expiry)
               * norm.cdf(d2))
        assert np.allclose(kernel.calls, ref, atol=1e-9)

    def test_nbody_matches_direct(self, pool):
        kernel = workload_by_abbrev("NB").make_executable_kernel()
        n = len(kernel.masses)
        pool.run(kernel.execute_cpu, 0, n)
        reference = nbody_forces(kernel.positions, kernel.masses)
        assert np.allclose(kernel.forces, reference, atol=1e-9)

    def test_seismic_matches_full_step(self, pool):
        kernel = workload_by_abbrev("SM").make_executable_kernel()
        n = kernel.field.shape[0]
        pool.run(kernel.execute_cpu, 0, n)
        reference, _ = wave_step(kernel.field, kernel.previous)
        assert np.allclose(kernel.output, reference, atol=1e-12)

    def test_raytracer_matches_direct(self, pool):
        kernel = workload_by_abbrev("RT").make_executable_kernel()
        height, width = kernel.shape
        pool.run(kernel.execute_cpu, 0, height)
        reference = render(kernel.scene, width, height)
        assert np.allclose(kernel.image, reference, atol=1e-12)

    def test_chunked_and_monolithic_execution_agree(self):
        """Work distribution must not change results (determinism of
        the data-parallel decomposition)."""
        fine = workload_by_abbrev("NB").make_executable_kernel()
        coarse = workload_by_abbrev("NB").make_executable_kernel()
        WorkStealingPool(num_workers=4, chunk=7).run(
            fine.execute_cpu, 0, len(fine.masses))
        coarse.execute_cpu(0, len(coarse.masses))
        assert np.allclose(fine.forces, coarse.forces, atol=1e-12)
