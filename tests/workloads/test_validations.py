"""Every workload's real implementation validates against its reference.

These are the repro's algorithmic-correctness gates: BFS/CC/SSSP vs
networkx, Black-Scholes vs scipy, Barnes-Hut vs the exact O(N^2) sum,
matmul vs numpy, N-Body conservation laws, and structural invariants
for the rest.
"""

import pytest

from repro.workloads.registry import all_workloads

WORKLOADS = {w.abbrev: w for w in all_workloads()}


@pytest.mark.parametrize("abbrev", sorted(WORKLOADS))
def test_workload_validates(abbrev):
    WORKLOADS[abbrev].validate()
