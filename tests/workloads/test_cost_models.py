"""Workload cost models: classification expectations and scales.

These pin down the Table-1 runtime characterization: which workloads
the online classifier should see as memory- vs compute-bound, and the
structural properties (irregularity, GPU hostility) the evaluation
depends on.
"""

import pytest

from repro.core.classification import MEMORY_INTENSITY_THRESHOLD
from repro.workloads.microbench import standard_microbenches
from repro.workloads.registry import all_workloads, workload_by_abbrev

MEMORY_BOUND = {"BH", "BFS", "CC", "MB", "SL", "SP", "SM"}
COMPUTE_BOUND = {"FD", "BS", "MM", "NB", "RT"}


class TestBoundednessStatistic:
    @pytest.mark.parametrize("abbrev", sorted(MEMORY_BOUND))
    def test_memory_bound_exceed_threshold(self, abbrev):
        """Table 1 column 7 (M): miss/load-store ratio above 0.33."""
        cost = workload_by_abbrev(abbrev).cost_model()
        assert cost.miss_to_loadstore_ratio > MEMORY_INTENSITY_THRESHOLD

    @pytest.mark.parametrize("abbrev", sorted(COMPUTE_BOUND))
    def test_compute_bound_below_threshold(self, abbrev):
        cost = workload_by_abbrev(abbrev).cost_model()
        assert cost.miss_to_loadstore_ratio <= MEMORY_INTENSITY_THRESHOLD


class TestIrregularity:
    def test_irregular_workloads_have_cost_variance(self):
        for w in all_workloads():
            cost = w.cost_model()
            if w.regular:
                assert cost.item_cost_cv <= 0.2, w.abbrev
            else:
                assert cost.item_cost_cv > 0.2, w.abbrev

    def test_cc_is_the_most_irregular(self):
        """CC's profiling miss (the paper's one EAS failure) rests on
        its strong long-range irregularity."""
        cc = workload_by_abbrev("CC").cost_model()
        assert cc.item_cost_cv >= 1.0
        assert cc.cost_profile_scale >= 0.25


class TestDeviceBias:
    def test_fd_is_gpu_hostile(self):
        """The paper's CPU-biased workload: EAS should choose 100% CPU."""
        fd = workload_by_abbrev("FD").cost_model()
        assert fd.gpu_simd_efficiency < 0.05
        assert fd.gpu_divergence >= 0.5

    def test_nb_is_gpu_dominant(self):
        """Table 1: NB is CPU-Long / GPU-Short."""
        nb = workload_by_abbrev("NB").cost_model()
        assert nb.gpu_simd_efficiency / nb.cpu_simd_efficiency > 10


class TestTabletVariants:
    @pytest.mark.parametrize("abbrev", ["MM", "NB", "RT"])
    def test_tablet_inputs_are_smaller(self, abbrev):
        w = workload_by_abbrev(abbrev)
        desktop_items = w.total_items(tablet=False)
        tablet_items = w.total_items(tablet=True)
        assert tablet_items < desktop_items

    def test_mm_cost_scales_with_dimension(self):
        mm = workload_by_abbrev("MM")
        assert (mm.cost_model(tablet=False).instructions_per_item
                == 2 * mm.cost_model(tablet=True).instructions_per_item)


class TestMicrobenches:
    def test_memory_probes_exceed_threshold(self):
        for bench in standard_microbenches():
            ratio = bench.cost.miss_to_loadstore_ratio
            if bench.category.short_code.startswith("M"):
                assert ratio > MEMORY_INTENSITY_THRESHOLD
            else:
                assert ratio <= MEMORY_INTENSITY_THRESHOLD

    def test_short_probes_use_repetitions(self):
        for bench in standard_microbenches():
            code = bench.category.short_code
            if "S" in code.split("-")[1]:
                assert bench.repetitions > 1
            else:
                assert bench.repetitions == 1

    def test_cpu_target_durations(self):
        for bench in standard_microbenches():
            assert 0.0 < bench.cpu_target_s <= 2.0
