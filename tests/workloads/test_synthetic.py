"""Synthetic workload generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classification import MEMORY_INTENSITY_THRESHOLD
from repro.errors import WorkloadError
from repro.workloads.synthetic import generate_suite, generate_workload


class TestGeneration:
    def test_deterministic_per_seed(self):
        a = generate_workload(7)
        b = generate_workload(7)
        assert a.cost_model() == b.cost_model()
        assert a.total_items() == b.total_items()

    def test_distinct_across_seeds(self):
        assert generate_workload(1).cost_model() != \
            generate_workload(2).cost_model()

    def test_suite_size_and_names(self):
        suite = generate_suite(10, seed=3)
        assert len(suite) == 10
        assert len({w.abbrev for w in suite}) == 10

    def test_suite_rejects_empty(self):
        with pytest.raises(WorkloadError):
            generate_suite(0)

    @given(seed=st.integers(0, 300))
    @settings(max_examples=60, deadline=None)
    def test_generated_workloads_are_well_formed(self, seed):
        workload = generate_workload(seed)
        cost = workload.cost_model()
        # Cost model validity is enforced by KernelCostModel itself;
        # check the distributional contracts on top.
        assert 0.001 <= cost.gpu_simd_efficiency <= 1.0
        ratio = cost.miss_to_loadstore_ratio
        # Straddles the classification threshold cleanly.
        assert ratio <= 0.05 or ratio > MEMORY_INTENSITY_THRESHOLD
        assert workload.total_items() >= 1.0
        assert all(i.n_items >= 1.0 for i in workload.invocations())
        # Regular flag is consistent with the drawn irregularity.
        assert workload.regular == (cost.item_cost_cv <= 0.2)

    def test_covers_both_boundedness_classes(self):
        suite = generate_suite(30, seed=1)
        ratios = [w.cost_model().miss_to_loadstore_ratio for w in suite]
        assert any(r > MEMORY_INTENSITY_THRESHOLD for r in ratios)
        assert any(r <= 0.05 for r in ratios)

    def test_covers_single_and_multi_launch(self):
        suite = generate_suite(30, seed=2)
        launches = [w.num_invocations for w in suite]
        assert any(n == 1 for n in launches)
        assert any(n > 10 for n in launches)

    def test_validate_is_a_noop(self):
        generate_workload(5).validate()


class TestSchedulability:
    def test_eas_runs_on_synthetic_workload(self, desktop,
                                            desktop_characterization):
        from repro.core.metrics import EDP
        from repro.core.scheduler import EnergyAwareScheduler
        from repro.harness.experiment import run_application

        workload = generate_workload(11)
        scheduler = EnergyAwareScheduler(desktop_characterization, EDP)
        run = run_application(desktop, workload, scheduler, "EAS")
        total = sum(r.cpu_items + r.gpu_items for r in run.invocations)
        assert total == pytest.approx(workload.total_items(), rel=1e-6)
