"""Shared fixtures for the test suite.

Expensive artifacts (platform characterizations) are session-scoped;
cost models and specs are cheap and function-scoped.
"""

import pytest

from repro.core.characterization import PlatformCharacterization
from repro.harness.suite import get_characterization
from repro.soc.cost_model import KernelCostModel
from repro.soc.simulator import IntegratedProcessor
from repro.soc.spec import PlatformSpec, baytrail_tablet, haswell_desktop


@pytest.fixture
def desktop() -> PlatformSpec:
    return haswell_desktop()


@pytest.fixture
def tablet() -> PlatformSpec:
    return baytrail_tablet()


@pytest.fixture
def desktop_processor(desktop: PlatformSpec) -> IntegratedProcessor:
    return IntegratedProcessor(desktop)


@pytest.fixture
def traced_desktop_processor(desktop: PlatformSpec) -> IntegratedProcessor:
    return IntegratedProcessor(desktop, trace_enabled=True)


@pytest.fixture(scope="session")
def desktop_characterization() -> PlatformCharacterization:
    """One-time desktop power characterization (the paper's offline
    step), shared across the whole test session."""
    return get_characterization(haswell_desktop())


@pytest.fixture(scope="session")
def tablet_characterization() -> PlatformCharacterization:
    return get_characterization(baytrail_tablet())


@pytest.fixture
def compute_cost() -> KernelCostModel:
    """A regular, compute-bound kernel."""
    return KernelCostModel(
        name="test-compute",
        instructions_per_item=1000.0,
        loadstore_fraction=0.2,
        l3_miss_rate=0.0,
    )


@pytest.fixture
def memory_cost() -> KernelCostModel:
    """A regular, memory-bound kernel (miss ratio above 0.33)."""
    return KernelCostModel(
        name="test-memory",
        instructions_per_item=300.0,
        loadstore_fraction=0.4,
        l3_miss_rate=0.5,
    )


@pytest.fixture
def irregular_cost() -> KernelCostModel:
    """An irregular kernel with long-range cost structure."""
    return KernelCostModel(
        name="test-irregular",
        instructions_per_item=500.0,
        loadstore_fraction=0.3,
        l3_miss_rate=0.4,
        item_cost_cv=0.9,
        cost_profile_scale=0.2,
        rng_tag=42,
    )
