"""Calibration diagnostic: per-workload alpha landscape and EAS behaviour.

Usage: python tools/diagnose.py [desktop|tablet] [ABBREV ...]
"""

import sys
import time

from repro.core.metrics import EDP, ENERGY
from repro.core.scheduler import EnergyAwareScheduler
from repro.harness import get_characterization, run_application, sweep_alphas
from repro.soc import baytrail_tablet, haswell_desktop
from repro.workloads.registry import suite_workloads, workload_by_abbrev


def main() -> None:
    args = sys.argv[1:]
    tablet = bool(args) and args[0] == "tablet"
    if args and args[0] in ("desktop", "tablet"):
        args = args[1:]
    spec = baytrail_tablet() if tablet else haswell_desktop()
    char = get_characterization(spec)
    workloads = ([workload_by_abbrev(a) for a in args] if args
                 else suite_workloads(tablet=tablet))

    for w in workloads:
        t0 = time.time()
        sweep = sweep_alphas(spec, w, tablet=tablet)
        line = [f"{w.abbrev:4s}"]
        for metric in (EDP, ENERGY):
            eas = EnergyAwareScheduler(char, metric)
            run = run_application(spec, w, eas, "EAS", tablet=tablet)
            oracle = sweep.oracle(metric)
            eff = 100 * oracle.metric_value(metric) / run.metric_value(metric)
            d = next((d for d in eas.decisions if not d.from_table), None)
            cat = d.category_code if d else "?"
            line.append(
                f"{metric.name}: orc_a={sweep.oracle_alpha(metric):.1f} "
                f"eas_a={run.final_alpha:.2f} ({cat}) eff={eff:5.1f}%")
        line.append(f"perf_a={sweep.perf_alpha():.1f}")
        gpu_eff = {m.name: 100 * sweep.oracle(m).metric_value(m)
                   / sweep.run_at(1.0).metric_value(m) for m in (EDP, ENERGY)}
        perf_eff = {m.name: 100 * sweep.oracle(m).metric_value(m)
                    / sweep.perf().metric_value(m) for m in (EDP, ENERGY)}
        line.append(f"gpu_eff={gpu_eff['edp']:.0f}/{gpu_eff['energy']:.0f}")
        line.append(f"perf_eff={perf_eff['edp']:.0f}/{perf_eff['energy']:.0f}")
        line.append(f"[{time.time() - t0:.0f}s]")
        print("  ".join(line), flush=True)


if __name__ == "__main__":
    main()
