"""Regenerate every experiment and write EXPERIMENTS.md.

Usage: python tools/record_experiments.py

Runs the full harness (several minutes) and records the paper-vs-
measured comparison for every table and figure.
"""

import io
import re
import time

from repro.harness import figures


def efficiency_block(result, paper_rows):
    buf = io.StringIO()
    strategies = ["CPU", "GPU", "PERF", "EAS"]
    buf.write("| Workload | " + " | ".join(strategies) + " |\n")
    buf.write("|---|" + "---|" * len(strategies) + "\n")
    for workload in result.evaluation.workloads():
        cells = " | ".join(f"{result.efficiency(workload, s):.1f}"
                           for s in strategies)
        buf.write(f"| {workload} | {cells} |\n")
    cells = " | ".join(f"**{result.average(s):.1f}**" for s in strategies)
    buf.write(f"| **AVERAGE** | {cells} |\n")
    buf.write(f"\n*Paper averages: {paper_rows}.*\n")
    return buf.getvalue()


def main() -> None:
    out = io.StringIO()
    out.write(HEADER)
    started = time.time()

    # --- Figure 1 -----------------------------------------------------------
    fig1 = figures.regenerate_figure_1()
    out.write(f"""
## Figure 1 - CC energy/performance vs GPU offload (desktop)

| Quantity | Paper | Measured |
|---|---|---|
| minimum-energy offload ratio | 0.9 | {fig1.min_energy_alpha:.1f} |
| best-performance offload ratio | 0.6 | {fig1.best_perf_alpha:.1f} |

Shape holds: both optima are interior-to-GPU-heavy, the energy optimum
sits at or above the performance optimum, and single-device endpoints
lose on both axes.
""")

    # --- Figures 2-4 ---------------------------------------------------------
    fig2 = figures.regenerate_figure_2()
    out.write("\n## Figure 2 - power timeline, memory-bound 90/10 split\n\n")
    for note in fig2.notes:
        out.write(f"* {note}\n")
    out.write("\nPaper: power drops in the CPU-only tail on Bay Trail, "
              "rises on Haswell. Both directions reproduce.\n")

    fig3 = figures.regenerate_figure_3()
    out.write("\n## Figure 3 - co-execution power, compute vs memory "
              "bound (desktop)\n\n")
    for note in fig3.notes:
        out.write(f"* {note}\n")
    out.write("\nPaper: ~55 W compute-bound vs ~63 W memory-bound.\n")

    fig4 = figures.regenerate_figure_4()
    out.write("\n## Figure 4 - ten short GPU bursts (desktop, "
              "memory-bound, alpha=0.05)\n\n")
    for note in fig4.notes:
        out.write(f"* {note}\n")
    out.write("\nPaper: steady ~60 W, dipping below ~40 W during each "
              "burst. Reproduced, including the burst count.\n")

    # --- Figures 5-6 ---------------------------------------------------------
    for fig, name, expect in (
            (figures.regenerate_figure_5(), "Figure 5 - desktop "
             "characterization",
             "CPU-alone compute ~45 W, GPU-alone ~30 W, memory curves "
             "above compute, sixth-order fits"),
            (figures.regenerate_figure_6(), "Figure 6 - tablet "
             "characterization",
             "CPU ~1.5 W / GPU ~2 W compute; CPU ~0.7 W / GPU ~1.3 W "
             "memory; mostly concave curves")):
        out.write(f"\n## {name}\n\nPaper shape: {expect}.\n\n")
        out.write("| Category | P(0) W | P(0.5) W | P(1) W | fit RMS W |\n")
        out.write("|---|---|---|---|---|\n")
        from repro.core.categories import all_categories
        for category in all_categories():
            curve = fig.characterization.curve_for(category)
            out.write(f"| {category.short_code} | {curve.power(0):.2f} | "
                      f"{curve.power(0.5):.2f} | {curve.power(1):.2f} | "
                      f"{curve.fit_residual_rms():.3f} |\n")

    # --- Table 1 --------------------------------------------------------------
    table1 = figures.regenerate_table_1()
    out.write("""
## Table 1 - benchmark statistics

Compile-time columns (inputs, invocation counts, regular/irregular)
match the paper exactly by construction; the C/M and S/L columns below
are *measured* by the online classifier on the simulated desktop.

| Abbrv | Invocations | R/IR | C/M | CPU S/L | GPU S/L |
|---|---|---|---|---|---|
""")
    paper_sl = {"BH": ("L", "L"), "BFS": ("S", "S"), "CC": ("S", "S"),
                "FD": ("S", "S"), "MB": ("L", "L"), "SL": ("L", "L"),
                "SP": ("S", "S"), "BS": ("S", "S"), "MM": ("L", "L"),
                "NB": ("L", "S"), "RT": ("L", "L"), "SM": ("S", "S")}
    mismatches = []
    for row in table1.rows:
        _, abbrev, _, _, inv, reg, bound, cpu_sl, gpu_sl = row
        flag = ""
        if (cpu_sl, gpu_sl) != paper_sl[abbrev]:
            flag = " (paper: " + "/".join(paper_sl[abbrev]) + ")"
            mismatches.append(abbrev)
        out.write(f"| {abbrev} | {inv} | {reg} | {bound} | {cpu_sl} | "
                  f"{gpu_sl}{flag} |\n")
    out.write(f"\nBoundedness (C/M) matches the paper on 12/12 workloads; "
              f"short/long matches on {12 - len(mismatches)}/12"
              + (f" (borderline: {', '.join(mismatches)})" if mismatches
                 else "") + ".\n")

    # --- Figures 9-12 -----------------------------------------------------------
    for regen, name, paper in (
            (figures.regenerate_figure_9,
             "Figure 9 - desktop EDP efficiency vs Oracle",
             "GPU 79.6, PERF 83.9, EAS 96.2"),
            (figures.regenerate_figure_10,
             "Figure 10 - desktop energy efficiency vs Oracle",
             "GPU 95.8, PERF 70.4, EAS 97.2"),
            (figures.regenerate_figure_11,
             "Figure 11 - tablet EDP efficiency vs Oracle",
             "EAS 93.2 (+4.4 over PERF, +19.6 over GPU, +85.9 over CPU)"),
            (figures.regenerate_figure_12,
             "Figure 12 - tablet energy efficiency vs Oracle",
             "EAS 96.4 (+7.5 over PERF, +10.1 over GPU, +57.2 over CPU)")):
        result = regen()
        out.write(f"\n## {name}\n\nPaper averages: {paper}.\n\n")
        out.write(efficiency_block(result, paper))

    out.write(FOOTER.format(minutes=(time.time() - started) / 60.0))
    with open("EXPERIMENTS.md", "w") as fh:
        fh.write(out.getvalue())
    print(f"EXPERIMENTS.md written ({(time.time() - started) / 60.0:.1f} "
          f"minutes of regeneration)")


HEADER = """# EXPERIMENTS - paper vs. measured

Every table and figure of *A Black-Box Approach to Energy-Aware
Scheduling on Integrated CPU-GPU Systems* (CGO 2016), regenerated on
the simulated platforms.  Absolute numbers come from our calibrated
simulator, not the authors' silicon; the reproduction targets are
shape-level (orderings, approximate factors, crossovers) per DESIGN.md.

Regenerate this file with `python tools/record_experiments.py`, or any
single experiment with `python -m repro.harness --figure N`.
"""

FOOTER = """
## Known deviations

1. **Short-category characterization curves are flatter mid-sweep than
   the paper's Fig. 5.** We measure short probes over repeated
   back-to-back launches (their steady state in real applications);
   the paper's single cold runs bake the PCU's one-off activation
   transient into the curve, which produces their sharper convex dip.
2. **PERF is the online adaptive scheduler of the paper's reference
   [12]** (profile, then split at alpha_PERF), not an exhaustive
   best-measured-time search; the harness also reports the exhaustive
   split as `BEST-TIME`.  With the exhaustive reading, PERF lands
   within a few percent of the Oracle on our simulator and the paper's
   PERF-vs-EAS gaps do not reproduce; with the online reading they do.
3. **Table 1 short/long borderline cases.**  Workloads whose
   device-alone time sits near the 100 ms threshold can classify L
   where the paper lists S (the classifier sees throttled-CPU
   throughput during profiling).  Boundedness always matches.
4. **BFS EDP efficiency is our weakest per-workload point** (~70-75%
   vs the paper's ~90+): the profiled alpha mixes decisions made at
   very different frontier sizes.  The paper's corresponding outlier
   is CC (their EAS picked 1.0 vs Oracle 0.9); ours shows the same
   over-offloading mechanism on irregular graph workloads.

Regeneration wall time: {minutes:.1f} minutes.
"""


if __name__ == "__main__":
    main()
