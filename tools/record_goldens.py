"""Record exact-mode golden fingerprints into tests/goldens/.

The golden file pins the byte-stable reference semantics of the
simulator: sha256 fingerprints of EAS suite runs, alpha sweeps, a chaos
campaign, a small fleet dispatch, and multiprogram co-runs, all under
``tick_mode="exact"``.  ``tests/soc/test_golden_regression.py`` fails
with a readable diff when any entry drifts; the fast/bounded clock
modes are held to these same references by the differential sweep.

Usage::

    PYTHONPATH=src python tools/record_goldens.py [--entry NAME ...]

Re-recording is a deliberate act: only run this when an *intentional*
simulation-semantics change has been reviewed, and say so in the
commit message.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.harness.diff import (  # noqa: E402
    collect_exact_fingerprints,
    exact_fingerprint_entries,
)

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "..", "tests",
                           "goldens", "exact_mode.json")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--entry", action="append", default=None,
                        help="record only the named entries "
                             "(default: every known entry)")
    parser.add_argument("--output", default=GOLDEN_PATH)
    args = parser.parse_args(argv)

    entries = args.entry or exact_fingerprint_entries()
    existing = {}
    if os.path.exists(args.output):
        with open(args.output) as fh:
            existing = json.load(fh).get("fingerprints", {})

    fingerprints = dict(existing)
    for entry in entries:
        started = time.perf_counter()
        fingerprints[entry] = collect_exact_fingerprints([entry])[entry]
        status = ""
        if entry in existing and existing[entry] != fingerprints[entry]:
            status = "  (CHANGED)"
        print(f"{entry}: {fingerprints[entry][:16]}... "
              f"[{time.perf_counter() - started:.1f}s]{status}")

    payload = {
        "comment": ("Exact-mode golden fingerprints. Regenerate with "
                    "tools/record_goldens.py only for reviewed, "
                    "intentional simulation-semantics changes."),
        "fingerprints": dict(sorted(fingerprints.items())),
    }
    os.makedirs(os.path.dirname(args.output), exist_ok=True)
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {len(fingerprints)} fingerprints to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
