"""The unified command-line front door: ``python -m repro``.

One entry point, subcommand-per-surface::

    python -m repro figure 9              # tables & figures (harness)
    python -m repro figure fleet
    python -m repro list
    python -m repro all --jobs 4
    python -m repro run CC --strategies cpu,eas
    python -m repro tenants 'BS,CC:5' --arbiter priority
    python -m repro fleet --nodes 1000 --policy all --tick-mode fast
    python -m repro serve --cache-dir ~/.cache/repro
    python -m repro submit --workload MB --follow
    python -m repro status; python -m repro cancel ID; python -m repro drain

Every subcommand delegates to the surface that owns it - the
figure/run/tenants family to :mod:`repro.harness.cli`, the fleet
dispatcher to :mod:`repro.fleet.cli`, the scheduler service to
:mod:`repro.service.cli` - so each keeps its full flag set
(``python -m repro SUBCOMMAND --help``).  The old module entry points
(``python -m repro.harness``, ``python -m repro.service``) still work
but are deprecated aliases of this command.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional

from repro.errors import ReproError, closest_names

#: subcommand -> one-line help.  Handlers import lazily so
#: ``python -m repro list`` does not pay service/fleet import cost and
#: vice versa.
_SUBCOMMANDS: Dict[str, str] = {
    "figure": "regenerate a table/figure by id (see 'list')",
    "experiment": "alias of 'figure'",
    "list": "list available experiment ids",
    "all": "regenerate every table and figure",
    "run": "run one workload under selected strategies",
    "tenants": "run a multiprogram co-scheduling experiment",
    "fleet": "dispatch an arrival trace across a simulated fleet",
    "serve": "run the durable scheduler service daemon",
    "submit": "submit a job to the scheduler service",
    "status": "show scheduler-service job status",
    "cancel": "cancel a queued scheduler-service job",
    "drain": "stop the scheduler service daemon cleanly",
}

#: Subcommands that translate to a ``python -m repro.harness`` flag
#: taking a value (``repro figure 9`` -> ``--figure 9``).
_HARNESS_VALUE_COMMANDS = ("figure", "experiment", "run", "tenants")
#: Subcommands that translate to a bare harness flag.
_HARNESS_FLAG_COMMANDS = ("list", "all")
_SERVICE_COMMANDS = ("serve", "submit", "status", "cancel", "drain")


def _usage() -> str:
    lines = ["usage: python -m repro SUBCOMMAND [options]", "",
             "subcommands:"]
    width = max(len(name) for name in _SUBCOMMANDS)
    lines.extend(f"  {name:<{width}}  {help_text}"
                 for name, help_text in _SUBCOMMANDS.items())
    lines.append("")
    lines.append("run 'python -m repro SUBCOMMAND --help' for "
                 "subcommand options")
    return "\n".join(lines)


def _dispatch(command: str, rest: List[str]) -> int:
    if command in _HARNESS_VALUE_COMMANDS:
        from repro.harness.cli import main as harness_main

        if not rest or rest[0].startswith("-"):
            print(f"error: 'repro {command}' needs a value "
                  f"(e.g. python -m repro {command} "
                  f"{'9' if command in ('figure', 'experiment') else 'CC'})",
                  file=sys.stderr)
            return 2
        return harness_main([f"--{command}", rest[0], *rest[1:]])
    if command in _HARNESS_FLAG_COMMANDS:
        from repro.harness.cli import main as harness_main

        return harness_main([f"--{command}", *rest])
    if command == "fleet":
        from repro.fleet.cli import main as fleet_main

        return fleet_main(rest)
    if command in _SERVICE_COMMANDS:
        from repro.service.cli import main as service_main

        return service_main([command, *rest])
    raise AssertionError(f"unrouted subcommand {command!r}")


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args or args[0] in ("-h", "--help", "help"):
        print(_usage())
        return 0
    command, rest = args[0], args[1:]
    if command not in _SUBCOMMANDS:
        suggestions = closest_names(command, list(_SUBCOMMANDS))
        hint = (f" (did you mean: {', '.join(suggestions)}?)"
                if suggestions else "")
        print(f"error: unknown subcommand {command!r}{hint}\n",
              file=sys.stderr)
        print(_usage(), file=sys.stderr)
        return 2
    try:
        return _dispatch(command, rest)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
