"""ASCII rendering of tables and series for the experiment harness.

The paper's figures are bar charts and power timelines; a terminal
harness prints the same rows/series as aligned tables plus coarse
inline bars, so "who wins, by roughly what factor" is visible at a
glance.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.errors import HarnessError


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 float_digits: int = 3) -> str:
    """Align columns; floats rendered with ``float_digits`` decimals."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, bool):
                rendered.append("yes" if cell else "no")
            elif isinstance(cell, float):
                rendered.append(f"{cell:.{float_digits}f}")
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise HarnessError("row width disagrees with header")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_bar(value: float, maximum: float, width: int = 40,
               fill: str = "#") -> str:
    """A one-line horizontal bar scaled to ``maximum``."""
    if maximum <= 0:
        raise HarnessError("bar maximum must be positive")
    n = int(round(width * min(value, maximum) / maximum))
    return fill * n


def format_bar_chart(labels: Sequence[str], values: Sequence[float],
                     unit: str = "", width: int = 40,
                     maximum: Optional[float] = None) -> str:
    """Labelled horizontal bars (one per row)."""
    if len(labels) != len(values):
        raise HarnessError("labels/values length mismatch")
    if not values:
        return "(empty)"
    peak = maximum if maximum is not None else max(values)
    label_w = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = format_bar(value, peak, width=width)
        lines.append(f"{label.ljust(label_w)}  {bar} {value:.1f}{unit}")
    return "\n".join(lines)


def format_series(times_s: Sequence[float], watts: Sequence[float],
                  max_points: int = 24) -> str:
    """A compact textual power timeline (subsampled)."""
    if len(times_s) != len(watts):
        raise HarnessError("series length mismatch")
    if not times_s:
        return "(empty series)"
    step = max(1, len(times_s) // max_points)
    lines = []
    peak = max(watts)
    for i in range(0, len(times_s), step):
        bar = format_bar(watts[i], peak, width=30, fill="=")
        lines.append(f"t={times_s[i] * 1000:9.1f} ms  {watts[i]:7.2f} W  {bar}")
    return "\n".join(lines)


def heading(text: str) -> str:
    rule = "=" * len(text)
    return f"{text}\n{rule}"
