"""``python -m repro.harness`` dispatches to the CLI."""

import sys

from repro.harness.cli import main

sys.exit(main())
