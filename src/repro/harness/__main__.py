"""Deprecated alias: ``python -m repro.harness`` -> ``python -m repro``.

The flag surface is unchanged (``--figure``, ``--run``, ``--tenants``,
...); only the entry point moved.  ``python -m repro figure 9`` is the
supported spelling.
"""

import sys

from repro._compat import warn_once
from repro.harness.cli import main

# stacklevel=2 attributes the warning to this module (running as
# __main__), where the default warning filters actually display it.
warn_once("harness.__main__",
          "'python -m repro.harness' is deprecated; use 'python -m repro' "
          "subcommands instead (e.g. 'python -m repro figure 9')",
          stacklevel=2)
sys.exit(main())
