"""Regenerators for every table and figure in the paper's evaluation.

Each ``regenerate_*`` function runs the corresponding experiment on the
simulated platforms and returns a result object carrying both the raw
data (for tests and benchmarks) and a ``render()`` method that prints
the same rows/series the paper reports.

Index (see DESIGN.md for the full mapping):

* Fig. 1  - CC energy/performance vs GPU offload ratio (desktop)
* Fig. 2  - package power timeline, memory-bound 90/10, both platforms
* Fig. 3  - compute- vs memory-bound co-execution power (desktop)
* Fig. 4  - ten short GPU bursts dropping desktop package power
* Fig. 5  - desktop power characterization (8 categories + polynomials)
* Fig. 6  - tablet power characterization
* Table 1 - workload statistics and classification
* Fig. 9  - desktop EDP efficiency vs Oracle
* Fig. 10 - desktop energy efficiency vs Oracle
* Fig. 11 - tablet EDP efficiency vs Oracle
* Fig. 12 - tablet energy efficiency vs Oracle
* chaos   - robustness chaos campaign: EAS under swept fault injection
  (not a paper figure; see docs/ROBUSTNESS.md)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.categories import WorkloadCategory, all_categories
from repro.core.characterization import PlatformCharacterization
from repro.core.classification import ClassificationInputs, OnlineClassifier
from repro.core.metrics import EDP, ENERGY, EnergyMetric
from repro.errors import UnknownNameError, closest_names
from repro.harness.chaos import regenerate_chaos
from repro.harness.crashchaos import regenerate_crash_chaos
from repro.harness.report import format_bar_chart, format_series, format_table, heading
from repro.harness.suite import (
    AlphaSweep,
    SuiteEvaluation,
    evaluate_suite,
    get_characterization,
    sweep_alphas,
)
from repro.runtime.runtime import ConcordRuntime
from repro.soc.simulator import IntegratedProcessor, PhaseRequest
from repro.soc.spec import PlatformSpec, baytrail_tablet, haswell_desktop
from repro.soc.trace import PowerTrace
from repro.soc.work import CostProfile, WorkRegion, split_for_offload
from repro.workloads.base import Workload
from repro.workloads.microbench import microbench_for
from repro.workloads.registry import suite_workloads, workload_by_abbrev

#: Sweeps are metric-independent and expensive; cache per process.
#: Keyed by (platform name, tick mode, workload) - the clock mode is
#: part of the simulation identity, so exact/fast runs never alias.
_sweep_cache: Dict[Tuple[str, str, str], AlphaSweep] = {}


def _cached_sweep(spec: PlatformSpec, workload: Workload,
                  tablet: bool) -> AlphaSweep:
    key = (spec.name, spec.tick_mode, workload.abbrev)
    sweep = _sweep_cache.get(key)
    if sweep is None:
        sweep = sweep_alphas(spec, workload, tablet=tablet)
        _sweep_cache[key] = sweep
    return sweep


def clear_caches() -> None:
    """Drop cached sweeps (used by ablation benchmarks)."""
    _sweep_cache.clear()


# ---------------------------------------------------------------------------
# Figure 1
# ---------------------------------------------------------------------------

@dataclass
class Figure1Result:
    """CC on the desktop: energy and runtime vs GPU offload percent."""

    alphas: List[float]
    times_s: List[float]
    energies_j: List[float]

    @property
    def min_energy_alpha(self) -> float:
        return self.alphas[int(np.argmin(self.energies_j))]

    @property
    def best_perf_alpha(self) -> float:
        return self.alphas[int(np.argmin(self.times_s))]

    def render(self) -> str:
        rows = [(f"{a * 100:.0f}%", t, e, e * t)
                for a, t, e in zip(self.alphas, self.times_s, self.energies_j)]
        table = format_table(
            ["GPU offload", "time (s)", "energy (J)", "EDP (J*s)"], rows)
        return "\n".join([
            heading("Figure 1: Connected Components on the desktop"),
            table,
            "",
            f"minimum energy at {self.min_energy_alpha * 100:.0f}% GPU offload "
            f"(paper: 90%)",
            f"best performance at {self.best_perf_alpha * 100:.0f}% GPU offload "
            f"(paper: 60%)",
        ])


def regenerate_figure_1(tick_mode: Optional[str] = None) -> Figure1Result:
    spec = haswell_desktop(tick_mode=tick_mode)
    workload = workload_by_abbrev("CC")
    sweep = _cached_sweep(spec, workload, tablet=False)
    return Figure1Result(
        alphas=list(sweep.alphas),
        times_s=[r.time_s for r in sweep.runs],
        energies_j=[r.energy_j for r in sweep.runs])


# ---------------------------------------------------------------------------
# Figures 2-4: power timelines
# ---------------------------------------------------------------------------

def _run_microbench_partitioned(spec: PlatformSpec, category_code: str,
                                alpha: float, n_items: float,
                                repetitions: int = 1,
                                gap_s: float = 0.05) -> PowerTrace:
    """Run a characterization micro-benchmark at a fixed split with
    tracing on; repetitions are separated by idle gaps (Fig. 4)."""
    from repro.core.categories import category_from_codes

    bench = microbench_for(category_from_codes(category_code))
    processor = IntegratedProcessor(spec, trace_enabled=True)
    profile = CostProfile(bench.cost)
    for _ in range(repetitions):
        if alpha <= 0.0:
            request = PhaseRequest(
                cost=bench.cost,
                cpu_region=WorkRegion.for_span(profile, n_items, 0.0, n_items),
                gpu_region=None)
        elif alpha >= 1.0:
            request = PhaseRequest(
                cost=bench.cost, cpu_region=None,
                gpu_region=WorkRegion.for_span(profile, n_items, 0.0, n_items))
        else:
            gpu_region, cpu_region = split_for_offload(
                profile, n_items, 0.0, n_items, alpha)
            request = PhaseRequest(cost=bench.cost, cpu_region=cpu_region,
                                   gpu_region=gpu_region)
        processor.run_phase(request)
        if repetitions > 1:
            processor.idle(gap_s)
    return processor.trace


def _items_for_duration(spec: PlatformSpec, category_code: str,
                        cpu_seconds: float) -> float:
    """Iteration count that keeps a micro-benchmark's CPU-alone run at
    roughly ``cpu_seconds`` on this platform."""
    from repro.core.categories import category_from_codes
    from repro.core.characterization import PowerCharacterizer

    bench = microbench_for(category_from_codes(category_code))
    characterizer = PowerCharacterizer(
        processor_factory=lambda: IntegratedProcessor(spec),
        microbenches=[bench])
    probe = characterizer._measure(bench.cost, 50_000.0, 0.0)
    return max(50_000.0 * cpu_seconds / probe.time_s, 1000.0)


@dataclass
class TimelineResult:
    """A labelled set of power timelines."""

    title: str
    series: Dict[str, Tuple[np.ndarray, np.ndarray]]
    notes: List[str] = field(default_factory=list)

    def fingerprint(self) -> str:
        """SHA-256 over the resampled series bytes and the notes."""
        import hashlib

        digest = hashlib.sha256(self.title.encode())
        for label in sorted(self.series):
            times, watts = self.series[label]
            digest.update(label.encode())
            digest.update(np.asarray(times, dtype=np.float64).tobytes())
            digest.update(np.asarray(watts, dtype=np.float64).tobytes())
        for note in self.notes:
            digest.update(note.encode())
        return digest.hexdigest()

    def render(self) -> str:
        parts = [heading(self.title)]
        for label, (times, watts) in self.series.items():
            parts.append(f"\n--- {label} ---")
            parts.append(format_series(list(times), list(watts)))
        if self.notes:
            parts.append("")
            parts.extend(self.notes)
        return "\n".join(parts)


def regenerate_figure_2(tick_mode: Optional[str] = None) -> TimelineResult:
    """Memory-bound workload, 90% GPU / 10% CPU, on both platforms."""
    from repro.harness.engine import (
        KIND_MICROBENCH_TIMELINE,
        RunSpec,
        get_default_engine,
    )

    series: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    notes: List[str] = []
    # The paper's Fig. 2 application is memory-bound with a GPU that
    # finishes its 90% share long before the CPU finishes 10% - the
    # GPU-biased memory cell (M-LS) of the taxonomy.  The two platform
    # timelines are independent simulations: one engine batch.
    platforms = ((baytrail_tablet(tick_mode=tick_mode), "Bay Trail tablet"),
                 (haswell_desktop(tick_mode=tick_mode), "Haswell desktop"))
    results = get_default_engine().run_batch([
        RunSpec(platform=spec, kind=KIND_MICROBENCH_TIMELINE,
                workload="M-LS",
                params=(("alpha", 0.9), ("cpu_seconds", 2.0)))
        for spec, _ in platforms])
    for (spec, label), result in zip(platforms, results):
        trace = result.payload
        interval = trace.duration / 60.0
        series[label] = trace.resample(interval)
        co = trace.average_power_while(True)
        tail = trace.average_power_while(False)
        direction = "drops" if tail < co else "rises"
        notes.append(
            f"{label}: co-execution {co:.2f} W, CPU-only tail {tail:.2f} W "
            f"-> package power {direction} when only the CPU is active "
            f"(paper: drops on Bay Trail, rises on Haswell)")
    return TimelineResult(
        title="Figure 2: package power, memory-bound 90/10 GPU-CPU split",
        series=series, notes=notes)


def regenerate_figure_3(tick_mode: Optional[str] = None) -> TimelineResult:
    """Long compute- vs memory-bound co-execution on the desktop."""
    spec = haswell_desktop(tick_mode=tick_mode)
    series: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    notes: List[str] = []
    averages: Dict[str, float] = {}
    for code, label in (("C-LL", "compute-bound"), ("M-LL", "memory-bound")):
        n = _items_for_duration(spec, code, 2.5)
        trace = _run_microbench_partitioned(spec, code, alpha=0.5, n_items=n)
        interval = trace.duration / 60.0
        series[label] = trace.resample(interval)
        averages[label] = trace.average_power_while(True)
        notes.append(f"{label}: average co-execution package power "
                     f"{averages[label]:.1f} W")
    notes.append(
        f"memory-bound exceeds compute-bound by "
        f"{averages['memory-bound'] - averages['compute-bound']:.1f} W "
        f"(paper: ~63 W vs ~55 W)")
    return TimelineResult(
        title="Figure 3: desktop co-execution power, compute vs memory bound",
        series=series, notes=notes)


def regenerate_figure_4(tick_mode: Optional[str] = None) -> TimelineResult:
    """Ten short GPU bursts on a memory-bound workload (desktop)."""
    spec = haswell_desktop(tick_mode=tick_mode)
    n = _items_for_duration(spec, "M-LL", 0.45)
    trace = _run_microbench_partitioned(spec, "M-LL", alpha=0.05, n_items=n,
                                        repetitions=10, gap_s=0.5)
    interval = trace.duration / 120.0
    # Steady CPU-phase power: GPU idle, CPU actually executing (the
    # idle gaps between the ten executions are excluded).
    cpu_phase = [s for s in trace.samples if not s.gpu_active and s.cpu_w > 5.0]
    steady = (sum(s.package_w * s.dt for s in cpu_phase)
              / sum(s.dt for s in cpu_phase))
    dip = trace.min_power_while_gpu_active()
    notes = [
        f"steady CPU-phase package power: {steady:.1f} W (paper: ~60 W)",
        f"minimum package power during GPU bursts: {dip:.1f} W "
        f"(paper: < ~40 W)",
        f"number of GPU-active intervals: {len(trace.gpu_active_intervals())}",
    ]
    return TimelineResult(
        title="Figure 4: desktop package power, 10 short GPU bursts "
              "(memory-bound, alpha=0.05)",
        series={"desktop": trace.resample(interval)}, notes=notes)


# ---------------------------------------------------------------------------
# Figures 5-6: characterization curves
# ---------------------------------------------------------------------------

@dataclass
class CharacterizationFigure:
    """Eight power curves with their fitted polynomial equations."""

    platform: str
    characterization: PlatformCharacterization

    def curve_samples(self, code: str) -> Tuple[List[float], List[float]]:
        from repro.core.categories import category_from_codes

        curve = self.characterization.curve_for(category_from_codes(code))
        return list(curve.sample_alphas), list(curve.sample_powers)

    def render(self) -> str:
        parts = [heading(f"Power characterization: {self.platform} "
                         f"(8 categories, 6th-order fits)")]
        for category in all_categories():
            curve = self.characterization.curve_for(category)
            grid = [curve.power(a) for a in np.linspace(0, 1, 11)]
            rows = [(f"{a * 10:.0f}0%", p) for a, p in zip(range(0, 11), grid)]
            parts.append(f"\n[{category.short_code}] {category}")
            parts.append(f"  {curve.equation()}")
            parts.append(f"  fit RMS error: {curve.fit_residual_rms():.3f} W")
            parts.append(format_table(["GPU offload", "P(alpha) W"], rows))
        return "\n".join(parts)


def regenerate_figure_5(tick_mode: Optional[str] = None
                        ) -> CharacterizationFigure:
    spec = haswell_desktop(tick_mode=tick_mode)
    return CharacterizationFigure(platform=spec.name,
                                  characterization=get_characterization(spec))


def regenerate_figure_6(tick_mode: Optional[str] = None
                        ) -> CharacterizationFigure:
    spec = baytrail_tablet(tick_mode=tick_mode)
    return CharacterizationFigure(platform=spec.name,
                                  characterization=get_characterization(spec))


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------

@dataclass
class Table1Result:
    """Workload statistics plus measured online classification."""

    rows: List[Tuple[str, str, str, str, int, str, str, str, str]]

    def render(self) -> str:
        headers = ["Name", "Abbrv.", "Input (Desktop)", "Input (Tablet)",
                   "Num. invocations", "Reg/Irreg", "C/M", "CPU S/L",
                   "GPU S/L"]
        return "\n".join([
            heading("Table 1: benchmark statistics "
                    "(C/M and S/L measured by online classification)"),
            format_table(headers, self.rows),
        ])


def _measure_classification(spec: PlatformSpec,
                            workload: Workload) -> WorkloadCategory:
    """One online-profiling round on a fresh processor -> category."""
    processor = IntegratedProcessor(spec)
    runtime = ConcordRuntime(processor)
    kernel = workload.make_kernel()
    invocations = workload.invocations()
    biggest = max(invocations, key=lambda i: i.n_items)
    from repro.runtime.runtime import KernelLaunch

    launch = KernelLaunch(processor, kernel, biggest.n_items,
                          runtime._cost_profile(kernel))
    chunk = min(float(spec.gpu_profile_size), biggest.n_items * 0.5)
    observation = launch.profile_chunk(chunk)
    classifier = OnlineClassifier()
    return classifier.classify(ClassificationInputs(
        l3_misses=observation.counters.l3_misses,
        loadstore_instructions=observation.counters.loadstore_instructions,
        cpu_throughput=observation.cpu_throughput,
        gpu_throughput=observation.gpu_throughput,
        remaining_items=launch.remaining_items))


def regenerate_table_1(tick_mode: Optional[str] = None) -> Table1Result:
    spec = haswell_desktop(tick_mode=tick_mode)
    rows = []
    for workload in suite_workloads(tablet=False):
        category = _measure_classification(spec, workload)
        rows.append((
            workload.name,
            workload.abbrev,
            workload.input_desktop,
            workload.input_tablet if workload.tablet_supported else "N/A",
            workload.num_invocations,
            "R" if workload.regular else "IR",
            category.boundedness.short_code,
            category.cpu_duration.short_code,
            category.gpu_duration.short_code,
        ))
    return Table1Result(rows=rows)


# ---------------------------------------------------------------------------
# Figures 9-12: Oracle-relative efficiency
# ---------------------------------------------------------------------------

@dataclass
class EfficiencyFigure:
    """One of Figs. 9-12: per-workload Oracle-relative efficiency."""

    title: str
    paper_averages: Dict[str, float]
    evaluation: SuiteEvaluation

    def efficiency(self, workload: str, strategy: str) -> float:
        return self.evaluation.outcome(workload, strategy).efficiency_pct

    def average(self, strategy: str) -> float:
        return self.evaluation.average_efficiency_pct(strategy)

    def render(self) -> str:
        strategies = self.evaluation.strategies
        rows = []
        for workload in self.evaluation.workloads():
            rows.append([workload] + [
                self.efficiency(workload, s) for s in strategies])
        rows.append(["AVERAGE"] + [self.average(s) for s in strategies])
        table = format_table(["Workload"] + strategies, rows, float_digits=1)
        bars = format_bar_chart(
            strategies, [self.average(s) for s in strategies],
            unit="%", maximum=100.0)
        paper = ", ".join(f"{k}={v:.1f}%" for k, v in self.paper_averages.items())
        return "\n".join([
            heading(self.title),
            "Efficiency relative to Oracle (100% = Oracle, higher is better)",
            "",
            table,
            "",
            "Average efficiency:",
            bars,
            "",
            f"Paper's averages: {paper}",
        ])


def _efficiency_figure(spec: PlatformSpec, tablet: bool, metric: EnergyMetric,
                       title: str,
                       paper_averages: Dict[str, float]) -> EfficiencyFigure:
    workloads = suite_workloads(tablet=tablet)
    # Hand evaluate_suite only the sweeps already memoized: missing
    # ones then belong to its single engine batch (parallel across
    # workloads) instead of being forced serially here, and the batch
    # results backfill the memo for the sibling figures.
    sweeps = {w.abbrev: _sweep_cache[(spec.name, spec.tick_mode, w.abbrev)]
              for w in workloads
              if (spec.name, spec.tick_mode, w.abbrev) in _sweep_cache}
    evaluation = evaluate_suite(spec, workloads, metric, tablet=tablet,
                                sweeps=sweeps)
    for abbrev, sweep in evaluation.sweeps.items():
        _sweep_cache.setdefault((spec.name, spec.tick_mode, abbrev), sweep)
    return EfficiencyFigure(title=title, paper_averages=paper_averages,
                            evaluation=evaluation)


def regenerate_figure_9(tick_mode: Optional[str] = None) -> EfficiencyFigure:
    return _efficiency_figure(
        haswell_desktop(tick_mode=tick_mode), tablet=False, metric=EDP,
        title="Figure 9: relative EDP efficiency vs Oracle (desktop)",
        paper_averages={"GPU": 79.6, "PERF": 83.9, "EAS": 96.2})


def regenerate_figure_10(tick_mode: Optional[str] = None) -> EfficiencyFigure:
    return _efficiency_figure(
        haswell_desktop(tick_mode=tick_mode), tablet=False, metric=ENERGY,
        title="Figure 10: relative energy-use efficiency vs Oracle (desktop)",
        paper_averages={"GPU": 95.8, "PERF": 70.4, "EAS": 97.2})


def regenerate_figure_11(tick_mode: Optional[str] = None) -> EfficiencyFigure:
    return _efficiency_figure(
        baytrail_tablet(tick_mode=tick_mode), tablet=True, metric=EDP,
        title="Figure 11: relative EDP efficiency vs Oracle (Bay Trail)",
        paper_averages={"EAS": 93.2})


def regenerate_figure_12(tick_mode: Optional[str] = None) -> EfficiencyFigure:
    return _efficiency_figure(
        baytrail_tablet(tick_mode=tick_mode), tablet=True, metric=ENERGY,
        title="Figure 12: relative energy-use efficiency vs Oracle (Bay Trail)",
        paper_averages={"EAS": 96.4})


# ---------------------------------------------------------------------------
# Fleet dispatch (not a paper figure; see docs/FLEET.md)
# ---------------------------------------------------------------------------

def regenerate_fleet(tick_mode: Optional[str] = None):
    """All five placement policies over a 64-node fleet, bursty trace.

    Returns a :class:`~repro.fleet.dispatcher.FleetComparisonResult`.
    Defaults to the ``fast`` clock (a fleet run is many full
    application executions; the exact clock is available via
    ``python -m repro fleet --tick-mode exact``).
    """
    from repro.fleet.dispatcher import compare_fleet_policies
    from repro.fleet.topology import FleetSpec
    from repro.fleet.trace import TraceSpec

    fleet = FleetSpec(n_nodes=64, desktop_fraction=0.5,
                      tick_mode=tick_mode or "fast")
    trace = TraceSpec(kind="bursty", duration_s=60.0, mean_rate_hz=4.0)
    return compare_fleet_policies(fleet, trace)


# ---------------------------------------------------------------------------
# Objectives: constrained EAS vs race-to-idle vs plain EAS, plus a
# carbon-aware fleet cell (not a paper figure; see docs/OBJECTIVES.md)
# ---------------------------------------------------------------------------

#: Workloads the objectives comparison sweeps (tablet-supported, one
#: regular and one irregular).
_OBJECTIVES_WORKLOADS: Tuple[str, ...] = ("MB", "BS")
#: Per-invocation deadline budgets, as multiples of the baseline EAS
#: run's mean invocation time: loose (met by riding the energy-optimal
#: alpha) and tight (forces faster-but-hungrier operating points).
_OBJECTIVES_LOOSE_FACTOR = 1.5
_OBJECTIVES_TIGHT_FACTOR = 0.25


@dataclass
class ObjectivesResult:
    """Deadline-constrained and carbon-aware objective comparison.

    ``rows`` holds one line per (platform, workload, strategy):
    baseline EAS, deadline-constrained EAS (loose budget), and
    race-to-idle on the same budget.  ``infeasible`` audits the tight
    budget: how many invocations exited ``deadline-infeasible``.
    ``carbon_rows`` compares a carbon-priced fleet cell with and
    without temporal shifting.
    """

    rows: List[Tuple[str, str, str, float, float, float]]
    #: (platform, workload, deadline_s, infeasible exits, invocations)
    infeasible: List[Tuple[str, str, float, int, int]]
    carbon_rows: List[Tuple[str, str]]
    #: (unshifted, shifted) carbon fleet fingerprints.
    fleet_fingerprints: Tuple[str, str]

    def fingerprint(self) -> str:
        import hashlib

        lines = [f"row|{p}|{w}|{s}|{t!r}|{e!r}|{m!r}"
                 for p, w, s, t, e, m in self.rows]
        lines += [f"tight|{p}|{w}|{d!r}|{n}|{total}"
                  for p, w, d, n, total in self.infeasible]
        lines += [f"carbon|{k}|{v}" for k, v in self.carbon_rows]
        lines += [f"fleet|{fp}" for fp in self.fleet_fingerprints]
        return hashlib.sha256("\n".join(lines).encode()).hexdigest()

    def render(self) -> str:
        strategy_rows = [
            (p, w, s, f"{t:.4f}", f"{e:.1f}", f"{m:.2f}")
            for p, w, s, t, e, m in self.rows]
        tight_rows = [
            (p, w, f"{d:.4f}", f"{n}/{total}")
            for p, w, d, n, total in self.infeasible]
        return "\n".join([
            heading("Objectives: deadline-constrained EAS vs "
                    "race-to-idle (docs/OBJECTIVES.md)"),
            format_table(
                ["platform", "workload", "strategy", "time (s)",
                 "energy (J)", "EDP"], strategy_rows),
            "",
            "Tight budgets (deadline-infeasible exits / invocations):",
            format_table(["platform", "workload", "deadline (s)",
                          "infeasible"], tight_rows),
            "",
            "Carbon-aware fleet cell (diurnal trace):",
            format_table(["quantity", "value"], self.carbon_rows),
            "",
            f"fingerprint: {self.fingerprint()}",
        ])


def regenerate_objectives(tick_mode: Optional[str] = None
                          ) -> ObjectivesResult:
    """Both platforms x (EAS, constrained EAS, race-to-idle), plus a
    carbon-priced fleet cell with and without temporal shifting.

    All application runs go through the engine (parallel under
    ``--jobs N``, byte-identical fingerprints either way); deadlines
    derive deterministically from the baseline EAS runs.
    """
    from dataclasses import replace

    from repro.fleet.dispatcher import run_fleet
    from repro.fleet.topology import FleetSpec
    from repro.fleet.trace import TraceSpec
    from repro.core.metrics import ConstrainedMetric
    from repro.core.scheduler import EnergyAwareScheduler
    from repro.harness.engine import (
        RunSpec,
        SchedulerSpec,
        get_default_engine,
    )
    from repro.harness.experiment import run_application
    from repro.obs.records import EXIT_DEADLINE_INFEASIBLE
    from repro.soc.carbon import CarbonSpec

    engine = get_default_engine()
    platforms = [("desktop", haswell_desktop(tick_mode=tick_mode or "fast"),
                  False),
                 ("tablet", baytrail_tablet(tick_mode=tick_mode or "fast"),
                  True)]
    cells = [(name, spec, tablet, abbrev)
             for name, spec, tablet in platforms
             for abbrev in _OBJECTIVES_WORKLOADS]

    # Phase 1: baseline EAS runs set the deadline scale per cell.
    base_specs = [RunSpec(platform=spec, workload=abbrev,
                          scheduler=SchedulerSpec.eas("edp"), tablet=tablet)
                  for _, spec, tablet, abbrev in cells]
    base_runs = [r.payload for r in engine.run_batch(base_specs)]
    budgets = []
    for run in base_runs:
        mean_inv_s = run.time_s / max(len(run.invocations), 1)
        budgets.append((round(_OBJECTIVES_LOOSE_FACTOR * mean_inv_s, 6),
                        round(_OBJECTIVES_TIGHT_FACTOR * mean_inv_s, 6)))

    # Phase 2: one batch covering every strategy cell.
    strategy_specs = []
    labels = []
    for (name, spec, tablet, abbrev), (loose, _) in zip(cells, budgets):
        constrained = f"edp@{loose:g}"
        for label, scheduler in [
                ("EAS", SchedulerSpec.eas("edp")),
                (f"EAS[{constrained}]", SchedulerSpec.eas(constrained)),
                (f"RACE[{loose:g}s]", SchedulerSpec.race(loose))]:
            strategy_specs.append(RunSpec(
                platform=spec, workload=abbrev, scheduler=scheduler,
                tablet=tablet))
            labels.append((name, abbrev, label))
    strategy_runs = [r.payload for r in engine.run_batch(strategy_specs)]
    rows = [(name, abbrev, label, run.time_s, run.energy_j,
             run.energy_j * run.time_s)
            for (name, abbrev, label), run in zip(labels, strategy_runs)]

    # Tight-budget audit (direct run: the engine payload does not
    # carry decision records, and this run is deterministic anyway).
    infeasible = []
    for (name, spec, tablet, abbrev), (_, tight) in zip(cells, budgets):
        if abbrev != _OBJECTIVES_WORKLOADS[0]:
            continue
        scheduler = EnergyAwareScheduler(
            get_characterization(spec),
            ConstrainedMetric.constrain(EDP, tight))
        run_application(spec, workload_by_abbrev(abbrev), scheduler,
                        "EAS", tablet=tablet)
        exits = [r.exit_path for r in scheduler.decisions]
        infeasible.append((name, abbrev, tight,
                           exits.count(EXIT_DEADLINE_INFEASIBLE),
                           len(exits)))

    # Carbon-aware fleet cell: same diurnal trace, shifted vs not.
    carbon = CarbonSpec(period_s=60.0)
    fleet = FleetSpec(n_nodes=8, desktop_fraction=0.5,
                      tick_mode=tick_mode or "fast", carbon=carbon)
    trace = TraceSpec(kind="diurnal", duration_s=60.0, mean_rate_hz=1.0,
                      workloads=_OBJECTIVES_WORKLOADS)
    unshifted = run_fleet(fleet, trace, policy="energy_aware",
                          engine=engine)
    shifted = run_fleet(fleet, replace(trace, deferral_fraction=0.8),
                        policy="energy_aware", engine=engine)
    carbon_rows = [
        ("carbon, no shifting", f"{unshifted.total_carbon_g:.3f} g CO2"),
        ("carbon, shifted", f"{shifted.total_carbon_g:.3f} g CO2"),
        ("low-carbon energy (shifted)",
         f"{shifted.low_carbon_energy_fraction():.1%} of deferrable "
         f"energy below median intensity"),
    ]
    return ObjectivesResult(
        rows=rows, infeasible=infeasible, carbon_rows=carbon_rows,
        fleet_fingerprints=(unshifted.fingerprint(), shifted.fingerprint()))


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

REGENERATORS = {
    "fig1": regenerate_figure_1,
    "fig2": regenerate_figure_2,
    "fig3": regenerate_figure_3,
    "fig4": regenerate_figure_4,
    "fig5": regenerate_figure_5,
    "fig6": regenerate_figure_6,
    "table1": regenerate_table_1,
    "fig9": regenerate_figure_9,
    "fig10": regenerate_figure_10,
    "fig11": regenerate_figure_11,
    "fig12": regenerate_figure_12,
    "chaos": regenerate_chaos,
    "crashchaos": regenerate_crash_chaos,
    "fleet": regenerate_fleet,
    "objectives": regenerate_objectives,
}


def experiment_id(name: str) -> str:
    """Normalize an experiment name: ``9``/``fig9``/``FIG9`` -> ``fig9``.

    Raises :class:`~repro.errors.UnknownNameError` (a
    :class:`~repro.errors.HarnessError`) with did-you-mean suggestions
    when the result is not a registered experiment.
    """
    normalized = name.strip().lower()
    try:
        normalized = f"fig{int(normalized)}"
    except ValueError:
        pass
    if normalized not in REGENERATORS:
        raise UnknownNameError(
            f"unknown experiment {name!r}; expected one of "
            f"{sorted(REGENERATORS)}",
            suggestions=closest_names(normalized, list(REGENERATORS)))
    return normalized


def regenerate(name: str):
    """Regenerate one experiment by id (e.g. ``9``, ``fig9``, ``table1``)."""
    return REGENERATORS[experiment_id(name)]()
