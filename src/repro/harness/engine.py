"""Deterministic fan-out execution engine with content-addressed caching.

Every figure, ablation, and chaos campaign in this repo decomposes
into *independent* simulations: one application run per static alpha,
one per (workload, strategy) pair, one chaos cell per (workload, fault
level), one characterization sweep per category.  The simulator is
deterministic by construction (fresh processor per run, seeded fault
streams), so these runs can execute in any order, in any process, and
produce byte-identical results - which is exactly what this engine
exploits, and what the equivalence tests in
``tests/harness/test_engine_equivalence.py`` pin down.

Three layers (see docs/PARALLELISM.md):

* :class:`RunSpec` - a frozen, picklable description of one
  simulation: platform spec, workload id, declarative scheduler
  config (:class:`SchedulerSpec`), tablet flag, fault level, seed.
  A spec knows its own :meth:`~RunSpec.cache_key` - a SHA-256 over a
  canonical JSON serialization plus :data:`CACHE_SCHEMA_VERSION`.
* :class:`ResultCache` - a content-addressed on-disk memo store for
  run results, keyed by spec hash.  Entries are checksummed;
  corrupted or truncated files are evicted and recomputed, never
  trusted.  Rooted at ``$REPRO_CACHE_DIR/runs`` by default, next to
  the existing characterization JSON cache.
* :class:`ExecutionEngine` - executes batches of specs either
  serially in-process (``jobs=1``, the debugging path and the
  equivalence baseline) or through a ``ProcessPoolExecutor``
  (``jobs>1``), fronting both with the cache.  Worker observers
  (spans, events, decisions, metrics) are merged back into the
  parent :class:`~repro.obs.observer.Observer` so traces stay whole.

The hot paths - :func:`~repro.harness.suite.sweep_alphas`,
:func:`~repro.harness.suite.evaluate_suite`,
:func:`~repro.harness.chaos.run_chaos_campaign`,
:meth:`~repro.core.characterization.PowerCharacterizer.characterize` -
all submit their grids through this engine; the CLI exposes
``--jobs N`` and ``--no-cache``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro._compat import warn_once
from repro.core.baselines import (
    CpuOnlyScheduler,
    GpuOnlyScheduler,
    ProfiledPerfScheduler,
    RaceToIdleScheduler,
    StaticAlphaScheduler,
)
from repro.core.characterization import CharacterizationMicrobench
from repro.core.metrics import EnergyMetric, metric_by_name
from repro.core.scheduler import EnergyAwareScheduler, SchedulerConfig
from repro.errors import HarnessError
from repro.harness.experiment import run_application
from repro.errors import SchedulingError
from repro.obs.observer import Observer
from repro.runtime.runtime import ConcordRuntime
from repro.runtime.tenancy import TenancySpec
from repro.soc.faults import FaultConfig
from repro.soc.simulator import IntegratedProcessor
from repro.soc.spec import PlatformSpec
from repro.soc.vector import VectorCore, model_identity, use_vector_core
from repro.workloads.base import Workload
from repro.workloads.registry import workload_by_abbrev

#: Version stamp folded into every cache key.  Bump whenever the
#: semantics of a cached payload change (simulator behaviour, result
#: dataclass layout, worker dispatch) so stale entries miss instead of
#: resurfacing as wrong results.
#:
#: v4: ``RunSpec.tenancy`` became a typed :class:`TenancySpec`
#: serialized as a canonical dict (was an opaque string), and the
#: ``fleet-cell`` kind joined the dispatch table.
#:
#: v5: the ``bounded`` tick mode landed (``PlatformSpec.bounded_tol``
#: joined the canonical platform dict) and workers execute specs in
#: model-identity gangs sharing a :class:`~repro.soc.vector.VectorCore`.
#:
#: v6: the ``fleet-dispatch`` kind joined the dispatch table and
#: ``RunSpec`` grew ``fleet``/``trace``/``policy``/``dispatch_mode``
#: (all in the canonical payload), so reference- and streaming-mode
#: fleet results are distinct cache entries.
#:
#: v7: constrained objectives landed - :class:`SchedulerSpec` grew
#: ``deadline_s`` and the ``race`` kind (race-to-idle), constrained
#: metric names (``"edp@2"``) flow through ``SchedulerSpec.metric``,
#: and fleet specs may carry carbon/deferral fields.  The scheduler
#: dict layout changed, so every pre-v7 entry must miss.
CACHE_SCHEMA_VERSION = 7

# -- task kinds -----------------------------------------------------------------

#: One application run under one scheduler (-> ApplicationRun).
KIND_APPLICATION = "application"
#: One chaos-campaign cell: EAS on a faulty SoC (-> ChaosCell).
KIND_CHAOS_CELL = "chaos-cell"
#: Clean CPU-alone ground-truth baseline (-> (time_s, energy_j)).
KIND_CHAOS_BASELINE = "chaos-baseline"
#: One characterization alpha sweep (-> List[SweepPoint]).
KIND_CHAR_SWEEP = "char-sweep"
#: One traced micro-benchmark timeline (-> PowerTrace).
KIND_MICROBENCH_TIMELINE = "microbench-timeline"
#: One multiprogram co-scheduling run: N tenant streams on one SoC
#: under a GPU lease arbiter (-> MultiprogramResult).
KIND_MULTIPROGRAM = "multiprogram"
#: One fleet dispatch cell: EAS running one workload end to end on one
#: node *class* of a simulated fleet (-> FleetCellProfile).  The fleet
#: dispatcher fans these out; identical (platform, workload, seed)
#: cells dedupe across thousands of nodes.
KIND_FLEET_CELL = "fleet-cell"
#: One full fleet dispatch: a trace routed over a fleet under one
#: placement policy and one dispatch mode (-> FleetResult or
#: FleetStreamResult).  Carries the fleet/trace specs, the policy
#: name, and ``dispatch_mode`` in its canonical form - the two modes
#: are distinct cache entries by construction.
KIND_FLEET_DISPATCH = "fleet-dispatch"

_ALL_KINDS = (KIND_APPLICATION, KIND_CHAOS_CELL, KIND_CHAOS_BASELINE,
              KIND_CHAR_SWEEP, KIND_MICROBENCH_TIMELINE, KIND_MULTIPROGRAM,
              KIND_FLEET_CELL, KIND_FLEET_DISPATCH)

#: Dispatch-mode names accepted on a ``fleet-dispatch`` spec (kept in
#: sync with ``repro.fleet.dispatcher.DISPATCH_MODES``; duplicated
#: here because the engine must not import the fleet layer at module
#: scope - the fleet dispatcher imports the engine).
_FLEET_DISPATCH_MODES = ("reference", "streaming")

_SCHEDULER_KINDS = ("cpu", "gpu", "perf", "static", "eas", "race")
_STRATEGY_NAMES = {"cpu": "CPU", "gpu": "GPU", "perf": "PERF", "eas": "EAS",
                   "race": "RACE"}


def config_overrides(config: Optional[SchedulerConfig]
                     ) -> Tuple[Tuple[str, Any], ...]:
    """Canonicalize a :class:`SchedulerConfig` to its non-default fields.

    The tuple-of-pairs form is hashable (for frozen specs), picklable,
    and stable under field reordering, so it can participate in cache
    keys; ``SchedulerConfig(**dict(overrides))`` reconstructs an
    equivalent config in a worker process.
    """
    if config is None:
        return ()
    defaults = SchedulerConfig()
    pairs = [(f.name, getattr(config, f.name)) for f in fields(config)
             if getattr(config, f.name) != getattr(defaults, f.name)]
    return tuple(sorted(pairs))


@dataclass(frozen=True)
class SchedulerSpec:
    """Declarative, picklable description of one scheduler.

    Workers rebuild the actual scheduler object from this spec (plus
    the platform characterization, for EAS), so scheduler *instances*
    - which hold profiling tables and observer references - never
    cross process boundaries.
    """

    kind: str
    #: Static GPU offload ratio (``kind == "static"`` only).
    alpha: Optional[float] = None
    #: Objective metric name (``kind == "eas"`` only).  Constrained
    #: spellings (``"edp@2"``) round-trip through
    #: :func:`~repro.core.metrics.metric_by_name`, so deadline-
    #: constrained objectives key the cache like any other metric.
    metric: str = "edp"
    #: Non-default :class:`SchedulerConfig` fields, canonicalized.
    overrides: Tuple[Tuple[str, Any], ...] = ()
    #: Per-invocation deadline budget the race-to-idle scheduler
    #: idles out to (``kind == "race"`` only; None = pure sprint).
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in _SCHEDULER_KINDS:
            raise HarnessError(
                f"unknown scheduler kind {self.kind!r}; "
                f"expected one of {_SCHEDULER_KINDS}")
        if self.kind == "static" and self.alpha is None:
            raise HarnessError("static scheduler spec needs an alpha")
        if self.deadline_s is not None:
            if self.kind != "race":
                raise HarnessError(
                    "deadline_s is a race scheduler knob; constrained "
                    "EAS carries its deadline in the metric name "
                    "(e.g. metric='edp@2')")
            try:
                RaceToIdleScheduler(deadline_s=self.deadline_s)
            except SchedulingError as exc:
                raise HarnessError(str(exc)) from exc

    # -- constructors ------------------------------------------------------------

    @classmethod
    def cpu(cls) -> "SchedulerSpec":
        return cls(kind="cpu")

    @classmethod
    def gpu(cls) -> "SchedulerSpec":
        return cls(kind="gpu")

    @classmethod
    def perf(cls) -> "SchedulerSpec":
        return cls(kind="perf")

    @classmethod
    def static(cls, alpha: float) -> "SchedulerSpec":
        return cls(kind="static", alpha=alpha)

    @classmethod
    def eas(cls, metric: object = "edp",
            config: Optional[SchedulerConfig] = None) -> "SchedulerSpec":
        name = metric if isinstance(metric, str) else metric.name
        metric_by_name(name)  # validate early, in the submitting process
        return cls(kind="eas", metric=name, overrides=config_overrides(config))

    @classmethod
    def race(cls, deadline_s: Optional[float] = None) -> "SchedulerSpec":
        return cls(kind="race", deadline_s=deadline_s)

    # -- reconstruction ----------------------------------------------------------

    @property
    def strategy_name(self) -> str:
        if self.kind == "static":
            return f"static-{self.alpha:.2f}"
        return _STRATEGY_NAMES[self.kind]

    def eas_config(self) -> SchedulerConfig:
        return SchedulerConfig(**dict(self.overrides))

    def build(self, characterization=None) -> object:
        """Instantiate the scheduler this spec describes."""
        if self.kind == "cpu":
            return CpuOnlyScheduler()
        if self.kind == "gpu":
            return GpuOnlyScheduler()
        if self.kind == "perf":
            return ProfiledPerfScheduler()
        if self.kind == "race":
            return RaceToIdleScheduler(deadline_s=self.deadline_s)
        if self.kind == "static":
            return StaticAlphaScheduler(alpha=self.alpha)
        if characterization is None:
            raise HarnessError("EAS scheduler spec needs a characterization")
        return EnergyAwareScheduler(
            characterization, metric_by_name(self.metric),
            config=self.eas_config())


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation, fully described and picklable.

    ``workload`` is a registry abbreviation for application/chaos
    kinds and a category short code for characterization kinds;
    ``params`` carries kind-specific numeric knobs (e.g. the
    micro-benchmark timeline's alpha and repetition count) as a
    canonical tuple of pairs.
    """

    platform: PlatformSpec
    workload: str = ""
    scheduler: Optional[SchedulerSpec] = None
    kind: str = KIND_APPLICATION
    tablet: bool = False
    fault_level: float = 0.0
    seed: int = 0
    #: Characterization sweep grid step (``char-sweep`` only).
    sweep_step: float = 0.0
    #: The probing micro-benchmark (``char-sweep`` only).
    microbench: Optional[CharacterizationMicrobench] = None
    #: Kind-specific numeric parameters, canonicalized.
    params: Tuple[Tuple[str, float], ...] = ()
    #: Multiprogram tenancy description (``multiprogram`` only): a
    #: typed :class:`~repro.runtime.tenancy.TenancySpec`.  The legacy
    #: one-string spelling ``"<policy>;<quantum>;<tenant-text>"`` is
    #: still accepted (parsed through :meth:`TenancySpec.parse` with a
    #: ``DeprecationWarning``) and hashes to the same cache key.
    tenancy: Optional[TenancySpec] = None
    #: Collect an Observer (spans/events/decisions/metrics) in the
    #: worker and return it for merging into the parent's.
    observe: bool = False
    #: Fleet topology (``fleet-dispatch`` only): a
    #: :class:`~repro.fleet.topology.FleetSpec`.  Typed loosely so the
    #: engine never imports the fleet layer at module scope.
    fleet: Optional[Any] = None
    #: Arrival trace (``fleet-dispatch`` only): a
    #: :class:`~repro.fleet.trace.TraceSpec`.
    trace: Optional[Any] = None
    #: Placement policy name (``fleet-dispatch`` only).
    policy: str = ""
    #: Dispatch implementation (``fleet-dispatch`` only): one of
    #: ``reference`` / ``streaming``.
    dispatch_mode: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _ALL_KINDS:
            raise HarnessError(f"unknown run kind {self.kind!r}; "
                               f"expected one of {_ALL_KINDS}")
        if self.kind == KIND_FLEET_DISPATCH:
            if self.fleet is None or self.trace is None:
                raise HarnessError(
                    "fleet-dispatch spec needs a FleetSpec and a TraceSpec")
            if not self.policy:
                raise HarnessError(
                    "fleet-dispatch spec needs a placement policy name")
            if self.dispatch_mode not in _FLEET_DISPATCH_MODES:
                raise HarnessError(
                    f"fleet-dispatch spec needs dispatch_mode in "
                    f"{_FLEET_DISPATCH_MODES}, got {self.dispatch_mode!r}")
        elif (self.fleet is not None or self.trace is not None
                or self.policy or self.dispatch_mode):
            raise HarnessError(
                f"{self.kind} spec must leave fleet/trace/policy/"
                f"dispatch_mode empty")
        if self.kind in (KIND_APPLICATION, KIND_CHAOS_CELL,
                         KIND_MULTIPROGRAM) and self.scheduler is None:
            raise HarnessError(f"{self.kind} spec needs a scheduler")
        if self.kind == KIND_CHAR_SWEEP and (
                self.microbench is None or self.sweep_step <= 0.0):
            raise HarnessError("char-sweep spec needs a microbench and step")
        if isinstance(self.tenancy, str):
            # Legacy stringly-typed spelling: parse into the typed
            # spec (same cache key, one deprecation warning).
            if self.tenancy:
                warn_once(
                    "engine.RunSpec.tenancy-string",
                    "passing RunSpec.tenancy as a 'policy;quantum;tenants' "
                    "string is deprecated; build a typed TenancySpec "
                    "(repro.runtime.tenancy.TenancySpec) instead")
                try:
                    parsed = TenancySpec.parse(self.tenancy)
                except SchedulingError as exc:
                    raise HarnessError(
                        f"multiprogram spec needs tenancy="
                        f"'policy;quantum;tenants': {exc}") from exc
                object.__setattr__(self, "tenancy", parsed)
            else:
                object.__setattr__(self, "tenancy", None)
        if self.kind == KIND_MULTIPROGRAM and self.tenancy is None:
            raise HarnessError(
                "multiprogram spec needs a TenancySpec "
                "(legacy 'policy;quantum;tenants' strings still parse)")

    def param(self, name: str, default: float = 0.0) -> float:
        return dict(self.params).get(name, default)

    # -- content addressing ------------------------------------------------------

    def canonical(self) -> str:
        """Canonical JSON form: the cache key's preimage.

        Floats serialize via ``repr`` (shortest round-trip form), so
        two specs hash equal exactly when every field is bit-equal.
        """
        bench = None
        if self.microbench is not None:
            bench = {
                "category": self.microbench.category.short_code,
                "cost": asdict(self.microbench.cost),
                "cpu_target_s": self.microbench.cpu_target_s,
                "repetitions": self.microbench.repetitions,
            }
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "kind": self.kind,
            "platform": asdict(self.platform),
            "workload": self.workload,
            "scheduler": asdict(self.scheduler) if self.scheduler else None,
            "tablet": self.tablet,
            "fault_level": self.fault_level,
            "seed": self.seed,
            "sweep_step": self.sweep_step,
            "microbench": bench,
            "params": list(list(p) for p in self.params),
            "tenancy": (self.tenancy.canonical_dict()
                        if self.tenancy is not None else None),
            "observe": self.observe,
            "fleet": (self.fleet.canonical()
                      if self.fleet is not None else None),
            "trace": (self.trace.canonical()
                      if self.trace is not None else None),
            "policy": self.policy,
            "dispatch_mode": self.dispatch_mode,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @property
    def tick_mode(self) -> str:
        """Simulator clock mode this run executes under.

        Carried by the platform spec (and therefore part of
        :meth:`canonical`): fast- and exact-mode results are distinct
        cache entries.
        """
        return self.platform.tick_mode

    def cache_key(self) -> str:
        return hashlib.sha256(self.canonical().encode()).hexdigest()


@dataclass
class RunResult:
    """One executed (or cache-recalled) :class:`RunSpec`."""

    key: str
    #: ApplicationRun | ChaosCell | (time_s, energy_j) | List[SweepPoint]
    #: | PowerTrace, by spec kind.
    payload: Any
    #: Worker-side observer, when the spec asked for one.  Its sim
    #: clock is unbound (clocks do not cross process boundaries).
    observer: Optional[Observer] = None
    from_cache: bool = False


# -- compatibility probes --------------------------------------------------------

def reconstructible_workload(workload: Workload) -> bool:
    """True when a worker can rebuild ``workload`` from its registry
    abbreviation alone: exact registry class, no instance state.

    Ablations that mutate or subclass workloads fail this probe and
    take the serial in-process path instead of silently simulating the
    wrong thing in a worker.
    """
    try:
        reference = workload_by_abbrev(workload.abbrev)
    except Exception:
        return False
    return type(reference) is type(workload) and not vars(workload)


def standard_metric_name(metric: EnergyMetric) -> Optional[str]:
    """The metric's registry name, or None for custom metrics (which
    carry unpicklable objective functions)."""
    try:
        return metric.name if metric_by_name(metric.name) == metric else None
    except Exception:
        return None


def plain_scheduler_config(config: Optional[SchedulerConfig]) -> bool:
    """True when ``config`` survives the canonicalize/rebuild round trip."""
    return config is None or type(config) is SchedulerConfig


# -- worker-side execution -------------------------------------------------------

def _characterization_for(platform: PlatformSpec):
    # Lazy import: suite imports this module at load time.
    from repro.harness.suite import get_characterization

    return get_characterization(platform)


def _run_application_spec(spec: RunSpec,
                          observer: Optional[Observer]) -> Any:
    workload = workload_by_abbrev(spec.workload)
    characterization = None
    if spec.scheduler.kind == "eas":
        characterization = _characterization_for(spec.platform)
    scheduler = spec.scheduler.build(characterization)
    fault_config = (FaultConfig.from_level(spec.fault_level, seed=spec.seed)
                    if spec.fault_level > 0.0 else None)
    return run_application(spec.platform, workload, scheduler,
                           strategy_name=spec.scheduler.strategy_name,
                           tablet=spec.tablet, observer=observer,
                           fault_config=fault_config)


def _run_chaos_cell_spec(spec: RunSpec, observer: Optional[Observer]) -> Any:
    from repro.harness.chaos import run_chaos_cell

    workload = workload_by_abbrev(spec.workload)
    characterization = _characterization_for(spec.platform)
    return run_chaos_cell(spec.platform, workload, characterization,
                          spec.fault_level, seed=spec.seed,
                          metric=metric_by_name(spec.scheduler.metric),
                          eas_config=spec.scheduler.eas_config())


def _run_chaos_baseline_spec(spec: RunSpec,
                             observer: Optional[Observer]) -> Any:
    # Ground-truth clean CPU-alone baseline, exactly as the campaign
    # measured it inline before the engine existed (byte-compatible
    # fingerprints depend on this).
    workload = workload_by_abbrev(spec.workload)
    inner = IntegratedProcessor(spec.platform)
    runtime = ConcordRuntime(inner, observer=observer)
    scheduler = CpuOnlyScheduler()
    kernel = workload.make_kernel()
    t0, e0 = inner.now, inner.msr.lifetime_joules
    for inv in workload.invocations():
        runtime.parallel_for(kernel, inv.n_items, scheduler)
    return (inner.now - t0, inner.msr.lifetime_joules - e0)


def _run_char_sweep_spec(spec: RunSpec, observer: Optional[Observer]) -> Any:
    from repro.core.characterization import PowerCharacterizer

    characterizer = PowerCharacterizer(
        microbenches=[spec.microbench], sweep_step=spec.sweep_step,
        spec=spec.platform)
    return characterizer.sweep(spec.microbench)


def _run_microbench_timeline_spec(spec: RunSpec,
                                  observer: Optional[Observer]) -> Any:
    from repro.harness.figures import (
        _items_for_duration,
        _run_microbench_partitioned,
    )

    n_items = _items_for_duration(spec.platform, spec.workload,
                                  spec.param("cpu_seconds", 1.0))
    return _run_microbench_partitioned(
        spec.platform, spec.workload,
        alpha=spec.param("alpha"), n_items=n_items,
        repetitions=int(spec.param("repetitions", 1)),
        gap_s=spec.param("gap_s", 0.05))


def _run_multiprogram_spec(spec: RunSpec,
                           observer: Optional[Observer]) -> Any:
    from repro.runtime.tenancy import run_multiprogram

    tenancy = spec.tenancy
    return run_multiprogram(
        spec=spec.platform,
        tenants=tenancy.tenants,
        policy=tenancy.policy,
        seed=spec.seed,
        metric=metric_by_name(spec.scheduler.metric),
        tablet=spec.tablet,
        fault_level=spec.fault_level,
        lease_quantum=tenancy.lease_quantum,
        eas_config=spec.scheduler.eas_config(),
        observer=observer,
        characterization=_characterization_for(spec.platform))


def _run_fleet_cell_spec(spec: RunSpec, observer: Optional[Observer]) -> Any:
    from repro.fleet.cells import run_fleet_cell

    return run_fleet_cell(spec, observer=observer)


def _run_fleet_dispatch_spec(spec: RunSpec,
                             observer: Optional[Observer]) -> Any:
    # Lazy import: the fleet dispatcher imports this module, so the
    # engine resolves fleet types only inside the worker.
    from repro.fleet.dispatcher import run_fleet

    return run_fleet(spec.fleet, spec.trace, policy=spec.policy,
                     observer=observer,
                     dispatch_mode=spec.dispatch_mode or "reference")


_DISPATCH = {
    KIND_APPLICATION: _run_application_spec,
    KIND_CHAOS_CELL: _run_chaos_cell_spec,
    KIND_CHAOS_BASELINE: _run_chaos_baseline_spec,
    KIND_CHAR_SWEEP: _run_char_sweep_spec,
    KIND_MICROBENCH_TIMELINE: _run_microbench_timeline_spec,
    KIND_MULTIPROGRAM: _run_multiprogram_spec,
    KIND_FLEET_CELL: _run_fleet_cell_spec,
    KIND_FLEET_DISPATCH: _run_fleet_dispatch_spec,
}


def execute_spec(spec: RunSpec) -> RunResult:
    """Execute one spec in the current process (the worker entry point).

    The serial executor calls this directly, so ``jobs=1`` runs the
    *same code* as the pool workers - the equivalence tests compare
    the two paths byte for byte.
    """
    observer = None
    if spec.observe:
        observer = Observer(metadata={
            "kind": spec.kind, "platform": spec.platform.name,
            "workload": spec.workload, "engine.worker": True})
    payload = _DISPATCH[spec.kind](spec, observer)
    if observer is not None:
        # Simulated-clock bindings reference the (dead) processor and
        # do not pickle; spans keep their recorded sim timestamps.
        observer.bind_sim_clock(None)
    return RunResult(key=spec.cache_key(), payload=payload, observer=observer)


@dataclass(frozen=True)
class SpecGang:
    """An ordered batch of specs that may share one vectorized core.

    A gang is the engine's unit of model-memo sharing: every member
    resolves to the same :func:`~repro.soc.vector.model_identity`
    (platform modulo tick mode and tolerance), so the rate/power memos
    one member fills are bit-valid for every other.  Specs of *mixed*
    platforms must not be ganged - their model inputs differ - and
    :meth:`of` refuses to build one.

    Construct only via :meth:`of`; the constructor performs no
    validation (it must stay cheap for pickling into pool workers).
    """

    specs: Tuple[RunSpec, ...]

    @classmethod
    def of(cls, specs: Sequence[RunSpec]) -> "SpecGang":
        specs = tuple(specs)
        if not specs:
            raise HarnessError("a SpecGang needs at least one spec")
        identities = {model_identity(spec.platform) for spec in specs}
        if len(identities) > 1:
            names = sorted({spec.platform.name for spec in specs})
            raise HarnessError(
                "cannot gang specs with mixed platform model identities: "
                + ", ".join(names))
        return cls(specs=specs)

    def __len__(self) -> int:
        return len(self.specs)


def execute_gang(gang: SpecGang) -> List[RunResult]:
    """Execute a gang's specs in order under one shared vectorized core.

    The pool submits one of these per worker chunk; the serial path
    calls it directly, so ``jobs=1`` and ``jobs>1`` run identical code.
    Sharing never changes results: the core's memos hold bit-stable
    model evaluations only (see :mod:`repro.soc.vector`), so each
    member's payload is byte-identical to an un-ganged run - the
    engine-equivalence tests pin that down.
    """
    core = VectorCore()
    with use_vector_core(core):
        return [execute_spec(spec) for spec in gang.specs]


def _gang_positions(specs: Sequence[RunSpec]) -> List[List[int]]:
    """Group spec indices by platform model identity.

    Order-preserving twice over: gangs appear in first-seen order and
    each gang lists its member indices in submission order, so results
    can be placed back positionally.
    """
    groups: Dict[PlatformSpec, List[int]] = {}
    for i, spec in enumerate(specs):
        groups.setdefault(model_identity(spec.platform), []).append(i)
    return list(groups.values())


def _seed_worker(characterizations: Dict[str, str]) -> None:
    """Pool initializer: pre-seed platform characterizations so worker
    processes never redo the (expensive) one-time characterization."""
    from repro.core.characterization import PlatformCharacterization
    from repro.harness import suite

    for name, text in characterizations.items():
        suite._characterization_cache.setdefault(
            name, PlatformCharacterization.from_json(text))


# -- content-addressed result cache ----------------------------------------------

_MAGIC = b"EAS-RUN-CACHE\n"


class ResultCache:
    """On-disk memo store: ``<root>/<key[:2]>/<key>.pkl``.

    Each entry is ``MAGIC + sha256(payload) + payload`` where payload
    is the pickled :class:`RunResult`.  ``get`` verifies the magic and
    checksum and *evicts* (deletes) any entry that fails - a corrupted
    or truncated file costs one recomputation, never a wrong result.
    An eviction is never silent: it bumps the
    ``cache.corrupt_evictions`` counter on the attached observer and
    emits a one-line :class:`RuntimeWarning` naming the evicted key.
    The schema version lives in the cache *key* (see
    :meth:`RunSpec.canonical`), so version bumps miss cleanly.
    """

    def __init__(self, root: str,
                 observer: Optional[Observer] = None) -> None:
        self.root = root
        #: Metrics sink for cache counters; the engine points this at
        #: the batch observer for the duration of a run_batch call.
        self.observer = observer
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writes = 0

    @classmethod
    def from_env(cls) -> Optional["ResultCache"]:
        """Cache rooted under ``$REPRO_CACHE_DIR/runs``, if set."""
        root = os.environ.get("REPRO_CACHE_DIR")
        return cls(os.path.join(root, "runs")) if root else None

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.pkl")

    def get(self, key: str) -> Optional[RunResult]:
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError:
            self.misses += 1
            return None
        result = self._decode(blob)
        if result is None:
            self.evictions += 1
            self.misses += 1
            try:
                os.remove(path)
            except OSError:
                pass
            if self.observer is not None:
                self.observer.inc("cache.corrupt_evictions")
            warnings.warn(
                f"result cache: evicted corrupt entry {key} "
                f"({path}); it will be recomputed", RuntimeWarning,
                stacklevel=2)
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: RunResult) -> None:
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        data = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        blob = _MAGIC + hashlib.sha256(data).digest() + data
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        self.writes += 1

    @staticmethod
    def _decode(blob: bytes) -> Optional[RunResult]:
        if not blob.startswith(_MAGIC):
            return None
        body = blob[len(_MAGIC):]
        if len(body) <= 32:
            return None
        digest, data = body[:32], body[32:]
        if hashlib.sha256(data).digest() != digest:
            return None
        try:
            result = pickle.loads(data)
        except Exception:
            return None
        if not isinstance(result, RunResult):
            return None
        result.from_cache = False
        return result


# -- the engine ------------------------------------------------------------------

class ExecutionEngine:
    """Batched spec execution: cache front, serial or pooled back.

    ``jobs=1`` executes in-process in submission order (the reference
    path); ``jobs>1`` fans uncached specs out to a process pool whose
    workers are pre-seeded with every needed platform
    characterization.  Results always return in submission order, and
    duplicate specs within one batch execute once.
    """

    def __init__(self, jobs: int = 1,
                 cache: Optional[ResultCache] = None) -> None:
        if int(jobs) < 1:
            raise HarnessError("jobs must be >= 1")
        self.jobs = int(jobs)
        self.cache = cache

    def run_batch(self, specs: Sequence[RunSpec],
                  observer: Optional[Observer] = None) -> List[RunResult]:
        specs = list(specs)
        obs = observer if observer is not None and observer.enabled else None
        if obs is not None and self.cache is not None:
            # Corruption evictions during this batch count on the
            # batch's observer (cache.corrupt_evictions).
            self.cache.observer = obs
        results: List[Optional[RunResult]] = [None] * len(specs)
        keys = [spec.cache_key() for spec in specs]
        first_for_key: Dict[str, int] = {}
        duplicate_of: Dict[int, int] = {}
        to_run: List[int] = []
        for i, key in enumerate(keys):
            if key in first_for_key:
                duplicate_of[i] = first_for_key[key]
                continue
            first_for_key[key] = i
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                cached.from_cache = True
                results[i] = cached
            else:
                to_run.append(i)

        if to_run:
            pending = [specs[i] for i in to_run]
            if self.jobs == 1 or len(pending) == 1:
                executed = self._run_serial(pending)
            else:
                executed = self._run_pool(pending)
            for i, result in zip(to_run, executed):
                results[i] = result
                if self.cache is not None:
                    self.cache.put(keys[i], result)
        for i, j in duplicate_of.items():
            results[i] = results[j]

        if obs is not None:
            self._observe_batch(obs, specs, results, executed=len(to_run))
        return results  # type: ignore[return-value]

    def run_one(self, spec: RunSpec,
                observer: Optional[Observer] = None) -> RunResult:
        return self.run_batch([spec], observer=observer)[0]

    # -- internals ---------------------------------------------------------------

    def _run_serial(self, specs: List[RunSpec]) -> List[RunResult]:
        executed: List[Optional[RunResult]] = [None] * len(specs)
        for positions in _gang_positions(specs):
            gang = SpecGang.of([specs[i] for i in positions])
            for i, result in zip(positions, execute_gang(gang)):
                executed[i] = result
        return executed  # type: ignore[return-value]

    def _run_pool(self, specs: List[RunSpec]) -> List[RunResult]:
        payload = self._characterization_payload(specs)
        # Chunk each model-identity gang into at most ``jobs`` pieces:
        # one big gang still saturates every worker, while each chunk
        # keeps enough siblings together to warm a shared core.
        chunks: List[List[int]] = []
        for positions in _gang_positions(specs):
            pieces = min(self.jobs, len(positions))
            size = -(-len(positions) // pieces)  # ceil division
            for start in range(0, len(positions), size):
                chunks.append(positions[start:start + size])
        workers = min(self.jobs, len(chunks))
        pool = ProcessPoolExecutor(max_workers=workers,
                                   initializer=_seed_worker,
                                   initargs=(payload,))
        futures = []
        try:
            futures = [pool.submit(execute_gang,
                                   SpecGang.of([specs[i] for i in chunk]))
                       for chunk in chunks]
            results: List[Optional[RunResult]] = [None] * len(specs)
            for chunk, future in zip(chunks, futures):
                for i, result in zip(chunk, future.result()):
                    results[i] = result
        except BaseException:
            # KeyboardInterrupt / SIGTERM mid-batch: without this, the
            # plain `with` block would wait for every queued spec and
            # leave orphaned workers grinding on.  Cancel what has not
            # started, terminate what has, and reap every process.
            self._teardown_pool(pool, futures)
            raise
        pool.shutdown(wait=True)
        return results  # type: ignore[return-value]

    @staticmethod
    def _teardown_pool(pool: ProcessPoolExecutor, futures: List) -> None:
        for future in futures:
            future.cancel()
        # _processes is private but stable across CPython 3.9-3.13;
        # it is the only handle on workers mid-task.
        processes = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            if process.is_alive():
                process.terminate()
        deadline = time.monotonic() + 5.0
        for process in processes:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)

    def _characterization_payload(self,
                                  specs: List[RunSpec]) -> Dict[str, str]:
        """Characterize (in the parent, possibly through this very
        engine) every platform the batch's EAS/chaos specs need."""
        platforms: Dict[str, PlatformSpec] = {}
        for spec in specs:
            needs = (spec.kind in (KIND_CHAOS_CELL, KIND_MULTIPROGRAM,
                                   KIND_FLEET_CELL)
                     or (spec.kind == KIND_APPLICATION
                         and spec.scheduler is not None
                         and spec.scheduler.kind == "eas"))
            if needs:
                platforms.setdefault(spec.platform.name, spec.platform)
        from repro.harness.suite import get_characterization

        return {name: get_characterization(platform, engine=self).to_json()
                for name, platform in platforms.items()}

    def _observe_batch(self, obs: Observer, specs: List[RunSpec],
                       results: List[RunResult], executed: int) -> None:
        obs.event("engine.batch", tasks=len(specs), executed=executed,
                  jobs=self.jobs)
        obs.inc("engine.tasks", len(specs))
        obs.inc("engine.executed", executed)
        obs.inc("engine.cache_hits",
                sum(1 for r in results if r.from_cache))
        obs.set_gauge("engine.jobs", self.jobs)
        merged = set()
        for result in results:
            if result.observer is None or id(result) in merged:
                continue
            merged.add(id(result))
            obs.merge_child(result.observer)


# -- default engine plumbing -----------------------------------------------------

_default_engine: Optional[ExecutionEngine] = None


def get_default_engine() -> ExecutionEngine:
    """The engine harness entry points use when not handed one.

    Serial with the ``$REPRO_CACHE_DIR`` memo store unless a CLI run
    (or a test) installed one via :func:`set_default_engine` /
    :func:`use_engine`.
    """
    if _default_engine is not None:
        return _default_engine
    return ExecutionEngine(jobs=1, cache=ResultCache.from_env())


def set_default_engine(engine: Optional[ExecutionEngine]) -> None:
    global _default_engine
    _default_engine = engine


@contextmanager
def use_engine(engine: Optional[ExecutionEngine]
               ) -> Iterator[Optional[ExecutionEngine]]:
    """Scoped :func:`set_default_engine` (the CLI wraps runs in this)."""
    previous = _default_engine
    set_default_engine(engine)
    try:
        yield engine
    finally:
        set_default_engine(previous)
