"""Chaos campaign: the EAS runtime under swept fault injection.

The campaign runs a workload suite on a :class:`~repro.soc.faults.FaultySoC`
at increasing fault levels and asserts the robustness invariants the
hardened runtime guarantees (see docs/ROBUSTNESS.md):

1. **no unhandled exception** - every cell completes; faults surface
   as fallbacks and quarantines, never as crashes;
2. **no lost work** - every invocation processes all N items (the
   runtime's ``parallel_for`` contract), verified against the
   simulator's ground-truth counters;
3. **bounded degradation** - EAS-under-faults EDP stays at or below
   the clean CPU-alone baseline's EDP at every fault level: at worst
   the scheduler degrades *to* the CPU, it never does worse than
   having had no GPU at all;
4. **determinism** - the same campaign run twice with the same seed
   produces byte-identical results (:meth:`ChaosCampaignResult.fingerprint`).

Cell metrics come from the simulator's *ground truth* (``inner.now``,
``inner.msr.lifetime_joules``), not from the software-visible MSR
reads: under MSR fault injection the software measurement itself is
corrupted, and an experiment must not let a broken sensor grade its
own homework.  Each cell also records the software-*measured* energy
so the discrepancy is visible in reports.
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.baselines import CpuOnlyScheduler
from repro.core.metrics import EDP, EnergyMetric
from repro.core.scheduler import EnergyAwareScheduler, SchedulerConfig
from repro.errors import ReproError
from repro.obs.records import (
    EXIT_DEGRADED,
    EXIT_FAULT_DEGRADED,
    DecisionRecord,
)
from repro.harness.report import format_table, heading
from repro.harness.suite import get_characterization
from repro.runtime.runtime import ConcordRuntime
from repro.soc.faults import FaultConfig, FaultySoC
from repro.soc.simulator import IntegratedProcessor
from repro.soc.spec import PlatformSpec, haswell_desktop
from repro.workloads.base import Workload
from repro.workloads.registry import workload_by_abbrev

#: Default fault-probability sweep (the campaign's x-axis).
DEFAULT_FAULT_LEVELS: Tuple[float, ...] = (0.0, 0.1, 0.25, 0.5)

#: Default campaign workloads: four suite applications spanning single-
#: and many-invocation launch structures.  (FD is excluded by design:
#: even fault-free, EAS trails plain CPU execution on it - the paper's
#: known miss - so it cannot carry a degradation *bound* against the
#: CPU baseline.)
DEFAULT_WORKLOADS: Tuple[str, ...] = ("MB", "BS", "MM", "RT")


def cell_seed(campaign_seed: int, workload: str, level: float) -> int:
    """Deterministic per-cell fault seed (stable across processes)."""
    tag = f"{campaign_seed}:{workload}:{level:.6f}".encode()
    return zlib.crc32(tag) & 0x7FFFFFFF


@dataclass(frozen=True)
class ChaosCell:
    """One (workload, fault level) cell of the campaign."""

    workload: str
    fault_level: float
    ok: bool
    error: str = ""
    #: Ground-truth wall time and energy of the whole application.
    time_s: float = 0.0
    energy_j: float = 0.0
    #: Energy as read through the (possibly faulty) software MSR
    #: protocol - may disagree with ground truth under MSR faults.
    measured_energy_j: float = 0.0
    items_expected: float = 0.0
    items_processed: float = 0.0
    invocations: int = 0
    #: Invocations that ended in a GPU-fault CPU fallback.
    fallback_invocations: int = 0
    #: Kernels whose fault budget was exhausted (sticky degradation).
    degraded_kernels: int = 0
    #: Injected fault counts by kind, from the substrate's fault log.
    fault_counts: Dict[str, int] = field(default_factory=dict)
    #: Per-invocation scheduler audit records (the observability
    #: layer's decision stream), in invocation order.  Deliberately
    #: EXCLUDED from :meth:`canonical`: the determinism fingerprint is
    #: pinned by the measured quantities, and keeping its input set
    #: frozen lets fingerprints compare across code revisions that
    #: only enrich the audit trail.
    decision_records: Tuple[DecisionRecord, ...] = ()

    @property
    def edp(self) -> float:
        return self.energy_j * self.time_s

    @property
    def all_items_processed(self) -> bool:
        return abs(self.items_processed - self.items_expected) <= max(
            1e-6 * self.items_expected, 1e-6)

    def canonical(self) -> str:
        """Byte-stable serialization for the determinism fingerprint."""
        counts = ",".join(f"{k}={v}" for k, v in sorted(self.fault_counts.items()))
        return (f"{self.workload}|{self.fault_level!r}|{self.ok}|{self.error}|"
                f"{self.time_s!r}|{self.energy_j!r}|{self.measured_energy_j!r}|"
                f"{self.items_processed!r}|{self.invocations}|"
                f"{self.fallback_invocations}|{self.degraded_kernels}|{counts}")

    def degradation_explanations(self) -> List[str]:
        """One line per decision that degraded or fell back to the CPU.

        Every degraded kernel in the cell is explained by at least one
        of these lines, naming the specific fault event(s) observed and
        the fallback reason the scheduler recorded.
        """
        lines = []
        for record in self.decision_records:
            if (record.fallback_reason is not None
                    or record.exit_path in (EXIT_DEGRADED,
                                            EXIT_FAULT_DEGRADED)):
                lines.append(record.explain())
        return lines


@dataclass
class ChaosCampaignResult:
    """Full sweep: workloads x fault levels, plus clean CPU baselines."""

    platform: str
    seed: int
    levels: List[float]
    workloads: List[str]
    #: Clean CPU-alone (time_s, energy_j) per workload.
    cpu_baselines: Dict[str, Tuple[float, float]]
    cells: List[ChaosCell]

    # -- invariants -------------------------------------------------------------

    @property
    def all_ok(self) -> bool:
        """Invariant 1: every cell completed without an exception."""
        return all(cell.ok for cell in self.cells)

    @property
    def all_items_processed(self) -> bool:
        """Invariant 2: no invocation lost work, at any fault level."""
        return all(cell.all_items_processed for cell in self.cells if cell.ok)

    def cpu_edp(self, workload: str) -> float:
        time_s, energy_j = self.cpu_baselines[workload]
        return energy_j * time_s

    def edp_bound_violations(self) -> List[ChaosCell]:
        """Invariant 3: cells whose EDP exceeds the CPU-alone baseline."""
        return [cell for cell in self.cells
                if cell.ok and cell.edp > self.cpu_edp(cell.workload)]

    @property
    def edp_bounded(self) -> bool:
        return not self.edp_bound_violations()

    def fingerprint(self) -> str:
        """Invariant 4: byte-identical reruns hash identically."""
        payload = "\n".join([
            f"{self.platform}|{self.seed}",
            *(f"{w}|{t!r}|{e!r}" for w, (t, e) in sorted(self.cpu_baselines.items())),
            *(cell.canonical() for cell in self.cells),
        ])
        return hashlib.sha256(payload.encode()).hexdigest()

    def total_fault_counts(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for cell in self.cells:
            for kind, count in cell.fault_counts.items():
                totals[kind] = totals.get(kind, 0) + count
        return totals

    def render(self) -> str:
        rows = []
        for cell in self.cells:
            status = "ok" if cell.ok else f"FAILED: {cell.error}"
            ratio = (cell.edp / self.cpu_edp(cell.workload)
                     if cell.ok and self.cpu_edp(cell.workload) > 0 else float("nan"))
            rows.append((
                cell.workload, f"{cell.fault_level:.2f}",
                cell.fault_counts and sum(cell.fault_counts.values()) or 0,
                cell.fallback_invocations, cell.degraded_kernels,
                cell.edp if cell.ok else float("nan"), ratio, status))
        table = format_table(
            ["workload", "fault p", "faults", "fallbacks", "degraded",
             "EDP (J*s)", "EDP / CPU", "status"], rows, float_digits=3)
        invariants = [
            f"no unhandled exceptions: {'PASS' if self.all_ok else 'FAIL'}",
            f"all items processed:     "
            f"{'PASS' if self.all_items_processed else 'FAIL'}",
            f"EDP <= CPU baseline:     {'PASS' if self.edp_bounded else 'FAIL'}",
            f"fingerprint: {self.fingerprint()}",
        ]
        totals = ", ".join(f"{k}={v}" for k, v in
                           sorted(self.total_fault_counts().items())) or "none"
        audit: List[str] = []
        for cell in self.cells:
            if not (cell.degraded_kernels or cell.fallback_invocations):
                continue
            lines = cell.degradation_explanations()
            for line in lines[:3]:
                audit.append(f"  [{cell.workload} @ p={cell.fault_level:.2f}] "
                             f"{line}")
            if len(lines) > 3:
                audit.append(f"  [{cell.workload} @ p={cell.fault_level:.2f}] "
                             f"... and {len(lines) - 3} more")
        return "\n".join([
            heading(f"Chaos campaign on {self.platform} (seed {self.seed})"),
            table,
            "",
            f"injected faults: {totals}",
            *(["", "degradation audit (from decision records):", *audit]
              if audit else []),
            "",
            *invariants,
        ])


def run_chaos_cell(spec: PlatformSpec, workload: Workload, characterization,
                   fault_level: float, seed: int,
                   metric: EnergyMetric = EDP,
                   eas_config: Optional[SchedulerConfig] = None) -> ChaosCell:
    """One workload under EAS on a faulty SoC at one fault level.

    Any :class:`ReproError` escaping the runtime marks the cell failed
    (invariant 1 is *asserted by the caller*, not hidden here).
    """
    inner = IntegratedProcessor(spec)
    faulty = FaultySoC(inner, FaultConfig.from_level(fault_level, seed=seed))
    runtime = ConcordRuntime(faulty)
    scheduler = EnergyAwareScheduler(characterization, metric,
                                    config=eas_config)
    kernel = workload.make_kernel()
    invocations = workload.invocations()
    expected = sum(inv.n_items for inv in invocations)

    t0 = inner.now
    e0 = inner.msr.lifetime_joules
    counters0 = inner.snapshot_counters()
    msr0 = faulty.read_energy_msr()
    fallbacks = 0
    processed = 0.0
    try:
        for inv in invocations:
            result = runtime.parallel_for(kernel, inv.n_items, scheduler)
            if "gpu-faulted-fallback" in result.notes:
                fallbacks += 1
    except ReproError as exc:
        return ChaosCell(workload=workload.abbrev, fault_level=fault_level,
                         ok=False, error=f"{type(exc).__name__}: {exc}",
                         items_expected=expected,
                         fault_counts=faulty.fault_log.kinds(),
                         decision_records=tuple(scheduler.decisions))
    msr1 = faulty.read_energy_msr()
    counters1 = inner.snapshot_counters()
    processed = (counters1.cpu_items - counters0.cpu_items
                 + counters1.gpu_items - counters0.gpu_items)
    return ChaosCell(
        workload=workload.abbrev,
        fault_level=fault_level,
        ok=True,
        time_s=inner.now - t0,
        energy_j=inner.msr.lifetime_joules - e0,
        measured_energy_j=inner.msr.joules_between(msr0, msr1),
        items_expected=expected,
        items_processed=processed,
        invocations=len(invocations),
        fallback_invocations=fallbacks,
        degraded_kernels=len(scheduler.degraded_kernels),
        fault_counts=faulty.fault_log.kinds(),
        decision_records=tuple(scheduler.decisions),
    )


def run_chaos_campaign(spec: Optional[PlatformSpec] = None,
                       workloads: Optional[Sequence[Workload]] = None,
                       fault_levels: Sequence[float] = DEFAULT_FAULT_LEVELS,
                       seed: int = 2016,
                       metric: EnergyMetric = EDP,
                       eas_config: Optional[SchedulerConfig] = None,
                       engine=None,
                       tick_mode: Optional[str] = None
                       ) -> ChaosCampaignResult:
    """Sweep fault probability over the workload suite under EAS.

    Fully deterministic given ``seed``: per-cell fault streams are
    derived via :func:`cell_seed`, and every reported quantity comes
    from the deterministic simulation - which is why the whole grid
    (clean CPU baselines + cells) can fan out through the execution
    ``engine`` (default: the session's) with unchanged fingerprints.
    """
    from repro.harness.engine import (
        KIND_CHAOS_BASELINE,
        KIND_CHAOS_CELL,
        RunSpec,
        SchedulerSpec,
        get_default_engine,
        plain_scheduler_config,
        reconstructible_workload,
        standard_metric_name,
    )

    spec = spec or haswell_desktop(tick_mode=tick_mode)
    if workloads is None:
        workloads = [workload_by_abbrev(a) for a in DEFAULT_WORKLOADS]
    if engine is None:
        engine = get_default_engine()

    engine_ok = (standard_metric_name(metric) is not None
                 and plain_scheduler_config(eas_config)
                 and all(reconstructible_workload(w) for w in workloads))
    if engine_ok:
        eas = SchedulerSpec.eas(metric, eas_config)
        batch = [RunSpec(platform=spec, workload=w.abbrev,
                         kind=KIND_CHAOS_BASELINE) for w in workloads]
        batch.extend(
            RunSpec(platform=spec, workload=workload.abbrev,
                    scheduler=eas, kind=KIND_CHAOS_CELL, fault_level=level,
                    seed=cell_seed(seed, workload.abbrev, level))
            for workload in workloads
            for level in fault_levels)
        results = engine.run_batch(batch)
        cpu_baselines = {w.abbrev: results[i].payload
                         for i, w in enumerate(workloads)}
        cells = [r.payload for r in results[len(workloads):]]
        return ChaosCampaignResult(
            platform=spec.name,
            seed=seed,
            levels=list(fault_levels),
            workloads=[w.abbrev for w in workloads],
            cpu_baselines=cpu_baselines,
            cells=cells,
        )

    characterization = get_characterization(spec)
    cpu_baselines: Dict[str, Tuple[float, float]] = {}
    for workload in workloads:
        inner = IntegratedProcessor(spec)
        runtime = ConcordRuntime(inner)
        scheduler = CpuOnlyScheduler()
        kernel = workload.make_kernel()
        t0, e0 = inner.now, inner.msr.lifetime_joules
        for inv in workload.invocations():
            runtime.parallel_for(kernel, inv.n_items, scheduler)
        cpu_baselines[workload.abbrev] = (inner.now - t0,
                                          inner.msr.lifetime_joules - e0)

    cells = [
        run_chaos_cell(spec, workload, characterization, level,
                       seed=cell_seed(seed, workload.abbrev, level),
                       metric=metric, eas_config=eas_config)
        for workload in workloads
        for level in fault_levels
    ]
    return ChaosCampaignResult(
        platform=spec.name,
        seed=seed,
        levels=list(fault_levels),
        workloads=[w.abbrev for w in workloads],
        cpu_baselines=cpu_baselines,
        cells=cells,
    )


def regenerate_chaos(tick_mode: Optional[str] = None) -> ChaosCampaignResult:
    """Registry entry point: the default desktop chaos campaign."""
    return run_chaos_campaign(tick_mode=tick_mode)


# -- multiprogram chaos ----------------------------------------------------------

#: Default multiprogram chaos mix: two many-invocation tenants that
#: genuinely contend for the GPU lease (BS has 2000 invocations, CC
#: 2147), with CC prioritized so both arbiter policies are meaningful.
DEFAULT_TENANT_MIX = "BS,CC:5"


@dataclass(frozen=True)
class MultiprogramChaosCell:
    """One (arbiter policy, fault level) cell of the tenancy campaign."""

    policy: str
    fault_level: float
    ok: bool
    error: str = ""
    #: The underlying :meth:`MultiprogramResult.fingerprint`.
    result_fingerprint: str = ""
    items_ok: bool = False
    gpu_busy_exits: int = 0
    lease_denials: int = 0
    total_time_s: float = 0.0
    total_energy_j: float = 0.0

    def canonical(self) -> str:
        return (f"{self.policy}|{self.fault_level!r}|{self.ok}|{self.error}|"
                f"{self.result_fingerprint}|{self.items_ok}|"
                f"{self.gpu_busy_exits}|{self.lease_denials}|"
                f"{self.total_time_s!r}|{self.total_energy_j!r}")


@dataclass
class MultiprogramChaosCampaignResult:
    """Arbiter policies x fault levels, one tenant mix per campaign.

    Asserts the tenancy analogues of the campaign invariants: every
    cell completes (faults surface as fallbacks, not crashes), no
    tenant loses work at any fault level, and the whole grid is
    byte-deterministic under a fixed seed.
    """

    platform: str
    seed: int
    tenant_text: str
    lease_quantum: int
    policies: List[str]
    levels: List[float]
    cells: List[MultiprogramChaosCell]

    @property
    def all_ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    @property
    def all_items_processed(self) -> bool:
        return all(cell.items_ok for cell in self.cells if cell.ok)

    def fingerprint(self) -> str:
        payload = "\n".join([
            f"{self.platform}|{self.seed}|{self.tenant_text}|"
            f"{self.lease_quantum}",
            *(cell.canonical() for cell in self.cells),
        ])
        return hashlib.sha256(payload.encode()).hexdigest()

    def render(self) -> str:
        rows = []
        for cell in self.cells:
            status = "ok" if cell.ok else f"FAILED: {cell.error}"
            rows.append((cell.policy, f"{cell.fault_level:.2f}",
                         cell.lease_denials, cell.gpu_busy_exits,
                         cell.total_time_s, cell.total_energy_j, status))
        table = format_table(
            ["policy", "fault p", "denials", "gpu-busy exits", "time (s)",
             "energy (J)", "status"], rows, float_digits=3)
        return "\n".join([
            heading(f"Multiprogram chaos campaign on {self.platform} "
                    f"(tenants={self.tenant_text}, seed {self.seed})"),
            table,
            "",
            f"no unhandled exceptions: {'PASS' if self.all_ok else 'FAIL'}",
            f"all items processed:     "
            f"{'PASS' if self.all_items_processed else 'FAIL'}",
            f"fingerprint: {self.fingerprint()}",
        ])


def run_multiprogram_chaos_campaign(
        spec: Optional[PlatformSpec] = None,
        tenant_text: str = DEFAULT_TENANT_MIX,
        policies: Optional[Sequence[str]] = None,
        fault_levels: Sequence[float] = DEFAULT_FAULT_LEVELS,
        seed: int = 2016,
        lease_quantum: int = 2,
        metric: EnergyMetric = EDP,
        eas_config: Optional[SchedulerConfig] = None,
        tick_mode: Optional[str] = None,
) -> MultiprogramChaosCampaignResult:
    """Sweep fault probability over the tenancy layer, per policy.

    Runs the same tenant mix under every arbiter policy at every fault
    level; per-cell fault streams derive from :func:`cell_seed` (keyed
    by ``mp:<policy>``) so the grid is deterministic and cells are
    independent.
    """
    from repro.runtime.tenancy import (
        ARBITER_POLICIES,
        parse_tenant_specs,
        run_multiprogram,
    )

    spec = spec or haswell_desktop(tick_mode=tick_mode)
    if policies is None:
        policies = list(ARBITER_POLICIES)
    characterization = get_characterization(spec)
    cells: List[MultiprogramChaosCell] = []
    for policy in policies:
        for level in fault_levels:
            cs = cell_seed(seed, f"mp:{policy}", level)
            try:
                result = run_multiprogram(
                    spec=spec, tenants=parse_tenant_specs(tenant_text),
                    policy=policy, seed=cs, metric=metric,
                    fault_level=level, lease_quantum=lease_quantum,
                    eas_config=eas_config,
                    characterization=characterization)
            except ReproError as exc:
                cells.append(MultiprogramChaosCell(
                    policy=policy, fault_level=level, ok=False,
                    error=f"{type(exc).__name__}: {exc}"))
                continue
            cells.append(MultiprogramChaosCell(
                policy=policy, fault_level=level, ok=True,
                result_fingerprint=result.fingerprint(),
                items_ok=result.all_items_processed,
                gpu_busy_exits=result.total_gpu_busy_exits,
                lease_denials=result.total_lease_denials,
                total_time_s=result.total_time_s,
                total_energy_j=result.total_energy_j))
    return MultiprogramChaosCampaignResult(
        platform=spec.name,
        seed=seed,
        tenant_text=tenant_text,
        lease_quantum=lease_quantum,
        policies=list(policies),
        levels=list(fault_levels),
        cells=cells,
    )
