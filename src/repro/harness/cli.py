"""Command-line entry point: ``python -m repro.harness``.

Examples::

    python -m repro.harness --list
    python -m repro.harness --figure 9
    python -m repro.harness --experiment table1
    python -m repro.harness --all
    python -m repro.harness --run CC --platform desktop --metric edp
    python -m repro.harness --run SL --strategies cpu,gpu,eas --metric energy
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.core.baselines import (
    CpuOnlyScheduler,
    GpuOnlyScheduler,
    ProfiledPerfScheduler,
)
from repro.core.metrics import metric_by_name
from repro.core.scheduler import EnergyAwareScheduler
from repro.errors import HarnessError
from repro.harness.experiment import run_application
from repro.harness.figures import REGENERATORS, regenerate
from repro.harness.report import format_table, heading
from repro.harness.suite import get_characterization
from repro.soc.spec import baytrail_tablet, haswell_desktop
from repro.workloads.registry import workload_by_abbrev


def _figure_id(number: str) -> str:
    """Accept a bare figure number or a named experiment id."""
    try:
        return f"fig{int(number)}"
    except ValueError:
        return number.lower()


def _run_custom(args: argparse.Namespace) -> int:
    """Run one workload under selected strategies and print the table."""
    tablet = args.platform == "tablet"
    spec = baytrail_tablet() if tablet else haswell_desktop()
    workload = workload_by_abbrev(args.run)
    metric = metric_by_name(args.metric)
    wanted = [s.strip().lower() for s in args.strategies.split(",")]

    def make(name: str):
        if name == "cpu":
            return CpuOnlyScheduler()
        if name == "gpu":
            return GpuOnlyScheduler()
        if name == "perf":
            return ProfiledPerfScheduler()
        if name == "eas":
            return EnergyAwareScheduler(
                get_characterization(spec, cache_dir=args.cache_dir), metric)
        raise HarnessError(
            f"unknown strategy {name!r}; expected cpu, gpu, perf or eas")

    if args.trace_csv and len(wanted) != 1:
        raise HarnessError("--trace-csv needs exactly one strategy "
                           "(use --strategies eas, for example)")

    print(heading(f"{workload.name} ({workload.abbrev}) on {spec.name}, "
                  f"metric={metric.name}"))
    rows = []
    for name in wanted:
        run = run_application(spec, workload, make(name), name,
                              tablet=tablet, trace=bool(args.trace_csv))
        alpha = "-" if run.final_alpha is None else f"{run.final_alpha:.2f}"
        rows.append((name.upper(), alpha, run.time_s, run.energy_j,
                     run.metric_value(metric)))
        if args.trace_csv:
            from repro.soc.trace import write_csv

            rows_written = write_csv(run.trace, args.trace_csv)
            print(f"[wrote {rows_written} trace rows to {args.trace_csv}]")
    print(format_table(
        ["strategy", "alpha", "time (s)", "energy (J)",
         f"{metric.name} value"], rows))
    best = min(rows, key=lambda r: r[4])
    print(f"\nbest {metric.name}: {best[0]}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures, or run "
                    "custom strategy comparisons, on the simulated "
                    "platforms.")
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--figure", metavar="N",
                       help="regenerate figure N (1-6, 9-12) or a named "
                            "experiment (e.g. table1, chaos)")
    group.add_argument("--experiment", metavar="ID",
                       help="regenerate by id (fig1..fig12, table1)")
    group.add_argument("--all", action="store_true",
                       help="regenerate every table and figure")
    group.add_argument("--list", action="store_true",
                       help="list available experiment ids")
    group.add_argument("--run", metavar="WORKLOAD",
                       help="run one workload (by Table-1 abbreviation) "
                            "under selected strategies")
    parser.add_argument("--platform", choices=("desktop", "tablet"),
                        default="desktop",
                        help="platform for --run (default: desktop)")
    parser.add_argument("--metric", default="edp",
                        help="objective for --run: energy, edp or ed2 "
                             "(default: edp)")
    parser.add_argument("--strategies", default="cpu,gpu,perf,eas",
                        help="comma-separated strategies for --run "
                             "(default: cpu,gpu,perf,eas)")
    parser.add_argument("--cache-dir", default=None,
                        help="directory for cached platform "
                             "characterizations (JSON)")
    parser.add_argument("--trace-csv", default=None, metavar="PATH",
                        help="with --run and a single strategy: write the "
                             "power timeline of the run to PATH as CSV")
    args = parser.parse_args(argv)

    if args.list:
        for name in REGENERATORS:
            print(name)
        return 0

    if args.run is not None:
        return _run_custom(args)

    names: List[str]
    if args.all:
        names = list(REGENERATORS)
    elif args.figure is not None:
        names = [_figure_id(args.figure)]
    else:
        names = [args.experiment]

    for name in names:
        started = time.perf_counter()
        result = regenerate(name)
        elapsed = time.perf_counter() - started
        print(result.render())
        print(f"\n[{name} regenerated in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
