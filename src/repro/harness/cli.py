"""Command-line entry point: ``python -m repro.harness``.

Examples::

    python -m repro.harness --list
    python -m repro.harness --figure 9
    python -m repro.harness --experiment table1
    python -m repro.harness --all
    python -m repro.harness --run CC --platform desktop --metric edp
    python -m repro.harness --run SL --strategies cpu,gpu,eas --metric energy
    python -m repro.harness --run CC --trace /tmp/cc.json --metrics-out /tmp/cc-metrics.json
    python -m repro.harness --run MM --strategies eas --fault-level 0.3 --seed 7
    python -m repro.harness --figure 9 --jobs 4
    python -m repro.harness --all --jobs 4 --cache-dir ~/.cache/repro
    python -m repro.harness --figure chaos --no-cache

``--figure`` and ``--experiment`` are interchangeable: both accept a
bare number (``9``), a ``figN`` id, or a named experiment (``table1``,
``chaos``).  Unknown names fail with did-you-mean suggestions.

``--trace`` writes a Chrome trace-event JSON (load it in
``chrome://tracing`` or Perfetto) merging scheduler/runtime spans,
per-invocation decision records, and the simulated power timeline -
one trace *process* per strategy.  ``--metrics-out`` writes the
strategies' metric registries as one JSON snapshot.  Both are
schema-validated formats (``python -m repro.obs.validate FILE``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

from repro.core.baselines import (
    CpuOnlyScheduler,
    GpuOnlyScheduler,
    ProfiledPerfScheduler,
    RaceToIdleScheduler,
)
from repro.core.metrics import metric_by_name
from repro.core.scheduler import EnergyAwareScheduler
from repro.errors import HarnessError
from repro.harness.chaos import run_chaos_campaign
from repro.harness.engine import (
    KIND_MULTIPROGRAM,
    ExecutionEngine,
    ResultCache,
    RunSpec,
    SchedulerSpec,
    use_engine,
)
from repro.harness.experiment import run_application
from repro.harness.figures import REGENERATORS, experiment_id
from repro.harness.report import format_table, heading
from repro.harness.suite import get_characterization
from repro.obs.export import (
    SCHEMA_VERSION,
    TraceSection,
    write_chrome_trace,
)
from repro.obs.observer import Observer
from repro.soc.faults import FaultConfig
from repro.soc.spec import TICK_MODES, baytrail_tablet, haswell_desktop
from repro.workloads.registry import workload_by_abbrev


def _write_merged_metrics(path: str, observers: "Dict[str, Observer]",
                          metadata: Dict[str, Any]) -> None:
    """One metrics snapshot covering every strategy (names prefixed)."""
    merged: Dict[str, Dict[str, Any]] = {
        "counters": {}, "gauges": {}, "histograms": {}}
    for strategy, observer in observers.items():
        snapshot = observer.metrics.snapshot()
        for kind in merged:
            for name, value in snapshot[kind].items():
                merged[kind][f"{strategy}/{name}"] = value
    payload = {
        "schema_version": SCHEMA_VERSION,
        "metadata": metadata,
        "metrics": merged,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _run_custom(args: argparse.Namespace) -> int:
    """Run one workload under selected strategies and print the table."""
    tablet = args.platform == "tablet"
    factory = baytrail_tablet if tablet else haswell_desktop
    spec = factory(tick_mode=args.tick_mode)
    workload = workload_by_abbrev(args.run)
    metric = metric_by_name(args.metric)
    wanted = [s.strip().lower() for s in args.strategies.split(",")]
    observing = bool(args.trace or args.metrics_out)
    fault_config = (FaultConfig.from_level(args.fault_level, seed=args.seed)
                    if args.fault_level > 0.0 else None)

    def make(name: str):
        if name == "cpu":
            return CpuOnlyScheduler()
        if name == "gpu":
            return GpuOnlyScheduler()
        if name == "perf":
            return ProfiledPerfScheduler()
        if name == "eas":
            return EnergyAwareScheduler(
                get_characterization(spec, cache_dir=args.cache_dir), metric)
        if name == "race":
            # Race-to-idle banks the same budget the constrained metric
            # carries (--metric edp@2 -> 2 s); unconstrained metrics
            # leave it as a pure alpha_PERF sprint.
            return RaceToIdleScheduler(
                deadline_s=getattr(metric, "deadline_s", None))
        raise HarnessError(
            f"unknown strategy {name!r}; expected cpu, gpu, perf, "
            f"race or eas")

    if args.trace_csv and len(wanted) != 1:
        raise HarnessError("--trace-csv needs exactly one strategy "
                           "(use --strategies eas, for example)")

    print(heading(f"{workload.name} ({workload.abbrev}) on {spec.name}, "
                  f"metric={metric.name}"
                  + (f", fault-level={args.fault_level}"
                     if fault_config else "")))
    rows = []
    sections: List[TraceSection] = []
    observers: Dict[str, Observer] = {}
    for name in wanted:
        observer = None
        if observing:
            observer = Observer(metadata={
                "workload": workload.abbrev, "platform": spec.name,
                "strategy": name, "metric": metric.name,
                "seed": args.seed, "fault_level": args.fault_level})
            observers[name] = observer
        run = run_application(spec, workload, make(name), name,
                              tablet=tablet,
                              trace=bool(args.trace_csv) or bool(args.trace),
                              observer=observer,
                              fault_config=fault_config)
        if observing:
            sections.append(TraceSection(name=name, observer=observer,
                                         power_trace=run.trace))
        alpha = "-" if run.final_alpha is None else f"{run.final_alpha:.2f}"
        rows.append((name.upper(), alpha, run.time_s, run.energy_j,
                     run.metric_value(metric)))
        if args.trace_csv:
            from repro.soc.trace import write_csv

            rows_written = write_csv(run.trace, args.trace_csv)
            print(f"[wrote {rows_written} trace rows to {args.trace_csv}]")
    print(format_table(
        ["strategy", "alpha", "time (s)", "energy (J)",
         f"{metric.name} value"], rows))
    best = min(rows, key=lambda r: r[4])
    print(f"\nbest {metric.name}: {best[0]}")

    metadata = {"workload": workload.abbrev, "platform": spec.name,
                "metric": metric.name, "strategies": wanted,
                "seed": args.seed, "fault_level": args.fault_level}
    if args.trace:
        count = write_chrome_trace(args.trace, sections, metadata)
        print(f"[wrote {count} trace events to {args.trace}]")
    if args.metrics_out:
        _write_merged_metrics(args.metrics_out, observers, metadata)
        print(f"[wrote metrics snapshot to {args.metrics_out}]")
    return 0


def _run_multiprogram(args: argparse.Namespace,
                      engine: ExecutionEngine) -> int:
    """Run a multiprogram co-scheduling experiment through the engine."""
    from repro.runtime.tenancy import TenancySpec, parse_tenant_specs

    if args.lease_quantum < 1:
        raise HarnessError("--lease-quantum must be >= 1")
    tenancy = TenancySpec(policy=args.arbiter,
                          lease_quantum=args.lease_quantum,
                          tenants=parse_tenant_specs(args.tenants))
    tablet = args.platform == "tablet"
    factory = baytrail_tablet if tablet else haswell_desktop
    spec = RunSpec(
        platform=factory(tick_mode=args.tick_mode),
        kind=KIND_MULTIPROGRAM,
        scheduler=SchedulerSpec.eas(metric=args.metric),
        tablet=tablet,
        fault_level=args.fault_level,
        seed=args.seed,
        tenancy=tenancy)
    result = engine.run_one(spec).payload
    print(result.render())
    return 0


def _make_cache(args: argparse.Namespace) -> Optional[ResultCache]:
    """Run-result cache per the flags: ``--no-cache`` wins; otherwise
    ``--cache-dir`` (or ``$REPRO_CACHE_DIR``) roots both the
    characterization JSON cache and the ``runs/`` memo store."""
    if args.no_cache:
        return None
    if args.cache_dir:
        return ResultCache(os.path.join(args.cache_dir, "runs"))
    return ResultCache.from_env()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures, or run "
                    "custom strategy comparisons, on the simulated "
                    "platforms.")
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--figure", metavar="N",
                       help="regenerate figure N (1-6, 9-12) or a named "
                            "experiment (e.g. table1, chaos)")
    group.add_argument("--experiment", metavar="ID",
                       help="alias of --figure: a number, figN id or "
                            "experiment name")
    group.add_argument("--all", action="store_true",
                       help="regenerate every table and figure")
    group.add_argument("--list", action="store_true",
                       help="list available experiment ids")
    group.add_argument("--run", metavar="WORKLOAD",
                       help="run one workload (by Table-1 abbreviation) "
                            "under selected strategies")
    group.add_argument("--tenants", metavar="SPECS",
                       help="run a multiprogram co-scheduling experiment: "
                            "comma-separated tenant specs "
                            "ABBREV[:priority[:deadline_s]] (e.g. "
                            "'BS,CC:5' or 'BS:0,CC:5:40,SP'); tenants "
                            "share one SoC under a GPU lease arbiter "
                            "(see --arbiter, docs/ARCHITECTURE.md)")
    parser.add_argument("--platform", choices=("desktop", "tablet"),
                        default="desktop",
                        help="platform for --run (default: desktop)")
    parser.add_argument("--metric", default="edp",
                        help="objective for --run: energy, edp or ed2, "
                             "optionally deadline-constrained as "
                             "NAME@SECONDS (e.g. edp@2 minimizes EDP "
                             "over alphas meeting a 2 s deadline; see "
                             "docs/OBJECTIVES.md) (default: edp)")
    parser.add_argument("--strategies", default="cpu,gpu,perf,eas",
                        help="comma-separated strategies for --run: "
                             "cpu, gpu, perf, race, eas "
                             "(default: cpu,gpu,perf,eas)")
    parser.add_argument("--cache-dir", default=None,
                        help="directory for cached platform "
                             "characterizations (JSON)")
    parser.add_argument("--seed", type=int, default=2016,
                        help="seed for seeded experiments: the chaos "
                             "campaign and --fault-level injection "
                             "(default: 2016)")
    parser.add_argument("--fault-level", type=float, default=0.0,
                        metavar="P",
                        help="with --run: execute on a faulty SoC at "
                             "fault probability P (0 disables; "
                             "see docs/ROBUSTNESS.md)")
    parser.add_argument("--arbiter", choices=("fifo", "priority"),
                        default="fifo",
                        help="with --tenants: GPU lease arbitration "
                             "policy (default: fifo)")
    parser.add_argument("--lease-quantum", type=int, default=2, metavar="K",
                        help="with --tenants: kernel invocations a tenant "
                             "holds the GPU lease for before release "
                             "(default: 2)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="with --run: write a Chrome trace-event JSON "
                             "(spans + decisions + power timeline) to PATH")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="with --run: write the metrics registry "
                             "snapshot to PATH as JSON")
    parser.add_argument("--trace-csv", default=None, metavar="PATH",
                        help="with --run and a single strategy: write the "
                             "power timeline of the run to PATH as CSV")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for figure/suite "
                             "simulations (default: 1 = serial; results "
                             "are byte-identical at any N, see "
                             "docs/PARALLELISM.md)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the content-addressed run-result "
                             "cache entirely (no reads, no writes)")
    parser.add_argument("--tick-mode", choices=TICK_MODES, default=None,
                        help="simulator clock mode: 'exact' (reference, "
                             "byte-stable fingerprints) or 'fast' "
                             "(event-driven fast-forward, <1e-6 relative "
                             "divergence; see docs/PERFORMANCE.md). "
                             "Default: exact, except the fleet and "
                             "crashchaos experiments which default to "
                             "fast")
    args = parser.parse_args(argv)

    if args.jobs < 1:
        raise HarnessError("--jobs must be >= 1")
    engine = ExecutionEngine(jobs=args.jobs, cache=_make_cache(args))

    with use_engine(engine):
        if args.run is not None:
            return _run_custom(args)

        if args.tenants is not None:
            if args.trace or args.metrics_out or args.trace_csv:
                raise HarnessError(
                    "--trace/--metrics-out/--trace-csv require --run")
            return _run_multiprogram(args, engine)

        if args.trace or args.metrics_out or args.fault_level:
            raise HarnessError(
                "--trace/--metrics-out/--fault-level require --run")

        if args.list:
            for name in REGENERATORS:
                print(name)
            return 0

        names: List[str]
        if args.all:
            names = list(REGENERATORS)
        else:
            names = [experiment_id(args.figure if args.figure is not None
                                   else args.experiment)]

        for name in names:
            started = time.perf_counter()
            if name == "chaos":
                result = run_chaos_campaign(seed=args.seed, engine=engine,
                                            tick_mode=args.tick_mode)
            else:
                result = REGENERATORS[name](tick_mode=args.tick_mode)
            elapsed = time.perf_counter() - started
            print(result.render())
            print(f"\n[{name} regenerated in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
