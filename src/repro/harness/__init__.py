"""Evaluation harness: runs the paper's experiments end to end.

* :mod:`repro.harness.experiment` - run one (platform, workload,
  scheduler) application to completion on a fresh simulated processor;
* :mod:`repro.harness.suite` - alpha sweeps (Oracle / PERF), strategy
  comparisons, and Oracle-relative efficiency tables (Figs. 9-12);
* :mod:`repro.harness.figures` - one regenerator per paper table and
  figure;
* :mod:`repro.harness.chaos` - the robustness chaos campaign: EAS on a
  fault-injecting SoC across a swept fault level (docs/ROBUSTNESS.md);
* :mod:`repro.harness.report` - ASCII rendering of tables and series;
* :mod:`repro.harness.cli` - ``python -m repro.harness --figure N``.
"""

from repro.harness.chaos import (
    ChaosCampaignResult,
    ChaosCell,
    run_chaos_campaign,
)
from repro.harness.experiment import ApplicationRun, run_application
from repro.harness.suite import (
    AlphaSweep,
    StrategyOutcome,
    SuiteEvaluation,
    evaluate_suite,
    get_characterization,
    sweep_alphas,
)

__all__ = [
    "ApplicationRun",
    "run_application",
    "ChaosCampaignResult",
    "ChaosCell",
    "run_chaos_campaign",
    "AlphaSweep",
    "sweep_alphas",
    "StrategyOutcome",
    "SuiteEvaluation",
    "evaluate_suite",
    "get_characterization",
]
