"""Single-application experiment runner.

Runs every kernel invocation of one workload on a fresh simulated
processor under one scheduler, measuring application-level wall time
and MSR energy exactly as the paper's harness does on hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.metrics import EnergyMetric
from repro.obs.observer import NULL_OBSERVER, Observer
from repro.runtime.runtime import ConcordRuntime, InvocationResult
from repro.soc.faults import FaultConfig, FaultySoC
from repro.soc.simulator import IntegratedProcessor
from repro.soc.spec import PlatformSpec
from repro.soc.trace import PowerTrace
from repro.workloads.base import Workload

SchedulerFactory = Callable[[], object]


@dataclass
class ApplicationRun:
    """Measured outcome of one full application execution."""

    platform: str
    workload: str
    strategy: str
    time_s: float
    energy_j: float
    invocations: List[InvocationResult] = field(default_factory=list)
    trace: Optional[PowerTrace] = None

    @property
    def average_power_w(self) -> float:
        return self.energy_j / self.time_s if self.time_s > 0 else 0.0

    def metric_value(self, metric: EnergyMetric) -> float:
        """E * T^(k-1) evaluated from the measured run."""
        return metric.from_energy(self.energy_j, self.time_s)

    @property
    def final_alpha(self) -> Optional[float]:
        for result in reversed(self.invocations):
            if result.alpha is not None:
                return result.alpha
        return None

    def canonical(self) -> str:
        """Byte-stable serialization of every measured quantity.

        ``repr`` floats round-trip exactly, so two runs serialize
        identically iff they are bit-identical - the serial/parallel
        equivalence tests hash this (via the sweep and suite
        fingerprints) to prove the execution engine changes nothing.
        """
        invocations = ";".join(
            f"{r.kernel_name}|{r.n_items!r}|{r.duration_s!r}|"
            f"{r.energy_j!r}|{r.cpu_items!r}|{r.gpu_items!r}|{r.alpha!r}|"
            f"{int(r.profiled)}|{r.profile_rounds}|{r.profiling_time_s!r}|"
            f"{','.join(r.notes)}"
            for r in self.invocations)
        return (f"{self.platform}|{self.workload}|{self.strategy}|"
                f"{self.time_s!r}|{self.energy_j!r}|{invocations}")


def run_application(spec: PlatformSpec, workload: Workload,
                    scheduler: object, strategy_name: str,
                    tablet: bool = False,
                    trace: bool = False,
                    observer: Optional[Observer] = None,
                    fault_config: Optional[FaultConfig] = None) -> ApplicationRun:
    """Run all invocations of ``workload`` under ``scheduler``.

    A fresh processor is created per run, mirroring the paper's
    per-experiment measurement methodology.  An ``observer`` collects
    spans, metrics, and the scheduler's decision records for the run
    (and is also attached to the scheduler when it supports one); a
    ``fault_config`` wraps the processor in the fault-injection
    substrate so CLI runs can exercise the resilience paths.
    """
    processor = IntegratedProcessor(spec, trace_enabled=trace,
                                    observer=observer)
    if fault_config is not None:
        processor = FaultySoC(processor, fault_config)
    runtime = ConcordRuntime(processor, observer=observer)
    if observer is not None and getattr(scheduler, "observer",
                                        None) is NULL_OBSERVER:
        scheduler.observer = observer
    kernel = workload.make_kernel(tablet=tablet)
    t0 = processor.now
    msr0 = processor.read_energy_msr()
    results = [
        runtime.parallel_for(kernel, inv.n_items, scheduler)
        for inv in workload.invocations(tablet=tablet)
    ]
    energy = processor.energy_joules_between(msr0, processor.read_energy_msr())
    return ApplicationRun(
        platform=spec.name,
        workload=workload.abbrev,
        strategy=strategy_name,
        time_s=processor.now - t0,
        energy_j=energy,
        invocations=results,
        trace=processor.trace if trace else None,
    )
