"""Kill-and-restart chaos: SIGKILL the scheduler daemon, prove nothing breaks.

The campaign exercises the crash-safety contract of
:class:`~repro.service.daemon.SchedulerService` (docs/SERVICE.md) the
only way that contract can honestly be tested: by killing the daemon
with SIGKILL - no handler, no cleanup, no warning - at randomized but
seeded points during a job campaign, restarting it, and asserting

1. **no lost jobs** - after recovery drains the queue, every
   submitted job is ``DONE``; orphaned ``CLAIMED``/``RUNNING`` rows
   were re-enqueued, none vanished;
2. **no duplicated side effects** - the durable store's
   ``completions`` counter equals the number of jobs: the
   completion transaction (DONE + table-G merge + counter) committed
   *exactly once* per job even when the attempt ran more than once;
3. **byte-identical results** - the campaign fingerprint (spec hash +
   canonical result payload per job) equals the fingerprint of an
   uninterrupted reference run of the same campaign.

Each kill point runs in a fresh store + cache, so points are
independent and the sweep is deterministic per seed.  The platform
characterization is computed once per platform and seeded into every
fresh store, so the sweep measures crash recovery, not re-profiling.
"""

from __future__ import annotations

import hashlib
import os
import random
import shutil
import signal
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.report import format_table, heading
from repro.harness.suite import get_characterization
from repro.service.daemon import SchedulerService
from repro.service.jobs import JobSpec
from repro.service.store import DONE, DurableStore

#: Default campaign workloads: tablet-capable, many-invocation suite
#: applications so table G actually accumulates state worth replaying.
DEFAULT_WORKLOADS: Tuple[str, ...] = ("BS", "MM", "RT")

#: Default sweep shape - the acceptance floor is 10 points x 2 platforms.
DEFAULT_KILL_POINTS = 10
DEFAULT_PLATFORMS: Tuple[str, ...] = ("desktop", "tablet")


def _campaign_specs(platform: str, workloads: Sequence[str],
                    tick_mode: str = "fast") -> List[JobSpec]:
    return [JobSpec(workload=abbrev, platform=platform, scheduler="eas",
                    tick_mode=tick_mode)
            for abbrev in workloads]


def _submit_all(service: SchedulerService,
                specs: Sequence[JobSpec]) -> List[int]:
    ids = []
    for spec in specs:
        outcome = service.submit(spec)
        if not outcome.accepted:
            raise AssertionError(
                f"chaos submission rejected: {outcome.decision.reason}")
        ids.append(outcome.job_id)
    return ids


def _seed_store(db_path: str, char_by_platform: Dict[str, str]) -> None:
    """Pre-seed a fresh store with the per-platform characterization."""
    with DurableStore(db_path) as store:
        for name, text in char_by_platform.items():
            store.save_characterization(name, text)


def _daemon_main(db_path: str, cache_dir: str) -> None:
    """Child entry point: serve the queue until idle, then exit.

    Runs inline (in-process execution) so the SIGKILL lands on the
    process actually computing - the harshest possible interruption.
    """
    service = SchedulerService(db_path, cache_dir, inline=True)
    try:
        service.serve_forever(until_idle=True, install_signals=False)
    finally:
        service.close()


@dataclass(frozen=True)
class CrashChaosCell:
    """One kill point: kill the daemon at ``delay_s``, recover, check."""

    platform: str
    kill_point: int
    delay_s: float
    #: False when the daemon finished before the kill landed (the
    #: sweep's late points intentionally straddle campaign completion).
    killed: bool
    recovered_jobs: int
    replays: int
    ok: bool
    error: str = ""
    fingerprint: str = ""

    def canonical(self) -> str:
        return (f"{self.platform}|{self.kill_point}|{self.killed:d}|"
                f"{int(self.ok)}|{self.fingerprint}|{self.error}")


@dataclass
class CrashChaosResult:
    """Full sweep: platforms x kill points, against reference runs."""

    seed: int
    workloads: List[str]
    #: Uninterrupted reference fingerprint per platform.
    references: Dict[str, str] = field(default_factory=dict)
    cells: List[CrashChaosCell] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.cells) and all(cell.ok for cell in self.cells)

    @property
    def kills(self) -> int:
        return sum(1 for cell in self.cells if cell.killed)

    def fingerprint(self) -> str:
        payload = "\n".join([
            f"{self.seed}|{','.join(self.workloads)}",
            *(f"{p}|{fp}" for p, fp in sorted(self.references.items())),
            *(cell.canonical() for cell in self.cells),
        ])
        return hashlib.sha256(payload.encode()).hexdigest()

    def render(self) -> str:
        rows = [(cell.platform, cell.kill_point, f"{cell.delay_s:.3f}",
                 "yes" if cell.killed else "no", cell.recovered_jobs,
                 cell.replays,
                 "ok" if cell.ok else f"FAILED: {cell.error}")
                for cell in self.cells]
        table = format_table(
            ["platform", "point", "kill at (s)", "killed", "recovered",
             "replays", "status"], rows)
        verdict = ("all invariants held" if self.ok
                   else "INVARIANT VIOLATION")
        summary = (f"{len(self.cells)} kill points, {self.kills} landed "
                   f"mid-run, seed={self.seed}: {verdict}")
        return "\n".join([heading("Crash-restart chaos campaign"),
                          table, "", summary])


def _reference_run(platform: str, workloads: Sequence[str],
                   char_by_platform: Dict[str, str],
                   root: str, tick_mode: str = "fast") -> Tuple[str, float]:
    """Uninterrupted campaign through the same machinery; returns the
    fingerprint every kill point must reproduce, and the wall time the
    kill delays are drawn from."""
    db = os.path.join(root, f"ref-{platform}.db")
    cache = os.path.join(root, f"ref-{platform}-cache")
    _seed_store(db, char_by_platform)
    service = SchedulerService(db, cache, inline=True)
    try:
        _submit_all(service,
                    _campaign_specs(platform, workloads, tick_mode))
        start = time.monotonic()
        service.run_until_idle()
        wall = time.monotonic() - start
        states = service.store.state_counts()
        if states[DONE] != len(workloads):
            raise AssertionError(
                f"reference run incomplete on {platform}: {states}")
        return service.fingerprint(), wall
    finally:
        service.close()


def _run_kill_point(platform: str, point: int, delay_s: float,
                    workloads: Sequence[str],
                    char_by_platform: Dict[str, str],
                    reference: str, root: str,
                    tick_mode: str = "fast") -> CrashChaosCell:
    import multiprocessing

    db = os.path.join(root, f"kill-{platform}-{point}.db")
    cache = os.path.join(root, f"kill-{platform}-{point}-cache")
    _seed_store(db, char_by_platform)

    submitter = SchedulerService(db, cache, inline=True)
    try:
        job_ids = _submit_all(
            submitter, _campaign_specs(platform, workloads, tick_mode))
    finally:
        submitter.close()

    ctx = multiprocessing.get_context("fork")
    daemon = ctx.Process(target=_daemon_main, args=(db, cache))
    daemon.start()
    time.sleep(delay_s)
    killed = daemon.is_alive()
    if killed:
        os.kill(daemon.pid, signal.SIGKILL)
    daemon.join()

    # Restart: recover orphans, drain the queue, check the invariants.
    service = SchedulerService(db, cache, inline=True)
    try:
        recovered = service.recover()
        service.run_until_idle()
        store = service.store
        states = store.state_counts()
        counters = store.counters()
        fingerprint = service.fingerprint()
        problems = []
        if states[DONE] != len(job_ids):
            problems.append(f"lost jobs: states={states}")
        if counters.get("completions") != float(len(job_ids)):
            problems.append("duplicated side effects: completions="
                            f"{counters.get('completions')}")
        if fingerprint != reference:
            problems.append("fingerprint mismatch vs uninterrupted run")
        return CrashChaosCell(
            platform=platform, kill_point=point, delay_s=delay_s,
            killed=killed, recovered_jobs=recovered,
            replays=int(counters.get("recoveries", 0.0)),
            ok=not problems, error="; ".join(problems),
            fingerprint=fingerprint)
    finally:
        service.close()


def run_crash_chaos(platforms: Sequence[str] = DEFAULT_PLATFORMS,
                    kill_points: int = DEFAULT_KILL_POINTS,
                    workloads: Sequence[str] = DEFAULT_WORKLOADS,
                    seed: int = 2016,
                    work_dir: Optional[str] = None,
                    tick_mode: str = "fast") -> CrashChaosResult:
    """SIGKILL the daemon at ``kill_points`` seeded delays per platform.

    Delays span (0, ~90% of the uninterrupted wall time], so the sweep
    covers kills during planning, mid-execution, and around completion
    commits.  Every cell asserts the three crash-safety invariants
    against an uninterrupted reference run of the same campaign.
    """
    result = CrashChaosResult(seed=seed, workloads=list(workloads))
    root = work_dir or tempfile.mkdtemp(prefix="crashchaos-")
    owns_root = work_dir is None
    try:
        char_by_platform: Dict[str, str] = {}
        for platform in platforms:
            spec = JobSpec(workload=workloads[0], platform=platform,
                           tick_mode=tick_mode).platform_spec()
            char_by_platform[spec.name] = (
                get_characterization(spec).to_json())
        for platform in platforms:
            reference, wall = _reference_run(
                platform, workloads, char_by_platform, root, tick_mode)
            result.references[platform] = reference
            for point in range(kill_points):
                rng = random.Random(f"{seed}:{platform}:{point}")
                delay_s = rng.uniform(0.02, max(0.1, wall * 0.9))
                result.cells.append(_run_kill_point(
                    platform, point, delay_s, workloads,
                    char_by_platform, reference, root, tick_mode))
    finally:
        if owns_root:
            shutil.rmtree(root, ignore_errors=True)
    return result


def regenerate_crash_chaos(tick_mode: Optional[str] = None
                           ) -> CrashChaosResult:
    """Registry entry point: the full acceptance sweep (10 x 2)."""
    return run_crash_chaos(tick_mode=tick_mode or "fast")
