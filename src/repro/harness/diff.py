"""Differential-testing substrate for simulator clock modes.

The simulator ships three clock modes (:data:`repro.soc.spec.TICK_MODES`):
``exact`` is the byte-stable reference, ``fast`` macro-steps settled
spans with bit-identical per-tick commit replay, and ``bounded`` trades
bit-exactness for speed under an explicit tolerance contract
(``PlatformSpec.bounded_tol``, see docs/PERFORMANCE.md).  This module is
the harness that keeps those three implementations honest against each
other:

* :func:`run_case` executes one *case* - (platform, workload, fault
  level, tenancy) - under one clock mode and flattens everything the
  contract covers into named observables: end-to-end time and energy,
  per-invocation durations/energies/item counts/alphas, and the ordered
  sequence of :class:`~repro.obs.records.DecisionRecord` exit paths.
* :func:`compare_outcomes` checks a candidate mode against the exact
  reference: every observable must satisfy
  ``|candidate - reference| <= tol * max(1, |reference|)`` (the hybrid
  absolute/relative bound the bounded contract is written in), and the
  exit-path sequence must be *identical* - a tolerance-sized numeric
  wobble must never flip a scheduling decision.  Observables read
  through the quantized energy MSR get one quantization unit of extra
  budget: a sub-tolerance wobble in accumulated joules can land on the
  other side of a unit boundary, so the *reading* may step by one unit
  even though the underlying energy agrees within ``tol`` (the reader
  rounds, not the model).
* :func:`exact_fingerprint_entries` / :func:`compute_fingerprint` name
  and compute the exact-mode golden fingerprints checked into
  ``tests/goldens/`` (suite EAS runs, alpha sweeps, a chaos campaign, a
  small fleet, multiprogram co-runs).  ``tools/record_goldens.py``
  records them; ``tests/soc/test_golden_regression.py`` fails with a
  readable diff if any drifts.

``tests/soc/test_differential_modes.py`` sweeps the full grid -
Table-1 workloads x both platforms x fault levels {0.0, 0.3} x
tenancy {solo, 2-tenant} - through this module.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.metrics import EDP, metric_by_name
from repro.core.scheduler import EnergyAwareScheduler
from repro.errors import HarnessError
from repro.harness.experiment import run_application
from repro.soc.faults import FaultConfig
from repro.soc.spec import (
    PlatformSpec,
    TICK_MODES,
    baytrail_tablet,
    haswell_desktop,
)
from repro.workloads.registry import suite_workloads, workload_by_abbrev

#: Platform short names the differential grid runs over.
PLATFORM_FACTORIES = {
    "desktop": haswell_desktop,
    "tablet": baytrail_tablet,
}

#: Fault levels the differential grid sweeps (clean + heavy).
DIFF_FAULT_LEVELS = (0.0, 0.3)

#: Tolerance applied to the ``fast`` candidate: its contract is the
#: same < 1e-6 relative agreement docs/PERFORMANCE.md has always
#: promised (``bounded`` uses ``PlatformSpec.bounded_tol`` instead).
FAST_TOL = 1e-6

#: Second tenant co-scheduled with the case workload in 2-tenant
#: cells (the case workload itself when they would collide).
DEFAULT_PARTNER = "MM"


def fault_config_for(case: DiffCase) -> Optional[FaultConfig]:
    """Fault injection for a differential cell.

    Timeline-perturbing fault classes (launch failures, hangs, busy
    flaps, counter corruption) run at the case's level - they are
    exactly the dynamics that interact with macro-stepping and phase
    replay, so the grid must exercise them.  MSR *read corruption*
    stays off: a glitch XORs the register value, and across modes the
    pre-glitch readings may legitimately differ by one quantization
    unit (inside the tolerance budget), which the XOR amplifies through
    bit carries into an arbitrary number of units.  Corrupted readings
    are not comparable observable-by-observable; robustness to them
    belongs to the exact-mode chaos campaign, which asserts on
    aggregate outcomes instead.
    """
    if case.fault_level <= 0.0:
        return None
    config = FaultConfig.from_level(case.fault_level, seed=case.seed)
    return replace(config, msr_glitch_prob=0.0, msr_extra_wrap_prob=0.0)


def tolerance_bound(reference: float, tol: float) -> float:
    """The contract's error budget around one reference observable.

    Hybrid absolute/relative: ``tol`` absolute for observables of order
    one or below (alphas, short durations), ``tol`` relative above
    (energies in joules, item counts in the millions).
    """
    return tol * max(1.0, abs(reference))


@dataclass(frozen=True)
class DiffCase:
    """One cell of the differential grid (mode-independent)."""

    platform: str
    workload: str
    fault_level: float = 0.0
    #: 1 = solo run; 2 = co-scheduled with :data:`DEFAULT_PARTNER`
    #: through the GPU lease arbiter.
    tenants: int = 1
    seed: int = 2016
    #: Objective metric name; constrained spellings (``"edp@2"``) run
    #: the case under a deadline-constrained objective, so the grid
    #: also locks the feasible-set search across clock modes.
    metric: str = "edp"

    def __post_init__(self) -> None:
        if self.platform not in PLATFORM_FACTORIES:
            raise HarnessError(
                f"unknown diff platform {self.platform!r}; expected one of "
                f"{tuple(PLATFORM_FACTORIES)}")
        if self.tenants not in (1, 2):
            raise HarnessError("diff cases cover solo and 2-tenant only")
        metric_by_name(self.metric)  # fail fast on unknown names

    @property
    def label(self) -> str:
        tenancy = "solo" if self.tenants == 1 else "2-tenant"
        base = (f"{self.platform}/{self.workload}"
                f"/fault={self.fault_level}/{tenancy}")
        # Default-metric labels are unchanged so golden names are stable.
        if self.metric != "edp":
            base += f"/{self.metric}"
        return base


@dataclass(frozen=True)
class Violation:
    """One observable that left its tolerance budget."""

    observable: str
    reference: float
    candidate: float
    bound: float

    @property
    def error(self) -> float:
        return abs(self.candidate - self.reference)

    def describe(self) -> str:
        return (f"{self.observable}: |{self.candidate!r} - "
                f"{self.reference!r}| = {self.error:.3e} > {self.bound:.3e}")


@dataclass
class CaseOutcome:
    """Everything the mode contract covers, for one (case, mode) run."""

    case: DiffCase
    mode: str
    #: Flattened numeric observables, keyed by a stable name.
    observables: Dict[str, float]
    #: Ordered DecisionRecord exit paths across the whole run (all
    #: tenants, in tenant registration order for multiprogram cells).
    exit_paths: Tuple[str, ...]
    #: sha256 over the run's byte-stable canonical form - goldens
    #: compare the exact mode's value against ``tests/goldens/``.
    fingerprint: str
    #: Quantization step of each discretized observable (energy MSR
    #: reads), by name; absent means continuous.  The comparison grants
    #: one step of extra budget - see the module docstring.
    quanta: Dict[str, float] = field(default_factory=dict)


@dataclass
class DiffReport:
    """Verdict of one candidate mode against the exact reference."""

    case: DiffCase
    mode: str
    tol: float
    violations: List[Violation] = field(default_factory=list)
    exit_paths_equal: bool = True
    reference_exits: Tuple[str, ...] = ()
    candidate_exits: Tuple[str, ...] = ()
    max_error: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations and self.exit_paths_equal

    def describe(self) -> str:
        lines = [f"{self.case.label} [{self.mode} vs exact, tol={self.tol}]"]
        for violation in self.violations:
            lines.append("  " + violation.describe())
        if not self.exit_paths_equal:
            lines.append(f"  exit paths diverged:\n"
                         f"    exact:     {self.reference_exits}\n"
                         f"    {self.mode}: {self.candidate_exits}")
        if self.ok:
            lines.append(f"  ok (max error {self.max_error:.3e})")
        return "\n".join(lines)


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def platform_for(case: DiffCase, mode: str) -> PlatformSpec:
    if mode not in TICK_MODES:
        raise HarnessError(f"tick mode {mode!r} not in {TICK_MODES}")
    return PLATFORM_FACTORIES[case.platform](tick_mode=mode)


def _characterization_for(case: DiffCase):
    # Characterization is computed once per platform under the factory
    # default (exact) mode, as production harness code does: the modes
    # under test then share one table, so any divergence the grid
    # finds is attributable to the application run itself.
    from repro.harness.suite import get_characterization

    return get_characterization(PLATFORM_FACTORIES[case.platform]())


def _application_outcome(case: DiffCase, mode: str) -> CaseOutcome:
    spec = platform_for(case, mode)
    workload = workload_by_abbrev(case.workload)
    tablet = case.platform == "tablet"
    scheduler = EnergyAwareScheduler(_characterization_for(case),
                                     metric_by_name(case.metric))
    run = run_application(spec, workload, scheduler, "EAS", tablet=tablet,
                          fault_config=fault_config_for(case))
    unit = spec.energy_unit_j
    observables = {"time_s": run.time_s, "energy_j": run.energy_j}
    quanta = {"energy_j": unit}
    for i, inv in enumerate(run.invocations):
        prefix = f"inv[{i}]"
        observables[f"{prefix}.duration_s"] = inv.duration_s
        observables[f"{prefix}.energy_j"] = inv.energy_j
        quanta[f"{prefix}.energy_j"] = unit
        observables[f"{prefix}.cpu_items"] = inv.cpu_items
        observables[f"{prefix}.gpu_items"] = inv.gpu_items
        if inv.alpha is not None:
            observables[f"{prefix}.alpha"] = inv.alpha
    exits = tuple(record.exit_path for record in scheduler.decisions)
    return CaseOutcome(case=case, mode=mode, observables=observables,
                       exit_paths=exits, fingerprint=_sha(run.canonical()),
                       quanta=quanta)


def _multiprogram_outcome(case: DiffCase, mode: str) -> CaseOutcome:
    from repro.runtime.tenancy import parse_tenant_specs, run_multiprogram

    spec = platform_for(case, mode)
    partner = (DEFAULT_PARTNER if case.workload != DEFAULT_PARTNER else "BS")
    tenants = parse_tenant_specs(f"{case.workload}:1,{partner}:0")
    result = run_multiprogram(
        spec=spec, tenants=tenants, policy="fifo", seed=case.seed,
        metric=metric_by_name(case.metric),
        tablet=case.platform == "tablet",
        fault_level=case.fault_level,
        fault_config=fault_config_for(case),
        characterization=_characterization_for(case))
    unit = spec.energy_unit_j
    observables = {
        "total_time_s": result.total_time_s,
        "total_energy_j": result.total_energy_j,
        "items_processed": result.items_processed,
    }
    quanta = {"total_energy_j": unit}
    exits: List[str] = []
    for tenant in result.tenants:
        prefix = f"tenant[{tenant.name}]"
        observables[f"{prefix}.time_s"] = tenant.time_s
        observables[f"{prefix}.energy_j"] = tenant.energy_j
        quanta[f"{prefix}.energy_j"] = unit
        observables[f"{prefix}.lease_grants"] = float(tenant.lease_grants)
        observables[f"{prefix}.gpu_busy_exits"] = float(tenant.gpu_busy_exits)
        for i, inv in enumerate(tenant.results):
            observables[f"{prefix}.inv[{i}].duration_s"] = inv.duration_s
            observables[f"{prefix}.inv[{i}].energy_j"] = inv.energy_j
            quanta[f"{prefix}.inv[{i}].energy_j"] = unit
        exits.extend(record.exit_path for record in tenant.decisions)
    return CaseOutcome(case=case, mode=mode, observables=observables,
                       exit_paths=tuple(exits),
                       fingerprint=result.fingerprint(), quanta=quanta)


def run_case(case: DiffCase, mode: str) -> CaseOutcome:
    """Execute one grid case under one clock mode."""
    if case.tenants == 1:
        return _application_outcome(case, mode)
    return _multiprogram_outcome(case, mode)


def mode_tolerance(case: DiffCase, mode: str) -> float:
    """The error budget ``mode`` is held to on this case's platform."""
    if mode == "exact":
        return 0.0
    if mode == "fast":
        return FAST_TOL
    return platform_for(case, mode).bounded_tol


def compare_outcomes(reference: CaseOutcome, candidate: CaseOutcome,
                     tol: float) -> DiffReport:
    """Hold ``candidate`` to the tolerance contract around ``reference``.

    Both outcomes must come from the same case.  Observables present in
    one run but not the other (an invocation count change, a tenant
    that took a different fallback) are reported as exit-path-level
    divergence rather than silently skipped.
    """
    if reference.case != candidate.case:
        raise HarnessError("comparing outcomes of different cases")
    report = DiffReport(case=candidate.case, mode=candidate.mode, tol=tol,
                        reference_exits=reference.exit_paths,
                        candidate_exits=candidate.exit_paths)
    report.exit_paths_equal = (reference.exit_paths == candidate.exit_paths
                               and set(reference.observables)
                               == set(candidate.observables))
    for name in sorted(set(reference.observables)
                       & set(candidate.observables)):
        ref = reference.observables[name]
        cand = candidate.observables[name]
        # Discretized reads (energy MSR) get one quantization step on
        # top of the tolerance budget: the underlying joules agree
        # within tol, but the reading may land one unit over.
        bound = tolerance_bound(ref, tol) + reference.quanta.get(name, 0.0)
        error = abs(cand - ref)
        report.max_error = max(report.max_error, error)
        if error > bound:
            report.violations.append(Violation(
                observable=name, reference=ref, candidate=cand, bound=bound))
    return report


def diff_case(case: DiffCase, modes: Sequence[str] = ("fast", "bounded"),
              reference: Optional[CaseOutcome] = None) -> List[DiffReport]:
    """Run one case under exact + every candidate mode and compare."""
    if reference is None:
        reference = run_case(case, "exact")
    return [
        compare_outcomes(reference, run_case(case, mode),
                         mode_tolerance(case, mode))
        for mode in modes
    ]


def grid_cases(platforms: Sequence[str] = ("desktop", "tablet"),
               workloads: Optional[Dict[str, Sequence[str]]] = None,
               fault_levels: Sequence[float] = DIFF_FAULT_LEVELS,
               tenancies: Sequence[int] = (1, 2),
               seed: int = 2016) -> List[DiffCase]:
    """The differential grid, optionally at reduced breadth.

    ``workloads`` maps platform short name to the abbrevs to sweep;
    None means the platform's full Table-1 suite.
    """
    cases = []
    for platform in platforms:
        if workloads is not None:
            abbrevs: Sequence[str] = workloads[platform]
        else:
            abbrevs = [w.abbrev for w in
                       suite_workloads(tablet=platform == "tablet")]
        for abbrev in abbrevs:
            for fault_level in fault_levels:
                for tenants in tenancies:
                    cases.append(DiffCase(
                        platform=platform, workload=abbrev,
                        fault_level=fault_level, tenants=tenants, seed=seed))
    # One deadline-constrained case per platform.  The deadline is very
    # loose so every grid point is feasible under all three clock modes
    # (a tight deadline could flip the feasible set - and the exit path -
    # between modes near the boundary; that behavior is locked by
    # single-mode unit tests instead).  What this locks is that the
    # ConstrainedMetric machinery itself agrees across modes.
    for platform in platforms:
        if workloads is not None:
            if not workloads.get(platform):
                continue
            abbrev = workloads[platform][0]
        else:
            abbrev = suite_workloads(tablet=platform == "tablet")[0].abbrev
        cases.append(DiffCase(platform=platform, workload=abbrev,
                              seed=seed, metric="edp@1000"))
    return cases


# -- exact-mode golden fingerprints ---------------------------------------------

#: Alpha-sweep golden coverage (representative, not exhaustive: one
#: regular and one irregular workload per platform).
_SWEEP_GOLDENS = (("desktop", "MB"), ("desktop", "BS"),
                  ("tablet", "MB"), ("tablet", "BS"))

#: Multiprogram golden coverage.
_MULTIPROGRAM_GOLDENS = (("desktop", "fifo"), ("tablet", "fifo"))


def exact_fingerprint_entries() -> List[str]:
    """Every named golden entry, in recording order."""
    entries = []
    for platform in ("desktop", "tablet"):
        tablet = platform == "tablet"
        for workload in suite_workloads(tablet=tablet):
            entries.append(f"suite-eas/{platform}/{workload.abbrev}")
    entries.extend(f"sweep/{p}/{w}" for p, w in _SWEEP_GOLDENS)
    entries.append("chaos/desktop")
    entries.append("fleet/small")
    entries.extend(f"multiprogram/{p}/{policy}"
                   for p, policy in _MULTIPROGRAM_GOLDENS)
    return entries


def compute_fingerprint(entry: str) -> str:
    """Recompute one golden entry's exact-mode fingerprint.

    Every computation runs serially, uncached (a private
    jobs=1/no-cache engine), under ``tick_mode="exact"`` - the goldens
    pin the *reference* semantics, not any accelerated path.
    """
    from repro.harness.engine import ExecutionEngine, use_engine

    parts = entry.split("/")
    with use_engine(ExecutionEngine(jobs=1, cache=None)):
        if parts[0] == "suite-eas":
            _, platform, abbrev = parts
            case = DiffCase(platform=platform, workload=abbrev)
            return run_case(case, "exact").fingerprint
        if parts[0] == "sweep":
            from repro.harness.suite import sweep_alphas

            _, platform, abbrev = parts
            return sweep_alphas(
                PLATFORM_FACTORIES[platform](tick_mode="exact"),
                workload_by_abbrev(abbrev),
                tablet=platform == "tablet").fingerprint()
        if parts[0] == "chaos":
            from repro.harness.chaos import run_chaos_campaign

            return run_chaos_campaign(
                spec=PLATFORM_FACTORIES[parts[1]](tick_mode="exact"),
                fault_levels=DIFF_FAULT_LEVELS, seed=2016).fingerprint()
        if parts[0] == "fleet":
            from repro.fleet.dispatcher import run_fleet
            from repro.fleet.topology import FleetSpec
            from repro.fleet.trace import TraceSpec

            fleet = FleetSpec(n_nodes=12, desktop_fraction=0.5,
                              tick_mode="exact", seed=2016)
            trace = TraceSpec(kind="bursty", duration_s=30.0,
                              mean_rate_hz=2.0, workloads=("MB", "BS"),
                              seed=2016)
            return run_fleet(fleet, trace,
                             policy="energy_aware").fingerprint()
        if parts[0] == "multiprogram":
            _, platform, policy = parts
            from repro.runtime.tenancy import parse_tenant_specs, run_multiprogram

            result = run_multiprogram(
                spec=PLATFORM_FACTORIES[platform](tick_mode="exact"),
                tenants=parse_tenant_specs("MB:1,BS:0"), policy=policy,
                seed=2016, metric=EDP, tablet=platform == "tablet",
                characterization=_characterization_for(
                    DiffCase(platform=platform, workload="MB")))
            return result.fingerprint()
    raise HarnessError(f"unknown golden entry {entry!r}")


def collect_exact_fingerprints(
        entries: Optional[Sequence[str]] = None) -> Dict[str, str]:
    """Compute the named golden entries (default: all of them)."""
    if entries is None:
        entries = exact_fingerprint_entries()
    return {entry: compute_fingerprint(entry) for entry in entries}
