"""Suite-level evaluation: Oracle sweeps and strategy comparisons.

The paper's comparison schemes (Section 5):

* **CPU** / **GPU** - single-device execution;
* **Oracle** - best measured metric over an exhaustive sweep of static
  GPU offload ratios (0.1 grid), the evaluation baseline;
* **PERF** - the best-performance scheduling strategy: the online
  adaptive scheduler of the paper's reference [12], which profiles
  like EAS and then partitions at alpha_PERF (Eq. 2), optimizing
  execution time with no regard for power.  (The exhaustive best-
  *measured*-time split is also computed from the sweep and reported
  as ``BEST-TIME`` for diagnostics.);
* **EAS** - the paper's scheduler, with the platform's one-time power
  characterization.

One :func:`sweep_alphas` per (platform, workload) yields Oracle for
every metric *and* PERF, so the harness sweeps once and reuses it.
Efficiency is reported as ``oracle_metric / strategy_metric`` (in
percent, higher is better, Oracle = 100%), matching Figs. 9-12.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.baselines import ProfiledPerfScheduler, StaticAlphaScheduler
from repro.core.characterization import PlatformCharacterization, PowerCharacterizer
from repro.core.metrics import EnergyMetric
from repro.core.scheduler import EnergyAwareScheduler, SchedulerConfig
from repro.errors import HarnessError
from repro.harness.engine import (
    ExecutionEngine,
    RunSpec,
    SchedulerSpec,
    get_default_engine,
    plain_scheduler_config,
    reconstructible_workload,
    standard_metric_name,
)
from repro.harness.experiment import ApplicationRun, run_application
from repro.soc.spec import PlatformSpec
from repro.workloads.base import Workload
from repro.workloads.microbench import standard_microbenches

#: The paper's exhaustive-search grid.
ORACLE_ALPHA_STEP = 0.1

_characterization_cache: Dict[str, PlatformCharacterization] = {}


def get_characterization(spec: PlatformSpec, sweep_step: float = 0.05,
                         cache_dir: Optional[str] = None,
                         engine: Optional[ExecutionEngine] = None
                         ) -> PlatformCharacterization:
    """The platform's one-time power characterization.

    Process-cached, and optionally persisted to ``cache_dir`` (or the
    ``REPRO_CACHE_DIR`` environment variable) as JSON - the paper's
    characterization is computed once per processor and shipped with
    the runtime, so the natural deployment is a cached file.  When an
    ``engine`` is supplied, the per-category alpha sweeps fan out
    through it (see docs/PARALLELISM.md); results are bit-identical
    either way.
    """
    cached = _characterization_cache.get(spec.name)
    if cached is not None:
        return cached

    cache_dir = cache_dir or os.environ.get("REPRO_CACHE_DIR")
    cache_path = None
    if cache_dir:
        cache_path = os.path.join(cache_dir,
                                  f"characterization-{spec.name}.json")
        if os.path.exists(cache_path):
            with open(cache_path) as fh:
                cached = PlatformCharacterization.from_json(fh.read())
            _characterization_cache[spec.name] = cached
            return cached

    characterizer = PowerCharacterizer(
        microbenches=standard_microbenches(),
        sweep_step=sweep_step, spec=spec)
    cached = characterizer.characterize(engine=engine)
    _characterization_cache[spec.name] = cached
    if cache_path is not None:
        os.makedirs(cache_dir, exist_ok=True)
        with open(cache_path, "w") as fh:
            fh.write(cached.to_json())
    return cached


def clear_characterization_cache() -> None:
    """Drop the in-process cache (testing/ablation use)."""
    _characterization_cache.clear()


def _grid_key(alpha: float) -> int:
    """Alpha as an exact grid position (milli-alpha integer).

    Every sweep grid this harness builds has a step that is a
    multiple of 0.001, so rounding to integer milli-alphas maps each
    grid point to a unique key with no float-comparison tolerance.
    """
    return int(round(alpha * 1000.0))


@dataclass
class AlphaSweep:
    """Measured application runs at every static alpha."""

    platform: str
    workload: str
    alphas: List[float]
    runs: List[ApplicationRun]

    def __post_init__(self) -> None:
        # Index runs by grid position once: run_at() is O(1) and exact
        # (the old float scan with a 1e-9 tolerance was both O(n) and
        # fragile for accumulated non-0.1 steps), and the oracle/perf
        # lookups below avoid O(n) .index() rescans.
        self._index_by_grid = {
            _grid_key(a): i for i, a in enumerate(self.alphas)}

    def run_at(self, alpha: float) -> ApplicationRun:
        index = self._index_by_grid.get(_grid_key(alpha))
        if index is None:
            raise HarnessError(f"alpha {alpha} not in sweep")
        return self.runs[index]

    def _best_index(self, key) -> int:
        return min(range(len(self.runs)), key=lambda i: key(self.runs[i]))

    def oracle(self, metric: EnergyMetric) -> ApplicationRun:
        """The run minimizing the measured metric (the paper's Oracle)."""
        return self.runs[self._best_index(lambda r: r.metric_value(metric))]

    def oracle_alpha(self, metric: EnergyMetric) -> float:
        return self.alphas[self._best_index(lambda r: r.metric_value(metric))]

    def perf(self) -> ApplicationRun:
        """The best-execution-time run (the paper's PERF strategy)."""
        return self.runs[self._best_index(lambda r: r.time_s)]

    def perf_alpha(self) -> float:
        return self.alphas[self._best_index(lambda r: r.time_s)]

    def fingerprint(self) -> str:
        """SHA-256 over every measured quantity of every run."""
        payload = "\n".join([
            f"{self.platform}|{self.workload}",
            *(f"{a!r}|{run.canonical()}"
              for a, run in zip(self.alphas, self.runs)),
        ])
        return hashlib.sha256(payload.encode()).hexdigest()


def _sweep_grid(step: float) -> List[float]:
    n = int(round(1.0 / step))
    return [min(1.0, i * step) for i in range(n + 1)]


def sweep_alphas(spec: PlatformSpec, workload: Workload, tablet: bool = False,
                 step: float = ORACLE_ALPHA_STEP,
                 engine: Optional[ExecutionEngine] = None) -> AlphaSweep:
    """Run the application once per static alpha on the 0.1 grid.

    The grid points are independent simulations; with an ``engine``
    (default: :func:`~repro.harness.engine.get_default_engine`) they
    execute as one batch - parallel when the engine has workers,
    memoized when it has a cache, and byte-identical to the serial
    loop either way.
    """
    alphas = _sweep_grid(step)
    if engine is None:
        engine = get_default_engine()
    if reconstructible_workload(workload):
        specs = [RunSpec(platform=spec, workload=workload.abbrev,
                         scheduler=SchedulerSpec.static(a), tablet=tablet)
                 for a in alphas]
        runs = [r.payload for r in engine.run_batch(specs)]
    else:
        runs = [
            run_application(spec, workload, StaticAlphaScheduler(alpha=a),
                            strategy_name=f"static-{a:.2f}", tablet=tablet)
            for a in alphas
        ]
    return AlphaSweep(platform=spec.name, workload=workload.abbrev,
                      alphas=alphas, runs=runs)


@dataclass
class StrategyOutcome:
    """One workload's result under one strategy, Oracle-relative."""

    workload: str
    strategy: str
    metric_value: float
    oracle_value: float
    time_s: float
    energy_j: float
    alpha: Optional[float]

    @property
    def efficiency_pct(self) -> float:
        """oracle / strategy, in percent (Oracle = 100, higher better)."""
        if self.metric_value <= 0:
            raise HarnessError("non-positive metric value")
        return 100.0 * self.oracle_value / self.metric_value


@dataclass
class SuiteEvaluation:
    """Figs. 9-12: all workloads x all strategies for one metric."""

    platform: str
    metric: EnergyMetric
    strategies: List[str]
    outcomes: Dict[str, Dict[str, StrategyOutcome]] = field(default_factory=dict)
    sweeps: Dict[str, AlphaSweep] = field(default_factory=dict)

    def outcome(self, workload: str, strategy: str) -> StrategyOutcome:
        return self.outcomes[workload][strategy]

    def workloads(self) -> List[str]:
        return list(self.outcomes.keys())

    def average_efficiency_pct(self, strategy: str) -> float:
        values = [self.outcomes[w][strategy].efficiency_pct
                  for w in self.outcomes]
        if not values:
            raise HarnessError("empty evaluation")
        return sum(values) / len(values)

    def fingerprint(self) -> str:
        """SHA-256 over every outcome (workload x strategy), sorted."""
        lines = [f"{self.platform}|{self.metric.name}"]
        for workload in sorted(self.outcomes):
            for strategy in sorted(self.outcomes[workload]):
                o = self.outcomes[workload][strategy]
                lines.append(
                    f"{workload}|{strategy}|{o.metric_value!r}|"
                    f"{o.oracle_value!r}|{o.time_s!r}|{o.energy_j!r}|"
                    f"{o.alpha!r}")
        return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def _assemble_outcomes(evaluation: SuiteEvaluation, workload: Workload,
                       sweep: AlphaSweep, eas_run: ApplicationRun,
                       perf_run: ApplicationRun,
                       metric: EnergyMetric) -> None:
    """Fold one workload's runs into the evaluation (both exec paths)."""
    evaluation.sweeps[workload.abbrev] = sweep
    oracle_run = sweep.oracle(metric)
    oracle_value = oracle_run.metric_value(metric)
    per_strategy: Dict[str, StrategyOutcome] = {}
    for name, run, alpha in (
            ("CPU", sweep.run_at(0.0), 0.0),
            ("GPU", sweep.run_at(1.0), 1.0),
            ("PERF", perf_run, perf_run.final_alpha),
            ("BEST-TIME", sweep.perf(), sweep.perf_alpha()),
            ("EAS", eas_run, eas_run.final_alpha),
            ("Oracle", oracle_run, sweep.oracle_alpha(metric))):
        per_strategy[name] = StrategyOutcome(
            workload=workload.abbrev,
            strategy=name,
            metric_value=run.metric_value(metric),
            oracle_value=oracle_value,
            time_s=run.time_s,
            energy_j=run.energy_j,
            alpha=alpha)
    evaluation.outcomes[workload.abbrev] = per_strategy


def _engine_can_evaluate(workloads: Sequence[Workload],
                         metric: EnergyMetric,
                         eas_config: Optional[SchedulerConfig]) -> bool:
    """Whether every run of this evaluation is expressible as a RunSpec.

    Custom metrics (with objective callables), stateful/subclassed
    workloads, and SchedulerConfig subclasses cannot cross process
    boundaries declaratively; they take the inline path unchanged.
    """
    return (standard_metric_name(metric) is not None
            and plain_scheduler_config(eas_config)
            and all(reconstructible_workload(w) for w in workloads))


def evaluate_suite(spec: PlatformSpec, workloads: Sequence[Workload],
                   metric: EnergyMetric, tablet: bool = False,
                   sweeps: Optional[Dict[str, AlphaSweep]] = None,
                   eas_config: Optional[SchedulerConfig] = None,
                   engine: Optional[ExecutionEngine] = None
                   ) -> SuiteEvaluation:
    """Run the full Fig. 9/10/11/12-style comparison for one metric.

    ``sweeps`` may carry precomputed alpha sweeps (they are metric-
    independent), so evaluating both EDP and energy sweeps only once.

    Every remaining simulation - missing sweep grid points, one EAS
    run and one PERF run per workload - is submitted to the ``engine``
    (default: :func:`~repro.harness.engine.get_default_engine`) as a
    single batch, so a pooled engine overlaps *across* workloads and
    strategies, not just within one sweep.
    """
    evaluation = SuiteEvaluation(
        platform=spec.name, metric=metric,
        strategies=["CPU", "GPU", "PERF", "EAS"])
    if engine is None:
        engine = get_default_engine()

    if not _engine_can_evaluate(workloads, metric, eas_config):
        characterization = get_characterization(spec)
        for workload in workloads:
            sweep = (sweeps or {}).get(workload.abbrev)
            if sweep is None:
                sweep = sweep_alphas(spec, workload, tablet=tablet,
                                     engine=engine)
            eas_scheduler = EnergyAwareScheduler(
                characterization=characterization, metric=metric,
                config=eas_config or SchedulerConfig())
            eas_run = run_application(spec, workload, eas_scheduler,
                                      strategy_name="EAS", tablet=tablet)
            perf_run = run_application(spec, workload,
                                       ProfiledPerfScheduler(),
                                       strategy_name="PERF", tablet=tablet)
            _assemble_outcomes(evaluation, workload, sweep, eas_run,
                               perf_run, metric)
        return evaluation

    alphas = _sweep_grid(ORACLE_ALPHA_STEP)
    eas_spec = SchedulerSpec.eas(metric, eas_config)
    batch: List[RunSpec] = []
    for workload in workloads:
        if (sweeps or {}).get(workload.abbrev) is None:
            batch.extend(
                RunSpec(platform=spec, workload=workload.abbrev,
                        scheduler=SchedulerSpec.static(a), tablet=tablet)
                for a in alphas)
        batch.append(RunSpec(platform=spec, workload=workload.abbrev,
                             scheduler=eas_spec, tablet=tablet))
        batch.append(RunSpec(platform=spec, workload=workload.abbrev,
                             scheduler=SchedulerSpec.perf(), tablet=tablet))

    results = iter(engine.run_batch(batch))
    for workload in workloads:
        sweep = (sweeps or {}).get(workload.abbrev)
        if sweep is None:
            runs = [next(results).payload for _ in alphas]
            sweep = AlphaSweep(platform=spec.name,
                               workload=workload.abbrev,
                               alphas=list(alphas), runs=runs)
        eas_run = next(results).payload
        perf_run = next(results).payload
        _assemble_outcomes(evaluation, workload, sweep, eas_run,
                           perf_run, metric)
    return evaluation
