"""Suite-level evaluation: Oracle sweeps and strategy comparisons.

The paper's comparison schemes (Section 5):

* **CPU** / **GPU** - single-device execution;
* **Oracle** - best measured metric over an exhaustive sweep of static
  GPU offload ratios (0.1 grid), the evaluation baseline;
* **PERF** - the best-performance scheduling strategy: the online
  adaptive scheduler of the paper's reference [12], which profiles
  like EAS and then partitions at alpha_PERF (Eq. 2), optimizing
  execution time with no regard for power.  (The exhaustive best-
  *measured*-time split is also computed from the sweep and reported
  as ``BEST-TIME`` for diagnostics.);
* **EAS** - the paper's scheduler, with the platform's one-time power
  characterization.

One :func:`sweep_alphas` per (platform, workload) yields Oracle for
every metric *and* PERF, so the harness sweeps once and reuses it.
Efficiency is reported as ``oracle_metric / strategy_metric`` (in
percent, higher is better, Oracle = 100%), matching Figs. 9-12.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.baselines import ProfiledPerfScheduler, StaticAlphaScheduler
from repro.core.characterization import PlatformCharacterization, PowerCharacterizer
from repro.core.metrics import EnergyMetric
from repro.core.scheduler import EnergyAwareScheduler, SchedulerConfig
from repro.errors import HarnessError
from repro.harness.experiment import ApplicationRun, run_application
from repro.soc.simulator import IntegratedProcessor
from repro.soc.spec import PlatformSpec
from repro.workloads.base import Workload
from repro.workloads.microbench import standard_microbenches

#: The paper's exhaustive-search grid.
ORACLE_ALPHA_STEP = 0.1

_characterization_cache: Dict[str, PlatformCharacterization] = {}


def get_characterization(spec: PlatformSpec, sweep_step: float = 0.05,
                         cache_dir: Optional[str] = None
                         ) -> PlatformCharacterization:
    """The platform's one-time power characterization.

    Process-cached, and optionally persisted to ``cache_dir`` (or the
    ``REPRO_CACHE_DIR`` environment variable) as JSON - the paper's
    characterization is computed once per processor and shipped with
    the runtime, so the natural deployment is a cached file.
    """
    cached = _characterization_cache.get(spec.name)
    if cached is not None:
        return cached

    cache_dir = cache_dir or os.environ.get("REPRO_CACHE_DIR")
    cache_path = None
    if cache_dir:
        cache_path = os.path.join(cache_dir,
                                  f"characterization-{spec.name}.json")
        if os.path.exists(cache_path):
            with open(cache_path) as fh:
                cached = PlatformCharacterization.from_json(fh.read())
            _characterization_cache[spec.name] = cached
            return cached

    characterizer = PowerCharacterizer(
        processor_factory=lambda: IntegratedProcessor(spec),
        microbenches=standard_microbenches(),
        sweep_step=sweep_step)
    cached = characterizer.characterize()
    _characterization_cache[spec.name] = cached
    if cache_path is not None:
        os.makedirs(cache_dir, exist_ok=True)
        with open(cache_path, "w") as fh:
            fh.write(cached.to_json())
    return cached


def clear_characterization_cache() -> None:
    """Drop the in-process cache (testing/ablation use)."""
    _characterization_cache.clear()


@dataclass
class AlphaSweep:
    """Measured application runs at every static alpha."""

    platform: str
    workload: str
    alphas: List[float]
    runs: List[ApplicationRun]

    def run_at(self, alpha: float) -> ApplicationRun:
        for a, run in zip(self.alphas, self.runs):
            if abs(a - alpha) < 1e-9:
                return run
        raise HarnessError(f"alpha {alpha} not in sweep")

    def oracle(self, metric: EnergyMetric) -> ApplicationRun:
        """The run minimizing the measured metric (the paper's Oracle)."""
        return min(self.runs, key=lambda r: r.metric_value(metric))

    def oracle_alpha(self, metric: EnergyMetric) -> float:
        best = self.oracle(metric)
        return self.alphas[self.runs.index(best)]

    def perf(self) -> ApplicationRun:
        """The best-execution-time run (the paper's PERF strategy)."""
        return min(self.runs, key=lambda r: r.time_s)

    def perf_alpha(self) -> float:
        best = self.perf()
        return self.alphas[self.runs.index(best)]


def sweep_alphas(spec: PlatformSpec, workload: Workload, tablet: bool = False,
                 step: float = ORACLE_ALPHA_STEP) -> AlphaSweep:
    """Run the application once per static alpha on the 0.1 grid."""
    n = int(round(1.0 / step))
    alphas = [min(1.0, i * step) for i in range(n + 1)]
    runs = [
        run_application(spec, workload, StaticAlphaScheduler(alpha=a),
                        strategy_name=f"static-{a:.2f}", tablet=tablet)
        for a in alphas
    ]
    return AlphaSweep(platform=spec.name, workload=workload.abbrev,
                      alphas=alphas, runs=runs)


@dataclass
class StrategyOutcome:
    """One workload's result under one strategy, Oracle-relative."""

    workload: str
    strategy: str
    metric_value: float
    oracle_value: float
    time_s: float
    energy_j: float
    alpha: Optional[float]

    @property
    def efficiency_pct(self) -> float:
        """oracle / strategy, in percent (Oracle = 100, higher better)."""
        if self.metric_value <= 0:
            raise HarnessError("non-positive metric value")
        return 100.0 * self.oracle_value / self.metric_value


@dataclass
class SuiteEvaluation:
    """Figs. 9-12: all workloads x all strategies for one metric."""

    platform: str
    metric: EnergyMetric
    strategies: List[str]
    outcomes: Dict[str, Dict[str, StrategyOutcome]] = field(default_factory=dict)
    sweeps: Dict[str, AlphaSweep] = field(default_factory=dict)

    def outcome(self, workload: str, strategy: str) -> StrategyOutcome:
        return self.outcomes[workload][strategy]

    def workloads(self) -> List[str]:
        return list(self.outcomes.keys())

    def average_efficiency_pct(self, strategy: str) -> float:
        values = [self.outcomes[w][strategy].efficiency_pct
                  for w in self.outcomes]
        if not values:
            raise HarnessError("empty evaluation")
        return sum(values) / len(values)


def evaluate_suite(spec: PlatformSpec, workloads: Sequence[Workload],
                   metric: EnergyMetric, tablet: bool = False,
                   sweeps: Optional[Dict[str, AlphaSweep]] = None,
                   eas_config: Optional[SchedulerConfig] = None) -> SuiteEvaluation:
    """Run the full Fig. 9/10/11/12-style comparison for one metric.

    ``sweeps`` may carry precomputed alpha sweeps (they are metric-
    independent), so evaluating both EDP and energy sweeps only once.
    """
    characterization = get_characterization(spec)
    evaluation = SuiteEvaluation(
        platform=spec.name, metric=metric,
        strategies=["CPU", "GPU", "PERF", "EAS"])
    for workload in workloads:
        sweep = (sweeps or {}).get(workload.abbrev)
        if sweep is None:
            sweep = sweep_alphas(spec, workload, tablet=tablet)
        evaluation.sweeps[workload.abbrev] = sweep
        oracle_run = sweep.oracle(metric)
        oracle_value = oracle_run.metric_value(metric)

        eas_scheduler = EnergyAwareScheduler(
            characterization=characterization, metric=metric,
            config=eas_config or SchedulerConfig())
        eas_run = run_application(spec, workload, eas_scheduler,
                                  strategy_name="EAS", tablet=tablet)
        perf_run = run_application(spec, workload, ProfiledPerfScheduler(),
                                   strategy_name="PERF", tablet=tablet)

        per_strategy: Dict[str, StrategyOutcome] = {}
        for name, run, alpha in (
                ("CPU", sweep.run_at(0.0), 0.0),
                ("GPU", sweep.run_at(1.0), 1.0),
                ("PERF", perf_run, perf_run.final_alpha),
                ("BEST-TIME", sweep.perf(), sweep.perf_alpha()),
                ("EAS", eas_run, eas_run.final_alpha),
                ("Oracle", oracle_run, sweep.oracle_alpha(metric))):
            per_strategy[name] = StrategyOutcome(
                workload=workload.abbrev,
                strategy=name,
                metric_value=run.metric_value(metric),
                oracle_value=oracle_value,
                time_s=run.time_s,
                energy_j=run.energy_j,
                alpha=alpha)
        evaluation.outcomes[workload.abbrev] = per_strategy
    return evaluation
