"""The observer: the one object instrumentation points talk to.

Design goal: **zero overhead when disabled**.  Every instrumented
layer (scheduler, runtime, simulator, harness) holds an observer
reference that defaults to the shared :data:`NULL_OBSERVER`, whose
``enabled`` flag is ``False`` and whose hooks are no-ops.  Hot paths
guard any non-trivial bookkeeping with ``if observer.enabled:`` - a
single attribute load - so a run without ``--trace``/``--metrics-out``
pays one pointer and one boolean per *phase*, not per tick.

An enabled :class:`Observer` collects four streams in memory:

* **spans** (:class:`~repro.obs.spans.SpanRecord`) - nested, wall- and
  simulated-time stamped intervals;
* **events** (:class:`~repro.obs.spans.EventRecord`) - point events;
* **decisions** (:class:`~repro.obs.records.DecisionRecord`) - one per
  scheduled invocation, every exit path;
* **metrics** (:class:`~repro.obs.metrics.MetricsRegistry`) -
  counters, gauges, histograms.

Exporters (:mod:`repro.obs.export`) turn these into a JSONL event log
or a Chrome ``chrome://tracing`` trace merged with the simulator's
:class:`~repro.soc.trace.PowerTrace`.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.records import DecisionRecord
from repro.obs.spans import EventRecord, SpanRecord


class _SpanContext:
    """Context manager closing one span on exit (reentrant-free)."""

    __slots__ = ("_observer", "_record")

    def __init__(self, observer: "Observer", record: SpanRecord) -> None:
        self._observer = observer
        self._record = record

    def __enter__(self) -> SpanRecord:
        return self._record

    def __exit__(self, exc_type, exc, tb) -> None:
        self._observer._close_span(self._record, exc)


class _NullSpanContext:
    """Shared do-nothing span context for the disabled observer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpanContext()


class Observer:
    """Collects spans, events, decisions, and metrics for one run."""

    enabled: bool = True

    def __init__(self, metadata: Optional[Dict[str, Any]] = None) -> None:
        self.metadata: Dict[str, Any] = dict(metadata or {})
        self.metrics = MetricsRegistry()
        self.spans: List[SpanRecord] = []
        self.events: List[EventRecord] = []
        self.decisions: List[DecisionRecord] = []
        self._stack: List[SpanRecord] = []
        self._seq = 0
        self._sim_clock: Optional[Callable[[], float]] = None

    # -- wiring -----------------------------------------------------------------

    def bind_sim_clock(self, clock: Optional[Callable[[], float]]) -> None:
        """Bind the simulated-time source (e.g. ``lambda: processor.now``).

        Spans and events opened afterwards carry simulated timestamps
        alongside wall time; ``None`` unbinds.
        """
        self._sim_clock = clock

    def _sim_now(self) -> Optional[float]:
        clock = self._sim_clock
        return clock() if clock is not None else None

    # -- spans ------------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a nested span; use as ``with obs.span("name", k=v):``."""
        parent = self._stack[-1] if self._stack else None
        record = SpanRecord(
            name=name,
            seq=self._seq,
            parent_seq=parent.seq if parent is not None else None,
            depth=len(self._stack),
            wall_start_s=time.perf_counter(),
            sim_start_s=self._sim_now(),
            attrs=attrs,
        )
        self._seq += 1
        self.spans.append(record)
        self._stack.append(record)
        return _SpanContext(self, record)

    def _close_span(self, record: SpanRecord, exc: Optional[BaseException]) -> None:
        record.wall_end_s = time.perf_counter()
        record.sim_end_s = self._sim_now()
        if exc is not None:
            record.attrs.setdefault("error", type(exc).__name__)
        # Unwind to (and including) the record even if inner spans
        # leaked - an exception may have skipped their __exit__.
        while self._stack:
            if self._stack.pop() is record:
                break

    # -- events & decisions ------------------------------------------------------

    def event(self, name: str, **attrs: Any) -> None:
        """Record one point event."""
        self.events.append(EventRecord(
            name=name, wall_s=time.perf_counter(),
            sim_s=self._sim_now(), attrs=attrs))

    def decision(self, record: DecisionRecord) -> None:
        """Attach one per-invocation scheduling decision record."""
        if record.sim_time_s is None:
            record.sim_time_s = self._sim_now()
        self.decisions.append(record)

    # -- merging -----------------------------------------------------------------

    def merge_child(self, child: "Observer") -> None:
        """Absorb a child observer's streams (worker -> parent merge).

        Child span sequence numbers are offset past this observer's
        so they stay unique and parent links stay intact; events,
        decisions, and metrics append/fold in order.  Used by the
        execution engine to reassemble whole traces from process-pool
        workers (see docs/PARALLELISM.md).
        """
        offset = self._seq
        for span in child.spans:
            span.seq += offset
            if span.parent_seq is not None:
                span.parent_seq += offset
            self.spans.append(span)
        self._seq += child._seq
        self.events.extend(child.events)
        self.decisions.extend(child.decisions)
        self.metrics.merge(child.metrics)

    # -- metric shorthands -------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.metrics.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.histogram(name).observe(value)


class NullObserver(Observer):
    """The disabled observer: every hook is a no-op.

    A process-wide singleton (:data:`NULL_OBSERVER`) is what every
    instrumented component holds by default, so "observability off"
    costs one attribute load per guard.
    """

    enabled = False

    def bind_sim_clock(self, clock) -> None:  # noqa: D102 - no-op
        pass

    def span(self, name: str, **attrs: Any) -> _NullSpanContext:  # type: ignore[override]
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def decision(self, record: DecisionRecord) -> None:
        pass

    def merge_child(self, child: "Observer") -> None:
        pass

    def inc(self, name: str, amount: float = 1.0) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass


#: The shared disabled observer.
NULL_OBSERVER = NullObserver()


def resolve(observer: Optional[Observer]) -> Observer:
    """``observer or NULL_OBSERVER`` with the type spelled out."""
    return observer if observer is not None else NULL_OBSERVER
