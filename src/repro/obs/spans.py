"""Span records: nested, wall- and simulated-time stamped intervals.

A span brackets one unit of runtime work ("invocation",
"profiling_round", "grid_search", "phase", ...).  Every span carries
*two* clocks:

* **wall time** (``time.perf_counter``) - what the scheduling
  computation actually costs on the host, the quantity the paper's
  Section 5 reports as 1-2 microseconds per invocation;
* **simulated time** - where the work falls on the SoC's virtual
  timeline, so spans can be merged with the simulator's
  :class:`~repro.soc.trace.PowerTrace` onto one Chrome-trace timeline.

Spans nest: the observer maintains a stack, and each record stores its
depth and its parent's sequence number, so exporters can reconstruct
the tree without any global state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass
class SpanRecord:
    """One completed (or still-open) span."""

    #: Hierarchical name, e.g. ``eas.profiling_round``.
    name: str
    #: Sequence number, unique within one observer (preorder).
    seq: int
    #: Sequence number of the enclosing span (None at the root).
    parent_seq: Optional[int]
    #: Nesting depth (0 = root).
    depth: int
    #: Host wall clock (``time.perf_counter``) at entry/exit.
    wall_start_s: float
    wall_end_s: Optional[float] = None
    #: Simulated SoC time at entry/exit (None when no clock is bound).
    sim_start_s: Optional[float] = None
    sim_end_s: Optional[float] = None
    #: Free-form structured attributes (JSON-serializable values).
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def wall_duration_s(self) -> Optional[float]:
        if self.wall_end_s is None:
            return None
        return self.wall_end_s - self.wall_start_s

    @property
    def sim_duration_s(self) -> Optional[float]:
        if self.sim_start_s is None or self.sim_end_s is None:
            return None
        return self.sim_end_s - self.sim_start_s

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (used by the JSONL exporter)."""
        return {
            "name": self.name,
            "seq": self.seq,
            "parent_seq": self.parent_seq,
            "depth": self.depth,
            "wall_start_s": self.wall_start_s,
            "wall_end_s": self.wall_end_s,
            "sim_start_s": self.sim_start_s,
            "sim_end_s": self.sim_end_s,
            "attrs": dict(self.attrs),
        }


@dataclass
class EventRecord:
    """One point event (no duration), e.g. an observed GPU fault."""

    name: str
    wall_s: float
    sim_s: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "wall_s": self.wall_s,
            "sim_s": self.sim_s,
            "attrs": dict(self.attrs),
        }
