"""Exporters: JSONL event log and Chrome trace-event JSON.

Two file formats, both schema-validated by :mod:`repro.obs.validate`:

* **JSONL** (``--metrics-out`` companion, chaos artifacts): one JSON
  object per line, each tagged with a ``"type"`` of ``meta``, ``span``,
  ``event``, ``decision`` or ``metrics``.  Line-oriented so campaign
  logs can be grepped and streamed.

* **Chrome trace-event** (``--trace``): the ``chrome://tracing`` /
  Perfetto JSON object format (``{"traceEvents": [...]}``).  Scheduler
  and runtime spans become ``"X"`` complete events, decision records
  and fault events become ``"i"`` instant events, and the simulator's
  :class:`~repro.soc.trace.PowerTrace` samples are merged onto the
  *same simulated timeline* as ``"C"`` counter events - so the power
  staircase of a profiling round lines up under the span that caused
  it.  Timestamps are simulated microseconds when a simulated clock
  was bound, host-wall microseconds otherwise (never mixed within one
  section).

Multiple runs (e.g. one per CLI strategy) export as separate trace
*processes* via :class:`TraceSection`.

Every writer goes through :func:`_atomic_write`: the payload is
flushed and fsynced to a temp file in the destination directory, then
``os.replace``d into place - a crash (or SIGKILL) mid-export leaves
either the previous complete file or none, never a truncated artifact
that downstream validation would choke on.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.observer import Observer
from repro.obs.spans import SpanRecord
from repro.soc.trace import PowerTrace

#: Schema version stamped into every export.
SCHEMA_VERSION = 1

#: Cap on power counter events per section; longer traces are
#: decimated (and the decimation factor recorded in the metadata).
MAX_POWER_EVENTS = 4000


def _atomic_write(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename).

    The temp file lives in the destination directory so the final
    ``os.replace`` stays on one filesystem and is atomic; it is
    flushed and fsynced first so the rename never publishes bytes the
    kernel has not durably accepted.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=os.path.basename(path) + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


# ---------------------------------------------------------------------------
# JSONL event log
# ---------------------------------------------------------------------------

def jsonl_lines(observer: Observer,
                extra_meta: Optional[Dict[str, Any]] = None) -> List[Dict[str, Any]]:
    """The event log as a list of JSON-ready dicts (one per line)."""
    meta: Dict[str, Any] = {"type": "meta", "schema_version": SCHEMA_VERSION}
    meta.update(observer.metadata)
    if extra_meta:
        meta.update(extra_meta)
    lines: List[Dict[str, Any]] = [meta]
    lines.extend({"type": "span", **span.to_dict()} for span in observer.spans)
    lines.extend({"type": "event", **event.to_dict()}
                 for event in observer.events)
    lines.extend({"type": "decision", **record.to_dict()}
                 for record in observer.decisions)
    lines.append({"type": "metrics", "metrics": observer.metrics.snapshot()})
    return lines


def write_jsonl(path: str, observer: Observer,
                extra_meta: Optional[Dict[str, Any]] = None) -> int:
    """Write the JSONL event log; returns the number of lines."""
    lines = jsonl_lines(observer, extra_meta)
    _atomic_write(path, "".join(json.dumps(line, sort_keys=True) + "\n"
                                for line in lines))
    return len(lines)


def write_metrics(path: str, observer: Observer,
                  extra_meta: Optional[Dict[str, Any]] = None) -> None:
    """Write the metrics snapshot (``--metrics-out``) as one JSON object."""
    payload: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "metadata": {**observer.metadata, **(extra_meta or {})},
        "metrics": observer.metrics.snapshot(),
    }
    _atomic_write(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# Chrome trace-event format
# ---------------------------------------------------------------------------

@dataclass
class TraceSection:
    """One run's worth of observability, exported as one trace process."""

    name: str
    observer: Optional[Observer] = None
    power_trace: Optional[PowerTrace] = None


def _span_ts_us(span: SpanRecord, wall_origin: float) -> "tuple[float, float]":
    """(ts, dur) in microseconds on the section's timeline."""
    if span.sim_start_s is not None:
        ts = span.sim_start_s * 1e6
        dur = (span.sim_duration_s or 0.0) * 1e6
    else:
        ts = (span.wall_start_s - wall_origin) * 1e6
        dur = (span.wall_duration_s or 0.0) * 1e6
    return ts, max(dur, 0.0)


def chrome_trace_events(section: TraceSection, pid: int) -> List[Dict[str, Any]]:
    """All trace events of one section, as JSON-ready dicts."""
    events: List[Dict[str, Any]] = [{
        "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
        "args": {"name": section.name},
    }]
    observer = section.observer
    if observer is not None:
        wall_origin = observer.spans[0].wall_start_s if observer.spans else 0.0
        for span in observer.spans:
            ts, dur = _span_ts_us(span, wall_origin)
            args: Dict[str, Any] = dict(span.attrs)
            if span.wall_duration_s is not None:
                args["wall_us"] = span.wall_duration_s * 1e6
            events.append({
                "ph": "X", "pid": pid, "tid": 0, "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ts": ts, "dur": dur, "args": args,
            })
        for point in observer.events:
            ts = (point.sim_s * 1e6 if point.sim_s is not None
                  else (point.wall_s - wall_origin) * 1e6)
            events.append({
                "ph": "i", "pid": pid, "tid": 0, "name": point.name,
                "cat": "event", "s": "t", "ts": ts,
                "args": dict(point.attrs),
            })
        for record in observer.decisions:
            ts = (record.sim_time_s or 0.0) * 1e6
            events.append({
                "ph": "i", "pid": pid, "tid": 0,
                "name": f"decision:{record.exit_path}",
                "cat": "decision", "s": "t", "ts": ts,
                "args": record.to_dict(),
            })
    trace = section.power_trace
    if trace is not None and len(trace):
        stride = max(1, -(-len(trace.samples) // MAX_POWER_EVENTS))
        for sample in trace.samples[::stride]:
            events.append({
                "ph": "C", "pid": pid, "tid": 0, "name": "power_w",
                "ts": sample.t * 1e6,
                "args": {"package": round(sample.package_w, 4),
                         "cpu": round(sample.cpu_w, 4),
                         "gpu": round(sample.gpu_w, 4)},
            })
        if stride > 1:
            events[0]["args"]["power_decimation"] = stride
    return events


def chrome_trace(sections: Sequence[TraceSection],
                 metadata: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The full trace object (``{"traceEvents": [...]}``)."""
    events: List[Dict[str, Any]] = []
    for pid, section in enumerate(sections, start=1):
        events.extend(chrome_trace_events(section, pid))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema_version": SCHEMA_VERSION,
                      **(metadata or {})},
    }


def write_chrome_trace(path: str, sections: Sequence[TraceSection],
                       metadata: Optional[Dict[str, Any]] = None) -> int:
    """Write the Chrome trace JSON; returns the number of trace events."""
    trace = chrome_trace(sections, metadata)
    _atomic_write(path, json.dumps(trace, sort_keys=True) + "\n")
    return len(trace["traceEvents"])
