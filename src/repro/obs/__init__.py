"""``repro.obs``: the scheduler flight recorder.

A zero-overhead-when-disabled observability layer for the EAS runtime
(see docs/OBSERVABILITY.md):

* :class:`Observer` / :data:`NULL_OBSERVER` - span tracing, point
  events, per-invocation :class:`DecisionRecord` audit records, and a
  counters/gauges/histograms :class:`MetricsRegistry`;
* :mod:`repro.obs.export` - JSONL event logs and Chrome
  ``chrome://tracing`` trace-event JSON, merging scheduler spans with
  the simulator's power timeline;
* :mod:`repro.obs.validate` - structural schema validators for every
  exported format (also runnable: ``python -m repro.obs.validate f``).

The default everywhere is :data:`NULL_OBSERVER`: instrumented layers
pay one attribute load per phase until a harness passes a real
:class:`Observer`.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.observer import NULL_OBSERVER, NullObserver, Observer, resolve
from repro.obs.records import (
    ALL_EXIT_PATHS,
    EXIT_COOLDOWN,
    EXIT_DEGRADED,
    EXIT_FAULT_DEGRADED,
    EXIT_GPU_BUSY,
    EXIT_PROFILED,
    EXIT_SMALL_N,
    EXIT_TABLE_HIT,
    DecisionRecord,
)
from repro.obs.spans import EventRecord, SpanRecord

__all__ = [
    "Observer", "NullObserver", "NULL_OBSERVER", "resolve",
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "SpanRecord", "EventRecord",
    "DecisionRecord", "ALL_EXIT_PATHS",
    "EXIT_TABLE_HIT", "EXIT_SMALL_N", "EXIT_GPU_BUSY", "EXIT_DEGRADED",
    "EXIT_COOLDOWN", "EXIT_FAULT_DEGRADED", "EXIT_PROFILED",
]
