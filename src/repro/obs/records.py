"""Structured per-invocation scheduling decision records.

A :class:`DecisionRecord` is the audit trail of one ``parallel_for``
invocation through the EAS algorithm (Fig. 7): which exit path the
scheduler took, what it measured (R_C, R_G), which power-curve
category it classified, which alpha the grid search picked, what the
decision itself cost on the host, and - on a hostile platform - which
fault events it observed and why it fell back.

One record is emitted for *every* exit path, including all the
resilience degradation branches, so a degraded chaos-campaign cell can
explain exactly which fault tripped the budget and why alpha collapsed
to zero.  The exit paths:

========================  ====================================================
``table-hit``             table G held a reusable alpha (Fig. 7 lines 2-4)
``small-n-cpu-only``      N below GPU_PROFILE_SIZE (lines 6-10)
``gpu-busy-fallback``     debounced A26 counter read busy (Section 5)
``degraded-cpu-only``     fault budget exhausted on an *earlier* invocation
``cooldown-cpu-only``     inside the post-fault circuit-breaker window
``fault-degraded``        budget exhausted *during* this invocation's
                          profiling; remainder drained on the CPU
``profiled``              the full profile/classify/optimize path
                          (lines 13-26); may still carry a
                          ``fallback_reason`` if the partitioned phase
                          faulted and drained on the CPU
``deadline-infeasible``   profiled under a deadline-constrained metric,
                          but no grid point met the budget: the
                          feasible set was empty and the scheduler ran
                          the min-T alpha instead (see
                          docs/OBJECTIVES.md)
========================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Exit-path constants (the ``exit_path`` field).
EXIT_TABLE_HIT = "table-hit"
EXIT_SMALL_N = "small-n-cpu-only"
EXIT_GPU_BUSY = "gpu-busy-fallback"
EXIT_DEGRADED = "degraded-cpu-only"
EXIT_COOLDOWN = "cooldown-cpu-only"
EXIT_FAULT_DEGRADED = "fault-degraded"
EXIT_PROFILED = "profiled"
EXIT_DEADLINE_INFEASIBLE = "deadline-infeasible"

ALL_EXIT_PATHS = (
    EXIT_TABLE_HIT, EXIT_SMALL_N, EXIT_GPU_BUSY, EXIT_DEGRADED,
    EXIT_COOLDOWN, EXIT_FAULT_DEGRADED, EXIT_PROFILED,
    EXIT_DEADLINE_INFEASIBLE,
)


@dataclass
class DecisionRecord:
    """The full audit record of one scheduled kernel invocation."""

    #: Which branch of Fig. 7 (plus resilience extensions) exited.
    exit_path: str = EXIT_PROFILED
    #: Kernel key and invocation size.
    kernel: str = ""
    n_items: float = 0.0
    #: The applied GPU offload ratio (0 on every CPU-only path).
    alpha: float = 0.0
    #: Power-curve category short code (e.g. ``M-CL-GS``), when one
    #: was selected this invocation or reused from table G.
    category_code: Optional[str] = None
    #: True when alpha came from table G rather than fresh profiling.
    from_table: bool = False
    #: Profiling rounds taken this invocation.
    profile_rounds: int = 0
    #: Throughput estimates the decision was based on (items/s).
    cpu_throughput: Optional[float] = None
    gpu_throughput: Optional[float] = None
    #: Host-side cost of the scheduling computation itself, seconds
    #: (the paper's 1-2 microseconds).
    decision_overhead_s: float = 0.0
    #: Lifetime GPU-fault total for this kernel at decision time.
    faults_observed: int = 0
    #: Specific fault events observed *during this invocation*, in
    #: order (e.g. ``"profile-chunk: GPU kernel launch failed"``).
    fault_events: List[str] = field(default_factory=list)
    #: Why the scheduler fell back / degraded, when it did.
    fallback_reason: Optional[str] = None
    #: True when the alpha recorded into table G was quarantined
    #: (derived while faults were observed).
    quarantined: bool = False
    #: True when table G held an entry for the kernel at entry -
    #: *presence*, regardless of whether the entry was eligible for
    #: reuse (it may be quarantined, provisional, or outgrown).
    table_hit: bool = False
    #: True when the table-G entry was actually eligible for reuse
    #: under the scheduler's hygiene rules (not quarantined; not
    #: provisional or outgrown for a profile-sized launch).  Hit-rate
    #: aggregation must count this, not :attr:`table_hit`.
    table_usable: bool = False
    #: Simulated seconds spent idling inside the ``gpu_busy`` debounce
    #: re-check loop - charged to this decision so EXIT_GPU_BUSY
    #: latency accounting includes the time the check itself burned.
    debounce_idle_s: float = 0.0
    #: Owning tenant in a multiprogram run (None when single-tenant).
    tenant: Optional[str] = None
    #: Simulated SoC time when the invocation completed.
    sim_time_s: Optional[float] = None
    #: Scheduler notes attached to the invocation's record.
    notes: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (stable key order by dataclass)."""
        return {
            "exit_path": self.exit_path,
            "kernel": self.kernel,
            "n_items": self.n_items,
            "alpha": self.alpha,
            "category_code": self.category_code,
            "from_table": self.from_table,
            "profile_rounds": self.profile_rounds,
            "cpu_throughput": self.cpu_throughput,
            "gpu_throughput": self.gpu_throughput,
            "decision_overhead_s": self.decision_overhead_s,
            "faults_observed": self.faults_observed,
            "fault_events": list(self.fault_events),
            "fallback_reason": self.fallback_reason,
            "quarantined": self.quarantined,
            "table_hit": self.table_hit,
            "table_usable": self.table_usable,
            "debounce_idle_s": self.debounce_idle_s,
            "tenant": self.tenant,
            "sim_time_s": self.sim_time_s,
            "notes": list(self.notes),
        }

    def explain(self) -> str:
        """One-line human explanation (chaos-campaign reporting)."""
        parts = [f"{self.kernel or '?'}: {self.exit_path}",
                 f"alpha={self.alpha:.2f}"]
        if self.category_code:
            parts.append(f"category={self.category_code}")
        if self.fallback_reason:
            parts.append(f"reason={self.fallback_reason}")
        if self.fault_events:
            parts.append("faults=[" + "; ".join(self.fault_events) + "]")
        if self.quarantined:
            parts.append("quarantined")
        return ", ".join(parts)
