"""Schema validation for observability exports.

Hand-rolled structural validators (no third-party schema dependency)
for the three file formats :mod:`repro.obs.export` emits:

* Chrome trace-event JSON (``--trace``),
* metrics snapshots (``--metrics-out``),
* JSONL event logs.

Every validator raises :class:`~repro.errors.ObservabilityError` with
a path-qualified message on the first violation, so a CI smoke step
can simply run::

    python -m repro.obs.validate /tmp/t.json

which sniffs the format from the payload and exits non-zero on an
invalid file.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import ObservabilityError

_NUM = (int, float)

#: Chrome event phases the exporter emits.
_KNOWN_PHASES = {"X", "i", "C", "M"}

_JSONL_TYPES = {"meta", "span", "event", "decision", "metrics"}

_HISTOGRAM_KEYS = {"count", "sum", "min", "max", "mean", "p50", "p95"}


def _fail(where: str, message: str) -> None:
    raise ObservabilityError(f"{where}: {message}")


def _require(condition: bool, where: str, message: str) -> None:
    if not condition:
        _fail(where, message)


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------

def validate_trace_events(obj: Any) -> int:
    """Validate a Chrome trace object; returns the event count."""
    _require(isinstance(obj, dict), "trace", "top level must be an object")
    _require("traceEvents" in obj, "trace", "missing 'traceEvents'")
    events = obj["traceEvents"]
    _require(isinstance(events, list), "traceEvents", "must be a list")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        _require(isinstance(event, dict), where, "must be an object")
        ph = event.get("ph")
        _require(isinstance(ph, str) and ph in _KNOWN_PHASES, where,
                 f"bad phase {ph!r} (expected one of {sorted(_KNOWN_PHASES)})")
        _require(isinstance(event.get("pid"), int), where, "missing int 'pid'")
        _require(isinstance(event.get("tid"), int), where, "missing int 'tid'")
        _require(isinstance(event.get("name"), str), where, "missing 'name'")
        if ph != "M":
            _require(isinstance(event.get("ts"), _NUM), where,
                     "missing numeric 'ts'")
        if ph == "X":
            _require(isinstance(event.get("dur"), _NUM)
                     and event["dur"] >= 0,
                     where, "'X' event needs non-negative numeric 'dur'")
        if ph == "i":
            _require(event.get("s") in ("t", "p", "g"), where,
                     "'i' event needs scope 's' of t/p/g")
        if "args" in event:
            _require(isinstance(event["args"], dict), where,
                     "'args' must be an object")
    return len(events)


# ---------------------------------------------------------------------------
# Metrics snapshots
# ---------------------------------------------------------------------------

def _validate_metrics_snapshot(snapshot: Any, where: str) -> None:
    _require(isinstance(snapshot, dict), where, "must be an object")
    for kind in ("counters", "gauges", "histograms"):
        _require(kind in snapshot, where, f"missing '{kind}'")
        _require(isinstance(snapshot[kind], dict), f"{where}.{kind}",
                 "must be an object")
    for name, value in snapshot["counters"].items():
        _require(isinstance(value, _NUM), f"{where}.counters[{name!r}]",
                 "must be numeric")
    for name, value in snapshot["gauges"].items():
        _require(isinstance(value, _NUM), f"{where}.gauges[{name!r}]",
                 "must be numeric")
    for name, summary in snapshot["histograms"].items():
        hwhere = f"{where}.histograms[{name!r}]"
        _require(isinstance(summary, dict), hwhere, "must be an object")
        missing = _HISTOGRAM_KEYS - set(summary)
        _require(not missing, hwhere, f"missing keys {sorted(missing)}")
        for key in _HISTOGRAM_KEYS:
            _require(isinstance(summary[key], _NUM), f"{hwhere}.{key}",
                     "must be numeric")


def validate_metrics(obj: Any) -> None:
    """Validate a ``--metrics-out`` payload."""
    _require(isinstance(obj, dict), "metrics", "top level must be an object")
    _require(isinstance(obj.get("schema_version"), int), "metrics",
             "missing int 'schema_version'")
    _require(isinstance(obj.get("metadata"), dict), "metrics",
             "missing 'metadata' object")
    _validate_metrics_snapshot(obj.get("metrics"), "metrics.metrics")


# ---------------------------------------------------------------------------
# JSONL event logs
# ---------------------------------------------------------------------------

def validate_jsonl(lines: Iterable[Dict[str, Any]]) -> int:
    """Validate parsed JSONL event-log lines; returns the line count."""
    count = 0
    saw_meta = False
    for i, line in enumerate(lines):
        where = f"line {i + 1}"
        _require(isinstance(line, dict), where, "must be an object")
        kind = line.get("type")
        _require(kind in _JSONL_TYPES, where,
                 f"bad type {kind!r} (expected one of {sorted(_JSONL_TYPES)})")
        if kind == "meta":
            saw_meta = True
            _require(isinstance(line.get("schema_version"), int), where,
                     "meta line needs int 'schema_version'")
        elif kind == "span":
            for key in ("name", "seq", "depth", "wall_start_s"):
                _require(key in line, where, f"span line missing {key!r}")
        elif kind == "event":
            _require("name" in line and "wall_s" in line, where,
                     "event line missing 'name'/'wall_s'")
        elif kind == "decision":
            for key in ("exit_path", "kernel", "alpha", "fault_events"):
                _require(key in line, where, f"decision line missing {key!r}")
        elif kind == "metrics":
            _validate_metrics_snapshot(line.get("metrics"), where)
        count += 1
    _require(saw_meta, "jsonl", "no meta line")
    return count


# ---------------------------------------------------------------------------
# File-level sniffing entry point
# ---------------------------------------------------------------------------

def validate_file(path: str) -> str:
    """Validate one exported file, sniffing its format.

    Returns the detected format: ``"chrome-trace"``, ``"metrics"`` or
    ``"jsonl"``.  Raises :class:`ObservabilityError` on violations.
    """
    with open(path) as fh:
        text = fh.read()
    stripped = text.lstrip()
    if not stripped:
        _fail(path, "empty file")
    try:
        obj = json.loads(text)
    except json.JSONDecodeError:
        obj = None
    if isinstance(obj, dict):
        if "traceEvents" in obj:
            validate_trace_events(obj)
            return "chrome-trace"
        if "metrics" in obj:
            validate_metrics(obj)
            return "metrics"
        _fail(path, "JSON object is neither a chrome trace nor a "
                    "metrics snapshot")
    # Not a single JSON document: try JSONL.
    lines: List[Dict[str, Any]] = []
    for i, raw in enumerate(text.splitlines()):
        if not raw.strip():
            continue
        try:
            lines.append(json.loads(raw))
        except json.JSONDecodeError as exc:
            _fail(path, f"line {i + 1} is not valid JSON: {exc}")
    validate_jsonl(lines)
    return "jsonl"


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print("usage: python -m repro.obs.validate FILE [FILE ...]",
              file=sys.stderr)
        return 2
    for path in argv:
        try:
            kind = validate_file(path)
        except ObservabilityError as exc:
            print(f"{path}: INVALID - {exc}", file=sys.stderr)
            return 1
        print(f"{path}: valid {kind}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
