"""Metrics registry: counters, gauges, and summary histograms.

The registry is deliberately small - the runtime's instrumentation
points need only three shapes:

* :class:`Counter` - monotone totals (profiling rounds, retries,
  steals, injected-fault observations);
* :class:`Gauge` - last-written values (a kernel's leaky-bucket fault
  level, the MSR's lifetime wrap count);
* :class:`Histogram` - bounded-memory summaries of repeated
  measurements (grid-search microseconds, per-invocation decision
  overhead).

Metric names are dotted strings (``eas.profiling_rounds``); per-kernel
instances append the kernel key (``eas.fault_bucket.nbody``).  The
whole registry snapshots to one JSON-ready dict, which is what
``--metrics-out`` writes and what the schema validator checks.
"""

from __future__ import annotations

import math
from typing import Dict, List

#: Histograms keep at most this many raw samples for percentiles; the
#: running count/sum/min/max stay exact beyond it.
_RESERVOIR_CAP = 4096


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Running summary (count/sum/min/max) plus a capped reservoir."""

    __slots__ = ("count", "total", "min", "max", "_samples")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._samples: List[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < _RESERVOIR_CAP:
            self._samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained reservoir."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(len(ordered) - 1,
                   max(0, math.ceil(q / 100.0 * len(ordered)) - 1))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p95": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
        }


class MetricsRegistry:
    """Lazily-created named metrics with a JSON-ready snapshot."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram()
        return metric

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (worker -> parent).

        Counters add, gauges take the other's last-written value (the
        child ran after this registry's writes), and histograms merge
        their exact running summaries; reservoirs concatenate up to
        the cap, so percentiles stay approximate, as they already are.
        """
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other._gauges.items():
            self.gauge(name).set(gauge.value)
        for name, theirs in other._histograms.items():
            ours = self.histogram(name)
            ours.count += theirs.count
            ours.total += theirs.total
            ours.min = min(ours.min, theirs.min)
            ours.max = max(ours.max, theirs.max)
            room = _RESERVOIR_CAP - len(ours._samples)
            if room > 0:
                ours._samples.extend(theirs._samples[:room])

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """The whole registry as one sorted, JSON-serializable dict."""
        return {
            "counters": {name: self._counters[name].value
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].value
                       for name in sorted(self._gauges)},
            "histograms": {name: self._histograms[name].summary()
                           for name in sorted(self._histograms)},
        }
