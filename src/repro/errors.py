"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class.  Subclasses are grouped by the
layer that raises them: the simulated SoC substrate, the parallel
runtime, the characterization/scheduling core, and the workload suite.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SpecError(ReproError):
    """A platform specification is inconsistent or out of range."""


class SimulationError(ReproError):
    """The SoC simulator was driven into an invalid state."""


class CounterError(ReproError):
    """A performance counter was misused (e.g. stopped before started)."""


class GpuFaultError(ReproError):
    """A GPU launch failed or hung (transient device-level fault).

    Raised by the fault-injection substrate (:mod:`repro.soc.faults`)
    in place of a completed phase.  Schedulers that talk to the GPU
    must treat this as a recoverable condition: the offloaded items
    remain in the shared pool and can be retried or drained on the CPU.
    """


class RuntimeLayerError(ReproError):
    """The parallel_for runtime layer was misused."""


class SchedulingError(ReproError):
    """The energy-aware scheduler received invalid inputs."""


class CharacterizationError(ReproError):
    """Power characterization failed (bad sweep, degenerate fit, ...)."""


class ClassificationError(ReproError):
    """Online workload classification received invalid measurements."""


class WorkloadError(ReproError):
    """A benchmark workload was configured with invalid parameters."""


class HarnessError(ReproError):
    """The experiment harness was asked for an unknown experiment."""
