"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class.  Subclasses are grouped by the
layer that raises them: the simulated SoC substrate, the parallel
runtime, the characterization/scheduling core, and the workload suite.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SpecError(ReproError):
    """A platform specification is inconsistent or out of range."""


class SimulationError(ReproError):
    """The SoC simulator was driven into an invalid state."""


class CounterError(ReproError):
    """A performance counter was misused (e.g. stopped before started)."""


class GpuFaultError(ReproError):
    """A GPU launch failed or hung (transient device-level fault).

    Raised by the fault-injection substrate (:mod:`repro.soc.faults`)
    in place of a completed phase.  Schedulers that talk to the GPU
    must treat this as a recoverable condition: the offloaded items
    remain in the shared pool and can be retried or drained on the CPU.
    """


class RuntimeLayerError(ReproError):
    """The parallel_for runtime layer was misused."""


class SchedulingError(ReproError):
    """The energy-aware scheduler received invalid inputs."""


class CharacterizationError(ReproError):
    """Power characterization failed (bad sweep, degenerate fit, ...)."""


class ClassificationError(ReproError):
    """Online workload classification received invalid measurements."""


class WorkloadError(ReproError):
    """A benchmark workload was configured with invalid parameters."""


class HarnessError(ReproError):
    """The experiment harness was asked for an unknown experiment."""


class ObservabilityError(ReproError):
    """The observability layer was misused or an export failed validation."""


class ServiceError(ReproError):
    """The scheduler service (daemon, job queue, durable store) failed."""


class StoreSchemaError(ServiceError):
    """A durable store file's schema version does not match this code.

    Raised instead of silently misreading the file: a store written by
    a different schema version must be migrated (or discarded), never
    reinterpreted.
    """


class AdmissionError(ServiceError):
    """A job submission was rejected by admission control.

    Carries the human-readable rejection reason (queue full, tenant
    over quota, invalid job spec) so callers can surface it verbatim.
    """


class UnknownNameError(HarnessError, SchedulingError, WorkloadError):
    """A by-name lookup (metric, workload, experiment id) failed.

    One exception type for every registry miss, so the CLI and harness
    can catch a single class and print its did-you-mean suggestion.
    It additionally derives from the legacy per-layer classes
    (:class:`SchedulingError` for metrics, :class:`WorkloadError` for
    workloads) so pre-existing callers keep working.
    """

    def __init__(self, message: str, suggestions: "tuple[str, ...]" = ()) -> None:
        if suggestions:
            message = f"{message} (did you mean: {', '.join(suggestions)}?)"
        super().__init__(message)
        self.suggestions = tuple(suggestions)


def closest_names(name: str, candidates: "list[str] | tuple[str, ...]",
                  limit: int = 3) -> "tuple[str, ...]":
    """Did-you-mean candidates for a failed by-name lookup.

    Case-insensitive fuzzy match over the registry's names, for
    embedding in an :class:`UnknownNameError`.
    """
    import difflib

    lowered = {c.lower(): c for c in candidates}
    matches = difflib.get_close_matches(name.lower(), list(lowered),
                                        n=limit, cutoff=0.4)
    return tuple(lowered[m] for m in matches)
