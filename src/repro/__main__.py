"""``python -m repro`` - the unified command-line front door."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
