"""Deprecated alias: ``python -m repro.service`` -> ``python -m repro``.

The subcommands are unchanged (``serve``, ``submit``, ``status``,
``cancel``, ``drain``); only the entry point moved.
``python -m repro serve`` is the supported spelling.
"""

import sys

from repro._compat import warn_once
from repro.service.cli import main

# stacklevel=2 attributes the warning to this module (running as
# __main__), where the default warning filters actually display it.
warn_once("service.__main__",
          "'python -m repro.service' is deprecated; use 'python -m repro' "
          "subcommands instead (e.g. 'python -m repro serve')",
          stacklevel=2)
sys.exit(main())
