"""Entry point: ``python -m repro.service <command>``."""

import sys

from repro.service.cli import main

sys.exit(main())
