"""``python -m repro.service``: serve / submit / status / cancel / drain.

Examples::

    python -m repro.service serve  --db /tmp/eas.db --cache-dir /tmp/eas-cache
    python -m repro.service submit --db /tmp/eas.db --workload CC --scheduler eas
    python -m repro.service submit --db /tmp/eas.db --workload BS \\
        --platform tablet --priority 5 --tenant interactive
    python -m repro.service status --db /tmp/eas.db
    python -m repro.service status --db /tmp/eas.db --json
    python -m repro.service status --db /tmp/eas.db --fingerprint
    python -m repro.service cancel --db /tmp/eas.db --job 3
    python -m repro.service drain  --db /tmp/eas.db

``serve`` runs the claim loop in the foreground until drained
(``--until-idle`` exits once the queue is empty - the batch/CI mode).
``drain`` asks a running daemon to finish its in-flight job and exit:
it sets the store's drain flag and, when the advertised pid is alive,
also sends SIGTERM.  ``kill -9`` of the daemon is always safe; the
next ``serve`` recovers orphaned jobs and replays idempotently.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import tempfile
import time
from typing import List, Optional

from repro.errors import ReproError
from repro.harness.report import format_table
from repro.obs.export import write_metrics
from repro.obs.observer import Observer
from repro.service.daemon import (
    DRAIN_FLAG,
    PID_KEY,
    SchedulerService,
)
from repro.service.jobs import AdmissionPolicy, JobSpec
from repro.service.store import DurableStore
from repro.soc.spec import TICK_MODES


def _add_db(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--db", required=True, metavar="PATH",
                        help="durable store sqlite file")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="crash-safe persistent scheduler service")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the daemon claim loop")
    _add_db(serve)
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="content-addressed result cache root "
                            "(default: alongside the db)")
    serve.add_argument("--until-idle", action="store_true",
                       help="exit once no job is live (batch/CI mode)")
    serve.add_argument("--inline", action="store_true",
                       help="execute jobs in-process instead of in "
                            "watchdog-supervised children")
    serve.add_argument("--poll", type=float, default=0.02, metavar="S",
                       help="idle poll interval in seconds")
    serve.add_argument("--max-depth", type=int, default=256,
                       help="admission control: max live jobs")
    serve.add_argument("--tenant-quota", type=int, default=64,
                       help="admission control: max live jobs per tenant")
    serve.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write the service metrics snapshot on exit")

    submit = sub.add_parser("submit", help="enqueue one job")
    _add_db(submit)
    submit.add_argument("--workload", required=True, metavar="ABBREV")
    submit.add_argument("--platform", choices=("desktop", "tablet"),
                        default="desktop")
    submit.add_argument("--scheduler",
                        choices=("cpu", "gpu", "perf", "static", "eas",
                                 "race"),
                        default="eas")
    submit.add_argument("--metric", default="edp",
                        help="objective name; NAME@SECONDS (e.g. edp@2) "
                             "runs deadline-constrained EAS "
                             "(docs/OBJECTIVES.md)")
    submit.add_argument("--alpha", type=float, default=None,
                        help="static scheduler offload ratio")
    submit.add_argument("--deadline", type=float, default=None, metavar="S",
                        help="race scheduler budget: sprint at alpha_PERF, "
                             "then idle out the remainder")
    submit.add_argument("--fault-level", type=float, default=0.0)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--tick-mode", choices=TICK_MODES, default="exact")
    submit.add_argument("--cold", action="store_true",
                        help="skip the persisted table G (eas only)")
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--timeout", type=float, default=60.0, metavar="S")
    submit.add_argument("--retries", type=int, default=2)
    submit.add_argument("--cache-dir", default=None, metavar="DIR")

    status = sub.add_parser("status", help="inspect jobs and counters")
    _add_db(status)
    status.add_argument("--job", type=int, default=None, metavar="ID")
    status.add_argument("--json", action="store_true", dest="as_json")
    status.add_argument("--fingerprint", action="store_true",
                        help="print the campaign fingerprint over every "
                             "DONE job's result payload")
    status.add_argument("--cache-dir", default=None, metavar="DIR")

    cancel = sub.add_parser("cancel", help="cancel a queued job")
    _add_db(cancel)
    cancel.add_argument("--job", type=int, required=True, metavar="ID")

    drain = sub.add_parser("drain", help="ask the daemon to finish and exit")
    _add_db(drain)
    drain.add_argument("--wait", type=float, default=10.0, metavar="S",
                       help="seconds to wait for the daemon to exit")
    return parser


def _default_cache_dir(db_path: str, override: Optional[str]) -> str:
    if override:
        return override
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    directory = os.path.dirname(os.path.abspath(db_path))
    return os.path.join(directory or tempfile.gettempdir(), "service-cache")


def _make_service(db: str, cache_dir: Optional[str],
                  **kwargs) -> SchedulerService:
    return SchedulerService(db, _default_cache_dir(db, cache_dir), **kwargs)


def _cmd_serve(args: argparse.Namespace) -> int:
    observer = Observer(metadata={"component": "repro.service",
                                  "db": args.db})
    service = _make_service(
        args.db, args.cache_dir, observer=observer,
        admission=AdmissionPolicy(max_depth=args.max_depth,
                                  tenant_quota=args.tenant_quota),
        poll_interval_s=args.poll, inline=args.inline)
    try:
        service.serve_forever(until_idle=args.until_idle)
    finally:
        if args.metrics_out:
            write_metrics(args.metrics_out, observer,
                          extra_meta={"store_counters":
                                      service.store.counters()})
            print(f"[wrote service metrics to {args.metrics_out}]")
        service.close()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    spec = JobSpec(
        workload=args.workload, platform=args.platform,
        scheduler=args.scheduler, metric=args.metric, alpha=args.alpha,
        fault_level=args.fault_level, seed=args.seed,
        tick_mode=args.tick_mode, warm_table=not args.cold,
        deadline_s=args.deadline)
    service = _make_service(args.db, args.cache_dir)
    try:
        outcome = service.submit(spec, tenant=args.tenant,
                                 priority=args.priority,
                                 max_retries=args.retries,
                                 timeout_s=args.timeout)
    finally:
        service.close()
    if not outcome.accepted:
        print(f"rejected: {outcome.decision.reason}", file=sys.stderr)
        return 1
    print(outcome.job_id)
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    service = _make_service(args.db, args.cache_dir)
    try:
        if args.fingerprint:
            print(service.fingerprint())
            return 0
        snapshot = service.store.status_snapshot()
        if args.job is not None:
            jobs = [j for j in snapshot["jobs"] if j["id"] == args.job]
            if not jobs:
                print(f"no job with id {args.job}", file=sys.stderr)
                return 1
            print(json.dumps(jobs[0], indent=2, sort_keys=True))
            return 0
        if args.as_json:
            print(json.dumps(snapshot, indent=2, sort_keys=True))
            return 0
        states = snapshot["states"]
        print(f"store: {snapshot['path']} "
              f"(schema v{snapshot['schema_version']})")
        print("  " + "  ".join(f"{state}={states[state]}"
                               for state in states if states[state]))
        counters = snapshot["counters"]
        if counters:
            print("  " + "  ".join(f"{k}={v:g}"
                                   for k, v in counters.items()))
        rows = [(j["id"], j["tenant"], j["state"], j["attempts"],
                 j["spec"].get("workload", "?"),
                 j["spec"].get("scheduler", "?"),
                 (j["result_key"] or "")[:12],
                 (j["error"] or "")[:40])
                for j in snapshot["jobs"]]
        if rows:
            print(format_table(
                ["id", "tenant", "state", "att", "wl", "sched",
                 "result", "error"], rows))
    finally:
        service.close()
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    with DurableStore(args.db) as store:
        ok, reason = store.cancel_job(args.job)
    if not ok:
        print(reason, file=sys.stderr)
        return 1
    print(f"job {args.job} cancelled")
    return 0


def _cmd_drain(args: argparse.Namespace) -> int:
    with DurableStore(args.db) as store:
        store.set_meta(DRAIN_FLAG, "1")
        pid_text = store.get_meta(PID_KEY)
        pid = int(pid_text) if pid_text and pid_text.isdigit() else None
        if pid is not None:
            try:
                os.kill(pid, signal.SIGTERM)
            except (OSError, ProcessLookupError):
                pid = None
        deadline = time.monotonic() + args.wait
        while time.monotonic() < deadline:
            if store.get_meta(PID_KEY) is None:
                print("daemon drained")
                return 0
            time.sleep(0.05)
    print("drain requested (daemon has not confirmed exit)",
          file=sys.stderr)
    return 1


_COMMANDS = {
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "cancel": _cmd_cancel,
    "drain": _cmd_drain,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
