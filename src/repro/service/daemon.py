"""The scheduler daemon: claim, execute, complete - crash-safely.

The serve loop is a single-worker claim loop over the durable store:

1. **claim** the highest-priority eligible ``PENDING`` job
   (``-> CLAIMED``), then mark it ``RUNNING``;
2. **execute** it in a forked child process supervised by a watchdog
   (per-job timeout; a wedged child is SIGKILLed and the attempt
   counted as a failure).  The child's *only* side effect is an
   atomic write into the content-addressed
   :class:`~repro.harness.engine.ResultCache`;
3. **complete** it: one sqlite transaction commits the ``DONE``
   transition, the result-cache pointer, and (for warm EAS jobs) the
   table-G merge.

Because step 2 is idempotent (same spec + same table snapshot -> same
key -> byte-identical payload) and step 3 is atomic, the daemon is
crash-safe by construction: ``kill -9`` anywhere leaves either a
re-claimable job whose replay recalls the cached result, or a
committed completion.  Startup runs :meth:`SchedulerService.recover`,
which re-enqueues orphaned ``CLAIMED``/``RUNNING`` rows - at-least-
once execution, exactly-once results.

SIGTERM drains: the loop finishes the in-flight job, stops claiming,
and exits cleanly.  SIGKILL needs no handling - that is the point.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import signal
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.characterization import PlatformCharacterization
from repro.core.metrics import metric_by_name
from repro.core.profiling import KernelTable
from repro.core.scheduler import EnergyAwareScheduler
from repro.errors import ReproError, ServiceError
from repro.harness.engine import ResultCache, RunResult, execute_spec
from repro.harness.experiment import run_application
from repro.obs.observer import Observer, resolve
from repro.service.jobs import (
    AdmissionDecision,
    AdmissionPolicy,
    BackoffPolicy,
    JobSpec,
    table_digest,
)
from repro.service.store import (
    DEAD,
    DONE,
    PENDING,
    TERMINAL_STATES,
    DurableStore,
    JobRow,
)
from repro.soc.faults import FaultConfig
from repro.workloads.registry import workload_by_abbrev

#: Store meta key a ``drain`` command sets; the serve loop exits at
#: the next iteration boundary (after finishing the in-flight job).
DRAIN_FLAG = "daemon.drain_requested"
#: Store meta keys advertising the live daemon.
PID_KEY = "daemon.pid"
HEARTBEAT_KEY = "daemon.heartbeat"


@dataclass
class SubmitResult:
    """Outcome of one submission: a job id, or the rejection reason."""

    job_id: Optional[int]
    decision: AdmissionDecision

    @property
    def accepted(self) -> bool:
        return self.decision.accepted


@dataclass
class _Plan:
    """Everything one execution attempt needs, computed at claim time."""

    key: str
    warm: bool
    spec: JobSpec
    #: Warm path: the injected state (characterization JSON + table-G
    #: snapshot).  Cold path: the compiled RunSpec.
    char_json: Optional[str] = None
    table_rows: Optional[List[Dict[str, Any]]] = None
    run_spec: Optional[Any] = None
    platform_name: str = ""


class _JobFailure(Exception):
    """One failed execution attempt (transient unless marked not)."""

    def __init__(self, message: str, retryable: bool = True) -> None:
        super().__init__(message)
        self.retryable = retryable


# -- child-process entry points ---------------------------------------------------
# Module-level so the fork/pickle machinery resolves them by name.
# Their ONLY side effect is the atomic, content-addressed cache write,
# which is what makes at-least-once execution yield exactly-once
# results: a duplicate attempt rewrites the same bytes at the same key.

def _run_warm_payload(spec: JobSpec, char_json: str,
                      table_rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Execute one warm EAS job: scheduler seeded from table G."""
    characterization = PlatformCharacterization.from_json(char_json)
    platform = spec.platform_spec()
    scheduler = EnergyAwareScheduler(characterization,
                                     metric_by_name(spec.metric))
    scheduler.table = KernelTable.from_rows(table_rows)
    fault_config = (FaultConfig.from_level(spec.fault_level, seed=spec.seed)
                    if spec.fault_level > 0.0 else None)
    run = run_application(platform, workload_by_abbrev(spec.workload),
                          scheduler, strategy_name="EAS",
                          tablet=spec.tablet, fault_config=fault_config)
    return {
        "platform": platform.name,
        "run": run,
        "table_rows": scheduler.table.to_rows(),
        "decisions": list(scheduler.decisions),
    }


def _error_marker_path(cache_root: str, key: str) -> str:
    return os.path.join(cache_root, "errors", f"{key}.err")


def _write_error_marker(cache_root: str, key: str,
                        exc: BaseException) -> None:
    """Record why an attempt failed (and whether retrying can help).

    A deterministic :class:`~repro.errors.ReproError` (bad workload,
    bad spec) will fail identically on every retry, so it is marked
    permanent; anything else is treated as transient infrastructure
    trouble.  Written atomically so a crash mid-write cannot leave a
    half marker.
    """
    kind = "PERMANENT" if isinstance(exc, ReproError) else "TRANSIENT"
    path = _error_marker_path(cache_root, key)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
    with os.fdopen(fd, "w") as fh:
        fh.write(f"{kind}|{type(exc).__name__}: {exc}")
    os.replace(tmp, path)


def _read_error_marker(cache_root: str, key: str) -> Optional[str]:
    try:
        with open(_error_marker_path(cache_root, key)) as fh:
            return fh.read()
    except OSError:
        return None


def _clear_error_marker(cache_root: str, key: str) -> None:
    try:
        os.remove(_error_marker_path(cache_root, key))
    except OSError:
        pass


def _child_execute_warm(spec_json: str, char_json: str,
                        table_rows: List[Dict[str, Any]],
                        cache_root: str, key: str) -> None:
    try:
        spec = JobSpec.from_json(spec_json)
        payload = _run_warm_payload(spec, char_json, table_rows)
    except BaseException as exc:
        _write_error_marker(cache_root, key, exc)
        raise
    ResultCache(cache_root).put(key, RunResult(key=key, payload=payload))


def _child_execute_cold(run_spec: Any, cache_root: str, key: str) -> None:
    try:
        result = execute_spec(run_spec)
    except BaseException as exc:
        _write_error_marker(cache_root, key, exc)
        raise
    ResultCache(cache_root).put(key, result)


def job_result_canonical(payload: Any) -> str:
    """Byte-stable serialization of one job's result payload.

    Warm payloads cover the measured run *and* the learned table-G
    rows (the durable side effect); cold payloads are the engine's
    :meth:`~repro.harness.experiment.ApplicationRun.canonical`.
    """
    if isinstance(payload, dict) and "run" in payload:
        rows = ";".join(
            f"{r['key']}|{r['alpha']!r}|{r['weight']!r}|{r['category']}|"
            f"{r['invocations']}|{r['derived_at_items']!r}|"
            f"{int(r['provisional'])}|{int(r['quarantined'])}"
            for r in payload.get("table_rows", []))
        exits = ",".join(d.exit_path for d in payload.get("decisions", []))
        return f"{payload['run'].canonical()}|rows:{rows}|exits:{exits}"
    if hasattr(payload, "canonical"):
        return payload.canonical()
    return repr(payload)


def campaign_fingerprint(store: DurableStore,
                         cache: ResultCache) -> str:
    """SHA-256 over every DONE job's spec and result payload.

    Keyed by spec hash (not job id or timestamps), so an interrupted-
    and-recovered campaign fingerprints byte-identically to an
    uninterrupted one - the kill-and-restart chaos harness asserts
    exactly this.
    """
    parts: List[str] = []
    for job in store.jobs(states=(DONE,)):
        result = cache.get(job.result_key) if job.result_key else None
        body = (job_result_canonical(result.payload)
                if result is not None else "<payload-missing>")
        parts.append(f"{job.spec_sha}|{body}")
    parts.sort()
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()


class SchedulerService:
    """The persistent scheduler service around one durable store."""

    def __init__(self, db_path: str, cache_dir: str,
                 admission: Optional[AdmissionPolicy] = None,
                 backoff: Optional[BackoffPolicy] = None,
                 observer: Optional[Observer] = None,
                 poll_interval_s: float = 0.02,
                 inline: bool = False) -> None:
        self.store = DurableStore(db_path)
        self.cache_root = os.path.join(cache_dir, "service-results")
        self.observer = resolve(observer)
        self.cache = ResultCache(self.cache_root, observer=self.observer)
        self.admission = admission or AdmissionPolicy()
        self.backoff = backoff or BackoffPolicy()
        self.poll_interval_s = poll_interval_s
        #: Execute jobs in-process instead of in a supervised child.
        #: Faster for tests; per-job timeouts become advisory (nothing
        #: can SIGKILL the attempt), so ``serve`` defaults to children.
        self.inline = inline
        self._draining = False
        self._last_heartbeat = 0.0
        self._mp = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else None)

    def close(self) -> None:
        self.store.close()

    # -- submission --------------------------------------------------------------

    def submit(self, spec: JobSpec, tenant: str = "default",
               priority: int = 0, max_retries: int = 2,
               timeout_s: float = 60.0) -> SubmitResult:
        """Admission-controlled submission; never silently drops."""
        try:
            workload = workload_by_abbrev(spec.workload)
        except Exception as exc:
            self.observer.inc("service.admission_rejects")
            return SubmitResult(None, AdmissionDecision(
                False, f"invalid job spec: {exc}"))
        if spec.tablet and not workload.tablet_supported:
            self.observer.inc("service.admission_rejects")
            return SubmitResult(None, AdmissionDecision(
                False, f"invalid job spec: {spec.workload} does not "
                       "build on the 32-bit tablet"))
        decision = self.admission.admit(
            depth=self.store.queue_depth(),
            tenant_depth=self.store.queue_depth(tenant),
            tenant=tenant)
        if not decision:
            self.observer.inc("service.admission_rejects")
            return SubmitResult(None, decision)
        job_id = self.store.submit_job(
            spec.to_json(), spec.sha(), tenant=tenant, priority=priority,
            max_retries=max_retries, timeout_s=timeout_s)
        self.observer.inc("service.submitted")
        self.observer.event("service.submit", job=job_id, tenant=tenant,
                            workload=spec.workload, priority=priority)
        return SubmitResult(job_id, decision)

    # -- the serve loop ----------------------------------------------------------

    def recover(self) -> int:
        """Re-enqueue jobs orphaned by a previous crash (startup step)."""
        recovered = self.store.recover_orphans()
        if recovered:
            self.observer.inc("service.recoveries", recovered)
            self.observer.event("service.recovered", jobs=recovered)
        return recovered

    def serve_forever(self, until_idle: bool = False,
                      install_signals: bool = True) -> None:
        """Claim-execute-complete until drained (or idle).

        ``until_idle=True`` exits once no job is live - the batch
        mode the chaos harness and CI smoke use.  SIGTERM requests a
        drain: the in-flight job finishes, then the loop exits.
        SIGKILL is survivable by construction, not by handling.
        """
        if install_signals:
            signal.signal(signal.SIGTERM, self._request_drain)
            signal.signal(signal.SIGINT, self._request_drain)
        self.store.set_meta(PID_KEY, str(os.getpid()))
        self.store.clear_meta(DRAIN_FLAG)
        self.recover()
        try:
            while not self._draining:
                if self.store.get_meta(DRAIN_FLAG) is not None:
                    break
                self._heartbeat()
                job = self.store.claim_next()
                if job is not None:
                    self._process(job)
                    continue
                live = self._live_jobs()
                if until_idle and live == 0:
                    break
                time.sleep(self.poll_interval_s)
        finally:
            self.store.clear_meta(PID_KEY)
            self.store.clear_meta(DRAIN_FLAG)

    def run_until_idle(self) -> None:
        """Drain the current queue in-process (no signal handlers)."""
        self.serve_forever(until_idle=True, install_signals=False)

    def _request_drain(self, signum, frame) -> None:  # pragma: no cover
        self._draining = True

    def _live_jobs(self) -> int:
        counts = self.store.state_counts()
        return sum(counts[state] for state in counts
                   if state not in TERMINAL_STATES)

    def _heartbeat(self) -> None:
        now = time.time()
        if now - self._last_heartbeat >= 1.0:
            self.store.set_meta(HEARTBEAT_KEY, repr(now))
            self._last_heartbeat = now
        self.observer.set_gauge("service.queue_depth",
                                self.store.queue_depth())

    # -- one job -----------------------------------------------------------------

    def _process(self, job: JobRow) -> None:
        obs = self.observer
        with obs.span("service.job", job=job.id, tenant=job.tenant,
                      attempt=job.attempts + 1):
            try:
                plan = self._plan(job)
            except ServiceError as exc:
                self._fail(job, f"invalid job spec: {exc}", retryable=False)
                return
            self.store.mark_running(job.id)
            cached = self.cache.get(plan.key)
            if cached is not None:
                obs.inc("service.replays")
                obs.event("service.replay", job=job.id, key=plan.key)
                self._complete(job, plan, cached)
                return
            try:
                result = self._execute(plan, job)
            except _JobFailure as exc:
                self._fail(job, str(exc), retryable=exc.retryable)
                return
            self._complete(job, plan, result)

    def _plan(self, job: JobRow) -> _Plan:
        """Compute the execution plan from the *current* durable state.

        The warm cache key binds the table-G snapshot at claim time;
        because :meth:`DurableStore.complete_job` commits the table
        merge atomically with the DONE transition, a replayed attempt
        re-derives the identical snapshot, key, and therefore result.
        """
        spec = JobSpec.from_json(job.spec_json)
        platform = spec.platform_spec()
        if spec.warm:
            char_json = self._ensure_characterization(platform)
            rows = self.store.load_table_rows(platform.name)
            return _Plan(key=spec.warm_cache_key(table_digest(rows)),
                         warm=True, spec=spec, char_json=char_json,
                         table_rows=rows, platform_name=platform.name)
        if spec.scheduler == "eas":
            # Cold EAS through the engine still needs the fits; seed
            # them store-first so children never re-characterize.
            self._ensure_characterization(platform)
        run_spec = spec.to_runspec()
        return _Plan(key=run_spec.cache_key(), warm=False, spec=spec,
                     run_spec=run_spec, platform_name=platform.name)

    def _ensure_characterization(self, platform) -> str:
        """Store-first characterization: load the persisted fit, or
        compute once and persist it (the service's durable warm-up)."""
        from repro.harness import suite

        text = self.store.load_characterization(platform.name)
        if text is not None:
            suite._characterization_cache.setdefault(
                platform.name, PlatformCharacterization.from_json(text))
            return text
        characterization = suite.get_characterization(platform)
        text = characterization.to_json()
        self.store.save_characterization(platform.name, text)
        self.observer.event("service.characterized", platform=platform.name)
        return text

    def _execute(self, plan: _Plan, job: JobRow) -> RunResult:
        """One attempt: run the plan, return the cached result.

        Child mode forks a worker whose sole side effect is the atomic
        cache write; the watchdog SIGKILLs it at the job's timeout.
        Inline mode runs in-process (tests; timeouts advisory).
        """
        obs = self.observer
        _clear_error_marker(self.cache_root, plan.key)
        if self.inline:
            try:
                if plan.warm:
                    _child_execute_warm(plan.spec.to_json(), plan.char_json,
                                        plan.table_rows, self.cache_root,
                                        plan.key)
                else:
                    _child_execute_cold(plan.run_spec, self.cache_root,
                                        plan.key)
            except Exception as exc:
                raise _JobFailure(
                    f"execution raised: {exc!r}",
                    retryable=not isinstance(exc, ReproError)) from exc
        else:
            if plan.warm:
                target, args = _child_execute_warm, (
                    plan.spec.to_json(), plan.char_json, plan.table_rows,
                    self.cache_root, plan.key)
            else:
                target, args = _child_execute_cold, (
                    plan.run_spec, self.cache_root, plan.key)
            child = self._mp.Process(target=target, args=args, daemon=True)
            child.start()
            deadline = time.monotonic() + max(0.1, job.timeout_s)
            while child.is_alive() and time.monotonic() < deadline:
                child.join(timeout=0.05)
            if child.is_alive():
                child.kill()
                child.join()
                obs.inc("service.timeouts")
                raise _JobFailure(
                    f"watchdog: attempt exceeded timeout_s={job.timeout_s}; "
                    "child killed")
            if child.exitcode != 0:
                marker = _read_error_marker(self.cache_root, plan.key)
                if marker is not None:
                    kind, _, detail = marker.partition("|")
                    raise _JobFailure(detail or marker,
                                      retryable=kind != "PERMANENT")
                raise _JobFailure(
                    f"child exited with code {child.exitcode}")
        result = self.cache.get(plan.key)
        if result is None:
            raise _JobFailure("execution finished but left no cached "
                              f"result at key {plan.key[:12]}...")
        return result

    def _complete(self, job: JobRow, plan: _Plan,
                  result: RunResult) -> None:
        payload = result.payload
        table_rows = None
        if plan.warm and isinstance(payload, dict):
            table_rows = payload.get("table_rows")
        committed = self.store.complete_job(
            job.id, plan.key, platform=plan.platform_name or None,
            table_rows=table_rows)
        if committed:
            self.observer.inc("service.completed")
            self.observer.event("service.done", job=job.id, key=plan.key)

    def _fail(self, job: JobRow, error: str, retryable: bool) -> None:
        attempt = job.attempts + 1
        backoff_s = (self.backoff.delay_s(job.id, attempt)
                     if retryable else 0.0)
        state = self.store.fail_job(job.id, error, retryable=retryable,
                                    backoff_s=backoff_s)
        obs = self.observer
        obs.inc("service.failed_attempts")
        if state == PENDING:
            obs.inc("service.retries")
            obs.event("service.retry", job=job.id, attempt=attempt,
                      backoff_s=backoff_s, error=error)
        elif state == DEAD:
            obs.inc("service.dead_letters")
            obs.event("service.dead_letter", job=job.id, error=error)
        else:
            obs.event("service.failed", job=job.id, error=error)

    # -- introspection -----------------------------------------------------------

    def fingerprint(self) -> str:
        return campaign_fingerprint(self.store, self.cache)

    def result_payload(self, job_id: int) -> Any:
        """The DONE job's payload, recalled from the result cache."""
        job = self.store.job(job_id)
        if job is None or job.state != DONE or not job.result_key:
            raise ServiceError(f"job {job_id} has no committed result")
        result = self.cache.get(job.result_key)
        if result is None:
            raise ServiceError(
                f"job {job_id}: cached result {job.result_key[:12]}... "
                "is missing or corrupt")
        return result.payload
