"""``repro.service``: the crash-safe persistent scheduler service.

A long-lived daemon wrapping the execution engine so scheduling state
- table-G entries, characterization fits, content-addressed results -
accumulates across process lifetimes instead of being recomputed from
scratch on every run.  Three layers (see docs/SERVICE.md):

* :mod:`repro.service.store` - the sqlite (WAL-mode) durable store:
  the job table with its explicit state machine, persisted table G,
  characterization fits, and pointers into the result cache;
* :mod:`repro.service.jobs` - declarative job specs, admission
  control, and the retry/backoff policy;
* :mod:`repro.service.daemon` - the serve loop: claim, execute (in a
  watchdog-supervised child process), complete atomically; crash
  recovery on startup; graceful SIGTERM drain.

Crash safety is *by construction*: every side effect is either an
atomic content-addressed cache write (idempotent - replaying an
at-least-once job yields exactly-once results) or a single sqlite
transaction (the job's DONE transition and its table-G merge commit
together or not at all).  ``kill -9`` at any instant loses no jobs
and changes no fingerprints; ``repro.harness.crashchaos`` proves it.
"""

from repro.service.daemon import SchedulerService
from repro.service.jobs import AdmissionDecision, AdmissionPolicy, JobSpec
from repro.service.store import (
    JOB_STATES,
    STORE_SCHEMA_VERSION,
    TERMINAL_STATES,
    DurableStore,
)

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "DurableStore",
    "JOB_STATES",
    "JobSpec",
    "STORE_SCHEMA_VERSION",
    "SchedulerService",
    "TERMINAL_STATES",
]
