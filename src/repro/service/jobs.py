"""Job specs, admission control, and the retry/backoff policy.

A :class:`JobSpec` is the durable, JSON-canonical description of one
scheduling request: which workload on which platform under which
scheduler.  It is deliberately *textual* (platform names, workload
abbreviations, scheduler kinds) so a job row written by one process
lifetime rebuilds bit-identically in another - the same philosophy as
:class:`repro.harness.engine.RunSpec`, which cold jobs compile into.

Warm EAS jobs (``warm_table=True``, the default for ``eas``) are the
service's reason to exist: the scheduler is seeded with the persisted
table G, so a previously seen kernel is answered from the table
(DecisionRecord ``exit_path == "table-hit"``) with zero profiling
rounds.  Their cache key folds in a digest of the injected table
snapshot, so content addressing stays exact: same spec + same table
state -> same cached result; a different table state misses cleanly.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import HarnessError, SchedulingError, ServiceError
from repro.harness.engine import (
    CACHE_SCHEMA_VERSION,
    RunSpec,
    SchedulerSpec,
)
from repro.soc.spec import (
    TICK_MODES,
    baytrail_tablet,
    haswell_desktop,
)

_PLATFORMS = ("desktop", "tablet")
_SCHEDULERS = ("cpu", "gpu", "perf", "static", "eas", "race")


@dataclass(frozen=True)
class JobSpec:
    """One scheduling request, fully described by plain JSON text."""

    workload: str
    platform: str = "desktop"
    scheduler: str = "eas"
    #: Objective metric name (``eas`` only).  Constrained spellings
    #: (``"edp@2"``) run deadline-constrained EAS.
    metric: str = "edp"
    alpha: Optional[float] = None
    fault_level: float = 0.0
    seed: int = 0
    tick_mode: str = "exact"
    #: Seed the EAS scheduler from the persisted table G and merge the
    #: learned entries back after the run (``eas`` only).
    warm_table: bool = True
    #: Per-invocation deadline budget (``race`` only; the race-to-idle
    #: scheduler sprints, then idles out the remaining budget).
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.platform not in _PLATFORMS:
            raise ServiceError(f"unknown platform {self.platform!r}; "
                               f"expected one of {_PLATFORMS}")
        if self.scheduler not in _SCHEDULERS:
            raise ServiceError(f"unknown scheduler {self.scheduler!r}; "
                               f"expected one of {_SCHEDULERS}")
        if self.scheduler == "static" and self.alpha is None:
            raise ServiceError("static scheduler job needs an alpha")
        if self.tick_mode not in TICK_MODES:
            raise ServiceError(f"unknown tick mode {self.tick_mode!r}; "
                               f"expected one of {TICK_MODES}")
        if self.deadline_s is not None and self.scheduler != "race":
            raise ServiceError(
                "deadline_s applies to the race scheduler only; "
                "constrained EAS encodes its deadline in the metric "
                "name (e.g. metric='edp@2')")
        try:
            self.scheduler_spec()  # validate metric/deadline early
        except (HarnessError, SchedulingError) as exc:
            raise ServiceError(str(exc)) from exc

    # -- serialization -----------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "workload": self.workload,
            "platform": self.platform,
            "scheduler": self.scheduler,
            "metric": self.metric,
            "alpha": self.alpha,
            "fault_level": self.fault_level,
            "seed": self.seed,
            "tick_mode": self.tick_mode,
            "warm_table": self.warm_table,
            "deadline_s": self.deadline_s,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "JobSpec":
        try:
            data = json.loads(text)
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"unparseable job spec: {exc}") from exc
        known = {"workload", "platform", "scheduler", "metric", "alpha",
                 "fault_level", "seed", "tick_mode", "warm_table",
                 "deadline_s"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ServiceError(f"unknown job spec field(s) {unknown}")
        return cls(**data)

    def sha(self) -> str:
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    # -- compilation -------------------------------------------------------------

    @property
    def tablet(self) -> bool:
        return self.platform == "tablet"

    def platform_spec(self):
        """The platform spec, built under this job's tick mode."""
        factory = baytrail_tablet if self.tablet else haswell_desktop
        return factory(tick_mode=self.tick_mode)

    @property
    def warm(self) -> bool:
        """True when this job takes the warm table-G execution path."""
        return self.scheduler == "eas" and self.warm_table

    def scheduler_spec(self) -> SchedulerSpec:
        if self.scheduler == "static":
            return SchedulerSpec.static(self.alpha)
        if self.scheduler == "eas":
            return SchedulerSpec.eas(self.metric)
        if self.scheduler == "race":
            return SchedulerSpec.race(self.deadline_s)
        return SchedulerSpec(kind=self.scheduler)

    def to_runspec(self) -> RunSpec:
        """Compile to an engine :class:`RunSpec` (the cold path)."""
        return RunSpec(
            platform=self.platform_spec(),
            workload=self.workload,
            scheduler=self.scheduler_spec(),
            tablet=self.tablet,
            fault_level=self.fault_level,
            seed=self.seed,
        )

    def warm_cache_key(self, table_digest: str) -> str:
        """Content address of a warm run: spec + injected table state.

        The cold path's key is the RunSpec hash; the warm path's folds
        in the digest of the table-G snapshot the scheduler starts
        from, because the snapshot changes the computation (a table
        hit skips profiling entirely).
        """
        preimage = (f"service-warm|v{CACHE_SCHEMA_VERSION}|"
                    f"{self.to_json()}|table:{table_digest}")
        return hashlib.sha256(preimage.encode()).hexdigest()


def table_digest(rows: List[Dict[str, Any]]) -> str:
    """Order-independent digest of a table-G snapshot."""
    canon = json.dumps(sorted(rows, key=lambda r: r["key"]),
                       sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


# -- admission control ------------------------------------------------------------

@dataclass
class AdmissionDecision:
    """Accept/reject verdict for one submission, with the reason."""

    accepted: bool
    reason: str = ""

    def __bool__(self) -> bool:
        return self.accepted


@dataclass
class AdmissionPolicy:
    """Bounded queue depth plus per-tenant quotas.

    Depth counts *live* jobs (everything not terminal), so a stuck
    queue back-pressures submitters instead of growing without bound;
    the per-tenant quota keeps one noisy tenant from starving the
    rest of the admission budget.
    """

    max_depth: int = 256
    tenant_quota: int = 64
    #: Per-tenant quota overrides (tenant name -> live-job cap).
    tenant_quotas: Dict[str, int] = field(default_factory=dict)

    def quota_for(self, tenant: str) -> int:
        return self.tenant_quotas.get(tenant, self.tenant_quota)

    def admit(self, depth: int, tenant_depth: int,
              tenant: str) -> AdmissionDecision:
        if depth >= self.max_depth:
            return AdmissionDecision(
                False, f"queue full: {depth} live jobs >= "
                       f"max depth {self.max_depth}")
        quota = self.quota_for(tenant)
        if tenant_depth >= quota:
            return AdmissionDecision(
                False, f"tenant {tenant!r} over quota: {tenant_depth} "
                       f"live jobs >= quota {quota}")
        return AdmissionDecision(True, "admitted")


# -- retry backoff ----------------------------------------------------------------

@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with deterministic jitter.

    ``base * 2**(attempt-1)`` capped at ``cap``, scaled by a jitter
    factor in ``[0.5, 1.0)`` drawn from a PRNG seeded with
    ``(seed, job_id, attempt)`` - deterministic per (job, attempt), so
    a recovered daemon re-derives the same schedule and chaos replays
    stay reproducible.
    """

    base_s: float = 0.05
    cap_s: float = 5.0
    seed: int = 0

    def delay_s(self, job_id: int, attempt: int) -> float:
        if attempt <= 0:
            return 0.0
        raw = min(self.cap_s, self.base_s * (2.0 ** (attempt - 1)))
        rng = random.Random(f"{self.seed}:{job_id}:{attempt}")
        return raw * (0.5 + 0.5 * rng.random())
