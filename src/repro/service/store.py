"""The durable store: sqlite in WAL mode, one file per service.

Everything the scheduler service must not lose lives here:

* the **job table** with its explicit state machine
  (``PENDING -> CLAIMED -> RUNNING -> DONE | FAILED | DEAD``, plus
  ``CANCELLED`` for operator cancellation before execution);
* **table G** rows per platform (quarantine flags, provisional
  sample counts, and ``|co:mpN`` co-run keys intact - see
  :meth:`repro.core.profiling.KernelTable.to_rows`);
* **characterization fits** (the paper's one-time offline step) as
  the JSON produced by ``PlatformCharacterization.to_json``;
* **result pointers**: a DONE job row carries the sha256 key of its
  payload in the content-addressed :class:`~repro.harness.engine.ResultCache`;
* durable **counters** (recoveries, completions, dead letters) that
  survive daemon restarts.

Crash-safety properties this module is responsible for:

* WAL journal mode - a reader (``status``) never blocks the daemon,
  and ``kill -9`` mid-write rolls back cleanly on the next open;
* every multi-row mutation (most importantly
  :meth:`DurableStore.complete_job`, which transitions the job AND
  merges its table-G delta) is one transaction;
* the schema version is stamped into ``PRAGMA user_version``; opening
  a store written by any other version raises
  :class:`~repro.errors.StoreSchemaError` instead of misreading it.

One :class:`DurableStore` instance belongs to one process; it holds a
single sqlite connection.  Open a fresh instance after ``fork``.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ServiceError, StoreSchemaError

#: Bump when the sqlite schema changes shape or meaning.  Mismatched
#: files refuse to open (StoreSchemaError) - they are never migrated
#: silently and never misread.
STORE_SCHEMA_VERSION = 1

# -- the job state machine --------------------------------------------------------

PENDING = "PENDING"      #: queued, eligible for claiming (or in backoff)
CLAIMED = "CLAIMED"      #: taken by the daemon, not yet executing
RUNNING = "RUNNING"      #: executing in a watchdog-supervised child
DONE = "DONE"            #: result committed; ``result_key`` points into the cache
FAILED = "FAILED"        #: permanent failure (invalid spec) - never retried
DEAD = "DEAD"            #: dead letter: retry budget exhausted
CANCELLED = "CANCELLED"  #: cancelled by an operator before execution

JOB_STATES = (PENDING, CLAIMED, RUNNING, DONE, FAILED, DEAD, CANCELLED)
#: States a job never leaves.
TERMINAL_STATES = (DONE, FAILED, DEAD, CANCELLED)
#: States orphaned by a crash: recovery re-enqueues these.
ORPHANABLE_STATES = (CLAIMED, RUNNING)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    tenant        TEXT NOT NULL DEFAULT 'default',
    priority      INTEGER NOT NULL DEFAULT 0,
    state         TEXT NOT NULL DEFAULT 'PENDING',
    spec_json     TEXT NOT NULL,
    spec_sha      TEXT NOT NULL,
    attempts      INTEGER NOT NULL DEFAULT 0,
    max_retries   INTEGER NOT NULL DEFAULT 2,
    timeout_s     REAL NOT NULL DEFAULT 60.0,
    not_before    REAL NOT NULL DEFAULT 0.0,
    result_key    TEXT,
    error         TEXT,
    submitted_at  REAL NOT NULL,
    claimed_at    REAL,
    started_at    REAL,
    finished_at   REAL
);
CREATE INDEX IF NOT EXISTS jobs_claim
    ON jobs (state, priority DESC, id ASC);
CREATE TABLE IF NOT EXISTS table_g (
    platform          TEXT NOT NULL,
    key               TEXT NOT NULL,
    alpha             REAL NOT NULL,
    weight            REAL NOT NULL,
    category          TEXT,
    invocations       INTEGER NOT NULL DEFAULT 0,
    derived_at_items  REAL NOT NULL DEFAULT 0.0,
    provisional       INTEGER NOT NULL DEFAULT 0,
    quarantined       INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (platform, key)
);
CREATE TABLE IF NOT EXISTS characterizations (
    platform  TEXT PRIMARY KEY,
    json      TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS counters (
    name   TEXT PRIMARY KEY,
    value  REAL NOT NULL DEFAULT 0.0
);
CREATE TABLE IF NOT EXISTS meta (
    key    TEXT PRIMARY KEY,
    value  TEXT NOT NULL
);
"""


@dataclass
class JobRow:
    """One row of the job table, as plain data."""

    id: int
    tenant: str
    priority: int
    state: str
    spec_json: str
    spec_sha: str
    attempts: int
    max_retries: int
    timeout_s: float
    not_before: float
    result_key: Optional[str]
    error: Optional[str]
    submitted_at: float
    claimed_at: Optional[float]
    started_at: Optional[float]
    finished_at: Optional[float]

    @classmethod
    def from_sql(cls, row: sqlite3.Row) -> "JobRow":
        return cls(**{k: row[k] for k in row.keys()})


class DurableStore:
    """One sqlite file holding every byte of durable service state."""

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        self._conn = sqlite3.connect(path, timeout=30.0)
        self._conn.row_factory = sqlite3.Row
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute("PRAGMA foreign_keys=ON")
            self._check_or_stamp_schema(fresh)
        except sqlite3.DatabaseError as exc:
            self._conn.close()
            raise ServiceError(
                f"cannot open durable store {path!r}: {exc}") from exc

    def _check_or_stamp_schema(self, fresh: bool) -> None:
        version = self._conn.execute("PRAGMA user_version").fetchone()[0]
        if fresh or version == 0:
            # A brand-new file (or an empty one): create and stamp.
            tables = self._conn.execute(
                "SELECT count(*) FROM sqlite_master "
                "WHERE type='table'").fetchone()[0]
            if version == 0 and tables > 0 and not fresh:
                raise StoreSchemaError(
                    f"durable store {self.path!r} carries no schema "
                    f"version stamp; refusing to reinterpret it "
                    f"(expected schema v{STORE_SCHEMA_VERSION})")
            with self._conn:
                self._conn.executescript(_SCHEMA)
                self._conn.execute(
                    f"PRAGMA user_version = {STORE_SCHEMA_VERSION}")
            return
        if version != STORE_SCHEMA_VERSION:
            raise StoreSchemaError(
                f"durable store {self.path!r} was written by schema "
                f"v{version}, but this code reads schema "
                f"v{STORE_SCHEMA_VERSION}; migrate or discard the file "
                f"instead of letting it be misread")

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- job lifecycle -----------------------------------------------------------

    def submit_job(self, spec_json: str, spec_sha: str,
                   tenant: str = "default", priority: int = 0,
                   max_retries: int = 2, timeout_s: float = 60.0,
                   now: Optional[float] = None) -> int:
        now = time.time() if now is None else now
        with self._conn:
            cur = self._conn.execute(
                "INSERT INTO jobs (tenant, priority, state, spec_json, "
                "spec_sha, max_retries, timeout_s, submitted_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (tenant, priority, PENDING, spec_json, spec_sha,
                 max_retries, timeout_s, now))
        return int(cur.lastrowid)

    def claim_next(self, now: Optional[float] = None) -> Optional[JobRow]:
        """Atomically claim the highest-priority eligible PENDING job.

        Priority descends, then submission order; jobs inside their
        retry backoff window (``not_before`` in the future) are
        skipped.  Returns None when nothing is claimable.
        """
        now = time.time() if now is None else now
        with self._conn:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE state = ? AND not_before <= ? "
                "ORDER BY priority DESC, id ASC LIMIT 1",
                (PENDING, now)).fetchone()
            if row is None:
                return None
            updated = self._conn.execute(
                "UPDATE jobs SET state = ?, claimed_at = ? "
                "WHERE id = ? AND state = ?",
                (CLAIMED, now, row["id"], PENDING)).rowcount
            if updated != 1:  # pragma: no cover - single-writer daemon
                return None
        job = JobRow.from_sql(row)
        job.state = CLAIMED
        job.claimed_at = now
        return job

    def mark_running(self, job_id: int, now: Optional[float] = None) -> None:
        now = time.time() if now is None else now
        with self._conn:
            self._conn.execute(
                "UPDATE jobs SET state = ?, started_at = ? "
                "WHERE id = ? AND state = ?",
                (RUNNING, now, job_id, CLAIMED))

    def complete_job(self, job_id: int, result_key: str,
                     platform: Optional[str] = None,
                     table_rows: Optional[List[Dict[str, Any]]] = None,
                     now: Optional[float] = None) -> bool:
        """Commit a job's completion and its table-G delta atomically.

        One transaction covers the DONE transition, the table-G merge,
        and the ``completions`` counter - so a crash at any instant
        either commits the whole completion or none of it, and a
        replayed job (at-least-once delivery) commits exactly once.
        Returns False when the job was already terminal (idempotent).
        """
        now = time.time() if now is None else now
        with self._conn:
            updated = self._conn.execute(
                "UPDATE jobs SET state = ?, result_key = ?, finished_at = ?, "
                "error = NULL WHERE id = ? AND state NOT IN (?, ?, ?, ?)",
                (DONE, result_key, now, job_id, *TERMINAL_STATES)).rowcount
            if updated != 1:
                return False
            if platform is not None and table_rows:
                self._merge_table_rows(platform, table_rows)
            self._bump_counter("completions", 1.0)
        return True

    def fail_job(self, job_id: int, error: str, retryable: bool = True,
                 backoff_s: float = 0.0,
                 now: Optional[float] = None) -> str:
        """Record a failed attempt; returns the resulting state.

        Retryable failures consume one attempt and re-enqueue with the
        supplied backoff until the retry budget is exhausted, after
        which the job is a dead letter (``DEAD``).  Non-retryable
        failures (invalid spec) go straight to ``FAILED``.
        """
        now = time.time() if now is None else now
        with self._conn:
            row = self._conn.execute(
                "SELECT attempts, max_retries, state FROM jobs WHERE id = ?",
                (job_id,)).fetchone()
            if row is None:
                raise ServiceError(f"no job with id {job_id}")
            if row["state"] in TERMINAL_STATES:
                return str(row["state"])
            attempts = int(row["attempts"]) + 1
            if not retryable:
                state = FAILED
            elif attempts > int(row["max_retries"]):
                state = DEAD
            else:
                state = PENDING
            self._conn.execute(
                "UPDATE jobs SET state = ?, attempts = ?, error = ?, "
                "not_before = ?, finished_at = ? WHERE id = ?",
                (state, attempts, error,
                 now + backoff_s if state == PENDING else 0.0,
                 now if state in TERMINAL_STATES else None, job_id))
            if state == DEAD:
                self._bump_counter("dead_letters", 1.0)
            elif state == PENDING:
                self._bump_counter("retries", 1.0)
        return state

    def cancel_job(self, job_id: int,
                   now: Optional[float] = None) -> Tuple[bool, str]:
        """Cancel a not-yet-running job; (ok, reason-or-state)."""
        now = time.time() if now is None else now
        with self._conn:
            row = self._conn.execute(
                "SELECT state FROM jobs WHERE id = ?", (job_id,)).fetchone()
            if row is None:
                return False, f"no job with id {job_id}"
            state = str(row["state"])
            if state not in (PENDING, CLAIMED):
                return False, f"job {job_id} is {state}, not cancellable"
            self._conn.execute(
                "UPDATE jobs SET state = ?, finished_at = ?, error = ? "
                "WHERE id = ? AND state IN (?, ?)",
                (CANCELLED, now, "cancelled by operator", job_id,
                 PENDING, CLAIMED))
        return True, CANCELLED

    def recover_orphans(self) -> int:
        """Re-enqueue jobs stranded CLAIMED/RUNNING by a crash.

        At-least-once delivery: the re-run replays through the
        content-addressed result cache, so a job whose execution had
        already completed (cache entry written, DONE transition lost)
        recalls its byte-identical result instead of recomputing.
        """
        with self._conn:
            recovered = self._conn.execute(
                "UPDATE jobs SET state = ?, not_before = 0.0 "
                "WHERE state IN (?, ?)",
                (PENDING, *ORPHANABLE_STATES)).rowcount
            if recovered:
                self._bump_counter("recoveries", float(recovered))
        return int(recovered)

    # -- job queries -------------------------------------------------------------

    def job(self, job_id: int) -> Optional[JobRow]:
        row = self._conn.execute(
            "SELECT * FROM jobs WHERE id = ?", (job_id,)).fetchone()
        return JobRow.from_sql(row) if row is not None else None

    def jobs(self, states: Optional[Tuple[str, ...]] = None) -> List[JobRow]:
        if states:
            marks = ",".join("?" for _ in states)
            rows = self._conn.execute(
                f"SELECT * FROM jobs WHERE state IN ({marks}) "
                "ORDER BY id ASC", states).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT * FROM jobs ORDER BY id ASC").fetchall()
        return [JobRow.from_sql(row) for row in rows]

    def state_counts(self) -> Dict[str, int]:
        counts = {state: 0 for state in JOB_STATES}
        for row in self._conn.execute(
                "SELECT state, count(*) AS n FROM jobs GROUP BY state"):
            counts[str(row["state"])] = int(row["n"])
        return counts

    def queue_depth(self, tenant: Optional[str] = None) -> int:
        """Jobs not yet terminal (the admission-control depth)."""
        marks = ",".join("?" for _ in TERMINAL_STATES)
        if tenant is None:
            row = self._conn.execute(
                f"SELECT count(*) FROM jobs WHERE state NOT IN ({marks})",
                TERMINAL_STATES).fetchone()
        else:
            row = self._conn.execute(
                f"SELECT count(*) FROM jobs WHERE state NOT IN ({marks}) "
                "AND tenant = ?", (*TERMINAL_STATES, tenant)).fetchone()
        return int(row[0])

    # -- table G -----------------------------------------------------------------

    def _merge_table_rows(self, platform: str,
                          rows: List[Dict[str, Any]]) -> None:
        self._conn.executemany(
            "INSERT OR REPLACE INTO table_g (platform, key, alpha, weight, "
            "category, invocations, derived_at_items, provisional, "
            "quarantined) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            [(platform, r["key"], r["alpha"], r["weight"], r["category"],
              r["invocations"], r["derived_at_items"],
              int(r["provisional"]), int(r["quarantined"])) for r in rows])

    def save_table_rows(self, platform: str,
                        rows: List[Dict[str, Any]]) -> None:
        """Merge table-G rows (replace-by-key) in one transaction."""
        with self._conn:
            self._merge_table_rows(platform, rows)

    def load_table_rows(self, platform: str) -> List[Dict[str, Any]]:
        """The platform's persisted table G, sorted by key."""
        rows = self._conn.execute(
            "SELECT key, alpha, weight, category, invocations, "
            "derived_at_items, provisional, quarantined FROM table_g "
            "WHERE platform = ? ORDER BY key ASC", (platform,)).fetchall()
        return [{
            "key": row["key"],
            "alpha": float(row["alpha"]),
            "weight": float(row["weight"]),
            "category": row["category"],
            "invocations": int(row["invocations"]),
            "derived_at_items": float(row["derived_at_items"]),
            "provisional": bool(row["provisional"]),
            "quarantined": bool(row["quarantined"]),
        } for row in rows]

    # -- characterization fits ---------------------------------------------------

    def save_characterization(self, platform: str, text: str) -> None:
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO characterizations (platform, json) "
                "VALUES (?, ?)", (platform, text))

    def load_characterization(self, platform: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT json FROM characterizations WHERE platform = ?",
            (platform,)).fetchone()
        return str(row["json"]) if row is not None else None

    # -- durable counters and metadata -------------------------------------------

    def _bump_counter(self, name: str, amount: float) -> None:
        self._conn.execute(
            "INSERT INTO counters (name, value) VALUES (?, ?) "
            "ON CONFLICT(name) DO UPDATE SET value = value + excluded.value",
            (name, amount))

    def bump_counter(self, name: str, amount: float = 1.0) -> None:
        with self._conn:
            self._bump_counter(name, amount)

    def counters(self) -> Dict[str, float]:
        return {str(row["name"]): float(row["value"]) for row in
                self._conn.execute("SELECT name, value FROM counters "
                                   "ORDER BY name ASC")}

    def set_meta(self, key: str, value: str) -> None:
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                (key, value))

    def get_meta(self, key: str) -> Optional[str]:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)).fetchone()
        return str(row["value"]) if row is not None else None

    def clear_meta(self, key: str) -> None:
        with self._conn:
            self._conn.execute("DELETE FROM meta WHERE key = ?", (key,))

    # -- diagnostics -------------------------------------------------------------

    def integrity_ok(self) -> bool:
        row = self._conn.execute("PRAGMA integrity_check").fetchone()
        return str(row[0]) == "ok"

    def status_snapshot(self) -> Dict[str, Any]:
        """Machine-readable status (the ``status --json`` payload)."""
        return {
            "path": self.path,
            "schema_version": STORE_SCHEMA_VERSION,
            "states": self.state_counts(),
            "counters": self.counters(),
            "jobs": [{
                "id": j.id, "tenant": j.tenant, "priority": j.priority,
                "state": j.state, "attempts": j.attempts,
                "spec": json.loads(j.spec_json),
                "result_key": j.result_key, "error": j.error,
            } for j in self.jobs()],
        }
