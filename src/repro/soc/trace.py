"""Power/time traces for the paper's timeline figures (Figs. 2-4).

The simulator appends one sample per tick; :class:`PowerTrace` offers
the aggregations the figures need (resampling to a plotting interval,
average power over a window, min/max during GPU-active intervals).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro._compat import DATACLASS_SLOTS
from repro.errors import SimulationError

#: Macro-steps are decimated into synthesized samples no longer than
#: this many base ticks each, so fast-mode traces keep enough timeline
#: resolution for the figures (matches the exact mode's largest
#: adaptively-stretched tick).
SPAN_DECIMATION_TICKS = 8


@dataclass(**DATACLASS_SLOTS)
class TraceSample:
    """One tick of the power timeline."""

    t: float
    dt: float
    package_w: float
    cpu_w: float
    gpu_w: float
    uncore_w: float
    cpu_freq_hz: float
    gpu_freq_hz: float
    gpu_active: bool


@dataclass
class PowerTrace:
    """Append-only power timeline with figure-oriented queries."""

    samples: List[TraceSample] = field(default_factory=list)
    enabled: bool = True

    def append(self, sample: TraceSample) -> None:
        if self.enabled:
            self.samples.append(sample)

    def append_span(self, t: float, dt: float, package_w: float,
                    cpu_w: float, gpu_w: float, uncore_w: float,
                    cpu_freq_hz: float, gpu_freq_hz: float,
                    gpu_active: bool, max_sample_dt: float) -> None:
        """Record one constant-power macro-step as decimated samples.

        The span ``[t, t + dt)`` is split into equal slices no longer
        than ``max_sample_dt`` (one synthesized sample per decimation
        interval), so every aggregation - :meth:`average_power`,
        :meth:`resample`, :meth:`gpu_active_intervals` - sees the same
        energy and timeline as per-tick appending would, at a bounded
        sample count.
        """
        if not self.enabled or dt <= 0.0:
            return
        if max_sample_dt <= 0:
            raise SimulationError("max_sample_dt must be positive")
        slices = max(1, int(math.ceil(dt / max_sample_dt - 1e-9)))
        slice_dt = dt / slices
        for i in range(slices):
            self.samples.append(TraceSample(
                t=t + i * slice_dt, dt=slice_dt, package_w=package_w,
                cpu_w=cpu_w, gpu_w=gpu_w, uncore_w=uncore_w,
                cpu_freq_hz=cpu_freq_hz, gpu_freq_hz=gpu_freq_hz,
                gpu_active=gpu_active))

    def clear(self) -> None:
        self.samples.clear()

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def duration(self) -> float:
        if not self.samples:
            return 0.0
        last = self.samples[-1]
        return last.t + last.dt - self.samples[0].t

    def times(self) -> np.ndarray:
        return np.array([s.t for s in self.samples])

    def package_watts(self) -> np.ndarray:
        return np.array([s.package_w for s in self.samples])

    def cpu_watts(self) -> np.ndarray:
        return np.array([s.cpu_w for s in self.samples])

    def gpu_active_mask(self) -> np.ndarray:
        return np.array([s.gpu_active for s in self.samples], dtype=bool)

    def average_power(self, t0: Optional[float] = None,
                      t1: Optional[float] = None) -> float:
        """Time-weighted mean package power over [t0, t1]."""
        if not self.samples:
            raise SimulationError("empty trace")
        total_e = 0.0
        total_t = 0.0
        for s in self.samples:
            if t0 is not None and s.t + s.dt <= t0:
                continue
            if t1 is not None and s.t >= t1:
                break
            lo = s.t if t0 is None else max(s.t, t0)
            hi = s.t + s.dt if t1 is None else min(s.t + s.dt, t1)
            span = max(0.0, hi - lo)
            total_e += s.package_w * span
            total_t += span
        if total_t <= 0:
            raise SimulationError("empty window")
        return total_e / total_t

    def average_power_while(self, gpu_active: bool) -> float:
        """Mean package power restricted to GPU-active (or idle) ticks."""
        num = 0.0
        den = 0.0
        for s in self.samples:
            if s.gpu_active == gpu_active:
                num += s.package_w * s.dt
                den += s.dt
        if den <= 0:
            raise SimulationError("no matching ticks in trace")
        return num / den

    def min_power_while_gpu_active(self) -> float:
        powers = [s.package_w for s in self.samples if s.gpu_active]
        if not powers:
            raise SimulationError("no GPU-active ticks in trace")
        return min(powers)

    def resample(self, interval_s: float) -> "tuple[np.ndarray, np.ndarray]":
        """Resample to fixed intervals; returns (times, mean package watts).

        This is what a figure plots: one point per ``interval_s``,
        each the time-weighted mean of package power over that bin.
        """
        if interval_s <= 0:
            raise SimulationError("interval must be positive")
        if not self.samples:
            return np.array([]), np.array([])
        t0 = self.samples[0].t
        n_bins = max(1, int(np.ceil(self.duration / interval_s)))
        energy = np.zeros(n_bins)
        time_in_bin = np.zeros(n_bins)
        for s in self.samples:
            start = s.t - t0
            remaining = s.dt
            while remaining > 1e-15:
                b = min(int(start / interval_s), n_bins - 1)
                bin_end = (b + 1) * interval_s
                span = min(remaining, max(bin_end - start, 1e-15))
                energy[b] += s.package_w * span
                time_in_bin[b] += span
                start += span
                remaining -= span
        mask = time_in_bin > 0
        centers = (np.arange(n_bins) + 0.5) * interval_s
        watts = np.divide(energy, time_in_bin,
                          out=np.zeros(n_bins), where=mask)
        return centers[mask], watts[mask]

    def gpu_active_intervals(self) -> "list[tuple[float, float]]":
        """Maximal [start, end) intervals during which the GPU was active."""
        intervals: list[tuple[float, float]] = []
        start: Optional[float] = None
        for s in self.samples:
            if s.gpu_active and start is None:
                start = s.t
            elif not s.gpu_active and start is not None:
                intervals.append((start, s.t))
                start = None
        if start is not None:
            last = self.samples[-1]
            intervals.append((start, last.t + last.dt))
        return intervals


def write_csv(trace: PowerTrace, path: str) -> int:
    """Export a trace as CSV (one row per tick); returns rows written.

    Columns: t_s, dt_s, package_w, cpu_w, gpu_w, uncore_w, cpu_freq_ghz,
    gpu_freq_ghz, gpu_active.  Useful for plotting the paper's timeline
    figures with external tools.
    """
    with open(path, "w") as fh:
        fh.write("t_s,dt_s,package_w,cpu_w,gpu_w,uncore_w,"
                 "cpu_freq_ghz,gpu_freq_ghz,gpu_active\n")
        for s in trace.samples:
            fh.write(f"{s.t:.9f},{s.dt:.9f},{s.package_w:.4f},"
                     f"{s.cpu_w:.4f},{s.gpu_w:.4f},{s.uncore_w:.4f},"
                     f"{s.cpu_freq_hz / 1e9:.4f},{s.gpu_freq_hz / 1e9:.4f},"
                     f"{int(s.gpu_active)}\n")
    return len(trace.samples)


def merge_traces(traces: Sequence[PowerTrace]) -> PowerTrace:
    """Concatenate traces from sequential runs into one timeline."""
    merged = PowerTrace()
    for trace in traces:
        merged.samples.extend(trace.samples)
    merged.samples.sort(key=lambda s: s.t)
    return merged
