"""Deterministic, seeded fault injection for the simulated SoC.

The paper's premise is that EAS must survive a hostile, opaque
platform: an unreadable PCU policy, a GPU that may be busy with other
work, and a 32-bit ``MSR_PKG_ENERGY_STATUS`` register that silently
wraps.  This module makes that hostility *injectable* so the runtime's
recovery paths can be exercised reproducibly:

* **MSR faults** - transient read glitches (bit flips on one read) and
  forced extra wraparounds (a persistent register offset jump of a full
  2**32 units plus change, corrupting any measurement window it lands
  inside - the multi-wrap hazard documented in :mod:`repro.soc.msr`);
* **counter faults** - dropouts (a phase's ``CounterDelta`` activity
  fields read zero) and multiplicative noise;
* **GPU faults** - launch failures and hangs (the phase raises
  :class:`~repro.errors.GpuFaultError` after burning real simulated
  time) and dud launches that complete but *report* zero GPU progress;
* **``gpu_busy`` flapping** - performance counter A26 transiently
  reads busy when the GPU is idle.

All faults are drawn from one seeded :class:`numpy.random.Generator`,
so a given (seed, schedule of software actions) produces a
byte-identical fault sequence - the chaos campaign asserts this.

:class:`FaultySoC` wraps an :class:`~repro.soc.simulator.IntegratedProcessor`
behind the same software-visible interface, so runtimes and schedulers
cannot tell (and must not care) whether they are talking to a healthy
or a faulty package.  Ground truth stays available to *harness* code
through :attr:`FaultySoC.inner` - measurement corruption must never be
able to corrupt an experiment's bookkeeping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields, replace
from typing import List, Optional

import numpy as np

from repro.errors import GpuFaultError, SimulationError
from repro.soc.counters import CounterSnapshot
from repro.soc.simulator import IntegratedProcessor, PhaseRequest, PhaseResult

_MSR_MASK = (1 << 32) - 1

#: Items-remaining below which a region counts as absent (mirrors the
#: simulator's completion epsilon).
_DONE_EPS = 1e-9


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for diagnostics and campaign reporting."""

    t: float
    kind: str
    detail: str = ""


@dataclass
class FaultConfig:
    """Per-fault-class injection probabilities (all seeded, all in [0, 1]).

    Probabilities are per *opportunity*: per MSR read, per counter-
    bearing phase, per GPU-bearing phase, per ``gpu_busy`` read.
    """

    seed: int = 0
    #: One MSR read returns a bit-flipped value (transient glitch).
    msr_glitch_prob: float = 0.0
    #: The register jumps by a full wrap (2**32 units) plus change; a
    #: measurement window spanning the jump silently mis-reports.
    msr_extra_wrap_prob: float = 0.0
    #: A phase's CounterDelta activity fields read zero.
    counter_dropout_prob: float = 0.0
    #: A phase's CounterDelta activity fields are perturbed.
    counter_noise_prob: float = 0.0
    #: Log-normal sigma of the multiplicative counter noise.
    counter_noise_sigma: float = 0.3
    #: A GPU-bearing phase fails at launch (GpuFaultError after the
    #: launch overhead has been paid).
    gpu_launch_failure_prob: float = 0.0
    #: A GPU-bearing phase hangs; the watchdog kills it after
    #: ``hang_cost_s`` (GpuFaultError, offloaded items stay pooled).
    gpu_hang_prob: float = 0.0
    #: A GPU-bearing phase completes but *reports* zero GPU progress.
    gpu_zero_progress_prob: float = 0.0
    #: One ``gpu_busy`` read spuriously returns True.
    gpu_busy_flap_prob: float = 0.0
    #: Simulated time a hung launch burns before the watchdog fires.
    hang_cost_s: float = 0.002
    #: Absolute simulated times (s) at which the register
    #: deterministically jumps by a full wrap plus change.  Unlike
    #: ``msr_extra_wrap_prob``'s per-read draws, these land *mid-phase*
    #: through the simulator's event-source plumbing - exercising the
    #: clock's guarantee that neither tick stretching nor fast-mode
    #: macro-stepping ever advances across a scheduled fault.
    scheduled_wrap_times: "tuple[float, ...]" = ()

    def __post_init__(self) -> None:
        for f in fields(self):
            if f.name.endswith("_prob"):
                value = getattr(self, f.name)
                if not 0.0 <= value <= 1.0:
                    raise SimulationError(
                        f"fault probability {f.name}={value} outside [0, 1]")
        if self.counter_noise_sigma < 0:
            raise SimulationError("counter_noise_sigma must be non-negative")
        if self.hang_cost_s < 0:
            raise SimulationError("hang_cost_s must be non-negative")
        for t in self.scheduled_wrap_times:
            if not (math.isfinite(t) and t >= 0.0):
                raise SimulationError(
                    f"scheduled wrap time {t} must be finite and non-negative")
        self.scheduled_wrap_times = tuple(sorted(self.scheduled_wrap_times))

    @classmethod
    def from_level(cls, level: float, seed: int = 0) -> "FaultConfig":
        """Scale one scalar fault level into a full injection profile.

        ``level`` is the chaos campaign's sweep variable; the per-class
        probabilities below keep launch failures the dominant hazard
        (as on real parts, where a busy or wedged GPU is far more
        common than an SMI-corrupted MSR read).
        """
        if not 0.0 <= level <= 1.0:
            raise SimulationError(f"fault level {level} outside [0, 1]")
        return cls(
            seed=seed,
            msr_glitch_prob=0.25 * level,
            msr_extra_wrap_prob=0.05 * level,
            counter_dropout_prob=0.25 * level,
            counter_noise_prob=0.5 * level,
            gpu_launch_failure_prob=0.5 * level,
            gpu_hang_prob=0.1 * level,
            gpu_zero_progress_prob=0.25 * level,
            gpu_busy_flap_prob=0.25 * level,
        )


@dataclass
class FaultLog:
    """Chronological record of every injected fault."""

    events: List[FaultEvent] = field(default_factory=list)

    def append(self, t: float, kind: str, detail: str = "") -> None:
        self.events.append(FaultEvent(t=t, kind=kind, detail=detail))

    def count(self, kind: Optional[str] = None) -> int:
        if kind is None:
            return len(self.events)
        return sum(1 for e in self.events if e.kind == kind)

    def kinds(self) -> "dict[str, int]":
        out: "dict[str, int]" = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out


class _ScheduledWrapSource:
    """Discrete event source firing deterministic MSR wrap jumps.

    Registered with the wrapped processor's clock, which never ticks -
    and never macro-steps - across ``next_event_time``; the register
    jump is therefore applied at exactly its scheduled instant in both
    clock modes, however the surrounding span was fast-forwarded.
    """

    def __init__(self, shim: "FaultySoC", times: "tuple[float, ...]") -> None:
        self._shim = shim
        self._times = times
        self._idx = 0

    def next_event_time(self, now: float) -> float:
        if self._idx >= len(self._times):
            return float("inf")
        return self._times[self._idx]

    def fire(self, now: float) -> None:
        # Full wrap plus a deterministic per-event remainder, so
        # successive jumps are distinguishable in the log and in tests.
        jump = (1 << 32) + 4096 * (self._idx + 1)
        self._shim._msr_offset_units += jump
        self._shim.fault_log.append(
            now, "msr-scheduled-wrap",
            f"scheduled at t={self._times[self._idx]:.6f}s, "
            f"offset jumped by {jump} units")
        self._idx += 1


class FaultySoC:
    """An :class:`IntegratedProcessor` behind a fault-injecting shim.

    Implements the same software-visible interface (``spec``, ``now``,
    ``read_energy_msr``, ``energy_joules_between``,
    ``snapshot_counters``, ``gpu_busy``, ``set_power_hint``, ``idle``,
    ``run_phase``), delegating to the wrapped processor and injecting
    seeded faults on the way through.  Injected GPU failures *cost
    simulated time* (launch overhead, watchdog timeouts) before they
    surface - resilience is not free, and the chaos campaign's EDP
    bounds account for that.
    """

    def __init__(self, inner: IntegratedProcessor,
                 config: Optional[FaultConfig] = None) -> None:
        self.inner = inner
        self.config = config or FaultConfig()
        self.fault_log = FaultLog()
        self._rng = np.random.default_rng(0xFA17 + 31 * self.config.seed)
        self._msr_offset_units = 0
        if self.config.scheduled_wrap_times:
            inner.add_event_source(
                _ScheduledWrapSource(self, self.config.scheduled_wrap_times))

    # -- passthrough state -------------------------------------------------------

    @property
    def spec(self):
        return self.inner.spec

    @property
    def now(self) -> float:
        return self.inner.now

    @property
    def pcu(self):
        return self.inner.pcu

    @property
    def msr(self):
        return self.inner.msr

    @property
    def counters(self):
        return self.inner.counters

    @property
    def trace(self):
        return self.inner.trace

    # -- fault plumbing -----------------------------------------------------------

    def _trip(self, probability: float) -> bool:
        """One seeded Bernoulli draw (no draw when the class is off)."""
        if probability <= 0.0:
            return False
        return float(self._rng.random()) < probability

    def _log(self, kind: str, detail: str = "") -> None:
        self.fault_log.append(self.inner.now, kind, detail)

    # -- software-visible interface ----------------------------------------------

    def read_energy_msr(self) -> int:
        cfg = self.config
        if self._trip(cfg.msr_extra_wrap_prob):
            jump = (1 << 32) + int(self._rng.integers(1, 1 << 20))
            self._msr_offset_units += jump
            self._log("msr-extra-wrap", f"offset jumped by {jump} units")
        value = (self.inner.read_energy_msr() + self._msr_offset_units) & _MSR_MASK
        if self._trip(cfg.msr_glitch_prob):
            flip = int(self._rng.integers(1, 1 << 16)) << int(self._rng.integers(0, 17))
            value = (value ^ flip) & _MSR_MASK
            self._log("msr-glitch", f"read xor {flip:#x}")
        return value

    def energy_joules_between(self, before: int, after: int) -> float:
        return self.inner.energy_joules_between(before, after)

    def snapshot_counters(self) -> CounterSnapshot:
        return self.inner.snapshot_counters()

    @property
    def gpu_busy(self) -> bool:
        if self._trip(self.config.gpu_busy_flap_prob):
            self._log("gpu-busy-flap")
            return True
        return self.inner.gpu_busy

    def set_power_hint(self, hint: float) -> None:
        self.inner.set_power_hint(hint)

    def idle(self, duration_s: float) -> None:
        self.inner.idle(duration_s)

    def run_phase(self, request: PhaseRequest) -> PhaseResult:
        cfg = self.config
        gpu_present = (request.gpu_region is not None
                       and request.gpu_region.items_remaining > _DONE_EPS)
        if gpu_present:
            overhead = self.spec.gpu.kernel_launch_overhead_s
            if self._trip(cfg.gpu_launch_failure_prob):
                # The launch attempt costs its overhead before failing;
                # no work was dispatched, so the items stay pooled.
                self.inner.idle(overhead)
                self._log("gpu-launch-fail")
                raise GpuFaultError("GPU kernel launch failed")
            if self._trip(cfg.gpu_hang_prob):
                self.inner.idle(overhead + cfg.hang_cost_s)
                self._log("gpu-hang", f"watchdog after {cfg.hang_cost_s}s")
                raise GpuFaultError(
                    f"GPU kernel hung; watchdog fired after {cfg.hang_cost_s}s")

        result = self.inner.run_phase(request)
        return self._corrupt_observations(result, gpu_present)

    # -- observation corruption ----------------------------------------------------

    def _corrupt_observations(self, result: PhaseResult,
                              gpu_present: bool) -> PhaseResult:
        """Perturb what software *observes* about a completed phase.

        The physical simulation already happened - work was retired and
        energy deposited - so only the returned observation is touched.
        """
        cfg = self.config
        if gpu_present and self._trip(cfg.gpu_zero_progress_prob):
            self._log("gpu-zero-progress")
            result = replace(
                result, gpu_items=0.0,
                counters=replace(result.counters, gpu_items=0.0))
        if self._trip(cfg.counter_dropout_prob):
            self._log("counter-dropout")
            result = replace(result, counters=replace(
                result.counters,
                instructions_retired=0.0,
                loadstore_instructions=0.0,
                l3_misses=0.0))
        elif self._trip(cfg.counter_noise_prob):
            factors = np.exp(cfg.counter_noise_sigma
                             * self._rng.standard_normal(3))
            self._log("counter-noise",
                      f"factors {factors[0]:.3f}/{factors[1]:.3f}/{factors[2]:.3f}")
            delta = result.counters
            result = replace(result, counters=replace(
                delta,
                instructions_retired=delta.instructions_retired * factors[0],
                loadstore_instructions=delta.loadstore_instructions * factors[1],
                l3_misses=delta.l3_misses * factors[2]))
        return result
