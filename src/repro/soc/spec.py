"""Platform specifications for the simulated integrated CPU-GPU SoC.

A :class:`PlatformSpec` bundles the CPU, GPU, memory-system and PCU
parameters of one processor.  Two calibrated factory functions are
provided, mirroring the paper's evaluation platforms:

* :func:`haswell_desktop` - an Intel 4th-generation Core i7-4770 class
  desktop part with an HD Graphics 4600 class integrated GPU (20 EUs,
  7 threads/EU, 16-wide SIMD, i.e. 2240-way parallelism);
* :func:`baytrail_tablet` - an Intel Atom Z3740 class tablet part with
  a 4-EU integrated GPU.

The power coefficients are calibrated so the simulator reproduces the
package-power levels the paper reports: on the desktop, ~45 W for
CPU-alone compute-bound execution, ~30 W for GPU-alone, ~55 W for
compute-bound co-execution and ~63 W for memory-bound co-execution,
with short GPU bursts dropping the package below ~40 W (Fig. 4); on the
tablet, ~1.5 W CPU-alone / ~2 W GPU-alone compute-bound and ~0.7 W /
~1.3 W memory-bound (Figs. 5 and 6).
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro._compat import warn_once
from repro.errors import SpecError
from repro.units import gb_per_s, ghz, ms


def _pow(base, exponent: float):
    """``base ** exponent`` for a scalar or an ndarray, bit-stable.

    numpy's vectorized pow kernel can differ from C ``pow`` by 1 ulp on
    some inputs, which would break the fast clock mode's guarantee that
    batched model evaluation is bit-identical to per-tick scalar calls
    (see :func:`repro.soc.power.package_power_batch`).  Arrays therefore
    exponentiate element-wise through python floats, which route to the
    same libm ``pow`` the scalar model uses.
    """
    if isinstance(base, np.ndarray):
        return np.array([b ** exponent for b in base.tolist()])
    return base ** exponent

#: Valid simulator clock modes (see docs/PERFORMANCE.md):
#:
#: * ``"exact"`` - the reference mode: tick-by-tick execution (with the
#:   adaptive stretch for quiet spans).  Required wherever byte-stable
#:   fingerprints or calibration matter.
#: * ``"fast"`` - additionally fast-forwards *settled* spans (PCU at
#:   target, no throttle, no pending event) in closed-form macro-steps.
#:   End-to-end time/energy/items agree with exact mode to < 1e-6
#:   relative; traces are decimated, not per-tick.
#: * ``"bounded"`` - everything ``fast`` does, plus phase-outcome
#:   replay and span-vectorized commits that are *not* bit-identical
#:   per tick.  End-to-end observables are held to the explicit
#:   tolerance contract ``PlatformSpec.bounded_tol``
#:   (``|bounded - exact| <= tol * max(1, |exact|)``), enforced by the
#:   differential sweep in ``tests/soc/test_differential_modes.py``.
#:   The mode of choice for wide sweeps/chaos/fleet fan-outs where
#:   byte-stability is not required.
TICK_MODES = ("exact", "fast", "bounded")

#: Fallback mode used when a factory is called without an explicit
#: ``tick_mode``.  Only the DEPRECATED global shims below ever change
#: it; new code passes ``tick_mode=`` to the factories (or uses
#: :meth:`PlatformSpec.with_tick_mode`) and never touches this.
_default_tick_mode = "exact"


def _validated_tick_mode(mode: str) -> str:
    if mode not in TICK_MODES:
        raise SpecError(f"tick mode {mode!r} not in {TICK_MODES}")
    return mode


def _resolve_tick_mode(mode: Optional[str]) -> str:
    """Factory helper: explicit mode wins; None falls back to the
    (legacy) process default."""
    if mode is None:
        return _default_tick_mode
    return _validated_tick_mode(mode)


def default_tick_mode() -> str:
    """The tick mode factories fall back to.

    .. deprecated:: 1.2
       The process-global default is being retired; pass ``tick_mode=``
       to the platform factories instead (docs/FLEET.md, "Migrating").
    """
    warn_once(
        "soc.default_tick_mode",
        "default_tick_mode() is deprecated; pass tick_mode= to the "
        "platform factories (haswell_desktop(tick_mode='fast')) instead")
    return _default_tick_mode


def set_default_tick_mode(mode: str) -> str:
    """Set the factory default tick mode; returns the previous one.

    .. deprecated:: 1.2
       Mutable process-global state: a library call (or another
       thread) observing the default mid-flight gets whatever mode the
       last caller left behind.  Pass ``tick_mode=`` explicitly to
       :func:`haswell_desktop`, :func:`ultrabook_15w` and
       :func:`baytrail_tablet`, or rebuild an existing spec with
       :meth:`PlatformSpec.with_tick_mode`.
    """
    warn_once(
        "soc.set_default_tick_mode",
        "set_default_tick_mode() is deprecated; pass tick_mode= to the "
        "platform factories (haswell_desktop(tick_mode='fast')) or use "
        "PlatformSpec.with_tick_mode() instead")
    return _set_default_tick_mode(mode)


def _set_default_tick_mode(mode: str) -> str:
    global _default_tick_mode
    previous = _default_tick_mode
    _default_tick_mode = _validated_tick_mode(mode)
    return previous


@contextmanager
def use_tick_mode(mode: str) -> Iterator[None]:
    """Scoped :func:`set_default_tick_mode`.

    .. deprecated:: 1.2
       Same global-state problem in context-manager clothing; kept as
       a shim so existing scripts run (with one DeprecationWarning).
       Pass ``tick_mode=`` to the factories instead.
    """
    warn_once(
        "soc.use_tick_mode",
        "use_tick_mode() is deprecated; pass tick_mode= to the platform "
        "factories (haswell_desktop(tick_mode='fast')) instead")
    previous = _set_default_tick_mode(mode)
    try:
        yield
    finally:
        _set_default_tick_mode(previous)


@dataclass(frozen=True)
class CpuSpec:
    """Multi-core CPU complex of the package.

    ``effective_ipc`` is instructions retired per cycle per core for a
    well-vectorized kernel; per-kernel cost models further scale it.
    """

    name: str
    num_cores: int
    smt_per_core: int
    min_freq_hz: float
    base_freq_hz: float
    turbo_freq_hz: float
    effective_ipc: float
    #: Achievable memory bandwidth when the CPU alone saturates memory.
    mem_bw_bytes_per_s: float
    #: Dynamic power coefficient: watts = coeff * cores * (f/GHz)**exponent.
    dyn_power_coeff_w: float
    dyn_power_exponent: float
    #: Leakage per active core, watts.
    leakage_per_core_w: float
    #: Power multiplier for fully memory-stalled cores (0..1).
    memory_stall_power_factor: float

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise SpecError(f"{self.name}: num_cores must be positive")
        if not (self.min_freq_hz <= self.base_freq_hz <= self.turbo_freq_hz):
            raise SpecError(f"{self.name}: frequencies must be ordered min<=base<=turbo")
        if not 0.0 <= self.memory_stall_power_factor <= 1.0:
            raise SpecError(f"{self.name}: memory_stall_power_factor must be in [0,1]")

    def dynamic_power_w(self, freq_hz: float, active_cores: float) -> float:
        """Dynamic power of ``active_cores`` cores running at ``freq_hz``."""
        f_ghz = freq_hz / ghz(1.0)
        return self.dyn_power_coeff_w * active_cores * _pow(f_ghz, self.dyn_power_exponent)

    def instruction_rate(self, freq_hz: float, active_cores: float) -> float:
        """Peak instructions/second across ``active_cores`` cores."""
        return freq_hz * self.effective_ipc * active_cores


@dataclass(frozen=True)
class GpuSpec:
    """Integrated GPU complex of the package."""

    name: str
    num_eus: int
    threads_per_eu: int
    simd_width: int
    min_freq_hz: float
    turbo_freq_hz: float
    #: Instructions per cycle per EU for a well-behaved kernel
    #: (folds in SIMD lanes and co-issue).
    effective_ipc_per_eu: float
    mem_bw_bytes_per_s: float
    dyn_power_coeff_w: float
    dyn_power_exponent: float
    leakage_w: float
    memory_stall_power_factor: float
    #: Fixed cost of dispatching one kernel to the GPU (driver + ring).
    kernel_launch_overhead_s: float

    def __post_init__(self) -> None:
        if self.num_eus <= 0:
            raise SpecError(f"{self.name}: num_eus must be positive")
        if self.min_freq_hz > self.turbo_freq_hz:
            raise SpecError(f"{self.name}: min freq above turbo freq")

    @property
    def hardware_parallelism(self) -> int:
        """Work items needed to occupy every SIMD lane of every thread."""
        return self.num_eus * self.threads_per_eu * self.simd_width

    def dynamic_power_w(self, freq_hz: float, utilization: float) -> float:
        """Dynamic power at ``freq_hz`` with EU array ``utilization`` (0..1)."""
        f_ghz = freq_hz / ghz(1.0)
        return self.dyn_power_coeff_w * utilization * _pow(f_ghz, self.dyn_power_exponent)

    def instruction_rate(self, freq_hz: float, occupancy: float) -> float:
        """Peak GPU instructions/second at ``occupancy`` (0..1)."""
        return freq_hz * self.effective_ipc_per_eu * self.num_eus * occupancy


@dataclass(frozen=True)
class MemorySpec:
    """Shared memory system (LLC + memory controller + DRAM path)."""

    #: Total bandwidth available to CPU+GPU combined.
    shared_bw_bytes_per_s: float
    #: Uncore power per byte/s of memory traffic, watts / (bytes/s).
    traffic_power_w_per_bps: float
    #: Static uncore power when package is awake.
    uncore_static_w: float
    #: How much GPU streaming degrades CPU throughput beyond raw
    #: bandwidth sharing: LLC thrash and memory-latency inflation.
    #: CPU item rate is scaled by (1 - factor * gpu_traffic_share)
    #: while both devices are active.
    llc_contention_factor: float = 0.0

    def __post_init__(self) -> None:
        if self.shared_bw_bytes_per_s <= 0:
            raise SpecError("shared_bw_bytes_per_s must be positive")
        if not 0.0 <= self.llc_contention_factor < 1.0:
            raise SpecError("llc_contention_factor must be in [0, 1)")

    def traffic_power_w(self, bytes_per_s: float) -> float:
        """Uncore/DRAM-path power induced by ``bytes_per_s`` of traffic."""
        return self.traffic_power_w_per_bps * bytes_per_s


@dataclass(frozen=True)
class PcuSpec:
    """Package-control-unit firmware policy parameters.

    These model the *black box* the paper characterizes: the scheduler
    under test never reads them; only the simulator does.
    """

    #: How often the PCU re-evaluates its policy.
    sample_interval_s: float
    #: Package power cap enforced by throttling the CPU.
    package_cap_w: float
    #: CPU frequency target while the GPU is also active (power sharing).
    cpu_coexec_freq_hz: float
    #: CPU frequency floor applied *immediately* when the GPU becomes
    #: active; the CPU then ramps back toward ``cpu_coexec_freq_hz``.
    cpu_gpu_activation_floor_hz: float
    #: Normal CPU frequency ramp-up rate, Hz per second (fast - idle to
    #: turbo in about a millisecond, as on real parts).
    cpu_ramp_up_hz_per_s: float
    #: Slow ramp-up rate used while recovering from a GPU-activation
    #: throttle - the hysteresis that makes short GPU bursts pin the
    #: CPU at low frequency for their whole duration (Fig. 4).
    cpu_recovery_ramp_hz_per_s: float
    #: CPU frequency ramp-down rate, Hz per second (fast).
    cpu_ramp_down_hz_per_s: float
    #: GPU frequency ramp rate, Hz per second.
    gpu_ramp_hz_per_s: float
    #: Delay after GPU goes idle before the CPU is allowed back to turbo.
    gpu_idle_release_s: float
    #: GPU idleness after which a re-activation counts as a *cold*
    #: start and re-triggers the hard CPU floor.  Much longer than the
    #: release delay: kernels launched a few tens of ms apart keep the
    #: package in its co-execution regime.
    gpu_cold_threshold_s: float = 0.3

    def __post_init__(self) -> None:
        if self.sample_interval_s <= 0:
            raise SpecError("sample_interval_s must be positive")
        if self.package_cap_w <= 0:
            raise SpecError("package_cap_w must be positive")


@dataclass(frozen=True)
class PlatformSpec:
    """Complete description of one integrated CPU-GPU processor."""

    name: str
    cpu: CpuSpec
    gpu: GpuSpec
    memory: MemorySpec
    pcu: PcuSpec
    #: Idle package power (clock-gated cores, display engine, etc.).
    idle_power_w: float
    #: Joules per unit of the MSR_PKG_ENERGY_STATUS register.
    energy_unit_j: float
    #: Simulator tick.
    tick_s: float
    #: GPU_PROFILE_SIZE used by the runtime on this platform (the paper
    #: sizes it to the GPU's hardware parallelism: 2048 on the desktop).
    gpu_profile_size: int = field(default=2048)
    #: Simulator clock mode: one of :data:`TICK_MODES`.  ``"exact"``
    #: is the reference; ``"fast"`` macro-steps settled spans (see
    #: docs/PERFORMANCE.md).  Part of the spec (not a simulator flag)
    #: so it flows into :class:`~repro.harness.engine.RunSpec` cache
    #: keys: fast and exact results are never conflated.
    tick_mode: str = field(default="exact")
    #: Relative error tolerance for ``tick_mode="bounded"``: every
    #: end-to-end observable O must satisfy
    #: ``|O_bounded - O_exact| <= bounded_tol * max(1, |O_exact|)``.
    #: Part of the spec so it flows into engine cache keys - results at
    #: different tolerances are never conflated.  Ignored by the exact
    #: and fast modes.
    bounded_tol: float = field(default=1e-6)

    def __post_init__(self) -> None:
        if self.tick_s <= 0:
            raise SpecError("tick_s must be positive")
        if self.energy_unit_j <= 0:
            raise SpecError("energy_unit_j must be positive")
        if self.gpu_profile_size <= 0:
            raise SpecError("gpu_profile_size must be positive")
        if self.tick_mode not in TICK_MODES:
            raise SpecError(
                f"tick_mode {self.tick_mode!r} not in {TICK_MODES}")
        if self.bounded_tol <= 0:
            raise SpecError("bounded_tol must be positive")

    def with_tick_mode(self, mode: str) -> "PlatformSpec":
        """This spec under another clock mode (validated, frozen copy).

        The supported way to flip an existing spec between ``exact``
        and ``fast``: explicit at the call site, no process-global
        state, and the copy participates in engine cache keys exactly
        like a factory-built spec.
        """
        if mode == self.tick_mode:
            return self
        return dataclasses.replace(self, tick_mode=mode)


def haswell_desktop(tick_mode: Optional[str] = None) -> PlatformSpec:
    """Calibrated spec for the paper's desktop platform.

    3.4 GHz 4-core/8-thread Core i7-4770 class CPU with an HD Graphics
    4600 class GPU (20 EUs x 7 threads x SIMD16 = 2240-way), 8 GB RAM.

    ``tick_mode`` selects the simulator clock mode explicitly (one of
    :data:`TICK_MODES`); None keeps the legacy process default.
    """
    cpu = CpuSpec(
        name="i7-4770-class",
        num_cores=4,
        smt_per_core=2,
        min_freq_hz=ghz(0.8),
        base_freq_hz=ghz(3.4),
        turbo_freq_hz=ghz(3.9),
        effective_ipc=4.0,
        mem_bw_bytes_per_s=gb_per_s(21.0),
        dyn_power_coeff_w=0.42,
        dyn_power_exponent=2.2,
        leakage_per_core_w=0.55,
        # Haswell-class out-of-order cores keep most of the machine
        # spinning while stalled on DRAM; memory-bound work therefore
        # draws about as much core power as compute-bound work, and the
        # uncore traffic power on top makes it draw *more* overall -
        # the paper's 63 W vs 55 W co-execution observation.
        memory_stall_power_factor=1.0,
    )
    gpu = GpuSpec(
        name="hd4600-class",
        num_eus=20,
        threads_per_eu=7,
        simd_width=16,
        min_freq_hz=ghz(0.35),
        turbo_freq_hz=ghz(1.2),
        effective_ipc_per_eu=7.0,
        mem_bw_bytes_per_s=gb_per_s(18.0),
        dyn_power_coeff_w=14.5,
        dyn_power_exponent=1.9,
        leakage_w=1.3,
        memory_stall_power_factor=0.75,
        kernel_launch_overhead_s=ms(0.025),
    )
    memory = MemorySpec(
        shared_bw_bytes_per_s=gb_per_s(24.0),
        traffic_power_w_per_bps=0.50 / gb_per_s(1.0),
        uncore_static_w=2.4,
        llc_contention_factor=0.55,
    )
    pcu = PcuSpec(
        sample_interval_s=ms(1.0),
        package_cap_w=66.0,
        cpu_coexec_freq_hz=ghz(3.6),
        cpu_gpu_activation_floor_hz=ghz(1.2),
        cpu_ramp_up_hz_per_s=ghz(1.0) / ms(1.0),
        cpu_recovery_ramp_hz_per_s=ghz(0.015) / ms(1.0),  # 15 MHz per ms
        cpu_ramp_down_hz_per_s=ghz(1.0) / ms(1.0),  # near-instant down
        gpu_ramp_hz_per_s=ghz(1.5) / ms(1.0),
        gpu_idle_release_s=ms(10.0),
        gpu_cold_threshold_s=0.3,
    )
    return PlatformSpec(
        name="haswell-desktop",
        cpu=cpu,
        gpu=gpu,
        memory=memory,
        pcu=pcu,
        idle_power_w=7.5,
        energy_unit_j=1.0 / (1 << 14),
        tick_s=ms(0.5),
        gpu_profile_size=2048,
        tick_mode=_resolve_tick_mode(tick_mode),
    )


def ultrabook_15w(tick_mode: Optional[str] = None) -> PlatformSpec:
    """A third, hypothetical platform: a 15 W-class ultrabook SoC.

    Not part of the paper's evaluation - included because the paper's
    whole point is SKU-to-SKU variability ("power management policies
    for a processor vary from one specific SKU to another"): the
    black-box pipeline must work on processors nobody calibrated
    workloads for.  2 SMT cores + 12 EUs, between the desktop and the
    tablet in every respect.
    """
    cpu = CpuSpec(
        name="ultrabook-cpu",
        num_cores=2,
        smt_per_core=2,
        min_freq_hz=ghz(0.6),
        base_freq_hz=ghz(1.8),
        turbo_freq_hz=ghz(3.0),
        effective_ipc=4.0,
        mem_bw_bytes_per_s=gb_per_s(14.0),
        dyn_power_coeff_w=0.38,
        dyn_power_exponent=2.2,
        leakage_per_core_w=0.3,
        memory_stall_power_factor=0.9,
    )
    gpu = GpuSpec(
        name="ultrabook-gpu",
        num_eus=12,
        threads_per_eu=7,
        simd_width=16,
        min_freq_hz=ghz(0.3),
        turbo_freq_hz=ghz(0.95),
        effective_ipc_per_eu=7.0,
        mem_bw_bytes_per_s=gb_per_s(12.0),
        dyn_power_coeff_w=9.0,
        dyn_power_exponent=1.9,
        leakage_w=0.6,
        memory_stall_power_factor=0.7,
        kernel_launch_overhead_s=ms(0.03),
    )
    memory = MemorySpec(
        shared_bw_bytes_per_s=gb_per_s(15.0),
        traffic_power_w_per_bps=0.3 / gb_per_s(1.0),
        uncore_static_w=1.0,
        llc_contention_factor=0.45,
    )
    pcu = PcuSpec(
        sample_interval_s=ms(1.0),
        package_cap_w=15.0,
        cpu_coexec_freq_hz=ghz(2.2),
        cpu_gpu_activation_floor_hz=ghz(1.0),
        cpu_ramp_up_hz_per_s=ghz(1.0) / ms(1.0),
        cpu_recovery_ramp_hz_per_s=ghz(0.012) / ms(1.0),
        cpu_ramp_down_hz_per_s=ghz(1.0) / ms(1.0),
        gpu_ramp_hz_per_s=ghz(1.0) / ms(1.0),
        gpu_idle_release_s=ms(10.0),
        gpu_cold_threshold_s=0.3,
    )
    return PlatformSpec(
        name="ultrabook-15w",
        cpu=cpu,
        gpu=gpu,
        memory=memory,
        pcu=pcu,
        idle_power_w=2.5,
        energy_unit_j=1.0 / (1 << 14),
        tick_s=ms(0.5),
        gpu_profile_size=12 * 7 * 16,
        tick_mode=_resolve_tick_mode(tick_mode),
    )


def baytrail_tablet(tick_mode: Optional[str] = None) -> PlatformSpec:
    """Calibrated spec for the paper's tablet platform.

    1.33 GHz 4-core Atom Z3740 class CPU with a 4-EU integrated GPU
    (4 EUs x 7 threads x SIMD16 = 448-way), 2 GB RAM.  On this part the
    GPU draws *more* power than the CPU, and memory-bound work draws
    less than compute-bound work (the paper calls this out as
    surprising); the characterization curves come out mostly concave.
    """
    cpu = CpuSpec(
        name="atom-z3740-class",
        num_cores=4,
        smt_per_core=1,
        min_freq_hz=ghz(0.5),
        base_freq_hz=ghz(1.33),
        turbo_freq_hz=ghz(1.86),
        effective_ipc=1.6,
        mem_bw_bytes_per_s=gb_per_s(5.3),
        dyn_power_coeff_w=0.0815,
        dyn_power_exponent=2.2,
        leakage_per_core_w=0.012,
        # In-order Silvermont cores clock-gate aggressively while
        # stalled, so memory-bound work draws *less* power than
        # compute-bound work on this platform - the asymmetry the
        # paper calls out as surprising (0.7 W vs 1.5 W CPU-alone).
        memory_stall_power_factor=0.18,
    )
    gpu = GpuSpec(
        name="baytrail-gen7-class",
        num_eus=4,
        threads_per_eu=7,
        simd_width=16,
        min_freq_hz=ghz(0.311),
        turbo_freq_hz=ghz(0.667),
        effective_ipc_per_eu=9.0,
        mem_bw_bytes_per_s=gb_per_s(4.2),
        dyn_power_coeff_w=3.55,
        dyn_power_exponent=1.9,
        leakage_w=0.05,
        memory_stall_power_factor=0.55,
        kernel_launch_overhead_s=ms(0.12),
    )
    memory = MemorySpec(
        shared_bw_bytes_per_s=gb_per_s(5.8),
        traffic_power_w_per_bps=0.020 / gb_per_s(1.0),
        uncore_static_w=0.09,
        llc_contention_factor=0.35,
    )
    pcu = PcuSpec(
        sample_interval_s=ms(2.0),
        package_cap_w=3.2,
        cpu_coexec_freq_hz=ghz(1.46),
        cpu_gpu_activation_floor_hz=ghz(1.3),
        cpu_ramp_up_hz_per_s=ghz(0.5) / ms(1.0),
        cpu_recovery_ramp_hz_per_s=ghz(0.011) / ms(1.0),
        cpu_ramp_down_hz_per_s=ghz(0.5) / ms(1.0),
        gpu_ramp_hz_per_s=ghz(0.4) / ms(1.0),
        gpu_idle_release_s=ms(15.0),
        gpu_cold_threshold_s=0.4,
    )
    return PlatformSpec(
        name="baytrail-tablet",
        cpu=cpu,
        gpu=gpu,
        memory=memory,
        pcu=pcu,
        idle_power_w=0.22,
        energy_unit_j=1.0 / (1 << 5) * 1e-3,
        tick_s=ms(1.0),
        gpu_profile_size=448,
        tick_mode=_resolve_tick_mode(tick_mode),
    )
