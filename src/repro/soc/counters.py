"""Hardware performance counters.

The paper's runtime uses the Intel Performance Counter Monitor tool to
read L3 cache misses and total instructions retired during online
profiling, plus GPU performance counter A26 to check whether the GPU is
busy.  This module provides the same observables on the simulated SoC.

Counters accumulate monotonically; measurement code snapshots them and
differences the snapshots, as PCM does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._compat import DATACLASS_SLOTS
from repro.errors import CounterError
from repro.soc.cost_model import KernelCostModel


@dataclass(frozen=True, **DATACLASS_SLOTS)
class CounterSnapshot:
    """Point-in-time copy of all counter values."""

    time_s: float
    instructions_retired: float
    loadstore_instructions: float
    l3_misses: float
    cpu_items: float
    gpu_items: float
    gpu_busy_time_s: float

    def delta(self, later: "CounterSnapshot") -> "CounterDelta":
        """Difference ``later - self``; later must not precede self."""
        if later.time_s < self.time_s:
            raise CounterError("snapshot order reversed")
        return CounterDelta(
            elapsed_s=later.time_s - self.time_s,
            instructions_retired=later.instructions_retired - self.instructions_retired,
            loadstore_instructions=(later.loadstore_instructions
                                    - self.loadstore_instructions),
            l3_misses=later.l3_misses - self.l3_misses,
            cpu_items=later.cpu_items - self.cpu_items,
            gpu_items=later.gpu_items - self.gpu_items,
            gpu_busy_time_s=later.gpu_busy_time_s - self.gpu_busy_time_s,
        )


@dataclass(frozen=True, **DATACLASS_SLOTS)
class CounterDelta:
    """Counter activity over a measurement window."""

    elapsed_s: float
    instructions_retired: float
    loadstore_instructions: float
    l3_misses: float
    cpu_items: float
    gpu_items: float
    gpu_busy_time_s: float

    @property
    def miss_to_loadstore_ratio(self) -> float:
        """The paper's memory-intensity statistic (thresholded at 0.33)."""
        if self.loadstore_instructions <= 0:
            return 0.0
        return self.l3_misses / self.loadstore_instructions


class PerfCounters:
    """Monotonic counter bank attached to one simulated processor."""

    def __init__(self) -> None:
        self.instructions_retired = 0.0
        self.loadstore_instructions = 0.0
        self.l3_misses = 0.0
        self.cpu_items = 0.0
        self.gpu_items = 0.0
        self.gpu_busy_time_s = 0.0
        self._gpu_busy = False

    # -- simulator-side updates ------------------------------------------------

    def account_cpu_items(self, items: float, cost: KernelCostModel) -> None:
        """Retire the CPU-side events for ``items`` processed items."""
        if items < 0:
            raise CounterError("negative item count")
        self.cpu_items += items
        self.instructions_retired += items * cost.instructions_per_item
        self.loadstore_instructions += items * cost.loadstores_per_item
        self.l3_misses += items * cost.l3_misses_per_item

    def account_gpu_items(self, items: float) -> None:
        if items < 0:
            raise CounterError("negative item count")
        self.gpu_items += items

    def account_gpu_busy(self, busy: bool, dt: float) -> None:
        self._gpu_busy = busy
        if busy:
            self.gpu_busy_time_s += dt

    # -- software-visible reads ----------------------------------------------

    @property
    def gpu_busy(self) -> bool:
        """GPU performance counter A26: is the GPU currently busy?"""
        return self._gpu_busy

    def snapshot(self, time_s: float) -> CounterSnapshot:
        return CounterSnapshot(
            time_s=time_s,
            instructions_retired=self.instructions_retired,
            loadstore_instructions=self.loadstore_instructions,
            l3_misses=self.l3_misses,
            cpu_items=self.cpu_items,
            gpu_items=self.gpu_items,
            gpu_busy_time_s=self.gpu_busy_time_s,
        )
