"""Per-kernel cost models.

A :class:`KernelCostModel` tells the SoC simulator how expensive one
parallel iteration ("work item") of a kernel is, on each device, and how
it exercises the memory system.  The energy-aware scheduler never sees
these numbers directly - it only observes the performance counters,
timers and the energy MSR the simulator derives from them - preserving
the paper's black-box setting.

The model is deliberately roofline-shaped:

* the *compute* cost of an item is ``instructions_per_item`` scaled by a
  per-device efficiency factor (``cpu_simd_efficiency`` folds in how
  well the kernel vectorizes on CPU; ``gpu_simd_efficiency`` and
  ``gpu_divergence`` fold in SIMT lane utilization and branch
  divergence for irregular kernels);
* the *memory* cost of an item is the L3-miss traffic it generates:
  ``instructions_per_item * loadstore_fraction * l3_miss_rate`` cache
  lines fetched from DRAM.

The ratio of L3 misses to load/store instructions is exactly what the
paper's online classifier thresholds at 0.33 to decide memory- versus
compute-bound, so these models drive both timing *and* classification.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import SpecError
from repro.units import CACHELINE_BYTES


@dataclass(frozen=True)
class KernelCostModel:
    """Cost of one parallel iteration of a data-parallel kernel."""

    name: str
    #: Dynamic instructions retired per item on the CPU.
    instructions_per_item: float
    #: Fraction of those instructions that are loads/stores.
    loadstore_fraction: float
    #: L3 misses per load/store instruction (0..1).
    l3_miss_rate: float
    #: Fraction of CPU peak IPC this kernel achieves (vectorization,
    #: ILP, branch behaviour), 0..1.
    cpu_simd_efficiency: float = 1.0
    #: Fraction of GPU peak throughput this kernel achieves, 0..1.
    gpu_simd_efficiency: float = 1.0
    #: Extra GPU throughput loss from branch divergence (irregular
    #: kernels), 0..1; effective GPU efficiency is scaled by (1 - this).
    gpu_divergence: float = 0.0
    #: GPU instruction expansion: GPU ISA instructions per CPU
    #: instruction for the same item (address math, masking).
    gpu_instruction_expansion: float = 1.0
    #: GPU DRAM traffic relative to CPU traffic for the same item.
    #: Below 1.0 models coalescing: wide SIMT gathers turn the CPU's
    #: scattered cache-line misses into fewer, denser transactions.
    gpu_traffic_factor: float = 1.0
    #: Coefficient of variation of per-item cost (0 for regular kernels).
    item_cost_cv: float = 0.0
    #: Correlation length of the cost variation across the iteration
    #: space, as a fraction of N (long-range structure breaks profiling).
    cost_profile_scale: float = 0.1
    #: Seed tag so each kernel's irregularity pattern is unique but
    #: deterministic.
    rng_tag: int = 0

    def __post_init__(self) -> None:
        if self.instructions_per_item <= 0:
            raise SpecError(f"{self.name}: instructions_per_item must be positive")
        for attr in ("loadstore_fraction", "l3_miss_rate", "cpu_simd_efficiency",
                     "gpu_simd_efficiency", "gpu_divergence"):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise SpecError(f"{self.name}: {attr}={value} must be in [0,1]")
        if self.item_cost_cv < 0:
            raise SpecError(f"{self.name}: item_cost_cv must be non-negative")
        if self.gpu_instruction_expansion <= 0:
            raise SpecError(f"{self.name}: gpu_instruction_expansion must be positive")
        if self.gpu_traffic_factor <= 0:
            raise SpecError(f"{self.name}: gpu_traffic_factor must be positive")

    # -- derived quantities -------------------------------------------------

    @property
    def loadstores_per_item(self) -> float:
        """Load/store instructions per item."""
        return self.instructions_per_item * self.loadstore_fraction

    @property
    def l3_misses_per_item(self) -> float:
        """LLC misses per item."""
        return self.loadstores_per_item * self.l3_miss_rate

    @property
    def dram_bytes_per_item(self) -> float:
        """DRAM traffic per item, bytes (one cache line per miss)."""
        return self.l3_misses_per_item * CACHELINE_BYTES

    @property
    def gpu_instructions_per_item(self) -> float:
        """GPU dynamic instructions per item."""
        return self.instructions_per_item * self.gpu_instruction_expansion

    @property
    def gpu_dram_bytes_per_item(self) -> float:
        """DRAM traffic per item on the GPU (coalescing applied)."""
        return self.dram_bytes_per_item * self.gpu_traffic_factor

    @property
    def miss_to_loadstore_ratio(self) -> float:
        """The classification statistic the paper thresholds at 0.33."""
        return self.l3_miss_rate

    @property
    def is_irregular(self) -> bool:
        """Whether per-item cost varies (input-dependent control flow)."""
        return self.item_cost_cv > 0.0

    def with_overrides(self, **kwargs: object) -> "KernelCostModel":
        """Return a copy with some fields replaced (for ablations)."""
        return replace(self, **kwargs)
