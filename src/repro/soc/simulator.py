"""Virtual-clock execution engine for the simulated integrated SoC.

The simulator advances in small ticks (0.5-1 ms, per platform spec).
Each tick it: steps the PCU (frequency policy + ramping), computes both
devices' instantaneous throughput under memory contention, retires work
from each device's :class:`~repro.soc.work.WorkRegion`, integrates
package power into the energy MSR, updates performance counters, and
optionally records a trace sample.

Execution is organized into *phases*, matching the runtime structure of
the paper's Fig. 7 algorithm:

* a **profiling phase** (``stop_when_gpu_done=True``): the GPU runs a
  fixed-size chunk while CPU workers drain a shared pool; the phase
  ends the moment the GPU finishes and the CPU workers are terminated
  (OnlineProfile, lines 28-35);
* a **partitioned phase**: GPU and CPU each own a region; the phase
  ends when both are done (lines 23-25) - one device typically
  finishes first and the other continues alone, which is exactly the
  structure of the paper's T(alpha) model (Eq. 4).

One CPU hardware context acts as the *GPU proxy thread*: while a GPU
kernel is being launched or is resident, one CPU worker contributes no
item throughput (it is driving the GPU), matching the paper's runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError
from repro.obs.observer import Observer, resolve
from repro.soc.cost_model import KernelCostModel
from repro.soc.counters import CounterDelta, CounterSnapshot, PerfCounters
from repro.soc.device import compute_rates
from repro.soc.msr import EnergyMsr
from repro.soc.pcu import Pcu
from repro.soc.power import idle_power, package_power
from repro.soc.spec import PlatformSpec
from repro.soc.trace import PowerTrace, TraceSample
from repro.soc.work import WorkRegion

#: Smallest tick the event-alignment logic will produce.
_MIN_DT = 1e-7

#: Items-remaining below which a region counts as finished.
_DONE_EPS = 1e-9


@dataclass
class PhaseRequest:
    """One phase of kernel execution."""

    cost: KernelCostModel
    cpu_region: Optional[WorkRegion]
    gpu_region: Optional[WorkRegion]
    #: Profiling mode: terminate CPU workers as soon as the GPU chunk
    #: completes, leaving the CPU region partially processed.
    stop_when_gpu_done: bool = False
    #: Cap on wall time for this phase (safety net).
    max_duration_s: float = 600.0


@dataclass(frozen=True)
class PhaseResult:
    """What the runtime observes about a completed phase."""

    start_t: float
    end_t: float
    cpu_items: float
    gpu_items: float
    #: Proxy-thread view of GPU time: launch start to kernel completion.
    gpu_time_s: float
    #: Time the GPU was actually executing (excludes launch overhead).
    gpu_busy_time_s: float
    counters: CounterDelta
    #: Exact energy over the phase (diagnostic; schedulers must use the
    #: MSR interface instead to stay black-box).
    energy_j: float

    @property
    def duration_s(self) -> float:
        return self.end_t - self.start_t


class IntegratedProcessor:
    """A simulated integrated CPU-GPU package with PCU, MSR and counters."""

    def __init__(self, spec: PlatformSpec, trace_enabled: bool = False,
                 observer: "Optional[Observer]" = None) -> None:
        self.spec = spec
        self.now = 0.0
        self.pcu = Pcu(spec)
        self.msr = EnergyMsr(spec.energy_unit_j)
        self.counters = PerfCounters()
        self.trace = PowerTrace(enabled=trace_enabled)
        self.observer = resolve(observer)
        self._last_package_w = idle_power(spec).package_w
        self._last_phase_ticks = 0

    # -- software-visible interface (what schedulers may use) -------------------

    def read_energy_msr(self) -> int:
        """Raw MSR_PKG_ENERGY_STATUS read."""
        return self.msr.read()

    def energy_joules_between(self, before: int, after: int) -> float:
        return self.msr.joules_between(before, after)

    def snapshot_counters(self) -> CounterSnapshot:
        return self.counters.snapshot(self.now)

    @property
    def gpu_busy(self) -> bool:
        """GPU performance counter A26."""
        return self.counters.gpu_busy

    def set_power_hint(self, hint: float) -> None:
        """Hand the PCU a runtime efficiency hint in [0, 1].

        The cooperative extension sketched in the paper's conclusion
        ("incorporate feedback from our user-level runtime in power
        management techniques"): 0 restores the stock policy, 1 asks
        the firmware to pace the co-executing CPU for efficiency.
        """
        if not 0.0 <= hint <= 1.0:
            raise SimulationError(f"power hint {hint} outside [0, 1]")
        self.pcu.power_hint = hint

    # -- execution ---------------------------------------------------------------

    def idle(self, duration_s: float) -> None:
        """Advance the clock with both devices idle."""
        if duration_s < 0:
            raise SimulationError("cannot idle for negative time")
        remaining = duration_s
        tick = self.spec.tick_s
        while remaining > _MIN_DT:
            dt = min(tick, remaining)
            self.pcu.step(self.now, dt, cpu_active=False, gpu_active=False,
                          last_package_power_w=self._last_package_w)
            breakdown = idle_power(self.spec)
            self._account_tick(dt, breakdown.package_w, 0.0, 0.0,
                               breakdown.uncore_w, gpu_active=False)
            remaining -= dt

    def run_phase(self, request: PhaseRequest) -> PhaseResult:
        """Execute one phase to completion and return observations."""
        obs = self.observer
        if not obs.enabled:
            return self._run_phase_inner(request)
        if request.stop_when_gpu_done:
            kind = "profiling"
        elif request.cpu_region is not None and request.gpu_region is not None:
            kind = "partitioned"
        elif request.gpu_region is not None:
            kind = "gpu-only"
        else:
            kind = "cpu-only"
        with obs.span("soc.phase", kernel=request.cost.name, kind=kind):
            result = self._run_phase_inner(request)
        obs.inc("soc.phases")
        obs.inc("soc.ticks", self._last_phase_ticks)
        obs.observe("soc.phase_ticks", self._last_phase_ticks)
        obs.observe("soc.phase_s", result.duration_s)
        obs.set_gauge("soc.msr_wraps", self.msr.wrap_count)
        return result

    def _run_phase_inner(self, request: PhaseRequest) -> PhaseResult:
        spec = self.spec
        cost = request.cost
        cpu_region = request.cpu_region
        gpu_region = request.gpu_region

        gpu_present = gpu_region is not None and gpu_region.items_remaining > _DONE_EPS
        cpu_present = cpu_region is not None and cpu_region.items_remaining > _DONE_EPS
        if not gpu_present and not cpu_present:
            raise SimulationError("phase with no work on either device")
        if request.stop_when_gpu_done and not gpu_present:
            raise SimulationError("stop_when_gpu_done requires a GPU region")

        start_t = self.now
        start_counters = self.snapshot_counters()
        start_energy = self.msr.lifetime_joules

        launch_remaining = spec.gpu.kernel_launch_overhead_s if gpu_present else 0.0
        gpu_dispatch_items = gpu_region.items_remaining if gpu_present else 0.0
        gpu_running = False
        gpu_done_t: Optional[float] = None
        gpu_busy_time = 0.0
        deadline = start_t + request.max_duration_s
        # Adaptive ticking: once the PCU has settled (no material
        # frequency movement) the tick stretches up to 8x.  Any event -
        # ramping, launch completion, a device finishing - snaps it
        # back to the base tick, so transients keep full resolution.
        stable_ticks = 0
        total_ticks = 0
        prev_cpu_freq = self.pcu.state.cpu_freq_hz
        prev_gpu_freq = self.pcu.state.gpu_freq_hz

        while True:
            cpu_done = (not cpu_present) or cpu_region.items_remaining <= _DONE_EPS
            gpu_done = (gpu_present and launch_remaining <= 0.0
                        and gpu_region.items_remaining <= _DONE_EPS)
            if gpu_done and gpu_done_t is None:
                gpu_done_t = self.now
            if request.stop_when_gpu_done:
                if gpu_done:
                    break
            elif cpu_done and ((not gpu_present) or gpu_done):
                break
            if self.now >= deadline:
                raise SimulationError(
                    f"phase exceeded max duration {request.max_duration_s}s "
                    f"(kernel {cost.name})")

            launching = gpu_present and launch_remaining > 0.0
            gpu_running = gpu_present and not launching and not gpu_done
            # The proxy thread occupies a hardware context whenever it
            # is driving the GPU.  With SMT it shares a core with a
            # worker (mostly-blocked thread, ~15% of a core); without
            # SMT (the tablet's Atom) it costs a whole core.
            proxy_busy = launching or gpu_running
            proxy_cost = 0.15 if spec.cpu.smt_per_core > 1 else 1.0
            cpu_cores = 0.0
            if cpu_present and not cpu_done:
                cpu_cores = spec.cpu.num_cores - (proxy_cost if proxy_busy else 0.0)
                cpu_cores = max(cpu_cores, 1.0)

            # Preliminary rates at current frequencies, to align the
            # tick with the next completion event.
            st = self.pcu.state
            pre_cpu_freq = st.cpu_freq_hz
            pre_gpu_freq = st.gpu_freq_hz
            prelim = compute_rates(
                spec, cost, pre_cpu_freq, pre_gpu_freq, cpu_cores,
                gpu_dispatch_items if gpu_running else 0.0,
                cpu_active=cpu_cores > 0, gpu_active=gpu_running)
            dt = spec.tick_s * (8.0 if stable_ticks > 16 else 1.0)
            event_bounded = False
            if launching and launch_remaining < dt:
                dt = launch_remaining
                event_bounded = True
            if cpu_cores > 0 and prelim.cpu_items_per_s > 0:
                t_done = cpu_region.time_to_complete(prelim.cpu_items_per_s)
                if t_done < dt:
                    dt = t_done
                    event_bounded = True
            if gpu_running and prelim.gpu_items_per_s > 0:
                t_done = gpu_region.time_to_complete(prelim.gpu_items_per_s)
                if t_done < dt:
                    dt = t_done
                    event_bounded = True
            dt = max(dt, _MIN_DT)

            cpu_freq, gpu_freq = self.pcu.step(
                self.now, dt, cpu_active=cpu_cores > 0, gpu_active=gpu_running,
                last_package_power_w=self._last_package_w)
            freq_moved = (abs(cpu_freq - prev_cpu_freq) > 3e7
                          or abs(gpu_freq - prev_gpu_freq) > 3e7)
            prev_cpu_freq = cpu_freq
            prev_gpu_freq = gpu_freq
            if freq_moved or event_bounded or launching:
                stable_ticks = 0
            else:
                stable_ticks += 1
            if abs(cpu_freq - pre_cpu_freq) < 1e6 and \
                    abs(gpu_freq - pre_gpu_freq) < 1e6:
                rates = prelim
            else:
                rates = compute_rates(
                    spec, cost, cpu_freq, gpu_freq, cpu_cores,
                    gpu_dispatch_items if gpu_running else 0.0,
                    cpu_active=cpu_cores > 0, gpu_active=gpu_running)

            if cpu_cores > 0:
                done = cpu_region.consume(rates.cpu_items_per_s * dt)
                self.counters.account_cpu_items(done, cost)
            if gpu_running:
                done = gpu_region.consume(rates.gpu_items_per_s * dt)
                self.counters.account_gpu_items(done)
                gpu_busy_time += dt
            if launching:
                launch_remaining -= dt

            breakdown = package_power(spec, rates, cpu_freq, gpu_freq,
                                      cpu_cores, gpu_running)
            self.counters.account_gpu_busy(gpu_running, dt)
            self._account_tick(dt, breakdown.package_w, breakdown.cpu_w,
                               breakdown.gpu_w, breakdown.uncore_w,
                               gpu_active=gpu_running)
            total_ticks += 1

        if gpu_present and gpu_done_t is None:
            gpu_done_t = self.now
        self._last_phase_ticks = total_ticks
        # The kernel has completed: the GPU busy counter (A26) must
        # read idle, whatever the final tick happened to be doing.
        self.counters.account_gpu_busy(False, 0.0)
        end_counters = self.snapshot_counters()
        return PhaseResult(
            start_t=start_t,
            end_t=self.now,
            cpu_items=end_counters.cpu_items - start_counters.cpu_items,
            gpu_items=end_counters.gpu_items - start_counters.gpu_items,
            gpu_time_s=(gpu_done_t - start_t) if gpu_present else 0.0,
            gpu_busy_time_s=gpu_busy_time,
            counters=start_counters.delta(end_counters),
            energy_j=self.msr.lifetime_joules - start_energy,
        )

    # -- internals ---------------------------------------------------------------

    def _account_tick(self, dt: float, package_w: float, cpu_w: float,
                      gpu_w: float, uncore_w: float, gpu_active: bool) -> None:
        self.msr.deposit(package_w * dt)
        self._last_package_w = package_w
        st = self.pcu.state
        self.trace.append(TraceSample(
            t=self.now, dt=dt, package_w=package_w, cpu_w=cpu_w, gpu_w=gpu_w,
            uncore_w=uncore_w, cpu_freq_hz=st.cpu_freq_hz,
            gpu_freq_hz=st.gpu_freq_hz, gpu_active=gpu_active))
        self.now += dt
