"""Virtual-clock execution engine for the simulated integrated SoC.

The simulator advances in small ticks (0.5-1 ms, per platform spec).
Each tick it: steps the PCU (frequency policy + ramping), computes both
devices' instantaneous throughput under memory contention, retires work
from each device's :class:`~repro.soc.work.WorkRegion`, integrates
package power into the energy MSR, updates performance counters, and
optionally records a trace sample.

Execution is organized into *phases*, matching the runtime structure of
the paper's Fig. 7 algorithm:

* a **profiling phase** (``stop_when_gpu_done=True``): the GPU runs a
  fixed-size chunk while CPU workers drain a shared pool; the phase
  ends the moment the GPU finishes and the CPU workers are terminated
  (OnlineProfile, lines 28-35);
* a **partitioned phase**: GPU and CPU each own a region; the phase
  ends when both are done (lines 23-25) - one device typically
  finishes first and the other continues alone, which is exactly the
  structure of the paper's T(alpha) model (Eq. 4).

One CPU hardware context acts as the *GPU proxy thread*: while a GPU
kernel is being launched or is resident, one CPU worker contributes no
item throughput (it is driving the GPU), matching the paper's runtime.

**Clock modes** (``PlatformSpec.tick_mode``, see docs/PERFORMANCE.md):
in ``"exact"`` mode every span is ticked (with an adaptive up-to-8x
stretch once the PCU stops moving); in ``"fast"`` mode, spans where the
PCU reports itself :meth:`~repro.soc.pcu.Pcu.settled` - and therefore
every per-tick quantity is provably constant - are *fast-forwarded* in
one closed-form macro-step to the next event: min(CPU completion, GPU
completion, PCU target transition, pending discrete event, phase
deadline).  Transients (kernel launches, frequency ramps, cap
throttling, device-finish crossovers) run through the identical
per-tick code in both modes, which is what keeps fast-vs-exact
divergence on end-to-end time/energy/items below 1e-6 relative.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.obs.observer import Observer, resolve
from repro.soc.cost_model import KernelCostModel
from repro.soc.counters import CounterDelta, CounterSnapshot, PerfCounters
from repro.soc.device import DeviceRates, compute_rates, compute_rates_batch
from repro.soc.msr import EnergyMsr
from repro.soc.pcu import Pcu
from repro.soc.power import idle_power, package_power, package_power_batch
from repro.soc.spec import PlatformSpec
from repro.soc.trace import SPAN_DECIMATION_TICKS, PowerTrace, TraceSample
from repro.soc.vector import active_vector_core
from repro.soc.work import WorkRegion

#: Smallest tick the event-alignment logic will produce.
_MIN_DT = 1e-7

#: Items-remaining below which a region counts as finished.
_DONE_EPS = 1e-9

#: Most ticks one batched-transient evaluation will plan ahead
#: (bounds planning memory; longer transients simply batch again).
_BATCH_MAX_TICKS = 4096

#: Below this many plannable ticks the vectorized evaluation costs more
#: than it saves (numpy's per-op overhead outweighs the saved model
#: calls); fall back to the scalar tick path, which memoizes instead.
_BATCH_MIN_TICKS = 16

#: Phase-memo probes allowed before a processor that has never scored a
#: replay hit concludes its workload defeats the memo and disarms it.
_PHASE_MEMO_PROBE_BUDGET = 512

#: Entry cap for the fast-mode model memo (see ``_rates_cached``);
#: cleared wholesale when exceeded, which in practice never happens
#: inside one application run.
_MEMO_MAX_ENTRIES = 262144

#: Entry cap for the bounded-mode phase-replay memo.
_PHASE_MEMO_MAX_ENTRIES = 65536

#: Replay hits a phase-memo entry may serve before it is refreshed:
#: the Nth hit evicts the entry and executes the phase for real, and
#: ``_phase_learn`` re-anchors it at the live pre-state.  Without this,
#: a trajectory ramping slowly *within* one key bucket (the desktop
#: PCU never settles, so its pre-states drift monotonically) replays
#: an outcome pinned at the bucket's first-seen state, and the bias
#: adds coherently across replays - measured at ~1.5e-6 relative after
#: 95 replays on the desktop 2-tenant grid, breaching the 1e-6
#: bounded-tolerance contract.  Refreshing every 8th hit keeps seven
#: eighths of the replay savings while cutting the coherent window an
#: order of magnitude.
_PHASE_REFRESH_INTERVAL = 8

#: Low-mantissa mask used to quantize floats in phase-memo keys: the
#: bottom 21 of the 52 mantissa bits are dropped, conflating states
#: within ~5e-10 relative - far inside the 1e-6 bounded tolerance, far
#: outside accumulated float noise between repeated identical phases.
_QUANT_MASK = ~0x1FFFFF


def _q(x: float) -> int:
    """Quantized key form of ``x`` (see ``_QUANT_MASK``)."""
    return struct.unpack("<Q", struct.pack("<d", x))[0] & _QUANT_MASK


@dataclass(frozen=True)
class _PhaseEntry:
    """Memoized outcome of one bounded-mode phase (see ``_phase_key``).

    Everything a phase does to the processor, expressed relative to the
    phase start so it can be replayed from any clock time: linear
    counter increments, one energy deposit, region position deltas, and
    the absolute PCU/power end state (``gpu_active_offset`` is the
    phase-end clock minus ``last_gpu_active_t``, or None for never).
    """

    duration_s: float
    energy_j: float
    d_instructions: float
    d_loadstores: float
    d_l3_misses: float
    d_cpu_items: float
    d_gpu_items: float
    d_gpu_busy_s: float
    cpu_pos_delta: float
    gpu_pos_delta: float
    gpu_time_s: float
    gpu_busy_time_s: float
    end_cpu_freq_hz: float
    end_gpu_freq_hz: float
    end_cap_throttle_hz: float
    end_gpu_was_active: bool
    end_throttle_recovery: bool
    gpu_active_offset: Optional[float]
    end_package_w: float


@dataclass
class PhaseRequest:
    """One phase of kernel execution."""

    cost: KernelCostModel
    cpu_region: Optional[WorkRegion]
    gpu_region: Optional[WorkRegion]
    #: Profiling mode: terminate CPU workers as soon as the GPU chunk
    #: completes, leaving the CPU region partially processed.
    stop_when_gpu_done: bool = False
    #: Cap on wall time for this phase (safety net).
    max_duration_s: float = 600.0


@dataclass(frozen=True)
class PhaseResult:
    """What the runtime observes about a completed phase."""

    start_t: float
    end_t: float
    cpu_items: float
    gpu_items: float
    #: Proxy-thread view of GPU time: launch start to kernel completion.
    gpu_time_s: float
    #: Time the GPU was actually executing (excludes launch overhead).
    gpu_busy_time_s: float
    counters: CounterDelta
    #: Exact energy over the phase (diagnostic; schedulers must use the
    #: MSR interface instead to stay black-box).
    energy_j: float

    @property
    def duration_s(self) -> float:
        return self.end_t - self.start_t


class IntegratedProcessor:
    """A simulated integrated CPU-GPU package with PCU, MSR and counters."""

    def __init__(self, spec: PlatformSpec, trace_enabled: bool = False,
                 observer: "Optional[Observer]" = None) -> None:
        self.spec = spec
        self.now = 0.0
        self.pcu = Pcu(spec)
        self.msr = EnergyMsr(spec.energy_unit_j)
        self.counters = PerfCounters()
        self.trace = PowerTrace(enabled=trace_enabled)
        self.observer = resolve(observer)
        self._fast = spec.tick_mode in ("fast", "bounded")
        self._bounded = spec.tick_mode == "bounded"
        self._cap_w = spec.pcu.package_cap_w
        self._last_package_w = idle_power(spec).package_w
        self._last_phase_ticks = 0
        self._last_phase_macro_steps = 0
        self._last_phase_replayed = False
        self._event_sources: List[object] = []
        # Fast-mode model memo: many-launch workloads replay virtually
        # identical launch/ramp transients thousands of times, so the
        # same (frequency, configuration) model inputs recur endlessly.
        # Values are cached result objects - bit-identical to fresh
        # evaluation - so fast-vs-exact equivalence is unaffected.
        # Inside an engine gang (see repro.soc.vector) the memos are
        # shared across every compatible sibling run.
        core = active_vector_core()
        if core is not None and self._fast:
            self._rates_memo, self._power_memo = core.adopt(spec)
        else:
            self._rates_memo = {}
            self._power_memo = {}
        # Bounded-mode phase-replay memo: whole-phase outcomes keyed on
        # quantized pre-state (never shared across processors - replay
        # order would otherwise leak between ganged runs).
        self._phase_memo: dict = {}
        self._phase_entry_hits: dict = {}
        self._phase_armed = False
        # Adaptive cutoff: workloads whose phase pre-states never recur
        # (e.g. an irregular profile feeding every launch a different
        # item count under a slowly ramping clock) pay key-construction
        # rent on every phase and never collect.  After a probe budget
        # with zero hits the memo turns itself off for this processor.
        self._phase_probes = 0
        self._phase_hits = 0
        self._phase_memo_live = True

    # -- software-visible interface (what schedulers may use) -------------------

    def read_energy_msr(self) -> int:
        """Raw MSR_PKG_ENERGY_STATUS read."""
        return self.msr.read()

    def energy_joules_between(self, before: int, after: int) -> float:
        return self.msr.joules_between(before, after)

    def snapshot_counters(self) -> CounterSnapshot:
        return self.counters.snapshot(self.now)

    @property
    def gpu_busy(self) -> bool:
        """GPU performance counter A26."""
        return self.counters.gpu_busy

    def set_power_hint(self, hint: float) -> None:
        """Hand the PCU a runtime efficiency hint in [0, 1].

        The cooperative extension sketched in the paper's conclusion
        ("incorporate feedback from our user-level runtime in power
        management techniques"): 0 restores the stock policy, 1 asks
        the firmware to pace the co-executing CPU for efficiency.
        """
        if not 0.0 <= hint <= 1.0:
            raise SimulationError(f"power hint {hint} outside [0, 1]")
        self.pcu.power_hint = hint

    # -- discrete events ---------------------------------------------------------

    def add_event_source(self, source: object) -> None:
        """Register a discrete event source (harness/fault plumbing).

        ``source`` must expose ``next_event_time(now) -> float`` (the
        absolute time of its next event, ``inf`` when exhausted) and
        ``fire(now) -> None``; ``next_event_time`` must advance past
        ``now`` after ``fire``.  The clock never steps - and never
        macro-steps - across a pending event: both clock modes bound
        their advance to the event horizon, so a scheduled fault lands
        on-tick regardless of fast-forwarding.
        """
        self._event_sources.append(source)

    def _event_horizon(self) -> float:
        """Fire every due source, then return the earliest future event."""
        horizon = float("inf")
        for source in self._event_sources:
            t_next = source.next_event_time(self.now)
            while t_next <= self.now + 1e-12:
                source.fire(self.now)
                t_next = source.next_event_time(self.now)
            horizon = min(horizon, t_next)
        return horizon

    # -- execution ---------------------------------------------------------------

    def idle(self, duration_s: float) -> None:
        """Advance the clock with both devices idle."""
        if duration_s < 0:
            raise SimulationError("cannot idle for negative time")
        remaining = duration_s
        tick = self.spec.tick_s
        # Idle power depends only on the spec - one computation serves
        # the whole wait, however it is stepped.
        breakdown = idle_power(self.spec)
        while remaining > _MIN_DT:
            horizon = (self._event_horizon() if self._event_sources
                       else float("inf"))
            if self._fast and self.pcu.settled(self.now, False, False,
                                               self._last_package_w):
                # Both devices idle and the PCU parked: the rest of the
                # wait is one constant-power macro-step (up to the next
                # discrete event).
                dt = min(remaining, horizon - self.now)
                if dt > tick:
                    self.pcu.macro_step(self.now, dt, cpu_active=False,
                                        gpu_active=False)
                    self._account_span(dt, breakdown.package_w, 0.0, 0.0,
                                       breakdown.uncore_w, gpu_active=False)
                    remaining -= dt
                    continue
            dt = min(tick, remaining)
            if horizon - self.now < dt:
                dt = horizon - self.now
            dt = self.pcu.bound_dt(self.now, dt, self._last_package_w)
            dt = max(dt, _MIN_DT)
            self.pcu.step(self.now, dt, cpu_active=False, gpu_active=False,
                          last_package_power_w=self._last_package_w)
            self._account_tick(dt, breakdown.package_w, 0.0, 0.0,
                               breakdown.uncore_w, gpu_active=False)
            remaining -= dt

    def run_phase(self, request: PhaseRequest) -> PhaseResult:
        """Execute one phase to completion and return observations."""
        obs = self.observer
        if not obs.enabled:
            return self._run_phase_inner(request)
        if request.stop_when_gpu_done:
            kind = "profiling"
        elif request.cpu_region is not None and request.gpu_region is not None:
            kind = "partitioned"
        elif request.gpu_region is not None:
            kind = "gpu-only"
        else:
            kind = "cpu-only"
        with obs.span("soc.phase", kernel=request.cost.name, kind=kind):
            result = self._run_phase_inner(request)
        obs.inc("soc.phases")
        obs.inc("soc.ticks", self._last_phase_ticks)
        obs.inc("soc.macro_steps", self._last_phase_macro_steps)
        if self._last_phase_replayed:
            obs.inc("soc.phase_replays")
        obs.observe("soc.phase_ticks", self._last_phase_ticks)
        obs.observe("soc.phase_s", result.duration_s)
        obs.set_gauge("soc.msr_wraps", self.msr.wrap_count)
        return result

    def _run_phase_inner(self, request: PhaseRequest) -> PhaseResult:
        spec = self.spec
        cost = request.cost
        cpu_region = request.cpu_region
        gpu_region = request.gpu_region

        gpu_present = gpu_region is not None and gpu_region.items_remaining > _DONE_EPS
        cpu_present = cpu_region is not None and cpu_region.items_remaining > _DONE_EPS
        if not gpu_present and not cpu_present:
            raise SimulationError("phase with no work on either device")
        if request.stop_when_gpu_done and not gpu_present:
            raise SimulationError("stop_when_gpu_done requires a GPU region")

        # Bounded-mode phase replay: many-launch workloads re-execute
        # the same phase from (quantized-)identical pre-state thousands
        # of times; replaying the memoized outcome skips the tick loop
        # entirely.  Disabled whenever per-tick fidelity is observable
        # (tracing) or the timeline is externally perturbed (events).
        self._last_phase_replayed = False
        memo_key = None
        if (self._bounded and self._phase_memo_live
                and not self.trace.enabled
                and not self._event_sources):
            memo_key = self._phase_key(request, cpu_region, gpu_region)
            entry = self._phase_lookup(memo_key)
            if entry is not None:
                return self._phase_replay(entry, cpu_region, gpu_region)
        self._phase_armed = self.pcu.state.cap_throttle_hz > 0.0

        start_t = self.now
        start_counters = self.snapshot_counters()
        start_energy = self.msr.lifetime_joules
        memo_cpu_pos = cpu_region._pos if cpu_region is not None else 0.0
        memo_gpu_pos = gpu_region._pos if gpu_region is not None else 0.0

        launch_remaining = spec.gpu.kernel_launch_overhead_s if gpu_present else 0.0
        gpu_dispatch_items = gpu_region.items_remaining if gpu_present else 0.0
        gpu_running = False
        gpu_done_t: Optional[float] = None
        gpu_busy_time = 0.0
        deadline = start_t + request.max_duration_s
        tick = spec.tick_s
        fast = self._fast
        # Adaptive ticking: once the PCU has settled (no material
        # frequency movement) the tick stretches up to 8x.  Any event -
        # ramping, launch completion, a device finishing - snaps it
        # back to the base tick, so transients keep full resolution.
        # Fast mode layers macro-stepping on top: truly settled spans
        # are skipped in one jump; everything else runs through this
        # identical tick code.
        stable_ticks = 0
        total_ticks = 0
        macro_steps = 0
        prev_cpu_freq = self.pcu.state.cpu_freq_hz
        prev_gpu_freq = self.pcu.state.gpu_freq_hz

        while True:
            cpu_done = (not cpu_present) or cpu_region.items_remaining <= _DONE_EPS
            gpu_done = (gpu_present and launch_remaining <= 0.0
                        and gpu_region.items_remaining <= _DONE_EPS)
            if gpu_done and gpu_done_t is None:
                gpu_done_t = self.now
            if request.stop_when_gpu_done:
                if gpu_done:
                    break
            elif cpu_done and ((not gpu_present) or gpu_done):
                break
            if self.now >= deadline:
                raise SimulationError(
                    f"phase exceeded max duration {request.max_duration_s}s "
                    f"(kernel {cost.name})")

            event_horizon = (self._event_horizon() if self._event_sources
                             else float("inf"))

            launching = gpu_present and launch_remaining > 0.0
            gpu_running = gpu_present and not launching and not gpu_done
            # The proxy thread occupies a hardware context whenever it
            # is driving the GPU.  With SMT it shares a core with a
            # worker (mostly-blocked thread, ~15% of a core); without
            # SMT (the tablet's Atom) it costs a whole core.
            proxy_busy = launching or gpu_running
            proxy_cost = 0.15 if spec.cpu.smt_per_core > 1 else 1.0
            cpu_cores = 0.0
            if cpu_present and not cpu_done:
                cpu_cores = spec.cpu.num_cores - (proxy_cost if proxy_busy else 0.0)
                cpu_cores = max(cpu_cores, 1.0)
            cpu_active = cpu_cores > 0

            # Preliminary rates at current frequencies, to align the
            # tick with the next completion event.
            st = self.pcu.state
            pre_cpu_freq = st.cpu_freq_hz
            pre_gpu_freq = st.gpu_freq_hz
            dispatch = gpu_dispatch_items if gpu_running else 0.0
            if fast:
                prelim = self._rates_cached(
                    cost, pre_cpu_freq, pre_gpu_freq, cpu_cores, dispatch,
                    cpu_active, gpu_running)
            else:
                prelim = compute_rates(
                    spec, cost, pre_cpu_freq, pre_gpu_freq, cpu_cores,
                    dispatch, cpu_active=cpu_active, gpu_active=gpu_running)

            # Completion/transition bounds at the current rates: shared
            # by the macro-step gate, the batch plan cap, and the dt
            # selection below - computed once per tick (they only
            # depend on region state and ``prelim``, which none of the
            # consumers mutate before use).
            t_done_cpu = (cpu_region.time_to_complete(prelim.cpu_items_per_s)
                          if cpu_cores > 0 and prelim.cpu_items_per_s > 0
                          else float("inf"))
            t_done_gpu = (gpu_region.time_to_complete(prelim.gpu_items_per_s)
                          if gpu_running and prelim.gpu_items_per_s > 0
                          else float("inf"))
            t_trans = self.pcu.time_to_next_transition(
                self.now, cpu_active, gpu_running)

            # Fast-forward: the PCU is settled and no launch transient
            # is in flight, so frequencies, rates and power are all
            # constant until the next event - jump straight to it.
            if (fast and not launching
                    and self.pcu.settled(self.now, cpu_active, gpu_running,
                                         self._last_package_w)):
                dt_macro = deadline - self.now
                if t_trans - self.now < dt_macro:
                    dt_macro = t_trans - self.now
                if event_horizon - self.now < dt_macro:
                    dt_macro = event_horizon - self.now
                if t_done_cpu < dt_macro:
                    dt_macro = t_done_cpu
                if t_done_gpu < dt_macro:
                    dt_macro = t_done_gpu
                if dt_macro > tick:
                    breakdown = self._power_cached(prelim, pre_cpu_freq,
                                                   pre_gpu_freq, cpu_cores,
                                                   gpu_running)
                    # Settled implies the previous tick was at or under
                    # the cap with this same configuration; re-checking
                    # the span's own power keeps the first tick after a
                    # transient honest (fall through to exact ticking,
                    # where cap feedback will engage on schedule).
                    if breakdown.package_w <= spec.pcu.package_cap_w:
                        self.pcu.macro_step(self.now, dt_macro, cpu_active,
                                            gpu_running)
                        if cpu_active:
                            done = cpu_region.consume(
                                prelim.cpu_items_per_s * dt_macro)
                            self.counters.account_cpu_items(done, cost)
                        if gpu_running:
                            done = gpu_region.consume(
                                prelim.gpu_items_per_s * dt_macro)
                            self.counters.account_gpu_items(done)
                            gpu_busy_time += dt_macro
                        self.counters.account_gpu_busy(gpu_running, dt_macro)
                        self._account_span(dt_macro, breakdown.package_w,
                                           breakdown.cpu_w, breakdown.gpu_w,
                                           breakdown.uncore_w,
                                           gpu_active=gpu_running)
                        total_ticks += 1
                        macro_steps += 1
                        # The macro-step ends at an event, exactly where
                        # exact mode's event-bounded tick resets its
                        # stretch - keep the stability state in lockstep.
                        stable_ticks = 0
                        prev_cpu_freq = pre_cpu_freq
                        prev_gpu_freq = pre_gpu_freq
                        continue

            # Batched transient: the span ahead is not settled (a ramp
            # is in progress) but it is *pre-determined* - no launch in
            # flight, no GPU activity edge, no cap throttle armed - so
            # the whole tick/frequency schedule can be planned on a PCU
            # clone and the expensive rate/power models evaluated once,
            # vectorized, instead of once per tick.  Committed ticks are
            # element-wise bit-identical to scalar ticking.
            if (fast and not launching
                    and st.cap_throttle_hz == 0.0
                    and self._last_package_w <= spec.pcu.package_cap_w
                    and not self.pcu.edge_pending(gpu_running)):
                # Don't plan (much) past the nearest completion: the
                # estimate uses current rates, so it is only a planning
                # heuristic - commit-time truncation, not this bound,
                # decides what actually executes.
                plan_cap = _BATCH_MAX_TICKS
                if t_done_cpu != float("inf"):
                    plan_cap = min(plan_cap, 2 + int(t_done_cpu / tick))
                if t_done_gpu != float("inf"):
                    plan_cap = min(plan_cap, 2 + int(t_done_gpu / tick))
                advanced = self._transient_batch(
                    cost, cpu_region, gpu_region, cpu_active, cpu_cores,
                    gpu_running, gpu_dispatch_items, deadline, event_horizon,
                    stable_ticks, prev_cpu_freq, prev_gpu_freq,
                    plan_cap) if plan_cap >= _BATCH_MIN_TICKS else None
                if advanced is not None:
                    (n_committed, stable_ticks, prev_cpu_freq,
                     prev_gpu_freq, span_busy) = advanced
                    total_ticks += n_committed
                    macro_steps += 1
                    gpu_busy_time += span_busy
                    continue

            dt = tick * (8.0 if stable_ticks > 16 else 1.0)
            event_bounded = False
            if launching and launch_remaining < dt:
                dt = launch_remaining
                event_bounded = True
            if t_done_cpu < dt:
                dt = t_done_cpu
                event_bounded = True
            if t_done_gpu < dt:
                dt = t_done_gpu
                event_bounded = True
            if t_trans - self.now < dt:
                dt = t_trans - self.now
                event_bounded = True
            if event_horizon - self.now < dt:
                dt = event_horizon - self.now
                event_bounded = True
            dt = self.pcu.bound_dt(self.now, dt, self._last_package_w)
            dt = max(dt, _MIN_DT)

            cpu_freq, gpu_freq = self.pcu.step(
                self.now, dt, cpu_active=cpu_active, gpu_active=gpu_running,
                last_package_power_w=self._last_package_w)
            freq_moved = (abs(cpu_freq - prev_cpu_freq) > 3e7
                          or abs(gpu_freq - prev_gpu_freq) > 3e7)
            prev_cpu_freq = cpu_freq
            prev_gpu_freq = gpu_freq
            if freq_moved or event_bounded or launching:
                stable_ticks = 0
            else:
                stable_ticks += 1
            if abs(cpu_freq - pre_cpu_freq) < 1e6 and \
                    abs(gpu_freq - pre_gpu_freq) < 1e6:
                rates = prelim
            elif fast:
                rates = self._rates_cached(cost, cpu_freq, gpu_freq,
                                           cpu_cores, dispatch,
                                           cpu_active, gpu_running)
            else:
                rates = compute_rates(
                    spec, cost, cpu_freq, gpu_freq, cpu_cores, dispatch,
                    cpu_active=cpu_active, gpu_active=gpu_running)

            if cpu_cores > 0:
                done = cpu_region.consume(rates.cpu_items_per_s * dt)
                self.counters.account_cpu_items(done, cost)
            if gpu_running:
                done = gpu_region.consume(rates.gpu_items_per_s * dt)
                self.counters.account_gpu_items(done)
                gpu_busy_time += dt
            if launching:
                launch_remaining -= dt

            if fast:
                breakdown = self._power_cached(rates, cpu_freq, gpu_freq,
                                               cpu_cores, gpu_running)
            else:
                breakdown = package_power(spec, rates, cpu_freq, gpu_freq,
                                          cpu_cores, gpu_running)
            self.counters.account_gpu_busy(gpu_running, dt)
            self._account_tick(dt, breakdown.package_w, breakdown.cpu_w,
                               breakdown.gpu_w, breakdown.uncore_w,
                               gpu_active=gpu_running)
            total_ticks += 1

        if gpu_present and gpu_done_t is None:
            gpu_done_t = self.now
        self._last_phase_ticks = total_ticks
        self._last_phase_macro_steps = macro_steps
        # The kernel has completed: the GPU busy counter (A26) must
        # read idle, whatever the final tick happened to be doing.
        self.counters.account_gpu_busy(False, 0.0)
        end_counters = self.snapshot_counters()
        result = PhaseResult(
            start_t=start_t,
            end_t=self.now,
            cpu_items=end_counters.cpu_items - start_counters.cpu_items,
            gpu_items=end_counters.gpu_items - start_counters.gpu_items,
            gpu_time_s=(gpu_done_t - start_t) if gpu_present else 0.0,
            gpu_busy_time_s=gpu_busy_time,
            counters=start_counters.delta(end_counters),
            energy_j=self.msr.lifetime_joules - start_energy,
        )
        if memo_key is not None:
            self._phase_learn(memo_key, start_t, result,
                              memo_cpu_pos, memo_gpu_pos,
                              cpu_region, gpu_region)
        return result

    # -- internals ---------------------------------------------------------------

    def _rates_cached(self, cost: KernelCostModel, cpu_freq: float,
                      gpu_freq: float, cpu_cores: float, dispatch: float,
                      cpu_active: bool, gpu_active: bool) -> DeviceRates:
        """Memoized :func:`compute_rates` (fast clock mode only).

        Keyed on every model input; cache hits return the same result
        object a fresh evaluation would produce bit-for-bit, so this is
        invisible to fast-vs-exact equivalence.  Kernel cost models are
        keyed by name: within one run a name denotes one parameter set.
        """
        key = (cost.name, cpu_freq, gpu_freq, cpu_cores, dispatch,
               cpu_active, gpu_active)
        rates = self._rates_memo.get(key)
        if rates is None:
            rates = compute_rates(self.spec, cost, cpu_freq, gpu_freq,
                                  cpu_cores, dispatch, cpu_active=cpu_active,
                                  gpu_active=gpu_active)
            if len(self._rates_memo) >= _MEMO_MAX_ENTRIES:
                self._rates_memo.clear()
            self._rates_memo[key] = rates
        return rates

    def _power_cached(self, rates: DeviceRates, cpu_freq: float,
                      gpu_freq: float, cpu_cores: float, gpu_active: bool):
        """Memoized :func:`package_power` (fast clock mode only).

        The key carries exactly the fields :func:`package_power` reads
        from ``rates`` (stall fractions and traffic) plus the explicit
        arguments, so a hit is bit-identical to a fresh evaluation.
        """
        key = (rates.cpu_memory_stall_fraction,
               rates.gpu_memory_stall_fraction,
               rates.cpu_traffic_bytes_per_s,
               rates.gpu_traffic_bytes_per_s,
               cpu_freq, gpu_freq, cpu_cores, gpu_active)
        breakdown = self._power_memo.get(key)
        if breakdown is None:
            breakdown = package_power(self.spec, rates, cpu_freq, gpu_freq,
                                      cpu_cores, gpu_active)
            if len(self._power_memo) >= _MEMO_MAX_ENTRIES:
                self._power_memo.clear()
            self._power_memo[key] = breakdown
        return breakdown

    # -- bounded-mode phase replay ----------------------------------------------

    @staticmethod
    def _region_sig(region: Optional[WorkRegion]):
        """Key fragment capturing everything a phase reads of a region.

        A uniform cost profile makes behaviour a function of the
        remaining item count alone; an irregular profile additionally
        depends on *where* in the iteration space the slice sits.
        Kernel cost models (and hence profiles) are keyed by name in
        the enclosing phase key, exactly as in ``_rates_cached``.
        """
        if region is None or region.items_remaining <= _DONE_EPS:
            return None
        if region.profile._uniform:
            return ("u", _q(region.items_remaining))
        return ("i", _q(region.n_total), _q(region._pos),
                _q(region.stop_item))

    def _phase_key(self, request: PhaseRequest,
                   cpu_region: Optional[WorkRegion],
                   gpu_region: Optional[WorkRegion]):
        """Quantized pre-state fingerprint of a phase.

        Two phases with equal keys evolve identically to within the
        bounded tolerance: the key carries every input the tick loop
        reads - request shape, region slices, PCU controller state,
        and the power-feedback signal.  Wall-clock enters only through
        the GPU idle gap, bucketed to behaviour-equivalence: any gap
        past the cold threshold acts exactly like any other ("cold"),
        a never-active GPU is its own bucket, and warm gaps keep their
        (quantized) value because both the idle-release instant and
        the cold check at the next activation depend on it.
        """
        st = self.pcu.state
        pcu_spec = self.spec.pcu
        if st.last_gpu_active_t == float("-inf"):
            gap_key = "never"
        else:
            gap = self.now - st.last_gpu_active_t
            gap_key = ("cold" if gap >= pcu_spec.gpu_cold_threshold_s
                       else _q(gap))
        return (
            request.cost.name,
            request.stop_when_gpu_done,
            _q(request.max_duration_s),
            self._region_sig(cpu_region),
            self._region_sig(gpu_region),
            _q(st.cpu_freq_hz),
            _q(st.gpu_freq_hz),
            _q(st.cap_throttle_hz),
            self.pcu._gpu_was_active,
            self.pcu._throttle_recovery,
            _q(self.pcu.power_hint),
            gap_key,
            _q(self._last_package_w),
        )

    def _grid_key(self, t: float):
        """Phase of ``t`` on the PCU's absolute sampling grid."""
        return _q(t % self.spec.pcu.sample_interval_s)

    def _phase_lookup(self, memo_key) -> Optional[_PhaseEntry]:
        """Two-level lookup: grid-insensitive entries (phases that
        never armed cap feedback) match at any clock time; armed
        entries additionally require the same sampling-grid phase,
        because cap feedback fires on the absolute time grid."""
        self._phase_probes += 1
        if (self._phase_probes >= _PHASE_MEMO_PROBE_BUDGET
                and self._phase_hits == 0):
            # Nothing ever recurred: stop keying (and learning) on this
            # processor - see the adaptive-cutoff note in __init__.
            self._phase_memo_live = False
            self._phase_memo.clear()
            self._phase_entry_hits.clear()
            return None
        inner = self._phase_memo.get(memo_key)
        if inner is None:
            return None
        slot = None
        entry = inner.get(slot)
        if entry is None:
            slot = self._grid_key(self.now)
            entry = inner.get(slot)
        if entry is None:
            return None
        self._phase_hits += 1
        counter_key = (memo_key, slot)
        hits = self._phase_entry_hits.get(counter_key, 0) + 1
        if hits >= _PHASE_REFRESH_INTERVAL:
            # Refresh: evict and miss on purpose so the fresh execution
            # re-learns the entry anchored at the current pre-state
            # (see _PHASE_REFRESH_INTERVAL).
            del inner[slot]
            if not inner:
                del self._phase_memo[memo_key]
            self._phase_entry_hits.pop(counter_key, None)
            return None
        self._phase_entry_hits[counter_key] = hits
        return entry

    def _phase_learn(self, memo_key, start_t: float, result: PhaseResult,
                     cpu_pos0: float, gpu_pos0: float,
                     cpu_region: Optional[WorkRegion],
                     gpu_region: Optional[WorkRegion]) -> None:
        st = self.pcu.state
        delta = result.counters
        offset = (None if st.last_gpu_active_t == float("-inf")
                  else self.now - st.last_gpu_active_t)
        entry = _PhaseEntry(
            duration_s=result.duration_s,
            energy_j=result.energy_j,
            d_instructions=delta.instructions_retired,
            d_loadstores=delta.loadstore_instructions,
            d_l3_misses=delta.l3_misses,
            d_cpu_items=delta.cpu_items,
            d_gpu_items=delta.gpu_items,
            d_gpu_busy_s=delta.gpu_busy_time_s,
            cpu_pos_delta=(cpu_region._pos - cpu_pos0
                           if cpu_region is not None else 0.0),
            gpu_pos_delta=(gpu_region._pos - gpu_pos0
                           if gpu_region is not None else 0.0),
            gpu_time_s=result.gpu_time_s,
            gpu_busy_time_s=result.gpu_busy_time_s,
            end_cpu_freq_hz=st.cpu_freq_hz,
            end_gpu_freq_hz=st.gpu_freq_hz,
            end_cap_throttle_hz=st.cap_throttle_hz,
            end_gpu_was_active=self.pcu._gpu_was_active,
            end_throttle_recovery=self.pcu._throttle_recovery,
            gpu_active_offset=offset,
            end_package_w=self._last_package_w,
        )
        if len(self._phase_memo) >= _PHASE_MEMO_MAX_ENTRIES:
            self._phase_memo.clear()
            self._phase_entry_hits.clear()
        inner = self._phase_memo.setdefault(memo_key, {})
        inner[self._grid_key(start_t) if self._phase_armed else None] = entry

    def _phase_replay(self, entry: _PhaseEntry,
                      cpu_region: Optional[WorkRegion],
                      gpu_region: Optional[WorkRegion]) -> PhaseResult:
        """Apply a memoized phase outcome at the current clock.

        Every effect is either linear (counters, energy, region
        positions - replayed as deltas) or absolute controller state
        (replayed verbatim, with ``last_gpu_active_t`` re-anchored to
        the new phase end).  Replay *snaps onto* the memoized
        trajectory, so error does not accumulate across repeats: the
        divergence from a fresh run stays at key-quantization scale,
        orders of magnitude inside the bounded tolerance.
        """
        start_t = self.now
        end_t = start_t + entry.duration_s
        start_counters = self.snapshot_counters()
        c = self.counters
        c.instructions_retired += entry.d_instructions
        c.loadstore_instructions += entry.d_loadstores
        c.l3_misses += entry.d_l3_misses
        c.cpu_items += entry.d_cpu_items
        c.gpu_items += entry.d_gpu_items
        c.gpu_busy_time_s += entry.d_gpu_busy_s
        c._gpu_busy = False
        self.msr.deposit(entry.energy_j)
        if cpu_region is not None and entry.cpu_pos_delta:
            cpu_region._pos = min(cpu_region.stop_item,
                                  cpu_region._pos + entry.cpu_pos_delta)
        if gpu_region is not None and entry.gpu_pos_delta:
            gpu_region._pos = min(gpu_region.stop_item,
                                  gpu_region._pos + entry.gpu_pos_delta)
        st = self.pcu.state
        st.cpu_freq_hz = entry.end_cpu_freq_hz
        st.gpu_freq_hz = entry.end_gpu_freq_hz
        st.cap_throttle_hz = entry.end_cap_throttle_hz
        st.last_gpu_active_t = (float("-inf")
                                if entry.gpu_active_offset is None
                                else end_t - entry.gpu_active_offset)
        self.pcu._gpu_was_active = entry.end_gpu_was_active
        self.pcu._throttle_recovery = entry.end_throttle_recovery
        self._last_package_w = entry.end_package_w
        self.now = end_t
        self._last_phase_ticks = 0
        self._last_phase_macro_steps = 0
        self._last_phase_replayed = True
        end_counters = self.snapshot_counters()
        return PhaseResult(
            start_t=start_t,
            end_t=end_t,
            cpu_items=entry.d_cpu_items,
            gpu_items=entry.d_gpu_items,
            gpu_time_s=entry.gpu_time_s,
            gpu_busy_time_s=entry.gpu_busy_time_s,
            counters=start_counters.delta(end_counters),
            energy_j=entry.energy_j,
        )

    def _transient_batch(self, cost: KernelCostModel,
                         cpu_region: Optional[WorkRegion],
                         gpu_region: Optional[WorkRegion],
                         cpu_active: bool, cpu_cores: float,
                         gpu_running: bool, gpu_dispatch_items: float,
                         deadline: float, event_horizon: float,
                         stable_ticks: int, prev_cpu_freq: float,
                         prev_gpu_freq: float, plan_cap: int):
        """Plan, evaluate and commit one batched transient span.

        Two passes.  **Plan**: a PCU clone is stepped through the
        upcoming ticks, reproducing the scalar loop's dt selection
        (adaptive stretch, transition/event-horizon alignment) and the
        controller's frequency ramps, without evaluating the rate or
        power models.  **Evaluate**: the roofline and power models run
        once, vectorized, over the planned frequency arrays - each
        element bit-identical to the scalar call it replaces.  The plan
        is then truncated to the prefix the scalar loop would actually
        have executed unchanged: ticks before any device-completion
        bound would fire, and at most one tick whose power exceeds the
        cap (the next tick arms cap-feedback sampling and must run on
        the scalar path, exactly as in exact mode).

        Returns ``None`` when fewer than ``_BATCH_MIN_TICKS`` ticks are
        plannable (the scalar path is cheaper); otherwise commits all
        side effects (work, counters, MSR, trace, PCU state, clock) and
        returns ``(n_ticks, stable_ticks, prev_cpu_freq, prev_gpu_freq,
        gpu_busy_s)`` for the caller's loop state.
        """
        spec = self.spec
        tick = spec.tick_s
        plan = self.pcu.clone()
        now = self.now
        nows: List[float] = []
        dts: List[float] = []
        base_dts: List[float] = []
        pre_c: List[float] = []
        pre_g: List[float] = []
        post_c: List[float] = []
        post_g: List[float] = []
        stables: List[int] = []
        recovery: List[bool] = []
        st_count = stable_ticks
        pc = prev_cpu_freq
        pg = prev_gpu_freq
        # Plan pass.  The clone is stepped with a zero power signal:
        # cap-feedback sampling is a no-op at or under the cap, and the
        # commit pass truncates at the first over-cap tick, so the live
        # controller would see no-op samples over every committed tick
        # just the same.
        while len(dts) < plan_cap:
            if now >= deadline:
                break
            if event_horizon - now <= 1e-12:
                break
            if plan.settled(now, cpu_active, gpu_running, 0.0):
                break  # hand the rest of the span to the macro-step path
            base = tick * (8.0 if st_count > 16 else 1.0)
            dt = base
            event_bounded = False
            t_trans = plan.time_to_next_transition(now, cpu_active, gpu_running)
            if t_trans - now < dt:
                dt = t_trans - now
                event_bounded = True
            if event_horizon - now < dt:
                dt = event_horizon - now
                event_bounded = True
            dt = max(dt, _MIN_DT)
            f0c = plan.state.cpu_freq_hz
            f0g = plan.state.gpu_freq_hz
            f1c, f1g = plan.step(now, dt, cpu_active=cpu_active,
                                 gpu_active=gpu_running,
                                 last_package_power_w=0.0)
            nows.append(now)
            dts.append(dt)
            base_dts.append(base)
            pre_c.append(f0c)
            pre_g.append(f0g)
            post_c.append(f1c)
            post_g.append(f1g)
            moved = (abs(f1c - pc) > 3e7 or abs(f1g - pg) > 3e7)
            pc = f1c
            pg = f1g
            st_count = 0 if (moved or event_bounded) else st_count + 1
            stables.append(st_count)
            recovery.append(plan._throttle_recovery)
            now += dt
        n = len(dts)
        if n < _BATCH_MIN_TICKS:
            return None

        # Evaluate pass: rates at pre- and post-step frequencies (the
        # scalar loop reuses its preliminary rates when the step barely
        # moved the clocks - reproduce that selection per element).
        # Each tick's pre-step frequency IS the previous tick's
        # post-step frequency (``plan.step`` returns its own state), so
        # the 2n scalar evaluations collapse onto one (n+1)-point
        # frequency ladder evaluated in a single vectorized call;
        # pre/post views are strided slices of the same arrays.  Every
        # element is still bit-identical to its scalar counterpart -
        # the batch twin is elementwise, so neighbors can't perturb it.
        ladder_c = np.empty(n + 1)
        ladder_g = np.empty(n + 1)
        ladder_c[0] = pre_c[0]
        ladder_c[1:] = post_c
        ladder_g[0] = pre_g[0]
        ladder_g[1:] = post_g
        f_pre_c = ladder_c[:-1]
        f_pre_g = ladder_g[:-1]
        f_post_c = ladder_c[1:]
        f_post_g = ladder_g[1:]
        dts_a = np.array(dts)
        base_a = np.array(base_dts)
        dispatch = gpu_dispatch_items if gpu_running else 0.0
        r_all = compute_rates_batch(spec, cost, ladder_c, ladder_g, cpu_cores,
                                    dispatch, cpu_active=cpu_active,
                                    gpu_active=gpu_running)
        r_pre = DeviceRates(
            cpu_items_per_s=r_all.cpu_items_per_s[:-1],
            gpu_items_per_s=r_all.gpu_items_per_s[:-1],
            cpu_memory_stall_fraction=r_all.cpu_memory_stall_fraction[:-1],
            gpu_memory_stall_fraction=r_all.gpu_memory_stall_fraction[:-1],
            cpu_traffic_bytes_per_s=r_all.cpu_traffic_bytes_per_s[:-1],
            gpu_traffic_bytes_per_s=r_all.gpu_traffic_bytes_per_s[:-1],
        )
        r_post = DeviceRates(
            cpu_items_per_s=r_all.cpu_items_per_s[1:],
            gpu_items_per_s=r_all.gpu_items_per_s[1:],
            cpu_memory_stall_fraction=r_all.cpu_memory_stall_fraction[1:],
            gpu_memory_stall_fraction=r_all.gpu_memory_stall_fraction[1:],
            cpu_traffic_bytes_per_s=r_all.cpu_traffic_bytes_per_s[1:],
            gpu_traffic_bytes_per_s=r_all.gpu_traffic_bytes_per_s[1:],
        )
        reuse = ((np.abs(f_post_c - f_pre_c) < 1e6)
                 & (np.abs(f_post_g - f_pre_g) < 1e6))
        rates = DeviceRates(
            cpu_items_per_s=np.where(reuse, r_pre.cpu_items_per_s,
                                     r_post.cpu_items_per_s),
            gpu_items_per_s=np.where(reuse, r_pre.gpu_items_per_s,
                                     r_post.gpu_items_per_s),
            cpu_memory_stall_fraction=np.where(
                reuse, r_pre.cpu_memory_stall_fraction,
                r_post.cpu_memory_stall_fraction),
            gpu_memory_stall_fraction=np.where(
                reuse, r_pre.gpu_memory_stall_fraction,
                r_post.gpu_memory_stall_fraction),
            cpu_traffic_bytes_per_s=np.where(reuse,
                                             r_pre.cpu_traffic_bytes_per_s,
                                             r_post.cpu_traffic_bytes_per_s),
            gpu_traffic_bytes_per_s=np.where(reuse,
                                             r_pre.gpu_traffic_bytes_per_s,
                                             r_post.gpu_traffic_bytes_per_s),
        )
        breakdown = package_power_batch(spec, rates, f_post_c, f_post_g,
                                        cpu_cores, gpu_active=gpu_running)
        pkg = breakdown.package_w

        # Truncate to the prefix the scalar loop would run unchanged.
        n_commit = n
        cap_cpu = rates.cpu_items_per_s * dts_a
        cap_gpu = rates.gpu_items_per_s * dts_a
        if cpu_cores > 0:
            w_before = (cpu_region.work_remaining
                        - np.concatenate(([0.0], np.cumsum(cap_cpu)))[:n])
            # Conservative guard (1e-9 relative): truncating a tick
            # early is always safe - the scalar loop replays it exactly
            # - while committing a tick the scalar loop would have
            # completion-bounded is not.
            fired = ((r_pre.cpu_items_per_s > 0)
                     & (w_before <= r_pre.cpu_items_per_s * base_a
                        * (1.0 + 1e-9)))
            hits = np.flatnonzero(fired)
            if hits.size:
                n_commit = min(n_commit, int(hits[0]))
        if gpu_running:
            w_before = (gpu_region.work_remaining
                        - np.concatenate(([0.0], np.cumsum(cap_gpu)))[:n])
            fired = ((r_pre.gpu_items_per_s > 0)
                     & (w_before <= r_pre.gpu_items_per_s * base_a
                        * (1.0 + 1e-9)))
            hits = np.flatnonzero(fired)
            if hits.size:
                n_commit = min(n_commit, int(hits[0]))
        over = np.flatnonzero(pkg > spec.pcu.package_cap_w)
        if over.size:
            # The over-cap tick itself still ran with an under-cap power
            # signal; commit through it, then let the scalar path arm
            # grid-aligned cap sampling from the next tick on.
            n_commit = min(n_commit, int(over[0]) + 1)
        if n_commit < _BATCH_MIN_TICKS:
            return None
        if over.size and int(over[0]) < n_commit:
            self._phase_armed = True

        k = n_commit - 1
        span_busy = 0.0
        trace_on = self.trace.enabled
        # Commit pass: replay the committed ticks' side effects in
        # order, scalar, from the precomputed arrays.  Work retirement,
        # counters, and MSR deposits land bit-identical to exact-mode
        # ticking (summation order and all) - only the model
        # evaluations above were batched.  Downstream consumers that
        # quantize (the MSR register) or knife-edge (scheduler argmins
        # over measured energy) therefore observe literally the same
        # values either way.
        for i in range(n_commit):
            dt_i = dts[i]
            if cpu_cores > 0:
                done = cpu_region.consume(float(cap_cpu[i]))
                self.counters.account_cpu_items(done, cost)
            if gpu_running:
                done = gpu_region.consume(float(cap_gpu[i]))
                self.counters.account_gpu_items(done)
                span_busy += dt_i
            self.counters.account_gpu_busy(gpu_running, dt_i)
            self.msr.deposit(float(pkg[i]) * dt_i)
            if trace_on:
                self.trace.append(TraceSample(
                    t=nows[i], dt=dt_i, package_w=float(pkg[i]),
                    cpu_w=float(breakdown.cpu_w[i]),
                    gpu_w=float(breakdown.gpu_w[i]),
                    uncore_w=float(breakdown.uncore_w[i]),
                    cpu_freq_hz=post_c[i], gpu_freq_hz=post_g[i],
                    gpu_active=gpu_running))
        self._last_package_w = float(pkg[k])
        live = self.pcu.state
        live.cpu_freq_hz = post_c[k]
        live.gpu_freq_hz = post_g[k]
        if gpu_running:
            live.last_gpu_active_t = nows[k] + dts[k]
        self.pcu._throttle_recovery = recovery[k]
        self.now = nows[k] + dts[k]
        return n_commit, stables[k], post_c[k], post_g[k], span_busy

    def _account_tick(self, dt: float, package_w: float, cpu_w: float,
                      gpu_w: float, uncore_w: float, gpu_active: bool) -> None:
        self.msr.deposit(package_w * dt)
        self._last_package_w = package_w
        if package_w > self._cap_w:
            self._phase_armed = True
        st = self.pcu.state
        self.trace.append(TraceSample(
            t=self.now, dt=dt, package_w=package_w, cpu_w=cpu_w, gpu_w=gpu_w,
            uncore_w=uncore_w, cpu_freq_hz=st.cpu_freq_hz,
            gpu_freq_hz=st.gpu_freq_hz, gpu_active=gpu_active))
        self.now += dt

    def _account_span(self, dt: float, package_w: float, cpu_w: float,
                      gpu_w: float, uncore_w: float, gpu_active: bool) -> None:
        """Account one constant-power macro-step (the bulk twin of
        :meth:`_account_tick`): one multi-wrap-safe MSR deposit, one
        decimated run of synthesized trace samples."""
        self.msr.deposit_power(package_w, dt)
        self._last_package_w = package_w
        if self.trace.enabled:
            st = self.pcu.state
            self.trace.append_span(
                t=self.now, dt=dt, package_w=package_w, cpu_w=cpu_w,
                gpu_w=gpu_w, uncore_w=uncore_w, cpu_freq_hz=st.cpu_freq_hz,
                gpu_freq_hz=st.gpu_freq_hz, gpu_active=gpu_active,
                max_sample_dt=SPAN_DECIMATION_TICKS * self.spec.tick_s)
        self.now += dt
