"""Component power model for the simulated package.

Package power is the sum the paper enumerates in Section 2: CPU cores,
GPU cores, and the uncore (ring interconnect, LLC, memory controller),
plus an idle floor.  Core and EU dynamic power scale super-linearly
with frequency (``coeff * f**exponent``, the classical ``C*V^2*f`` shape
with voltage folded into the exponent).  Memory-stalled units clock-gate
much of their datapath, so their dynamic power is scaled by a per-device
stall factor - on the desktop calibration, stalled CPU cores still burn
most of their power (deep out-of-order machinery keeps spinning), while
on the tablet stalled in-order cores gate down hard; this asymmetry is
what produces the paper's observation that memory-bound work draws
*more* power than compute-bound work on the desktop (63 W vs 55 W
during co-execution) but *less* on the tablet.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.soc.device import DeviceRates
from repro.soc.spec import PlatformSpec


@dataclass(frozen=True)
class PowerBreakdown:
    """Instantaneous package power split by component, watts."""

    cpu_w: float
    gpu_w: float
    uncore_w: float
    idle_w: float

    @property
    def package_w(self) -> float:
        return self.cpu_w + self.gpu_w + self.uncore_w + self.idle_w


def _stall_scaled(dynamic_w: float, stall_fraction: float, stall_factor: float) -> float:
    """Scale dynamic power for a unit that is partially memory-stalled.

    A unit stalled for fraction ``s`` of the time burns full dynamic
    power while executing and ``stall_factor`` of it while stalled.
    """
    return dynamic_w * ((1.0 - stall_fraction) + stall_fraction * stall_factor)


def package_power(spec: PlatformSpec, rates: DeviceRates,
                  cpu_freq_hz: float, gpu_freq_hz: float,
                  cpu_active_cores: float, gpu_active: bool) -> PowerBreakdown:
    """Instantaneous package power for the current tick."""
    cpu_w = 0.0
    if cpu_active_cores > 0:
        dyn = spec.cpu.dynamic_power_w(cpu_freq_hz, cpu_active_cores)
        dyn = _stall_scaled(dyn, rates.cpu_memory_stall_fraction,
                            spec.cpu.memory_stall_power_factor)
        cpu_w = dyn + spec.cpu.leakage_per_core_w * cpu_active_cores

    gpu_w = 0.0
    if gpu_active:
        # EU utilization tracks throughput relative to a fully-occupied
        # array; approximate it as 1.0 while a kernel is resident (the
        # array is clock-ungated) with stall scaling on top.
        dyn = spec.gpu.dynamic_power_w(gpu_freq_hz, 1.0)
        dyn = _stall_scaled(dyn, rates.gpu_memory_stall_fraction,
                            spec.gpu.memory_stall_power_factor)
        gpu_w = dyn + spec.gpu.leakage_w

    uncore_w = (spec.memory.uncore_static_w
                + spec.memory.traffic_power_w(rates.total_traffic_bytes_per_s))

    return PowerBreakdown(cpu_w=cpu_w, gpu_w=gpu_w,
                          uncore_w=uncore_w, idle_w=spec.idle_power_w)


def package_power_batch(spec: PlatformSpec, rates: DeviceRates,
                        cpu_freq_hz: "np.ndarray", gpu_freq_hz: "np.ndarray",
                        cpu_active_cores: float,
                        gpu_active: bool) -> PowerBreakdown:
    """Vectorized twin of :func:`package_power` over frequency arrays.

    Element ``i`` reproduces ``package_power(...)`` at
    ``(cpu_freq_hz[i], gpu_freq_hz[i], rates[i])`` with the same
    elementary operations in the same order, so each element is
    bit-identical to the scalar result.  ``rates`` must carry array
    fields (from :func:`~repro.soc.device.compute_rates_batch`).  The
    returned breakdown holds arrays; its ``package_w`` property
    broadcasts.  Keep in lockstep with :func:`package_power`.
    """
    cpu_freq_hz = np.asarray(cpu_freq_hz, dtype=float)
    gpu_freq_hz = np.asarray(gpu_freq_hz, dtype=float)

    cpu_w = np.zeros_like(cpu_freq_hz)
    if cpu_active_cores > 0:
        dyn = spec.cpu.dynamic_power_w(cpu_freq_hz, cpu_active_cores)
        dyn = _stall_scaled(dyn, rates.cpu_memory_stall_fraction,
                            spec.cpu.memory_stall_power_factor)
        cpu_w = dyn + spec.cpu.leakage_per_core_w * cpu_active_cores

    gpu_w = np.zeros_like(gpu_freq_hz)
    if gpu_active:
        dyn = spec.gpu.dynamic_power_w(gpu_freq_hz, 1.0)
        dyn = _stall_scaled(dyn, rates.gpu_memory_stall_fraction,
                            spec.gpu.memory_stall_power_factor)
        gpu_w = dyn + spec.gpu.leakage_w

    uncore_w = (spec.memory.uncore_static_w
                + spec.memory.traffic_power_w(rates.total_traffic_bytes_per_s))

    return PowerBreakdown(cpu_w=cpu_w, gpu_w=gpu_w,
                          uncore_w=uncore_w, idle_w=spec.idle_power_w)


def span_energy_j(package_w: "np.ndarray", dts: "np.ndarray") -> float:
    """Energy of a whole tick span: ``sum_i package_w[i] * dts[i]``.

    The span twin of per-tick ``msr.deposit(package_w * dt)``
    accumulation.  Evaluated as one dot product, it agrees with the
    scalar per-tick running sum to float-summation-order error (below
    1e-9 relative for any realistic span) - inside the bounded-mode
    tolerance contract, which is the only mode that uses it.
    """
    return float(np.dot(np.asarray(package_w, dtype=float),
                        np.asarray(dts, dtype=float)))


def idle_power(spec: PlatformSpec) -> PowerBreakdown:
    """Package power when both devices are idle."""
    return PowerBreakdown(cpu_w=0.0, gpu_w=0.0,
                          uncore_w=spec.memory.uncore_static_w,
                          idle_w=spec.idle_power_w)
