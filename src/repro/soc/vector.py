"""Cross-run vectorized-core sharing for ganged simulations.

The fast and bounded clock modes memoize the expensive roofline/power
model evaluations (``IntegratedProcessor._rates_cached`` /
``_power_cached``).  Those memos are keyed on *every* model input and
their values are bit-identical to fresh evaluation, so two simulations
of the **same platform spec** can safely share one memo: the desktop
Table-1 suite replays the same launch/ramp transients across runs, and
a sweep's 11 alpha points re-evaluate largely overlapping
(frequency, configuration) grids.

:class:`VectorCore` is that shared store.  The harness engine installs
one per worker (see ``repro.harness.engine.execute_gang``) via the
ambient :func:`use_vector_core` context; every
:class:`~repro.soc.simulator.IntegratedProcessor` built inside the
context *adopts* the shared memo dicts for its platform instead of
starting cold.

Sharing is keyed on the platform spec **ignoring clock mode and
tolerance**: those fields select *how* the simulator steps, not what
the models compute, so exact/fast/bounded runs of one platform all hit
the same entries.  Exact-mode processors never consult the memos at
all (their tick loop calls the models directly), so adoption never
perturbs byte-stable fingerprints.

Only bit-stable state is ever shared.  The bounded mode's phase-replay
memo (approximate, tolerance-bearing) deliberately stays per-processor:
sharing it across gang members would make a run's outcome depend on
which sibling ran first - a nondeterminism the engine cache could
never key.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
from typing import Dict, Optional, Tuple

from repro.soc.spec import PlatformSpec

__all__ = [
    "VectorCore",
    "active_vector_core",
    "model_identity",
    "use_vector_core",
]


def model_identity(spec: PlatformSpec) -> PlatformSpec:
    """The spec fields that determine model outputs.

    Clock mode and bounded tolerance select stepping strategy, not
    model values; normalizing them lets exact/fast/bounded siblings of
    one platform share entries.  The harness engine gangs
    :class:`~repro.harness.engine.RunSpec` batches by this identity.
    """
    return dataclasses.replace(spec, tick_mode="exact", bounded_tol=1e-6)


class VectorCore:
    """Shared rate/power model memos for one worker's gang of runs.

    Thread-compatible, not thread-safe: one core per worker process
    (or per serial engine pass), exactly how the engine installs it.
    """

    def __init__(self) -> None:
        self._memos: Dict[PlatformSpec, Tuple[dict, dict]] = {}
        #: Number of processors that adopted shared memos (diagnostic).
        self.adoptions = 0

    def adopt(self, spec: PlatformSpec) -> Tuple[dict, dict]:
        """Return ``(rates_memo, power_memo)`` shared across every
        compatible spec seen by this core."""
        key = model_identity(spec)
        memos = self._memos.get(key)
        if memos is None:
            memos = ({}, {})
            self._memos[key] = memos
        self.adoptions += 1
        return memos

    @property
    def platforms(self) -> int:
        """Distinct model identities this core is serving."""
        return len(self._memos)


_ACTIVE: contextvars.ContextVar[Optional[VectorCore]] = \
    contextvars.ContextVar("repro_vector_core", default=None)


def active_vector_core() -> Optional[VectorCore]:
    """The ambient :class:`VectorCore`, or None outside a gang."""
    return _ACTIVE.get()


@contextlib.contextmanager
def use_vector_core(core: VectorCore):
    """Install ``core`` as the ambient vectorized core for the block.

    Every :class:`~repro.soc.simulator.IntegratedProcessor` constructed
    inside adopts the core's shared model memos for its platform.
    """
    token = _ACTIVE.set(core)
    try:
        yield core
    finally:
        _ACTIVE.reset(token)
