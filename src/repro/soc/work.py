"""Irregular iteration-space modelling.

The paper's irregular workloads (graph kernels, Mandelbrot, Barnes-Hut,
...) have input-dependent per-iteration cost: some items are much more
expensive than others, and the expensive items cluster (a Mandelbrot
tile inside the set, a hub region of a graph).  This is what makes the
paper's *online profiling* imperfect - the profiled prefix of the
iteration space is not perfectly representative of the rest - and is
the mechanism behind EAS's documented miss on Connected Components
(it picks alpha=1.0 where the Oracle picks 0.9).

We model this with a deterministic :class:`CostProfile`: a per-kernel
multiplier field over the normalized iteration space [0,1], with unit
mean, a configurable coefficient of variation, and a configurable
correlation length.  A :class:`WorkRegion` is a contiguous slice of the
iteration space assigned to one device; it converts *work capacity*
(expressed in average-cost items) into *items completed* by integrating
the multiplier field.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.soc.cost_model import KernelCostModel

#: Resolution of the multiplier field across the whole iteration space.
PROFILE_RESOLUTION = 2048


def _smooth_field(rng: np.random.Generator, resolution: int, scale: float) -> np.ndarray:
    """A zero-mean smooth random field with correlation length ``scale``.

    Built as white noise convolved with a box kernel whose width is
    ``scale`` of the space, then renormalized to unit standard
    deviation.  Deterministic given the generator state.
    """
    noise = rng.standard_normal(resolution)
    width = max(1, int(resolution * max(scale, 1.0 / resolution)))
    kernel = np.ones(width) / width
    smooth = np.convolve(noise, kernel, mode="same")
    std = smooth.std()
    if std > 0:
        smooth = smooth / std
    return smooth


class CostProfile:
    """Per-item cost multiplier field for one kernel.

    The field has mean 1.0.  Regular kernels (``item_cost_cv == 0``)
    get an identically-1 field and a fast path everywhere.
    """

    def __init__(self, cost_model: KernelCostModel,
                 resolution: int = PROFILE_RESOLUTION) -> None:
        self.cost_model = cost_model
        self.resolution = resolution
        cv = cost_model.item_cost_cv
        if cv <= 0.0:
            multipliers = np.ones(resolution)
        else:
            rng = np.random.default_rng(0xEA5 + 7919 * cost_model.rng_tag)
            # Two components: long-range structure (what defeats
            # prefix-based profiling) and fine-grained jitter.
            coarse = _smooth_field(rng, resolution, cost_model.cost_profile_scale)
            fine = _smooth_field(rng, resolution, 1.0 / resolution)
            field = 0.8 * coarse + 0.2 * fine
            multipliers = np.exp(cv * field)
            multipliers /= multipliers.mean()
        self.multipliers = multipliers
        # Cumulative integral of the multiplier over [0, u]; cum[-1] == 1.
        self._cum = np.concatenate(([0.0], np.cumsum(multipliers))) / resolution
        self._uniform = cv <= 0.0

    def integral(self, u0: float, u1: float) -> float:
        """Integral of the multiplier field over [u0, u1] (both in [0,1])."""
        if not (0.0 <= u0 <= u1 <= 1.0 + 1e-12):
            raise SimulationError(f"bad integral bounds [{u0}, {u1}]")
        if self._uniform:
            return u1 - u0
        return self._cum_at(u1) - self._cum_at(u0)

    def mean_multiplier(self, u0: float, u1: float) -> float:
        """Average multiplier over [u0, u1]."""
        if u1 <= u0:
            return 1.0
        return self.integral(u0, u1) / (u1 - u0)

    def _cum_at(self, u: float) -> float:
        """Linearly-interpolated cumulative integral at ``u``."""
        x = min(max(u, 0.0), 1.0) * self.resolution
        idx = int(x)
        if idx >= self.resolution:
            return self._cum[-1]
        frac = x - idx
        return self._cum[idx] + frac * (self._cum[idx + 1] - self._cum[idx])

    def advance(self, u0: float, work: float) -> float:
        """Position u1 >= u0 such that ``integral(u0, u1) == work``.

        Returns 1.0 (clamped) if the remaining work from ``u0`` is less
        than ``work``.
        """
        if self._uniform:
            return min(1.0, u0 + work)
        target = self._cum_at(u0) + work
        if target >= self._cum[-1]:
            return 1.0
        # searchsorted over the cumulative grid, then linear interp.
        idx = int(np.searchsorted(self._cum, target, side="right")) - 1
        idx = min(max(idx, 0), self.resolution - 1)
        seg_lo = self._cum[idx]
        seg_hi = self._cum[idx + 1]
        frac = 0.0 if seg_hi <= seg_lo else (target - seg_lo) / (seg_hi - seg_lo)
        # The cum -> position roundtrip can lose an ulp; advancing by
        # non-negative work must never move backwards.
        return max(u0, (idx + frac) / self.resolution)


@dataclass
class WorkRegion:
    """A contiguous slice of a kernel's iteration space owned by a device.

    ``n_total`` is the kernel's full iteration count; the region covers
    items ``[start_item, stop_item)``.  ``consume`` converts device work
    capacity (in average-cost item units) into items completed.
    """

    profile: CostProfile
    n_total: float
    start_item: float
    stop_item: float

    def __post_init__(self) -> None:
        if self.n_total <= 0:
            raise SimulationError("WorkRegion: n_total must be positive")
        if not (0.0 <= self.start_item <= self.stop_item <= self.n_total + 1e-6):
            raise SimulationError(
                f"WorkRegion: bad item range [{self.start_item}, {self.stop_item}) "
                f"of {self.n_total}")
        self._pos = self.start_item
        # work_remaining is queried several times per simulator tick at
        # an unchanged position (completion checks, step bounds, macro
        # planning); cache the last (position, value) pair.  The cached
        # value is the one the fresh computation produced, so this is
        # invisible to results.
        self._wr_cache: "tuple[float, float] | None" = None

    @classmethod
    def for_span(cls, profile: CostProfile, n_total: float,
                 start_item: float, stop_item: float) -> "WorkRegion":
        """Region covering items [start_item, stop_item)."""
        return cls(profile=profile, n_total=n_total,
                   start_item=start_item, stop_item=stop_item)

    @classmethod
    def empty(cls, profile: CostProfile, n_total: float) -> "WorkRegion":
        """A region with no items (device not participating)."""
        return cls(profile=profile, n_total=n_total, start_item=0.0, stop_item=0.0)

    # -- queries -------------------------------------------------------------

    @property
    def position(self) -> float:
        """Current item position (items at lower indices are done)."""
        return self._pos

    @property
    def items_done(self) -> float:
        return self._pos - self.start_item

    @property
    def items_remaining(self) -> float:
        return max(0.0, self.stop_item - self._pos)

    @property
    def work_remaining(self) -> float:
        """Remaining work in average-item units."""
        if self.items_remaining <= 0:
            return 0.0
        cached = self._wr_cache
        if cached is not None and cached[0] == self._pos:
            return cached[1]
        u0 = self._pos / self.n_total
        u1 = self.stop_item / self.n_total
        remaining = self.profile.integral(u0, u1) * self.n_total
        self._wr_cache = (self._pos, remaining)
        return remaining

    @property
    def is_done(self) -> bool:
        return self.items_remaining <= 1e-9

    def mean_multiplier_remaining(self) -> float:
        """Average per-item cost multiplier over the unprocessed slice."""
        if self.is_done:
            return 1.0
        return self.profile.mean_multiplier(self._pos / self.n_total,
                                            self.stop_item / self.n_total)

    # -- mutation ------------------------------------------------------------

    def consume(self, work_capacity: float) -> float:
        """Spend up to ``work_capacity`` average-item units; return items done.

        If the region completes with capacity to spare, only the work
        actually present is consumed (callers can query
        :attr:`is_done`).
        """
        if work_capacity < 0:
            raise SimulationError("consume: negative work capacity")
        if self.is_done or work_capacity == 0:
            return 0.0
        u0 = self._pos / self.n_total
        u_stop = self.stop_item / self.n_total
        u1 = self.profile.advance(u0, work_capacity / self.n_total)
        u1 = min(u1, u_stop)
        new_pos = u1 * self.n_total
        items = new_pos - self._pos
        self._pos = new_pos
        return items

    def time_to_complete(self, item_rate: float) -> float:
        """Time for a device at ``item_rate`` (avg items/s) to finish."""
        if self.is_done:
            return 0.0
        if item_rate <= 0:
            return float("inf")
        return self.work_remaining / item_rate


def split_for_offload(profile: CostProfile, n_kernel_items: float,
                      start_item: float, stop_item: float,
                      alpha: float) -> "tuple[WorkRegion, WorkRegion]":
    """Split the unprocessed slice ``[start_item, stop_item)`` by GPU ratio.

    ``n_kernel_items`` is the kernel's *full* iteration count (the cost
    profile spans it); the slice being split is whatever remains after
    profiling.  Mirrors the runtime's layout: the GPU is handed the
    leading ``alpha`` fraction as one contiguous offload block and the
    CPU workers steal through the trailing block.  Returns
    ``(gpu_region, cpu_region)``.
    """
    span = stop_item - start_item
    boundary = start_item + alpha * span
    gpu = WorkRegion.for_span(profile, n_kernel_items, start_item, boundary)
    cpu = WorkRegion.for_span(profile, n_kernel_items, boundary, stop_item)
    return gpu, cpu
