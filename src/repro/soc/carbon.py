"""Seeded time-varying grid carbon-intensity signal.

Fleet-level scheduling gets a second axis beyond joules: *when* a
joule is drawn matters, because the grid's carbon intensity (gCO2 per
kWh) swings over the day.  :class:`CarbonSpec` declares a synthetic
but realistically shaped signal - a diurnal fundamental plus a few
seeded harmonics and high-frequency "weather" terms - and
:class:`CarbonTrace` evaluates it as a pure function of simulated
time, so every query is deterministic and order-independent: the
trace draws all of its randomness (per-region harmonic amplitudes and
phases) from one ``random.Random(seed)`` at construction and never
touches an RNG again.

Regions model geographically separated grid interconnects: each
region gets its own harmonic phases (offset so region peaks are
staggered through the period), which is what makes *spatial*
placement interact with *temporal* shifting in the fleet dispatcher.

The carbon-weighted objective is ``g CO2 = intensity(t)/J_PER_KWH *
E`` - energy is still the thing being spent; intensity is the
exchange rate at the moment it is spent.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import HarnessError

#: Joules per kilowatt-hour - converts g/kWh intensity into grams per
#: joule when weighting simulated energy.
J_PER_KWH = 3.6e6

#: Floor on the evaluated signal, g/kWh.  Real grids never reach zero
#: and a zero intensity would make carbon-weighted objectives
#: degenerate (any energy free at that instant).
MIN_INTENSITY_GCO2_KWH = 1.0

#: High-frequency "weather" terms layered on top of the declared
#: harmonics (count, and the frequency multiplier stride they use).
_N_NOISE_TERMS = 3
_NOISE_STRIDE = 5


@dataclass(frozen=True)
class CarbonSpec:
    """Frozen description of one carbon-intensity signal.

    Canonically serializable so it can participate in fleet
    fingerprints: a spec maps to exactly one signal forever.
    """

    #: Long-run mean intensity, gCO2/kWh (~world grid average).
    base_gco2_kwh: float = 300.0
    #: Peak swing of the diurnal fundamental, gCO2/kWh.
    amplitude_gco2_kwh: float = 120.0
    #: Fundamental period, seconds (a day by default; tests shrink it
    #: so short traces still see full swings).
    period_s: float = 86400.0
    #: Seeded harmonics beyond the fundamental (solar duck-curve
    #: shoulders and the like).
    n_harmonics: int = 2
    #: Amplitude of the high-frequency stochastic terms, gCO2/kWh.
    noise_gco2_kwh: float = 15.0
    #: Distinct grid regions; fleet nodes map onto regions round-robin
    #: (``node_index % n_regions``).
    n_regions: int = 4
    seed: int = 2016

    def __post_init__(self) -> None:
        if not (math.isfinite(self.base_gco2_kwh)
                and self.base_gco2_kwh > 0.0):
            raise HarnessError("carbon base_gco2_kwh must be positive "
                               "and finite")
        if not (math.isfinite(self.amplitude_gco2_kwh)
                and self.amplitude_gco2_kwh >= 0.0):
            raise HarnessError("carbon amplitude_gco2_kwh must be >= 0")
        if not (math.isfinite(self.period_s) and self.period_s > 0.0):
            raise HarnessError("carbon period_s must be positive")
        if self.n_harmonics < 1:
            raise HarnessError("carbon n_harmonics must be >= 1")
        if not (math.isfinite(self.noise_gco2_kwh)
                and self.noise_gco2_kwh >= 0.0):
            raise HarnessError("carbon noise_gco2_kwh must be >= 0")
        if self.n_regions < 1:
            raise HarnessError("carbon n_regions must be >= 1")

    def canonical(self) -> str:
        return (f"{self.base_gco2_kwh!r}|{self.amplitude_gco2_kwh!r}"
                f"|{self.period_s!r}|{self.n_harmonics}"
                f"|{self.noise_gco2_kwh!r}|{self.n_regions}|{self.seed}")

    def trace(self) -> "CarbonTrace":
        return CarbonTrace(self)


class CarbonTrace:
    """A :class:`CarbonSpec` expanded into an evaluable signal.

    All randomness is drawn at construction, in a fixed order (region
    by region, term by term), from one Mersenne Twister - after that,
    :meth:`intensity` is a pure function of ``(t_s, region)``.
    """

    def __init__(self, spec: CarbonSpec) -> None:
        self.spec = spec
        rng = random.Random(spec.seed)
        # terms[region] = list of (frequency multiple, amplitude, phase)
        self._terms: List[List[Tuple[float, float, float]]] = []
        for region in range(spec.n_regions):
            # Structural stagger: region peaks walk through the period
            # so no two regions trough simultaneously.
            stagger = 2.0 * math.pi * region / spec.n_regions
            terms: List[Tuple[float, float, float]] = []
            for k in range(1, spec.n_harmonics + 1):
                amp = spec.amplitude_gco2_kwh * rng.uniform(0.5, 1.0) / k
                phase = rng.uniform(0.0, 2.0 * math.pi) + stagger
                terms.append((float(k), amp, phase))
            for j in range(1, _N_NOISE_TERMS + 1):
                mult = float(spec.n_harmonics + _NOISE_STRIDE * j)
                amp = spec.noise_gco2_kwh * rng.uniform(0.5, 1.0)
                phase = rng.uniform(0.0, 2.0 * math.pi)
                terms.append((mult, amp, phase))
            self._terms.append(terms)

    def intensity(self, t_s: float, region: int = 0) -> float:
        """Signal value at ``t_s`` seconds, gCO2/kWh (floored)."""
        terms = self._terms[region % self.spec.n_regions]
        omega = 2.0 * math.pi / self.spec.period_s
        value = self.spec.base_gco2_kwh
        for mult, amp, phase in terms:
            value += amp * math.sin(mult * omega * t_s + phase)
        return max(MIN_INTENSITY_GCO2_KWH, value)

    def grams(self, energy_j: float, t_s: float, region: int = 0) -> float:
        """Carbon mass of ``energy_j`` joules drawn at ``t_s``, grams."""
        return self.intensity(t_s, region) * energy_j / J_PER_KWH

    def median_intensity(self, duration_s: float, region: int = 0,
                         samples: int = 257) -> float:
        """Median of the signal over ``[0, duration_s]``.

        Evaluated on an evenly spaced deterministic sample grid, so
        reports and tests agree on what "below-median window" means.
        """
        if duration_s <= 0.0:
            raise HarnessError("median window duration must be positive")
        if samples < 2:
            raise HarnessError("median needs at least two samples")
        values = sorted(
            self.intensity(duration_s * i / (samples - 1), region)
            for i in range(samples))
        mid = len(values) // 2
        if len(values) % 2:
            return values[mid]
        return 0.5 * (values[mid - 1] + values[mid])
