"""Emulation of the ``MSR_PKG_ENERGY_STATUS`` energy register.

Real RAPL hardware exposes accumulated package energy as a 32-bit
counter in platform-specific energy units (2**-14 J on Haswell-class
parts) that silently wraps around.  The paper samples this MSR to
measure each micro-benchmark's energy; our characterization and
evaluation code reads this emulated register through exactly the same
read / subtract / handle-wraparound protocol it would use on hardware,
so the black-box boundary is preserved.
"""

from __future__ import annotations

from repro.errors import SimulationError

_MSR_BITS = 32
_MSR_MASK = (1 << _MSR_BITS) - 1


class EnergyMsr:
    """A wrapping 32-bit energy accumulator in hardware energy units."""

    def __init__(self, energy_unit_j: float) -> None:
        if energy_unit_j <= 0:
            raise SimulationError("energy unit must be positive")
        self.energy_unit_j = energy_unit_j
        self._accumulated_j = 0.0

    def deposit(self, joules: float) -> None:
        """Called by the simulator as power integrates over time."""
        if joules < 0:
            raise SimulationError("cannot deposit negative energy")
        self._accumulated_j += joules

    def read(self) -> int:
        """Raw register read: quantized, wrapped to 32 bits."""
        return int(self._accumulated_j / self.energy_unit_j) & _MSR_MASK

    @staticmethod
    def delta_units(before: int, after: int) -> int:
        """Units elapsed between two raw reads, handling one wraparound."""
        return (after - before) & _MSR_MASK

    def joules_between(self, before: int, after: int) -> float:
        """Joules elapsed between two raw reads of *this* register."""
        return self.delta_units(before, after) * self.energy_unit_j

    @property
    def lifetime_joules(self) -> float:
        """Exact accumulated energy (test/diagnostic use only - not
        observable through the hardware interface)."""
        return self._accumulated_j
