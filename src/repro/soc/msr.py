"""Emulation of the ``MSR_PKG_ENERGY_STATUS`` energy register.

Real RAPL hardware exposes accumulated package energy as a 32-bit
counter in platform-specific energy units (2**-14 J on Haswell-class
parts) that silently wraps around.  The paper samples this MSR to
measure each micro-benchmark's energy; our characterization and
evaluation code reads this emulated register through exactly the same
read / subtract / handle-wraparound protocol it would use on hardware,
so the black-box boundary is preserved.
"""

from __future__ import annotations

from repro.errors import SimulationError

_MSR_BITS = 32
_MSR_MASK = (1 << _MSR_BITS) - 1


class EnergyMsr:
    """A wrapping 32-bit energy accumulator in hardware energy units."""

    def __init__(self, energy_unit_j: float) -> None:
        if energy_unit_j <= 0:
            raise SimulationError("energy unit must be positive")
        self.energy_unit_j = energy_unit_j
        self._accumulated_j = 0.0

    def deposit(self, joules: float) -> None:
        """Called by the simulator as power integrates over time."""
        if joules < 0:
            raise SimulationError("cannot deposit negative energy")
        self._accumulated_j += joules

    def deposit_power(self, power_w: float, duration_s: float) -> int:
        """Bulk deposit: integrate constant ``power_w`` over ``duration_s``.

        The macro-step path of the simulator's fast clock mode lands
        here: one call may advance the register across *several* full
        32-bit wraps.  The accumulator is an unwrapped float (wrapping
        happens at :meth:`read` time), so multi-wrap jumps are exact by
        construction; the return value is how many wrap boundaries the
        deposit crossed, for diagnostics (``soc.msr_wraps``) and the
        multi-wrap unit tests.
        """
        if power_w < 0:
            raise SimulationError("cannot deposit negative power")
        if duration_s < 0:
            raise SimulationError("cannot deposit over negative time")
        before = self.wrap_count
        self._accumulated_j += power_w * duration_s
        return self.wrap_count - before

    def read(self) -> int:
        """Raw register read: quantized, wrapped to 32 bits."""
        return int(self._accumulated_j / self.energy_unit_j) & _MSR_MASK

    @staticmethod
    def delta_units(before: int, after: int) -> int:
        """Units elapsed between two raw reads, handling one wraparound.

        **Multi-wraparound hazard**: the modular subtraction recovers
        the true delta only while fewer than 2**32 units elapsed
        between the reads.  A measurement window long enough for the
        register to wrap *more than once* silently under-reports by a
        whole multiple of 2**32 units - the arithmetic cannot detect
        it, exactly as on real RAPL hardware.  Harness code must keep
        each window below :meth:`max_window_joules` (on the simulated
        Haswell unit, 2**32 * 2**-14 J is roughly 262 kJ, or about
        75 minutes at a 58 W package draw).
        """
        return (after - before) & _MSR_MASK

    def max_window_joules(self) -> float:
        """Largest energy a single read/read window can measure safely.

        Windows whose true energy meets or exceeds this bound alias
        under the 32-bit modular arithmetic of :meth:`delta_units`
        (see the multi-wraparound hazard note there).  Measurement
        loops should sample the register often enough that every
        window stays strictly below this value.
        """
        return float(1 << _MSR_BITS) * self.energy_unit_j

    def joules_between(self, before: int, after: int) -> float:
        """Joules elapsed between two raw reads of *this* register.

        Subject to the multi-wraparound hazard of :meth:`delta_units`:
        callers are responsible for keeping the window below
        :meth:`max_window_joules`.
        """
        return self.delta_units(before, after) * self.energy_unit_j

    @property
    def lifetime_joules(self) -> float:
        """Exact accumulated energy (test/diagnostic use only - not
        observable through the hardware interface)."""
        return self._accumulated_j

    @property
    def wrap_count(self) -> int:
        """How many times the 32-bit register has wrapped so far.

        Diagnostic-only (real hardware cannot report this); the
        observability layer exports it so a harness can tell whether a
        long measurement window risked the multi-wraparound hazard of
        :meth:`delta_units`.
        """
        return int(self._accumulated_j / self.energy_unit_j) >> _MSR_BITS
