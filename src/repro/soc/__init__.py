"""Simulated integrated CPU-GPU system-on-chip substrate.

The paper's scheduler treats the processor as a black box: it observes
only wall-clock time, the ``MSR_PKG_ENERGY_STATUS`` energy register, and
a handful of hardware performance counters, while the package control
unit (PCU) firmware silently manages frequencies and the shared power
budget.  This package provides a deterministic discrete-time simulator
of such a processor:

* :mod:`repro.soc.spec` - platform specifications (two calibrated
  platforms: a Haswell-class desktop and a Bay Trail-class tablet);
* :mod:`repro.soc.cost_model` - per-kernel cost descriptors;
* :mod:`repro.soc.power` - the component power model;
* :mod:`repro.soc.pcu` - the PCU firmware model (turbo, throttling,
  ramp hysteresis, package power cap);
* :mod:`repro.soc.msr` - the wrapping 32-bit energy MSR;
* :mod:`repro.soc.counters` - performance counters;
* :mod:`repro.soc.device` - per-device throughput (roofline with
  bandwidth contention, GPU occupancy and divergence);
* :mod:`repro.soc.work` - irregular iteration-space work regions;
* :mod:`repro.soc.simulator` - the virtual-clock execution engine;
* :mod:`repro.soc.trace` - power/time traces for the paper's figures;
* :mod:`repro.soc.faults` - seeded fault injection behind the same
  software-visible interface (see docs/ROBUSTNESS.md).
"""

from repro.soc.cost_model import KernelCostModel
from repro.soc.counters import CounterSnapshot, PerfCounters
from repro.soc.faults import FaultConfig, FaultEvent, FaultLog, FaultySoC
from repro.soc.msr import EnergyMsr
from repro.soc.simulator import IntegratedProcessor, PhaseRequest, PhaseResult
from repro.soc.spec import (
    CpuSpec,
    GpuSpec,
    MemorySpec,
    PcuSpec,
    PlatformSpec,
    baytrail_tablet,
    haswell_desktop,
    ultrabook_15w,
)
from repro.soc.trace import PowerTrace
from repro.soc.work import WorkRegion

__all__ = [
    "CpuSpec",
    "GpuSpec",
    "MemorySpec",
    "PcuSpec",
    "PlatformSpec",
    "haswell_desktop",
    "baytrail_tablet",
    "ultrabook_15w",
    "KernelCostModel",
    "PerfCounters",
    "CounterSnapshot",
    "EnergyMsr",
    "FaultConfig",
    "FaultEvent",
    "FaultLog",
    "FaultySoC",
    "IntegratedProcessor",
    "PhaseRequest",
    "PhaseResult",
    "PowerTrace",
    "WorkRegion",
]
