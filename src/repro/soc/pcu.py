"""Package control unit (PCU) firmware model.

This is the *black box* the paper's whole approach exists to cope with:
vendor firmware that silently re-clocks the CPU and GPU to share the
package power budget, with policies that differ across SKUs and are not
exposed to software.  The scheduler under test never reads this module;
it only sees the consequences through time and the energy MSR.

The model captures the behaviours the paper documents:

* **Power sharing.** While the GPU is active, the CPU's frequency
  target drops from max turbo to a co-execution target
  (``cpu_coexec_freq_hz``).
* **Activation throttle + slow release (hysteresis).** When the GPU
  becomes active, the CPU is immediately dropped to a low floor and
  then ramps back up slowly (``cpu_ramp_up_hz_per_s``).  GPU bursts
  shorter than the ramp time therefore hold the CPU at low frequency
  for the whole burst - this is exactly the Fig. 4 phenomenon where ten
  short GPU executions drop desktop package power from ~60 W to <40 W,
  and it is why the paper's short/long workload classification (100 ms
  threshold) earns its keep.
* **Package cap feedback.** The PCU samples package power every
  ``sample_interval_s`` and walks the CPU frequency down when the cap
  is exceeded (CPU-first throttling, as on real integrated parts where
  the GPU is the scarcer resource).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.soc.spec import PlatformSpec


@dataclass
class PcuState:
    """Mutable PCU state (frequencies are actual, not targets)."""

    cpu_freq_hz: float
    gpu_freq_hz: float
    #: Simulation time when the GPU was last seen active.
    last_gpu_active_t: float
    #: Extra CPU throttle (Hz) currently applied by cap feedback.
    cap_throttle_hz: float
    #: Time of the last policy sample.
    last_sample_t: float


class Pcu:
    """The firmware controller.  Stepped once per simulator tick."""

    def __init__(self, spec: PlatformSpec) -> None:
        self.spec = spec
        self.state = PcuState(
            cpu_freq_hz=spec.cpu.min_freq_hz,
            gpu_freq_hz=spec.gpu.min_freq_hz,
            last_gpu_active_t=float("-inf"),
            cap_throttle_hz=0.0,
            last_sample_t=float("-inf"),
        )
        self._gpu_was_active = False
        #: True while the CPU is climbing back from a GPU-activation
        #: throttle; ramp-up is slow until the target is reached.
        self._throttle_recovery = False
        #: Runtime-supplied efficiency hint in [0, 1] (the cooperative
        #: extension of the paper's conclusion): 0 = default policy,
        #: 1 = pace the co-executing CPU down to the activation floor.
        #: Stock firmware ignores such hints; this models a PCU that
        #: exposes one as a software knob.
        self.power_hint = 0.0

    # -- policy ----------------------------------------------------------------

    def _cpu_target_hz(self, now: float, cpu_active: bool, gpu_active: bool) -> float:
        pcu = self.spec.pcu
        cpu = self.spec.cpu
        if not cpu_active:
            return cpu.min_freq_hz
        gpu_recent = (now - self.state.last_gpu_active_t) < pcu.gpu_idle_release_s
        if gpu_active or gpu_recent:
            # An efficiency hint paces the co-executing CPU between its
            # normal sharing target and the activation floor.
            target = (pcu.cpu_coexec_freq_hz
                      - self.power_hint * (pcu.cpu_coexec_freq_hz
                                           - pcu.cpu_gpu_activation_floor_hz))
        else:
            target = cpu.turbo_freq_hz
        target -= self.state.cap_throttle_hz
        return max(cpu.min_freq_hz, min(target, cpu.turbo_freq_hz))

    def _gpu_target_hz(self, gpu_active: bool) -> float:
        gpu = self.spec.gpu
        return gpu.turbo_freq_hz if gpu_active else gpu.min_freq_hz

    # -- stepping ----------------------------------------------------------------

    def step(self, now: float, dt: float, cpu_active: bool, gpu_active: bool,
             last_package_power_w: float) -> "tuple[float, float]":
        """Advance the controller by ``dt``; returns (cpu_freq, gpu_freq).

        ``last_package_power_w`` is the power measured over the previous
        tick - the feedback signal for cap enforcement.
        """
        pcu = self.spec.pcu
        st = self.state

        # A GPU activation edge after a genuine idle period throttles
        # the CPU immediately: hard floor, then a slow recovery ramp
        # (the Fig. 4 hysteresis).  Rapid back-to-back kernel launches
        # within the release window count as sustained GPU use and do
        # not re-trigger the floor - otherwise multi-invocation
        # workloads could never co-execute, contradicting the paper's
        # Fig. 3 steady-state co-execution power.
        if gpu_active and not self._gpu_was_active:
            cold = (now - st.last_gpu_active_t) > pcu.gpu_cold_threshold_s
            if cold:
                st.cpu_freq_hz = min(st.cpu_freq_hz,
                                     pcu.cpu_gpu_activation_floor_hz)
                self._throttle_recovery = True
        self._gpu_was_active = gpu_active

        # Sample-rate-limited policy work.
        if now - st.last_sample_t >= pcu.sample_interval_s:
            st.last_sample_t = now
            # Package-cap feedback (integral controller on CPU freq).
            if last_package_power_w > pcu.package_cap_w:
                overshoot = last_package_power_w / pcu.package_cap_w - 1.0
                st.cap_throttle_hz += overshoot * 0.4e9
            elif st.cap_throttle_hz > 0.0:
                st.cap_throttle_hz = max(0.0, st.cap_throttle_hz - 0.05e9)

        if gpu_active:
            st.last_gpu_active_t = now

        # Frequency ramping toward targets.
        cpu_target = self._cpu_target_hz(now, cpu_active, gpu_active)
        if st.cpu_freq_hz < cpu_target:
            # Recovery from the activation throttle is slow only while
            # the GPU is still active or recently so (power sharing);
            # once the GPU has genuinely gone idle, turbo re-engages at
            # the normal fast ramp - Fig. 4's package power returns to
            # ~60 W *between* bursts.
            gpu_recent = (now - st.last_gpu_active_t) < pcu.gpu_idle_release_s
            slow = self._throttle_recovery and (gpu_active or gpu_recent)
            ramp = (pcu.cpu_recovery_ramp_hz_per_s if slow
                    else pcu.cpu_ramp_up_hz_per_s)
            st.cpu_freq_hz = min(cpu_target, st.cpu_freq_hz + ramp * dt)
            if st.cpu_freq_hz >= cpu_target:
                self._throttle_recovery = False
        elif st.cpu_freq_hz > cpu_target:
            st.cpu_freq_hz = max(cpu_target,
                                 st.cpu_freq_hz - pcu.cpu_ramp_down_hz_per_s * dt)

        gpu_target = self._gpu_target_hz(gpu_active)
        if st.gpu_freq_hz < gpu_target:
            st.gpu_freq_hz = min(gpu_target,
                                 st.gpu_freq_hz + pcu.gpu_ramp_hz_per_s * dt)
        elif st.gpu_freq_hz > gpu_target:
            st.gpu_freq_hz = max(gpu_target,
                                 st.gpu_freq_hz - pcu.gpu_ramp_hz_per_s * dt)

        return st.cpu_freq_hz, st.gpu_freq_hz
