"""Package control unit (PCU) firmware model.

This is the *black box* the paper's whole approach exists to cope with:
vendor firmware that silently re-clocks the CPU and GPU to share the
package power budget, with policies that differ across SKUs and are not
exposed to software.  The scheduler under test never reads this module;
it only sees the consequences through time and the energy MSR.

The model captures the behaviours the paper documents:

* **Power sharing.** While the GPU is active, the CPU's frequency
  target drops from max turbo to a co-execution target
  (``cpu_coexec_freq_hz``).
* **Activation throttle + slow release (hysteresis).** When the GPU
  becomes active, the CPU is immediately dropped to a low floor and
  then ramps back up slowly (``cpu_ramp_up_hz_per_s``).  GPU bursts
  shorter than the ramp time therefore hold the CPU at low frequency
  for the whole burst - this is exactly the Fig. 4 phenomenon where ten
  short GPU executions drop desktop package power from ~60 W to <40 W,
  and it is why the paper's short/long workload classification (100 ms
  threshold) earns its keep.
* **Package cap feedback.** The PCU samples package power on an
  absolute grid of ``sample_interval_s`` multiples and walks the CPU
  frequency down when the cap is exceeded (CPU-first throttling, as on
  real integrated parts where the GPU is the scarcer resource).

**Fast-forward contract.**  The simulator's event-driven fast path
(docs/PERFORMANCE.md) relies on three guarantees this module provides:

* :meth:`Pcu.settled` - true when stepping the controller would change
  nothing: both frequencies exactly at target, no cap throttle, last
  power at or under the cap, no GPU activity edge pending.  All PCU
  dynamics are then frozen until an external event.
* :meth:`Pcu.time_to_next_transition` - the one *self-scheduled* policy
  change a settled controller still has in its future: the
  co-execution -> turbo CPU target release ``gpu_idle_release_s`` after
  the GPU went idle.  Both clock modes align a tick to this instant so
  the ramp that follows starts at the same time everywhere.
* :meth:`Pcu.macro_step` - advances a settled controller across a span
  in one jump; only the GPU-activity timestamp moves.

To make those guarantees mode-independent, two behaviours are defined
in span terms rather than tick terms: ``last_gpu_active_t`` records the
*end* of the last GPU-active step (so it is the same whether the span
was one macro-step or many ticks), and cap-feedback sampling fires on
the absolute time grid ``k * sample_interval_s`` (so its instants do
not depend on where ticks happened to fall).  Sampling is a no-op
unless the package is over cap or a throttle is decaying; the
simulator uses :meth:`Pcu.bound_dt` to land ticks exactly on the grid
only while that "armed" condition holds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.soc.spec import PlatformSpec

#: Tolerance for "this instant lies on the sample grid", relative to
#: the sample interval.  Wide enough to absorb accumulated float error
#: in the simulation clock, narrow against the smallest tick (1e-7 s).
_GRID_TOL = 1e-6


def _grid_after(t: float, interval: float) -> float:
    """Smallest grid multiple strictly after ``t`` (FP-tolerant: a ``t``
    within tolerance below ``k * interval`` counts as already on it)."""
    return (math.floor(t / interval + _GRID_TOL) + 1.0) * interval


def _on_grid(t: float, interval: float) -> bool:
    x = t / interval
    return abs(x - round(x)) <= _GRID_TOL


@dataclass
class PcuState:
    """Mutable PCU state (frequencies are actual, not targets)."""

    cpu_freq_hz: float
    gpu_freq_hz: float
    #: Simulation time up to which the GPU has been seen active (the
    #: *end* of the last GPU-active step - span semantics, so exact
    #: ticking and macro-stepping agree on the release instant).
    last_gpu_active_t: float
    #: Extra CPU throttle (Hz) currently applied by cap feedback.
    cap_throttle_hz: float


class Pcu:
    """The firmware controller.  Stepped once per simulator tick."""

    def __init__(self, spec: PlatformSpec) -> None:
        self.spec = spec
        self.state = PcuState(
            cpu_freq_hz=spec.cpu.min_freq_hz,
            gpu_freq_hz=spec.gpu.min_freq_hz,
            last_gpu_active_t=float("-inf"),
            cap_throttle_hz=0.0,
        )
        self._gpu_was_active = False
        #: True while the CPU is climbing back from a GPU-activation
        #: throttle; ramp-up is slow until the target is reached.
        self._throttle_recovery = False
        #: Runtime-supplied efficiency hint in [0, 1] (the cooperative
        #: extension of the paper's conclusion): 0 = default policy,
        #: 1 = pace the co-executing CPU down to the activation floor.
        #: Stock firmware ignores such hints; this models a PCU that
        #: exposes one as a software knob.
        self.power_hint = 0.0

    # -- policy ----------------------------------------------------------------

    def _cpu_target_hz(self, now: float, cpu_active: bool, gpu_active: bool) -> float:
        pcu = self.spec.pcu
        cpu = self.spec.cpu
        if not cpu_active:
            return cpu.min_freq_hz
        gpu_recent = (now - self.state.last_gpu_active_t) < pcu.gpu_idle_release_s
        if gpu_active or gpu_recent:
            # An efficiency hint paces the co-executing CPU between its
            # normal sharing target and the activation floor.
            target = (pcu.cpu_coexec_freq_hz
                      - self.power_hint * (pcu.cpu_coexec_freq_hz
                                           - pcu.cpu_gpu_activation_floor_hz))
        else:
            target = cpu.turbo_freq_hz
        target -= self.state.cap_throttle_hz
        return max(cpu.min_freq_hz, min(target, cpu.turbo_freq_hz))

    def _gpu_target_hz(self, gpu_active: bool) -> float:
        gpu = self.spec.gpu
        return gpu.turbo_freq_hz if gpu_active else gpu.min_freq_hz

    def _sample_armed(self, last_package_power_w: float) -> bool:
        """Would a cap-feedback sample do anything right now?"""
        return (self.state.cap_throttle_hz > 0.0
                or last_package_power_w > self.spec.pcu.package_cap_w)

    # -- fast-forward contract ---------------------------------------------------

    def settled(self, now: float, cpu_active: bool, gpu_active: bool,
                last_package_power_w: float) -> bool:
        """True when a step would leave every controller output unchanged.

        Requires: no GPU activity edge pending, no cap throttle applied
        and none about to be (power at or under cap), and both
        frequencies exactly at their targets (the ramp code clamps onto
        targets exactly, so equality is the right test).  While settled,
        the only self-scheduled change left is the target flip reported
        by :meth:`time_to_next_transition`.
        """
        st = self.state
        if gpu_active != self._gpu_was_active:
            return False
        if st.cap_throttle_hz != 0.0:
            return False
        if last_package_power_w > self.spec.pcu.package_cap_w:
            return False
        return (st.cpu_freq_hz == self._cpu_target_hz(now, cpu_active, gpu_active)
                and st.gpu_freq_hz == self._gpu_target_hz(gpu_active))

    def time_to_next_transition(self, now: float, cpu_active: bool,
                                gpu_active: bool) -> float:
        """Absolute time of the next self-scheduled policy change.

        With constant device activity the only such change is the
        co-execution -> turbo CPU target release, ``gpu_idle_release_s``
        after the GPU was last active.  Returns ``inf`` when nothing is
        scheduled.  Both clock modes bound their steps by this so the
        post-release ramp starts at the same instant everywhere.
        """
        if cpu_active and not gpu_active:
            pcu = self.spec.pcu
            # Same arithmetic as _cpu_target_hz's recency test, so the
            # reported release instant and the actual target flip agree
            # to the ulp.  The result may be at or an ulp before ``now``
            # when the flip is imminent; callers clamp their step to
            # _MIN_DT and tick across it.
            if (now - self.state.last_gpu_active_t) < pcu.gpu_idle_release_s:
                return self.state.last_gpu_active_t + pcu.gpu_idle_release_s
        return float("inf")

    def bound_dt(self, now: float, dt: float,
                 last_package_power_w: float) -> float:
        """Clip ``dt`` so armed cap-feedback samples land on their grid.

        Sampling is a no-op unless the package is over cap or a
        throttle is decaying; only then must ticks hit the absolute
        grid ``k * sample_interval_s`` exactly, keeping the feedback's
        firing instants independent of prior tick placement.
        """
        if not self._sample_armed(last_package_power_w):
            return dt
        return min(dt, _grid_after(now, self.spec.pcu.sample_interval_s) - now)

    def edge_pending(self, gpu_active: bool) -> bool:
        """Would the next step apply a GPU activity edge?

        The batched-transient path of the fast clock mode requires
        constant device activity over the span it plans; an unapplied
        edge means the very next step runs activation-throttle logic
        and must stay on the scalar path.
        """
        return gpu_active != self._gpu_was_active

    def clone(self) -> "Pcu":
        """Independent copy for schedule *planning* (fast clock mode).

        The simulator's batched-transient path steps a throwaway clone
        through upcoming ticks to learn the exact frequency/dt schedule
        without touching live state, evaluates the rate/power models
        once over the whole schedule, then advances the real controller
        to the committed prefix.  The clone shares the (immutable) spec
        and copies all mutable state.
        """
        twin = Pcu.__new__(Pcu)
        twin.spec = self.spec
        twin.state = PcuState(
            cpu_freq_hz=self.state.cpu_freq_hz,
            gpu_freq_hz=self.state.gpu_freq_hz,
            last_gpu_active_t=self.state.last_gpu_active_t,
            cap_throttle_hz=self.state.cap_throttle_hz,
        )
        twin._gpu_was_active = self._gpu_was_active
        twin._throttle_recovery = self._throttle_recovery
        twin.power_hint = self.power_hint
        return twin

    def macro_step(self, now: float, dt: float, cpu_active: bool,
                   gpu_active: bool) -> "tuple[float, float]":
        """Advance a settled controller by ``dt`` in one jump.

        Caller contract: :meth:`settled` was true at ``now``, activity
        is constant over the span, and ``dt`` does not cross
        :meth:`time_to_next_transition`.  Under those conditions the
        only state that moves is the GPU-activity timestamp.
        """
        if gpu_active:
            self.state.last_gpu_active_t = now + dt
        return self.state.cpu_freq_hz, self.state.gpu_freq_hz

    # -- stepping ----------------------------------------------------------------

    def step(self, now: float, dt: float, cpu_active: bool, gpu_active: bool,
             last_package_power_w: float) -> "tuple[float, float]":
        """Advance the controller by ``dt``; returns (cpu_freq, gpu_freq).

        ``last_package_power_w`` is the power measured over the previous
        tick - the feedback signal for cap enforcement.
        """
        pcu = self.spec.pcu
        st = self.state

        # A GPU activation edge after a genuine idle period throttles
        # the CPU immediately: hard floor, then a slow recovery ramp
        # (the Fig. 4 hysteresis).  Rapid back-to-back kernel launches
        # within the release window count as sustained GPU use and do
        # not re-trigger the floor - otherwise multi-invocation
        # workloads could never co-execute, contradicting the paper's
        # Fig. 3 steady-state co-execution power.
        if gpu_active and not self._gpu_was_active:
            cold = (now - st.last_gpu_active_t) > pcu.gpu_cold_threshold_s
            if cold:
                st.cpu_freq_hz = min(st.cpu_freq_hz,
                                     pcu.cpu_gpu_activation_floor_hz)
                self._throttle_recovery = True
        self._gpu_was_active = gpu_active

        # Cap-feedback sample when this step lands on the absolute
        # sample grid.  Off-grid steps skip it; the simulator only
        # forces grid alignment (bound_dt) while a sample would have
        # an effect, so nothing observable is ever missed.
        if _on_grid(now, pcu.sample_interval_s):
            # Package-cap feedback (integral controller on CPU freq).
            if last_package_power_w > pcu.package_cap_w:
                overshoot = last_package_power_w / pcu.package_cap_w - 1.0
                st.cap_throttle_hz += overshoot * 0.4e9
            elif st.cap_throttle_hz > 0.0:
                st.cap_throttle_hz = max(0.0, st.cap_throttle_hz - 0.05e9)

        if gpu_active:
            st.last_gpu_active_t = now + dt

        # Frequency ramping toward targets.
        cpu_target = self._cpu_target_hz(now, cpu_active, gpu_active)
        if st.cpu_freq_hz < cpu_target:
            # Recovery from the activation throttle is slow only while
            # the GPU is still active or recently so (power sharing);
            # once the GPU has genuinely gone idle, turbo re-engages at
            # the normal fast ramp - Fig. 4's package power returns to
            # ~60 W *between* bursts.
            gpu_recent = (now - st.last_gpu_active_t) < pcu.gpu_idle_release_s
            slow = self._throttle_recovery and (gpu_active or gpu_recent)
            ramp = (pcu.cpu_recovery_ramp_hz_per_s if slow
                    else pcu.cpu_ramp_up_hz_per_s)
            st.cpu_freq_hz = min(cpu_target, st.cpu_freq_hz + ramp * dt)
            if st.cpu_freq_hz >= cpu_target:
                self._throttle_recovery = False
        elif st.cpu_freq_hz > cpu_target:
            st.cpu_freq_hz = max(cpu_target,
                                 st.cpu_freq_hz - pcu.cpu_ramp_down_hz_per_s * dt)

        gpu_target = self._gpu_target_hz(gpu_active)
        if st.gpu_freq_hz < gpu_target:
            st.gpu_freq_hz = min(gpu_target,
                                 st.gpu_freq_hz + pcu.gpu_ramp_hz_per_s * dt)
        elif st.gpu_freq_hz > gpu_target:
            st.gpu_freq_hz = max(gpu_target,
                                 st.gpu_freq_hz - pcu.gpu_ramp_hz_per_s * dt)

        return st.cpu_freq_hz, st.gpu_freq_hz
