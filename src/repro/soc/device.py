"""Per-device throughput model.

Throughput follows a roofline: a device processing a kernel is limited
either by its instruction throughput at the current frequency or by the
DRAM bandwidth its L3 misses demand.  When the CPU and GPU co-execute,
they contend for the shared memory bandwidth; we allocate it
proportionally to demand, which is the standard fair-share model and
matches the co-execution slowdowns the paper's reference [12] reports
for integrated GPUs.

The returned :class:`DeviceRates` carries, per device:

* ``items_per_s`` - average-cost items per second (the simulator's
  :class:`~repro.soc.work.WorkRegion` converts this into actual items
  using the kernel's irregularity profile);
* ``memory_stall_fraction`` - how memory-limited the device is right
  now (0 = pure compute, 1 = fully stalled on DRAM), which feeds the
  power model's stall scaling;
* ``traffic_bytes_per_s`` - DRAM traffic, which feeds uncore power.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.soc.cost_model import KernelCostModel
from repro.soc.spec import PlatformSpec


@dataclass(frozen=True)
class DeviceRates:
    """Instantaneous throughput of both devices under contention."""

    cpu_items_per_s: float
    gpu_items_per_s: float
    cpu_memory_stall_fraction: float
    gpu_memory_stall_fraction: float
    cpu_traffic_bytes_per_s: float
    gpu_traffic_bytes_per_s: float

    @property
    def total_traffic_bytes_per_s(self) -> float:
        return self.cpu_traffic_bytes_per_s + self.gpu_traffic_bytes_per_s


def gpu_occupancy(spec: PlatformSpec, dispatch_items: float) -> float:
    """EU occupancy for a kernel dispatch of ``dispatch_items`` items.

    The paper sizes GPU_PROFILE_SIZE to the hardware parallelism (2240
    on the desktop GPU) precisely because smaller dispatches leave EUs
    idle; we model that as linear occupancy up to the hardware width.
    Occupancy is a property of the *dispatch*, not of how many items
    remain: the thread dispatcher keeps the EU array fed until the
    final wave.
    """
    hw = spec.gpu.hardware_parallelism
    if dispatch_items <= 0:
        return 0.0
    return min(1.0, dispatch_items / hw)


def compute_rates(spec: PlatformSpec, cost: KernelCostModel,
                  cpu_freq_hz: float, gpu_freq_hz: float,
                  cpu_active_cores: float, gpu_items_in_flight: float,
                  cpu_active: bool, gpu_active: bool) -> DeviceRates:
    """Throughput of both devices for one simulator tick.

    ``cpu_active_cores`` is the number of CPU worker cores currently
    executing kernel items (the GPU proxy thread occupies one hardware
    thread but contributes no item throughput while blocked on the
    GPU).
    """
    cpu_bytes_per_item = cost.dram_bytes_per_item
    gpu_bytes_per_item = cost.gpu_dram_bytes_per_item

    # --- unconstrained compute-side rates -----------------------------------
    cpu_compute = 0.0
    if cpu_active and cpu_active_cores > 0:
        instr_rate = spec.cpu.instruction_rate(cpu_freq_hz, cpu_active_cores)
        cpu_compute = instr_rate * cost.cpu_simd_efficiency / cost.instructions_per_item

    gpu_compute = 0.0
    if gpu_active:
        occ = gpu_occupancy(spec, gpu_items_in_flight)
        instr_rate = spec.gpu.instruction_rate(gpu_freq_hz, occ)
        effective = cost.gpu_simd_efficiency * (1.0 - cost.gpu_divergence)
        gpu_compute = instr_rate * effective / cost.gpu_instructions_per_item

    if cpu_bytes_per_item <= 0.0:
        # Pure compute kernel: no memory contention at all.
        return DeviceRates(
            cpu_items_per_s=cpu_compute,
            gpu_items_per_s=gpu_compute,
            cpu_memory_stall_fraction=0.0,
            gpu_memory_stall_fraction=0.0,
            cpu_traffic_bytes_per_s=0.0,
            gpu_traffic_bytes_per_s=0.0,
        )

    # --- per-device link limits ----------------------------------------------
    cpu_link_rate = spec.cpu.mem_bw_bytes_per_s / cpu_bytes_per_item
    gpu_link_rate = spec.gpu.mem_bw_bytes_per_s / gpu_bytes_per_item
    cpu_solo = min(cpu_compute, cpu_link_rate)
    gpu_solo = min(gpu_compute, gpu_link_rate)

    # --- shared-bandwidth contention ------------------------------------------
    demand_cpu = cpu_solo * cpu_bytes_per_item
    demand_gpu = gpu_solo * gpu_bytes_per_item
    total_demand = demand_cpu + demand_gpu
    shared = spec.memory.shared_bw_bytes_per_s
    if total_demand > shared and total_demand > 0:
        scale = shared / total_demand
        cpu_rate = cpu_solo * scale
        gpu_rate = gpu_solo * scale
    else:
        cpu_rate = cpu_solo
        gpu_rate = gpu_solo

    # --- LLC-thrash coupling ---------------------------------------------------
    # Beyond raw bandwidth sharing, a streaming GPU inflates the CPU's
    # memory latency (LLC evictions, queueing at the memory
    # controller).  The CPU loses throughput proportional to how much
    # of the shared bandwidth the GPU is consuming; the lost cycles are
    # stall cycles for the power model.
    kappa = spec.memory.llc_contention_factor
    if kappa > 0.0 and cpu_rate > 0 and gpu_rate > 0:
        gpu_share = min(1.0, (gpu_rate * gpu_bytes_per_item) / shared)
        cpu_rate *= 1.0 - kappa * gpu_share

    cpu_stall = 0.0 if cpu_compute <= 0 else max(0.0, 1.0 - cpu_rate / cpu_compute)
    gpu_stall = 0.0 if gpu_compute <= 0 else max(0.0, 1.0 - gpu_rate / gpu_compute)

    return DeviceRates(
        cpu_items_per_s=cpu_rate,
        gpu_items_per_s=gpu_rate,
        cpu_memory_stall_fraction=cpu_stall,
        gpu_memory_stall_fraction=gpu_stall,
        cpu_traffic_bytes_per_s=cpu_rate * cpu_bytes_per_item,
        gpu_traffic_bytes_per_s=gpu_rate * gpu_bytes_per_item,
    )


def compute_rates_batch(spec: PlatformSpec, cost: KernelCostModel,
                        cpu_freq_hz: "np.ndarray", gpu_freq_hz: "np.ndarray",
                        cpu_active_cores: float, gpu_items_in_flight: float,
                        cpu_active: bool, gpu_active: bool) -> DeviceRates:
    """Vectorized twin of :func:`compute_rates` over frequency arrays.

    Element ``i`` of every returned array reproduces
    ``compute_rates(..., cpu_freq_hz[i], gpu_freq_hz[i], ...)`` with the
    *same elementary operations in the same order*, so each element is
    bit-identical to the scalar result (IEEE arithmetic is deterministic
    per element; only reductions over elements can reassociate).  The
    fast clock mode's batched-transient path depends on that equality -
    keep this function in lockstep with :func:`compute_rates`.

    Device activity and core counts are scalars (constant over the
    batch span); only frequencies vary per element.
    """
    cpu_freq_hz = np.asarray(cpu_freq_hz, dtype=float)
    gpu_freq_hz = np.asarray(gpu_freq_hz, dtype=float)
    zeros = np.zeros_like(cpu_freq_hz)
    cpu_bytes_per_item = cost.dram_bytes_per_item
    gpu_bytes_per_item = cost.gpu_dram_bytes_per_item

    cpu_compute = zeros
    if cpu_active and cpu_active_cores > 0:
        instr_rate = spec.cpu.instruction_rate(cpu_freq_hz, cpu_active_cores)
        cpu_compute = instr_rate * cost.cpu_simd_efficiency / cost.instructions_per_item

    gpu_compute = zeros
    if gpu_active:
        occ = gpu_occupancy(spec, gpu_items_in_flight)
        instr_rate = spec.gpu.instruction_rate(gpu_freq_hz, occ)
        effective = cost.gpu_simd_efficiency * (1.0 - cost.gpu_divergence)
        gpu_compute = instr_rate * effective / cost.gpu_instructions_per_item

    if cpu_bytes_per_item <= 0.0:
        return DeviceRates(
            cpu_items_per_s=cpu_compute,
            gpu_items_per_s=gpu_compute,
            cpu_memory_stall_fraction=zeros,
            gpu_memory_stall_fraction=zeros,
            cpu_traffic_bytes_per_s=zeros,
            gpu_traffic_bytes_per_s=zeros,
        )

    cpu_link_rate = spec.cpu.mem_bw_bytes_per_s / cpu_bytes_per_item
    gpu_link_rate = spec.gpu.mem_bw_bytes_per_s / gpu_bytes_per_item
    cpu_solo = np.minimum(cpu_compute, cpu_link_rate)
    gpu_solo = np.minimum(gpu_compute, gpu_link_rate)

    demand_cpu = cpu_solo * cpu_bytes_per_item
    demand_gpu = gpu_solo * gpu_bytes_per_item
    total_demand = demand_cpu + demand_gpu
    shared = spec.memory.shared_bw_bytes_per_s
    contended = (total_demand > shared) & (total_demand > 0)
    scale = np.divide(shared, total_demand,
                      out=np.ones_like(total_demand), where=contended)
    cpu_rate = np.where(contended, cpu_solo * scale, cpu_solo)
    gpu_rate = np.where(contended, gpu_solo * scale, gpu_solo)

    kappa = spec.memory.llc_contention_factor
    if kappa > 0.0:
        both = (cpu_rate > 0) & (gpu_rate > 0)
        gpu_share = np.minimum(1.0, (gpu_rate * gpu_bytes_per_item) / shared)
        cpu_rate = np.where(both, cpu_rate * (1.0 - kappa * gpu_share), cpu_rate)

    cpu_q = np.divide(cpu_rate, cpu_compute,
                      out=np.zeros_like(cpu_rate), where=cpu_compute > 0)
    gpu_q = np.divide(gpu_rate, gpu_compute,
                      out=np.zeros_like(gpu_rate), where=gpu_compute > 0)
    cpu_stall = np.where(cpu_compute <= 0, 0.0,
                         np.maximum(0.0, 1.0 - cpu_q))
    gpu_stall = np.where(gpu_compute <= 0, 0.0,
                         np.maximum(0.0, 1.0 - gpu_q))

    return DeviceRates(
        cpu_items_per_s=cpu_rate,
        gpu_items_per_s=gpu_rate,
        cpu_memory_stall_fraction=cpu_stall,
        gpu_memory_stall_fraction=gpu_stall,
        cpu_traffic_bytes_per_s=cpu_rate * cpu_bytes_per_item,
        gpu_traffic_bytes_per_s=gpu_rate * gpu_bytes_per_item,
    )


def span_items(items_per_s: "np.ndarray", dts: "np.ndarray") -> float:
    """Items retired over a whole tick span: ``sum_i rate[i] * dts[i]``.

    The span twin of the scalar loop's per-tick ``consume(rate * dt)``
    capacity accumulation.  One dot product; agrees with the per-tick
    running sum to float-summation-order error, inside the
    bounded-mode tolerance contract (the only consumer).
    """
    return float(np.dot(np.asarray(items_per_s, dtype=float),
                        np.asarray(dts, dtype=float)))
